//! Guest-level flight-recorder tests: the Perfetto/Chrome trace-event
//! export of a real 4-rank PingPong guest (both clock modes), a
//! differential check that tracing never changes guest-visible behavior,
//! and the `mpiwasm_stats` embedder extension.

use std::sync::Arc;

use hpc_benchmarks::guest::{layout, MpiImports, MPI_BYTE};
use hpc_benchmarks::imb::{build_guest, ImbRoutine};
use mpi_substrate::ClockMode;
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};
use obs::{Recorder, TraceClock};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder, Tier};

fn virtual_mode() -> ClockMode {
    ClockMode::Virtual(CostModel::native(SystemProfile::container()))
}

fn traced_run(wasm: &[u8], np: u32, clock: ClockMode, tc: TraceClock) -> Arc<Recorder> {
    let rec = Recorder::new(np as usize, obs::DEFAULT_CAPACITY, tc);
    let result = Runner::new()
        .run(
            wasm,
            JobConfig { np, clock, recorder: Some(Arc::clone(&rec)), ..Default::default() },
        )
        .expect("job launches");
    assert!(
        result.success(),
        "{:?}",
        result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
    );
    rec
}

// --- A minimal JSON validator (the container has no serde): accepts the
// --- value grammar the exporter emits, rejects truncation and bad nesting.
fn json_value(s: &[u8], mut i: usize) -> Result<usize, String> {
    let err = |i: usize, m: &str| Err(format!("offset {i}: {m}"));
    while i < s.len() && s[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= s.len() {
        return err(i, "unexpected end");
    }
    match s[i] {
        b'{' => {
            i += 1;
            loop {
                while i < s.len() && s[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < s.len() && s[i] == b'}' {
                    return Ok(i + 1);
                }
                i = json_value(s, i)?; // key
                while i < s.len() && s[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i >= s.len() || s[i] != b':' {
                    return err(i, "expected ':'");
                }
                i = json_value(s, i + 1)?;
                while i < s.len() && s[i].is_ascii_whitespace() {
                    i += 1;
                }
                match s.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok(i + 1),
                    _ => return err(i, "expected ',' or '}'"),
                }
            }
        }
        b'[' => {
            i += 1;
            loop {
                while i < s.len() && s[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < s.len() && s[i] == b']' {
                    return Ok(i + 1);
                }
                i = json_value(s, i)?;
                while i < s.len() && s[i].is_ascii_whitespace() {
                    i += 1;
                }
                match s.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok(i + 1),
                    _ => return err(i, "expected ',' or ']'"),
                }
            }
        }
        b'"' => {
            i += 1;
            while i < s.len() {
                match s[i] {
                    b'\\' => i += 2,
                    b'"' => return Ok(i + 1),
                    _ => i += 1,
                }
            }
            err(i, "unterminated string")
        }
        b't' if s[i..].starts_with(b"true") => Ok(i + 4),
        b'f' if s[i..].starts_with(b"false") => Ok(i + 5),
        b'n' if s[i..].starts_with(b"null") => Ok(i + 4),
        c if c == b'-' || c.is_ascii_digit() => {
            while i < s.len()
                && (s[i].is_ascii_digit() || matches!(s[i], b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                i += 1;
            }
            Ok(i)
        }
        _ => err(i, "unexpected character"),
    }
}

fn assert_valid_json(doc: &str) {
    let s = doc.as_bytes();
    let end = json_value(s, 0).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
    assert!(
        s[end..].iter().all(|b| b.is_ascii_whitespace()),
        "trailing garbage after JSON document"
    );
}

/// Extract the per-line event objects between `"traceEvents": [` and `]`.
fn event_lines(doc: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut inside = false;
    for line in doc.lines() {
        let t = line.trim();
        if t.starts_with("\"traceEvents\"") {
            inside = true;
            continue;
        }
        if inside {
            if t.starts_with(']') {
                break;
            }
            out.push(t.trim_end_matches(','));
        }
    }
    out
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"').parse().ok()
}

/// Tentpole acceptance: a 4-rank PingPong traced under both clock modes
/// yields schema-valid Chrome trace JSON with one named track per rank and
/// send→recv flow arrows.
#[test]
fn traced_pingpong_exports_perfetto_json_in_both_clock_modes() {
    let wasm = build_guest(ImbRoutine::PingPong, &[(1024, 4)]);
    for (clock, tc) in
        [(ClockMode::Real, TraceClock::Real), (virtual_mode(), TraceClock::Virtual)]
    {
        let rec = traced_run(&wasm, 4, clock, tc);
        let doc = obs::export_chrome_trace(&rec);
        assert_valid_json(&doc);
        assert!(doc.contains(&format!("\"clock\": \"{}\"", tc.name())));

        let lines = event_lines(&doc);
        assert!(!lines.is_empty(), "no trace events exported");
        for line in &lines {
            assert_valid_json(line);
        }
        // One named thread track per rank, plus the engine track.
        for r in 0..4 {
            assert!(
                lines.iter().any(|l| l.contains(&format!("\"name\":\"rank {r}\""))),
                "missing rank {r} track metadata"
            );
        }
        // The engine track only materializes when the engine logged
        // something (e.g. JIT promotions under -tier max+jit).
        if !rec.engine_events().is_empty() {
            assert!(lines.iter().any(|l| l.contains("\"name\":\"engine\"")));
        }

        // Flow arrows: every finish ("f") has a matching start ("s").
        let ids = |ph: &str| -> Vec<u64> {
            lines
                .iter()
                .filter(|l| l.contains(&format!("\"ph\":\"{ph}\"")))
                .filter_map(|l| field_u64(l, "id"))
                .collect()
        };
        let (starts, finishes) = (ids("s"), ids("f"));
        assert!(!starts.is_empty(), "PingPong trace has no send flow events");
        assert!(!finishes.is_empty(), "PingPong trace has no recv flow events");
        for f in &finishes {
            assert!(starts.contains(f), "flow finish {f} has no start");
        }
        // Send slices ("X") exist and dropped counts are surfaced.
        assert!(lines.iter().any(|l| l.contains("\"ph\":\"X\"")));
        assert!(doc.contains("\"dropped_events\": 0"));
    }
}

/// Differential: the same guest run with tracing on, off, and absent is
/// byte-identical in guest-visible results and virtual completion times.
#[test]
fn tracing_is_invisible_to_the_guest() {
    let wasm = build_guest(ImbRoutine::Allreduce, &[(512, 3)]);
    let run = |recorder: Option<Arc<Recorder>>| {
        let result = Runner::new()
            .run(
                &wasm,
                JobConfig { np: 4, clock: virtual_mode(), recorder, ..Default::default() },
            )
            .expect("job launches");
        assert!(result.success());
        result
            .ranks
            .iter()
            .map(|r| (r.stdout.clone(), r.reports.clone(), r.virtual_time_us))
            .collect::<Vec<_>>()
    };

    let plain = run(None);
    let traced = run(Some(Recorder::new(4, obs::DEFAULT_CAPACITY, TraceClock::Virtual)));
    let off_rec = Recorder::new(4, obs::DEFAULT_CAPACITY, TraceClock::Virtual);
    off_rec.set_enabled(false);
    let disabled = run(Some(off_rec));

    assert_eq!(plain, traced, "tracing changed guest-visible behavior");
    assert_eq!(plain, disabled, "a disabled recorder changed guest-visible behavior");
}

/// Satellite: guests can read this rank's protocol counters through the
/// `mpiwasm_stats` host call and assert protocol behavior from inside.
#[test]
fn guest_reads_protocol_stats_through_mpiwasm_stats() {
    const STATS_PTR: i32 = layout::SCRATCH + 64;
    let mut b = ModuleBuilder::new();
    b.memory(4, None);
    let mpi = MpiImports::declare(&mut b);
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let written = Var::new(f, ValType::I32);
        let mut body = vec![mpi.init()];
        body.extend(mpi.load_rank(layout::SCRATCH, rank));
        // Rank 0 sends 1 KiB to rank 1 (eager path).
        body.push(if_else(
            rank.get().eq(int(0)),
            &[mpi.send(int(layout::HEAP), int(1024), MPI_BYTE, int(1), int(5))],
            &[mpi.recv(int(layout::HEAP), int(1024), MPI_BYTE, int(0), int(5))],
        ));
        body.push(mpi.barrier_world());
        body.push(mpi.stats(int(STATS_PTR), int(64), written));
        // Report bytes written and the first word (eager_messages).
        body.push(mpi.report(int(1), written.get().to(ValType::F64)));
        body.push(
            mpi.report(int(2), int(STATS_PTR).load(ValType::I64, 0).to(ValType::F64)),
        );
        body.push(mpi.finalize());
        emit_block(f, &body);
    });
    let module = b.finish();
    wasm_engine::validate_module(&module).unwrap();
    let wasm = encode_module(&module);

    let result = Runner::new()
        .run(&wasm, JobConfig { np: 2, tier: Tier::Max, ..Default::default() })
        .expect("job launches");
    assert!(
        result.success(),
        "{:?}",
        result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
    );
    for r in &result.ranks {
        let bytes = r.reports.iter().find(|(k, _)| *k == 1).unwrap().1;
        assert_eq!(bytes, 64.0, "rank {}: snapshot is 8 LE u64 words", r.rank);
    }
    // eager_messages is a world-level counter: both ranks see the 1 KiB
    // eager send (plus barrier token traffic).
    let eager = result.ranks[0].reports.iter().find(|(k, _)| *k == 2).unwrap().1;
    assert!(eager >= 1.0, "expected at least one eager message, saw {eager}");
}

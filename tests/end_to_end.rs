//! Cross-crate integration tests: the full pipeline
//! DSL → Wasm bytes → decode/validate → tiered compile → embedder →
//! MPI substrate, exercised the way a user of the repository would.

use hpc_benchmarks::guest::{layout, MpiImports, MPI_DOUBLE, MPI_INT, MPI_SUM};
use hpc_benchmarks::{hpcg, imb, npb_dt, npb_is};
use mpi_substrate::ClockMode;
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder, Tier};

fn reports_value(r: &mpiwasm::RankResult, key: i32) -> f64 {
    r.reports.iter().find(|(k, _)| *k == key).map(|(_, v)| *v).unwrap()
}

/// Every benchmark guest completes under every tier at a small rank count.
#[test]
fn every_benchmark_under_every_tier() {
    let guests: Vec<(&str, Vec<u8>, u32)> = vec![
        ("imb-allreduce", imb::build_guest(imb::ImbRoutine::Allreduce, &[(128, 2)]), 2),
        (
            "hpcg",
            hpcg::build_guest(hpcg::HpcgParams { nx: 4, ny: 4, nz: 4, iters: 2 }),
            2,
        ),
        (
            "is",
            npb_is::build_guest(npb_is::IsParams {
                keys_per_rank: 128,
                max_key: 256,
                iters: 1,
            }),
            2,
        ),
        (
            "dt",
            npb_dt::build_guest(npb_dt::DtParams {
                elems: 16,
                topology: npb_dt::Topology::Shuffle,
                iters: 1,
                simd: true,
            }),
            2,
        ),
    ];
    let runner = Runner::new();
    for (name, wasm, np) in &guests {
        for tier in Tier::ALL {
            let result = runner
                .run(wasm, JobConfig { np: *np, tier, ..Default::default() })
                .unwrap_or_else(|e| panic!("{name} under {tier}: {e}"));
            assert!(
                result.success(),
                "{name} under {tier}: {:?}",
                result.ranks.iter().filter_map(|r| r.error.clone()).collect::<Vec<_>>()
            );
        }
    }
}

/// The same module bytes run under both system profiles (x86_64 HPC and
/// aarch64 Graviton2 models) — the portability claim of Figure 1.
#[test]
fn same_module_bytes_portable_across_system_profiles() {
    let wasm = imb::build_guest(imb::ImbRoutine::PingPong, &[(1024, 4)]);
    let runner = Runner::new();
    let mut times = Vec::new();
    for profile in [SystemProfile::supermuc_ng(), SystemProfile::graviton2()] {
        let result = runner
            .run(
                &wasm,
                JobConfig {
                    np: 2,
                    clock: ClockMode::Virtual(CostModel::native(profile)),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(result.success());
        times.push(result.ranks[0].reports[0].1);
    }
    // Different interconnects give different timings for identical bytes.
    assert_ne!(times[0], times[1]);
}

/// Compile-through-cache: second launch of the same module hits the cache
/// and produces identical results.
#[test]
fn cache_hit_preserves_results() {
    let dir = std::env::temp_dir().join(format!("mpiwasm-e2e-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runner = Runner::new().with_cache(&dir).unwrap();
    let wasm = imb::build_guest(imb::ImbRoutine::Bcast, &[(64, 2)]);

    let first = runner.run(&wasm, JobConfig { np: 2, ..Default::default() }).unwrap();
    assert!(!first.cache_hit);
    let second = runner.run(&wasm, JobConfig { np: 2, ..Default::default() }).unwrap();
    assert!(second.cache_hit, "second run must load the artifact");
    assert!(first.success() && second.success());
    assert_eq!(first.ranks[0].reports.len(), second.ranks[0].reports.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// An out-of-bounds guest traps cleanly; the other ranks shut down and the
/// failure is reported per-rank rather than crashing the embedder.
#[test]
fn oob_guest_traps_cleanly() {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(1)); // 64 KiB only
    let mpi = MpiImports::declare(&mut b);
    b.func("_start", vec![], vec![], |f| {
        let sink = Var::new(f, ValType::I32);
        emit_block(f, &[
            mpi.init(),
            // Read far outside the single page.
            sink.set(int(10_000_000).load(ValType::I32, 0)),
            mpi.finalize(),
        ]);
    });
    let wasm = encode_module(&b.finish());
    let result = Runner::new().run(&wasm, JobConfig { np: 1, ..Default::default() }).unwrap();
    assert!(!result.success());
    let err = result.ranks[0].error.as_deref().unwrap();
    assert!(err.contains("out-of-bounds"), "{err}");
}

/// A module importing an unknown host function is rejected at
/// instantiation with a per-rank report, not a crash.
#[test]
fn unknown_import_rejected() {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    let mystery = b.import_func("env", "MPI_Not_A_Function", vec![], vec![]);
    b.func("_start", vec![], vec![], |f| {
        f.call(mystery);
    });
    let wasm = encode_module(&b.finish());
    let result = Runner::new().run(&wasm, JobConfig { np: 1, ..Default::default() }).unwrap();
    assert!(!result.success());
    assert!(result.ranks[0].error.as_deref().unwrap().contains("MPI_Not_A_Function"));
}

/// Derived communicators through the guest ABI: split into odd/even
/// sub-communicators and allreduce within each.
#[test]
fn comm_split_through_guest_abi() {
    let mut b = ModuleBuilder::new();
    b.memory(layout::PAGES, None);
    let mpi = MpiImports::declare(&mut b);
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let sub = Var::new(f, ValType::I32);
        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend([
            // split(world, color=rank%2, key=rank) -> handle at SCRATCH+16
            call_drop(
                mpi.comm_split,
                vec![int(0), rank.get() % int(2), rank.get(), int(layout::SCRATCH + 16)],
            ),
            sub.set(int(layout::SCRATCH + 16).load(ValType::I32, 0)),
            store(int(layout::SEND_BUF), 0, int(1)),
            // Allreduce on the sub-communicator.
            call_drop(
                mpi.allreduce,
                vec![
                    int(layout::SEND_BUF),
                    int(layout::RECV_BUF),
                    int(1),
                    int(MPI_INT),
                    int(MPI_SUM),
                    sub.get(),
                ],
            ),
            mpi.report(int(0), int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64)),
            // Free the derived communicator.
            store(int(layout::SCRATCH + 16), 0, sub.get()),
            call_drop(mpi.comm_free, vec![int(layout::SCRATCH + 16)]),
            mpi.finalize(),
        ]);
        emit_block(f, &stmts);
    });
    let wasm = encode_module(&b.finish());
    let result = Runner::new().run(&wasm, JobConfig { np: 6, ..Default::default() }).unwrap();
    assert!(result.success(), "{:?}", result.ranks[0].error);
    for r in &result.ranks {
        // Each parity class has 3 members.
        assert_eq!(reports_value(r, 0), 3.0, "rank {}", r.rank);
    }
}

/// Virtual-clock runs report simulated time through MPI_Wtime while real
/// runs report host time: the same guest distinguishes them only by scale.
#[test]
fn wtime_reflects_clock_mode() {
    let mut b = ModuleBuilder::new();
    b.memory(layout::PAGES, None);
    let mpi = MpiImports::declare(&mut b);
    b.func("_start", vec![], vec![], |f| {
        let t0 = Var::new(f, ValType::F64);
        emit_block(f, &[
            mpi.init(),
            t0.set(mpi.wtime()),
            // One 1 MiB bcast: ~100us simulated wire time.
            store(int(layout::SEND_BUF), 0, double(1.0)),
            mpi.bcast(int(layout::SEND_BUF), int(1 << 17), MPI_DOUBLE, int(0)),
            mpi.report(int(0), mpi.wtime() - t0.get()),
            mpi.finalize(),
        ]);
    });
    let wasm = encode_module(&b.finish());
    let runner = Runner::new();
    let sim = runner
        .run(
            &wasm,
            JobConfig {
                np: 2,
                clock: ClockMode::Virtual(CostModel::native(SystemProfile::supermuc_ng())),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(sim.success());
    let sim_t = reports_value(&sim.ranks[1], 0);
    // 1 MiB over ~12.5 GB/s ≈ 85-170us of simulated time.
    assert!(sim_t > 20e-6 && sim_t < 2e-3, "simulated {sim_t}s");
    assert!(sim.max_virtual_time_us() > 0.0);
}

/// Guest stdout flows back per rank through the WASI layer.
#[test]
fn guest_stdout_captured_per_rank() {
    let mut b = ModuleBuilder::new();
    b.memory(layout::PAGES, None);
    let mpi = MpiImports::declare(&mut b);
    let fd_write = b.import_func(
        "wasi_snapshot_preview1",
        "fd_write",
        vec![ValType::I32; 4],
        vec![ValType::I32],
    );
    b.data(512, b"hello from wasm\n".to_vec());
    b.func("_start", vec![], vec![], |f| {
        emit_block(f, &[
            mpi.init(),
            store(int(layout::IOV), 0, int(512)),
            store(int(layout::IOV), 4, int(16)),
            call_drop(fd_write, vec![int(1), int(layout::IOV), int(1), int(layout::SCRATCH)]),
            mpi.finalize(),
        ]);
    });
    let wasm = encode_module(&b.finish());
    let result = Runner::new().run(&wasm, JobConfig { np: 3, ..Default::default() }).unwrap();
    assert!(result.success());
    for r in &result.ranks {
        assert_eq!(r.stdout, "hello from wasm\n");
    }
}

/// Nonblocking operations through the guest ABI: post Irecv before the
/// matching Isend arrives, overlap "work", complete with Wait/Waitall,
/// and poll with Test.
#[test]
fn nonblocking_ring_exchange() {
    let mut b = ModuleBuilder::new();
    b.memory(layout::PAGES, None);
    let mpi = MpiImports::declare(&mut b);
    const REQS: i32 = 256; // two request handles
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        let flag = Var::new(f, ValType::I32);
        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend(mpi.load_size(layout::SCRATCH + 8, size));
        stmts.extend([
            // Post the receive first (from the left neighbour).
            call_drop(mpi.irecv, vec![
                int(layout::RECV_BUF), int(1), int(MPI_INT),
                (rank.get() + size.get() - int(1)) % size.get(),
                int(3), int(0), int(REQS),
            ]),
            // Test before anything was sent: in-flight requests may or may
            // not be ready, but the call itself must succeed.
            call_drop(mpi.test, vec![int(REQS), int(layout::SCRATCH + 32), int(0)]),
            // Send to the right neighbour.
            store(int(layout::SEND_BUF), 0, rank.get() * int(100)),
            call_drop(mpi.isend, vec![
                int(layout::SEND_BUF), int(1), int(MPI_INT),
                (rank.get() + int(1)) % size.get(),
                int(3), int(0), int(REQS + 4),
            ]),
            // Complete both with Waitall.
            call_drop(mpi.waitall, vec![int(2), int(REQS), int(0)]),
            mpi.report(
                int(0),
                int(layout::RECV_BUF).load(ValType::I32, 0).to(ValType::F64),
            ),
            // Waiting again on the nulled handles is a no-op.
            call_drop(mpi.wait, vec![int(REQS), int(0)]),
            flag.set(int(0)),
            mpi.finalize(),
        ]);
        let _ = flag;
        emit_block(f, &stmts);
    });
    let wasm = encode_module(&b.finish());
    let result = Runner::new().run(&wasm, JobConfig { np: 4, ..Default::default() }).unwrap();
    assert!(result.success(), "{:?}", result.ranks[0].error);
    for r in &result.ranks {
        let left = (r.rank + 3) % 4;
        assert_eq!(reports_value(r, 0), left as f64 * 100.0, "rank {}", r.rank);
    }
}

//! Property-based tests over the whole stack:
//!
//! * random arithmetic programs evaluate identically on every execution
//!   tier and match a reference evaluation in Rust (differential testing
//!   of the interpreter vs the optimizing tiers vs ground truth),
//! * encode→decode round-trips arbitrary built modules,
//! * cache artifacts round-trip arbitrary compiled modules,
//! * collectives match sequential oracles on random inputs,
//! * the sandbox never lets a random (pointer, length) pair escape memory.

use proptest::prelude::*;

use mpi_substrate::{run_world, Datatype, ReduceOp};
use wasm_engine::dsl::{self, Expr};
use wasm_engine::runtime::{CompiledModule, Linker, Value};
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder, Tier};

/// A reference-evaluatable arithmetic expression over two i32 inputs.
/// `Div`/`Rem` bring the wasm trap semantics into the differential net:
/// the reference evaluation reports a trap as `Err(())` and every tier
/// must trap too.
#[derive(Debug, Clone)]
enum Ast {
    X,
    Y,
    Const(i32),
    Add(Box<Ast>, Box<Ast>),
    Sub(Box<Ast>, Box<Ast>),
    Mul(Box<Ast>, Box<Ast>),
    Div(Box<Ast>, Box<Ast>),
    Rem(Box<Ast>, Box<Ast>),
    And(Box<Ast>, Box<Ast>),
    Or(Box<Ast>, Box<Ast>),
    Xor(Box<Ast>, Box<Ast>),
    Select(Box<Ast>, Box<Ast>, Box<Ast>),
}

impl Ast {
    fn eval(&self, x: i32, y: i32) -> Result<i32, ()> {
        Ok(match self {
            Ast::X => x,
            Ast::Y => y,
            Ast::Const(c) => *c,
            Ast::Add(a, b) => a.eval(x, y)?.wrapping_add(b.eval(x, y)?),
            Ast::Sub(a, b) => a.eval(x, y)?.wrapping_sub(b.eval(x, y)?),
            Ast::Mul(a, b) => a.eval(x, y)?.wrapping_mul(b.eval(x, y)?),
            Ast::Div(a, b) => {
                let (a, b) = (a.eval(x, y)?, b.eval(x, y)?);
                if b == 0 || (a == i32::MIN && b == -1) {
                    return Err(()); // divide-by-zero / overflow trap
                }
                a.wrapping_div(b)
            }
            Ast::Rem(a, b) => {
                let (a, b) = (a.eval(x, y)?, b.eval(x, y)?);
                if b == 0 {
                    return Err(());
                }
                a.wrapping_rem(b)
            }
            Ast::And(a, b) => a.eval(x, y)? & b.eval(x, y)?,
            Ast::Or(a, b) => a.eval(x, y)? | b.eval(x, y)?,
            Ast::Xor(a, b) => a.eval(x, y)? ^ b.eval(x, y)?,
            Ast::Select(c, a, b) => {
                // Wasm `select` is strict: both arms evaluate (and may
                // trap) before the choice.
                let (c, a, b) = (c.eval(x, y)?, a.eval(x, y)?, b.eval(x, y)?);
                if c != 0 {
                    a
                } else {
                    b
                }
            }
        })
    }

    fn to_dsl(&self) -> Expr {
        match self {
            Ast::X => dsl::local(0, ValType::I32).get(),
            Ast::Y => dsl::local(1, ValType::I32).get(),
            Ast::Const(c) => dsl::int(*c),
            Ast::Add(a, b) => a.to_dsl() + b.to_dsl(),
            Ast::Sub(a, b) => a.to_dsl() - b.to_dsl(),
            Ast::Mul(a, b) => a.to_dsl() * b.to_dsl(),
            Ast::Div(a, b) => a.to_dsl() / b.to_dsl(),
            Ast::Rem(a, b) => a.to_dsl() % b.to_dsl(),
            Ast::And(a, b) => a.to_dsl().and(b.to_dsl()),
            Ast::Or(a, b) => a.to_dsl().or(b.to_dsl()),
            Ast::Xor(a, b) => a.to_dsl().xor(b.to_dsl()),
            Ast::Select(c, a, b) => dsl::select(c.to_dsl().ne(dsl::int(0)), a.to_dsl(), b.to_dsl()),
        }
    }
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        Just(Ast::X),
        Just(Ast::Y),
        any::<i32>().prop_map(Ast::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Rem(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| {
                Ast::Select(c.into(), a.into(), b.into())
            }),
        ]
    })
}

fn compile_ast(ast: &Ast) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    let expr = ast.to_dsl();
    b.func("f", vec![ValType::I32, ValType::I32], vec![ValType::I32], move |f| {
        dsl::emit_block(f, &[dsl::ret(Some(expr.clone()))]);
    });
    encode_module(&b.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential execution: all four tiers agree with ground truth on
    /// both results and traps (the safety net for the untyped-slot engine,
    /// the Max tier's superinstruction fusion, and the superblock chains).
    #[test]
    fn tiers_agree_with_reference(ast in ast_strategy(), x in any::<i32>(), y in any::<i32>()) {
        let wasm = compile_ast(&ast);
        let module = wasm_engine::decode_module(&wasm).unwrap();
        wasm_engine::validate_module(&module).unwrap();
        let expected = ast.eval(x, y);
        let mut trap_messages: Vec<String> = Vec::new();
        for tier in Tier::ALL {
            let compiled = CompiledModule::compile(module.clone(), tier).unwrap();
            // Promote on first entry so MaxJit actually runs its chains.
            compiled.set_jit_threshold(1);
            let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
            let out = inst.invoke("f", &[Value::I32(x), Value::I32(y)]);
            match (&expected, out) {
                (Ok(v), Ok(got)) => {
                    prop_assert_eq!(got[0], Value::I32(*v), "tier {}", tier);
                }
                (Err(()), Err(trap)) => trap_messages.push(trap.to_string()),
                (Ok(v), Err(trap)) => {
                    return Err(TestCaseError::fail(format!(
                        "tier {tier} trapped ({trap}) but reference produced {v}"
                    )));
                }
                (Err(()), Ok(got)) => {
                    return Err(TestCaseError::fail(format!(
                        "tier {tier} produced {:?} but reference trapped", got[0]
                    )));
                }
            }
        }
        // When it traps, every tier must report the same trap.
        if !trap_messages.is_empty() {
            prop_assert_eq!(trap_messages.len(), Tier::ALL.len());
            for pair in trap_messages.windows(2) {
                prop_assert_eq!(&pair[0], &pair[1]);
            }
        }
    }

    /// Binary round-trip: decode(encode(m)) == m for generated modules.
    #[test]
    fn encode_decode_roundtrip(ast in ast_strategy()) {
        let wasm = compile_ast(&ast);
        let module = wasm_engine::decode_module(&wasm).unwrap();
        let re = encode_module(&module);
        prop_assert_eq!(&wasm, &re, "re-encoding must be stable");
        let module2 = wasm_engine::decode_module(&re).unwrap();
        prop_assert_eq!(module, module2);
    }

    /// Cache artifacts round-trip and execute identically.
    #[test]
    fn artifact_roundtrip_executes(ast in ast_strategy(), x in -1000i32..1000, y in -1000i32..1000) {
        let wasm = compile_ast(&ast);
        let module = wasm_engine::decode_module(&wasm).unwrap();
        let compiled = CompiledModule::compile(module, Tier::Max).unwrap();
        let artifact = mpiwasm::cache::store_artifact(&wasm, &compiled);
        let loaded = mpiwasm::cache::load_artifact(&artifact).unwrap();
        // Compare outcomes including traps (the AST can divide by zero).
        let run = |c: &CompiledModule| {
            let mut inst = Linker::new().instantiate(c, Box::new(())).unwrap();
            inst.invoke("f", &[Value::I32(x), Value::I32(y)])
                .map(|out| out[0])
                .map_err(|t| t.to_string())
        };
        prop_assert_eq!(run(&compiled), run(&loaded));
    }

    /// Truncated or bit-flipped binaries never panic the decoder: they
    /// decode, fail validation, or return an error.
    #[test]
    fn decoder_is_total(ast in ast_strategy(), cut in 0usize..100, flip in 0usize..100) {
        let mut wasm = compile_ast(&ast);
        let cut_at = 8 + (cut * wasm.len().saturating_sub(8)) / 100;
        wasm.truncate(cut_at.max(8));
        if !wasm.is_empty() {
            let idx = flip % wasm.len();
            wasm[idx] ^= 0x55;
        }
        // Must not panic; errors are fine.
        if let Ok(m) = wasm_engine::decode_module(&wasm) {
            let _ = wasm_engine::validate_module(&m);
        }
    }

    /// Random guest pointers can never escape linear memory.
    #[test]
    fn sandbox_bounds_hold(addr in any::<u32>(), len in any::<u32>()) {
        let mem = wasm_engine::runtime::Memory::new(wasm_engine::types::Limits::new(2, Some(2)));
        match mem.slice(addr, len) {
            Ok(s) => {
                prop_assert!(addr as u64 + len as u64 <= mem.size_bytes() as u64);
                prop_assert_eq!(s.len(), len as usize);
            }
            Err(_) => {
                prop_assert!(addr as u64 + len as u64 > mem.size_bytes() as u64);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Allreduce equals the sequential oracle on random doubles at random
    /// world sizes.
    #[test]
    fn allreduce_matches_oracle(
        p in 1u32..6,
        values in proptest::collection::vec(-1e6f64..1e6, 4),
        op_idx in 0usize..3,
    ) {
        let ops = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min];
        let op = ops[op_idx];
        let vals = values.clone();
        let out = run_world(p, move |comm| {
            let mine: Vec<f64> =
                vals.iter().map(|v| v + comm.rank() as f64).collect();
            let send: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut recv = vec![0u8; send.len()];
            comm.allreduce(&send, &mut recv, Datatype::Double, op).unwrap();
            recv.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<f64>>()
        });
        // Oracle.
        for (i, base) in values.iter().enumerate() {
            let contributions: Vec<f64> = (0..p).map(|r| base + r as f64).collect();
            let expected = match op {
                ReduceOp::Sum => contributions.iter().sum::<f64>(),
                ReduceOp::Max => contributions.iter().cloned().fold(f64::MIN, f64::max),
                _ => contributions.iter().cloned().fold(f64::MAX, f64::min),
            };
            for rank_out in &out {
                prop_assert!((rank_out[i] - expected).abs() < 1e-6,
                    "elem {i}: {} vs {expected}", rank_out[i]);
            }
        }
    }

    /// Differential conformance for derived-datatype sends through the
    /// guest ABI: the host's pack-on-send of an `MPI_Type_vector` must be
    /// byte-identical to the guest packing the same strided region by
    /// hand, for random type shapes, in both clock modes, with payloads
    /// on both sides of the rendezvous threshold.
    #[test]
    fn derived_type_send_matches_manual_packing(
        count in 1i32..16,
        blocklen in 1i32..8,
        gap in 0i32..8,
    ) {
        use hpc_benchmarks::guest::{layout, MpiImports, MPI_INT};
        use mpi_substrate::ClockMode;
        use mpiwasm::{JobConfig, Runner};
        use netsim::{CostModel, SystemProfile};
        use wasm_engine::dsl::*;

        let stride = blocklen + gap;
        let ext = (count - 1) * stride + blocklen; // extent in ints
        let per_instance = count * blocklen; // packed ints per instance

        // One eager-sized and one rendezvous-sized payload (the real-mode
        // default threshold is 64 KiB).
        for target_bytes in [4 << 10, 96 << 10] {
            let n = ((target_bytes / (per_instance * 4)).max(1)).min(4096);
            let total = n * per_instance; // packed ints on the wire
            let span = n * ext; // source ints the type walks over

            const TYPE: i32 = 256;
            let pack_buf = layout::SEND_BUF + (4 << 20);
            let recv_b = layout::RECV_BUF + (8 << 20);

            let mut b = wasm_engine::ModuleBuilder::new();
            b.memory(layout::PAGES, None);
            let mpi = MpiImports::declare(&mut b);
            b.func("_start", vec![], vec![], |f| {
                let rank = Var::new(f, ValType::I32);
                let inst = Var::new(f, ValType::I32);
                let blk = Var::new(f, ValType::I32);
                let e = Var::new(f, ValType::I32);
                let d = Var::new(f, ValType::I32);
                let mism = Var::new(f, ValType::I32);
                let sum = Var::new(f, ValType::F64);
                let mut stmts = vec![mpi.init()];
                stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
                stmts.push(if_else(
                    rank.get().eq(int(0)),
                    &[
                        // Deterministic source values over the whole span.
                        for_range(e, int(0), int(span), &[store(
                            int(layout::SEND_BUF) + e.get() * int(4),
                            0,
                            (e.get() * int(7) + int(3)).and(int(0xffff)),
                        )]),
                        mpi.type_vector(int(count), int(blocklen), int(stride), MPI_INT, int(TYPE)),
                        mpi.type_commit(int(TYPE)),
                        // Subject: the host packs n instances on send.
                        mpi.send_dt(
                            int(layout::SEND_BUF),
                            int(n),
                            int(TYPE).load(ValType::I32, 0),
                            int(1),
                            int(1),
                        ),
                        // Oracle: pack the identical walk by hand.
                        d.set(int(0)),
                        for_range(inst, int(0), int(n), &[
                            for_range(blk, int(0), int(count), &[
                                for_range(e, int(0), int(blocklen), &[
                                    store(
                                        int(pack_buf) + d.get() * int(4),
                                        0,
                                        (int(layout::SEND_BUF)
                                            + (inst.get() * int(ext)
                                                + blk.get() * int(stride)
                                                + e.get())
                                                * int(4))
                                            .load(ValType::I32, 0),
                                    ),
                                    d.set(d.get() + int(1)),
                                ]),
                            ]),
                        ]),
                        mpi.send(int(pack_buf), int(total), MPI_INT, int(1), int(2)),
                        mpi.type_free(int(TYPE)),
                    ],
                    &[
                        mpi.recv(int(layout::RECV_BUF), int(total), MPI_INT, int(0), int(1)),
                        mpi.recv(int(recv_b), int(total), MPI_INT, int(0), int(2)),
                        mism.set(int(0)),
                        sum.set(double(0.0)),
                        for_range(e, int(0), int(total), &[
                            if_then(
                                (int(layout::RECV_BUF) + e.get() * int(4))
                                    .load(ValType::I32, 0)
                                    .ne((int(recv_b) + e.get() * int(4)).load(ValType::I32, 0)),
                                &[mism.set(mism.get() + int(1))],
                            ),
                            sum.set(
                                sum.get()
                                    + (int(layout::RECV_BUF) + e.get() * int(4))
                                        .load(ValType::I32, 0)
                                        .to(ValType::F64),
                            ),
                        ]),
                        mpi.report(int(0), mism.get().to(ValType::F64)),
                        mpi.report(int(1), sum.get()),
                    ],
                ));
                stmts.push(mpi.finalize());
                emit_block(f, &stmts);
            });
            let wasm = encode_module(&b.finish());

            // Ground truth for the packed stream's checksum.
            let mut expected = 0.0f64;
            for i in 0..n {
                for bk in 0..count {
                    for el in 0..blocklen {
                        let src = i * ext + bk * stride + el;
                        expected += ((src * 7 + 3) & 0xffff) as f64;
                    }
                }
            }

            for clock in [
                ClockMode::Real,
                ClockMode::Virtual(CostModel::native(SystemProfile::container())),
            ] {
                let result = Runner::new()
                    .run(&wasm, JobConfig { np: 2, clock: clock.clone(), ..Default::default() })
                    .unwrap();
                prop_assert!(result.success(), "{clock:?}: {:?}", result.ranks[1].error);
                let reports = &result.ranks[1].reports;
                prop_assert_eq!(
                    reports[0],
                    (0, 0.0),
                    "host pack differs from manual pack: {:?} n={} count={} blocklen={} stride={}",
                    clock, n, count, blocklen, stride
                );
                prop_assert_eq!(reports[1], (1, expected), "checksum vs ground truth: {:?}", clock);
            }
        }
    }

    /// Same differential for `MPI_Type_create_struct`: two int blocks at
    /// random byte displacements, host-packed vs the guest walking the
    /// displacement map by hand.
    #[test]
    fn derived_struct_send_matches_manual_packing(
        bl1 in 1i32..6,
        bl2 in 1i32..6,
        gap_words in 0i32..16,
    ) {
        use hpc_benchmarks::guest::{layout, MpiImports, MPI_INT};
        use mpi_substrate::ClockMode;
        use mpiwasm::{JobConfig, Runner};
        use netsim::{CostModel, SystemProfile};
        use wasm_engine::dsl::*;

        let disp2 = bl1 * 4 + gap_words * 4; // second block's byte offset
        let ext = disp2 + bl2 * 4; // extent in bytes (max segment end)
        let per_instance = bl1 + bl2; // packed ints per instance

        for target_bytes in [4 << 10, 96 << 10] {
            let n = ((target_bytes / (per_instance * 4)).max(1)).min(4096);
            let total = n * per_instance;
            let span_ints = n * ext / 4;

            const TYPE: i32 = 256;
            const BL_ARR: i32 = 384;
            const DISP_ARR: i32 = 400;
            const TY_ARR: i32 = 416;
            let pack_buf = layout::SEND_BUF + (4 << 20);
            let recv_b = layout::RECV_BUF + (8 << 20);

            let mut b = wasm_engine::ModuleBuilder::new();
            b.memory(layout::PAGES, None);
            let mpi = MpiImports::declare(&mut b);
            b.func("_start", vec![], vec![], |f| {
                let rank = Var::new(f, ValType::I32);
                let inst = Var::new(f, ValType::I32);
                let e = Var::new(f, ValType::I32);
                let d = Var::new(f, ValType::I32);
                let mism = Var::new(f, ValType::I32);
                let sum = Var::new(f, ValType::F64);
                let mut stmts = vec![mpi.init()];
                stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
                stmts.push(if_else(
                    rank.get().eq(int(0)),
                    &[
                        for_range(e, int(0), int(span_ints), &[store(
                            int(layout::SEND_BUF) + e.get() * int(4),
                            0,
                            (e.get() * int(7) + int(3)).and(int(0xffff)),
                        )]),
                        store(int(BL_ARR), 0, int(bl1)),
                        store(int(BL_ARR), 4, int(bl2)),
                        store(int(DISP_ARR), 0, int(0)),
                        store(int(DISP_ARR), 4, int(disp2)),
                        store(int(TY_ARR), 0, int(MPI_INT)),
                        store(int(TY_ARR), 4, int(MPI_INT)),
                        call_drop(
                            mpi.type_create_struct,
                            vec![int(2), int(BL_ARR), int(DISP_ARR), int(TY_ARR), int(TYPE)],
                        ),
                        mpi.type_commit(int(TYPE)),
                        mpi.send_dt(
                            int(layout::SEND_BUF),
                            int(n),
                            int(TYPE).load(ValType::I32, 0),
                            int(1),
                            int(1),
                        ),
                        // Manual oracle: walk the two displacement blocks.
                        d.set(int(0)),
                        for_range(inst, int(0), int(n), &[
                            for_range(e, int(0), int(bl1), &[
                                store(
                                    int(pack_buf) + d.get() * int(4),
                                    0,
                                    (int(layout::SEND_BUF)
                                        + inst.get() * int(ext)
                                        + e.get() * int(4))
                                        .load(ValType::I32, 0),
                                ),
                                d.set(d.get() + int(1)),
                            ]),
                            for_range(e, int(0), int(bl2), &[
                                store(
                                    int(pack_buf) + d.get() * int(4),
                                    0,
                                    (int(layout::SEND_BUF)
                                        + inst.get() * int(ext)
                                        + int(disp2)
                                        + e.get() * int(4))
                                        .load(ValType::I32, 0),
                                ),
                                d.set(d.get() + int(1)),
                            ]),
                        ]),
                        mpi.send(int(pack_buf), int(total), MPI_INT, int(1), int(2)),
                        mpi.type_free(int(TYPE)),
                    ],
                    &[
                        mpi.recv(int(layout::RECV_BUF), int(total), MPI_INT, int(0), int(1)),
                        mpi.recv(int(recv_b), int(total), MPI_INT, int(0), int(2)),
                        mism.set(int(0)),
                        sum.set(double(0.0)),
                        for_range(e, int(0), int(total), &[
                            if_then(
                                (int(layout::RECV_BUF) + e.get() * int(4))
                                    .load(ValType::I32, 0)
                                    .ne((int(recv_b) + e.get() * int(4)).load(ValType::I32, 0)),
                                &[mism.set(mism.get() + int(1))],
                            ),
                            sum.set(
                                sum.get()
                                    + (int(layout::RECV_BUF) + e.get() * int(4))
                                        .load(ValType::I32, 0)
                                        .to(ValType::F64),
                            ),
                        ]),
                        mpi.report(int(0), mism.get().to(ValType::F64)),
                        mpi.report(int(1), sum.get()),
                    ],
                ));
                stmts.push(mpi.finalize());
                emit_block(f, &stmts);
            });
            let wasm = encode_module(&b.finish());

            let mut expected = 0.0f64;
            for i in 0..n {
                for el in 0..bl1 {
                    let src = (i * ext) / 4 + el;
                    expected += ((src * 7 + 3) & 0xffff) as f64;
                }
                for el in 0..bl2 {
                    let src = (i * ext + disp2) / 4 + el;
                    expected += ((src * 7 + 3) & 0xffff) as f64;
                }
            }

            for clock in [
                ClockMode::Real,
                ClockMode::Virtual(CostModel::native(SystemProfile::container())),
            ] {
                let result = Runner::new()
                    .run(&wasm, JobConfig { np: 2, clock: clock.clone(), ..Default::default() })
                    .unwrap();
                prop_assert!(result.success(), "{clock:?}: {:?}", result.ranks[1].error);
                let reports = &result.ranks[1].reports;
                prop_assert_eq!(
                    reports[0],
                    (0, 0.0),
                    "host pack differs from manual pack: {:?} n={} bl1={} bl2={} disp2={}",
                    clock, n, bl1, bl2, disp2
                );
                prop_assert_eq!(reports[1], (1, expected), "checksum vs ground truth: {:?}", clock);
            }
        }
    }

    /// Alltoall is an exact transpose for random block contents.
    #[test]
    fn alltoall_transposes(p in 1u32..6, seed in any::<u64>()) {
        let out = run_world(p, move |comm| {
            let p = comm.size();
            let me = comm.rank();
            let block = |from: u32, to: u32| -> u8 {
                (seed as u8).wrapping_add((from * 31 + to * 7) as u8)
            };
            let send: Vec<u8> = (0..p).map(|to| block(me, to)).collect();
            let mut recv = vec![0u8; p as usize];
            comm.alltoall(&send, &mut recv).unwrap();
            (0..p).all(|from| recv[from as usize] == block(from, me))
        });
        prop_assert!(out.into_iter().all(|ok| ok));
    }
}

//! Filesystem isolation (paper §3.4): the guest sees only its preopened
//! virtual directories; escapes are rejected by the embedder, not the OS.
//!
//! ```sh
//! cargo run --release --example sandboxed_io
//! ```

use hpc_benchmarks::guest::{layout, MpiImports};
use mpiwasm::{JobConfig, Runner};
use wasi_layer::host::{oflags, rights};
use wasi_layer::{DirBackend, Preopen, Rights, SharedFs};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

fn main() {
    // A filesystem with one writable and one read-only preopen.
    let fs = SharedFs::new(vec![
        Preopen {
            guest_name: "scratch".into(),
            rights: Rights::READ_WRITE,
            backend: DirBackend::Memory(Default::default()),
        },
        Preopen {
            guest_name: "config".into(),
            rights: Rights::READ_ONLY,
            backend: DirBackend::Memory(Default::default()),
        },
    ]);

    // Guest: try to create a file in each preopen and report the errno.
    let mut b = ModuleBuilder::new();
    b.memory(layout::PAGES, None);
    let mpi = MpiImports::declare(&mut b);
    use ValType::{I32, I64};
    let path_open = b.import_func(
        "wasi_snapshot_preview1",
        "path_open",
        vec![I32, I32, I32, I32, I32, I64, I64, I32, I32],
        vec![I32],
    );
    b.data(256, b"out.txt".to_vec());
    b.func("_start", vec![], vec![], |f| {
        let errno = Var::new(f, ValType::I32);
        let mut stmts = vec![mpi.init()];
        // fd 3 = /scratch (read-write), fd 4 = /config (read-only).
        for (key, dirfd) in [(0, 3), (1, 4)] {
            stmts.extend([
                errno.set(call(
                    path_open,
                    vec![
                        int(dirfd),
                        int(0),
                        int(256),
                        int(7),
                        int(oflags::CREAT as i32),
                        long((rights::FD_READ | rights::FD_WRITE) as i64),
                        long(0),
                        int(0),
                        int(layout::SCRATCH),
                    ],
                    ValType::I32,
                )),
                mpi.report(int(key), errno.get().to(ValType::F64)),
            ]);
        }
        stmts.push(mpi.finalize());
        emit_block(f, &stmts);
    });
    let wasm_bytes = encode_module(&b.finish());

    let result = Runner::new()
        .run(&wasm_bytes, JobConfig { np: 1, fs: fs.clone(), ..Default::default() })
        .expect("run");
    assert!(result.success());
    let reports = &result.ranks[0].reports;
    let scratch_errno = reports[0].1 as i32;
    let config_errno = reports[1].1 as i32;
    println!("create in /scratch (rw): errno {scratch_errno} (0 = success)");
    println!("create in /config  (ro): errno {config_errno} (76 = ENOTCAPABLE)");
    assert_eq!(scratch_errno, 0);
    assert_eq!(config_errno, wasi_layer::Errno::Notcapable.raw());

    // The write landed in the virtual fs — and only there.
    assert!(fs.open(0, "out.txt", false, false, false).is_ok());
    assert!(fs.open(1, "out.txt", false, false, false).is_err());
    println!("sandboxed_io OK: isolation enforced in userspace, per-directory rights honored");
}

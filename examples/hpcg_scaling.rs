//! HPCG through the whole stack: build the CG guest, verify it against
//! the native solver bit-for-bit, then run a weak-scaling sweep under
//! simulated time — the workflow behind the paper's Figures 4f and 5c.
//!
//! ```sh
//! cargo run --release --example hpcg_scaling
//! ```

use hpc_benchmarks::hpcg::{build_guest, run_native, HpcgParams};
use mpi_substrate::{run_world, run_world_with, ClockMode};
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};

fn main() {
    let params = HpcgParams { nx: 8, ny: 8, nz: 8, iters: 8 };

    // 1. Correctness: guest and native produce the same residual history.
    let native = run_world(2, move |comm| run_native(&comm, params));
    let wasm_bytes = build_guest(params);
    let result = Runner::new()
        .run(&wasm_bytes, JobConfig { np: 2, ..Default::default() })
        .expect("run");
    assert!(result.success());
    let guest_rr = result.ranks[0].reports.iter().find(|(k, _)| *k == 1).unwrap().1;
    println!(
        "residual reduction after {} CG iterations: native {:.3e}, wasm {:.3e}",
        params.iters, native[0].1, guest_rr
    );
    assert!((guest_rr - native[0].1).abs() < 1e-9);

    // 2. Weak scaling under the Graviton2 model: executed rank threads
    //    with virtual clocks; MPI time is simulated, semantics are real.
    let profile = SystemProfile::graviton2();
    println!("\nweak scaling on the {} model:", profile.name);
    println!("{:>6} {:>18} {:>14}", "ranks", "virtual time (ms)", "GFLOP/s (comm-only model)");
    for np in [1u32, 2, 4, 8] {
        let mode = ClockMode::Virtual(CostModel::native(profile.clone()));
        let out = run_world_with(np, mode, move |comm| {
            run_native(&comm, params);
            comm.virtual_time_us()
        });
        let t_us = out.into_iter().fold(0.0f64, f64::max);
        let flops = params.flops_per_iter() * params.iters as f64 * np as f64;
        println!(
            "{np:>6} {:>18.3} {:>14.3}",
            t_us / 1e3,
            flops / ((t_us.max(1.0)) * 1e-6) / 1e9 / 1e3
        );
    }
    println!("\nhpcg_scaling OK");
}

//! Quickstart: author a tiny MPI program in the guest DSL, compile it to a
//! real WebAssembly binary, and run it on 4 ranks through the MPIWasm
//! embedder — the end-to-end workflow of the paper's Figure 1.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpc_benchmarks::guest::{layout, MpiImports, MPI_DOUBLE, MPI_SUM};
use mpiwasm::{JobConfig, Runner};
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

fn main() {
    // 1. Author the guest: every rank contributes rank+1; Allreduce sums.
    let mut b = ModuleBuilder::new();
    b.name("quickstart");
    b.memory(layout::PAGES, None);
    let mpi = MpiImports::declare(&mut b);
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let mut stmts = vec![mpi.init()];
        stmts.extend(mpi.load_rank(layout::SCRATCH, rank));
        stmts.extend([
            store(
                int(layout::SEND_BUF),
                0,
                (rank.get() + int(1)).to(ValType::F64),
            ),
            mpi.allreduce(
                int(layout::SEND_BUF),
                int(layout::RECV_BUF),
                int(1),
                MPI_DOUBLE,
                MPI_SUM,
            ),
            mpi.report(int(0), int(layout::RECV_BUF).load(ValType::F64, 0)),
            mpi.finalize(),
        ]);
        emit_block(f, &stmts);
    });
    let wasm_bytes = encode_module(&b.finish());
    println!("built quickstart.wasm: {} bytes", wasm_bytes.len());

    // Optionally persist it so the `mpiwasm` CLI can run the same file:
    //   mpiwasm -np 4 target/quickstart.wasm
    std::fs::write("target/quickstart.wasm", &wasm_bytes).ok();

    // 2. Run it on 4 ranks (threads), exactly like `mpirun -np 4`.
    let runner = Runner::new();
    let result = runner
        .run(&wasm_bytes, JobConfig { np: 4, ..Default::default() })
        .expect("job launches");
    assert!(result.success());

    // 3. Every rank saw the same global sum: 1+2+3+4 = 10.
    for r in &result.ranks {
        let (_, sum) = r.reports[0];
        println!("rank {}: allreduce sum = {sum}", r.rank);
        assert_eq!(sum, 10.0);
    }
    println!("quickstart OK (compiled in {:.2?})", result.compile_time);
}

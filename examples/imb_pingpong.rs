//! PingPong three ways: the same IMB-style guest module executed
//! (a) natively against the MPI substrate,
//! (b) as Wasm through the embedder, and
//! (c) as Wasm under a *simulated* OmniPath-class interconnect —
//! demonstrating how the repository produces the paper's large-system
//! figures on a laptop.
//!
//! ```sh
//! cargo run --release --example imb_pingpong
//! ```

use hpc_benchmarks::imb::{build_guest, run_native, ImbRoutine};
use mpi_substrate::{run_world, ClockMode};
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};

fn main() {
    let sweep: Vec<(u32, u32)> = [1u32, 64, 1024, 65536, 1 << 20]
        .iter()
        .map(|&b| (b, 20))
        .collect();

    // (a) native, real clock on this host.
    let native = {
        let sweep = sweep.clone();
        run_world(2, move |comm| run_native(&comm, ImbRoutine::PingPong, &sweep)).swap_remove(0)
    };

    // (b) the Wasm guest through the embedder, real clock.
    let wasm_bytes = build_guest(ImbRoutine::PingPong, &sweep);
    let runner = Runner::new();
    let real = runner
        .run(&wasm_bytes, JobConfig { np: 2, ..Default::default() })
        .expect("run");
    assert!(real.success());

    // (c) the same module bytes under the SuperMUC-NG interconnect model.
    let profile = SystemProfile::supermuc_ng();
    let simulated = runner
        .run(
            &wasm_bytes,
            JobConfig {
                np: 2,
                clock: ClockMode::Virtual(CostModel::native(profile.clone())),
                wasm_call_overhead_us: 0.1,
                ..Default::default()
            },
        )
        .expect("run");
    assert!(simulated.success());

    println!("PingPong one-way time (us):");
    println!(
        "{:>10} {:>16} {:>16} {:>22}",
        "bytes", "native (host)", "wasm (host)", "wasm (OmniPath sim)"
    );
    for (i, &(bytes, _)) in sweep.iter().enumerate() {
        println!(
            "{:>10} {:>16.3} {:>16.3} {:>22.3}",
            bytes,
            native[i].1,
            real.ranks[0].reports[i].1,
            simulated.ranks[0].reports[i].1,
        );
    }
    println!("\n(the simulated column reproduces the paper's Figure 3a axis: ~1us");
    println!(" small-message latency, bandwidth-bound growth past the eager threshold)");
}

//! A Faasm-style baseline platform (paper §6, Figure 7).
//!
//! Faasm executes MPI applications compiled to Wasm on top of **Faabric**,
//! a gRPC-based distributed messaging library with its own scheduler and
//! state store; it implements a subset of MPI-1 over that substrate. The
//! paper's Figure 7 shows MPIWasm beating Faasm by a geometric-mean 4.28×
//! on PingPong because every Faasm message crosses the messaging broker
//! with serialization and dispatch overhead, while MPIWasm calls the host
//! MPI library directly.
//!
//! This crate reproduces that architecture shape:
//!
//! * [`broker`] — a real in-process message broker: worker (rank) threads
//!   exchange messages exclusively through a central router thread, with
//!   per-message envelope serialization (the protobuf analog). This is the
//!   functional counterpart used by tests and small real runs.
//! * [`model`] — the calibrated cost model used by the Figure 7 harness:
//!   two network hops per message (worker → broker → worker), envelope
//!   encode/decode cost per byte, and a scheduler dispatch latency.

pub mod broker;
pub mod model;

pub use broker::FaasmPlatform;
pub use model::FaasmModel;

//! Cost model of Faasm-style broker-mediated messaging.

use netsim::{SimTime, SystemProfile};

/// Cost parameters for one Faabric-style message:
/// `t = dispatch + 2 * (hop_latency + bytes * hop_byte_cost) + 2 * bytes * codec_cost`.
#[derive(Debug, Clone)]
pub struct FaasmModel {
    pub profile: SystemProfile,
    /// Scheduler/dispatch latency per message, µs (gRPC call setup,
    /// function-queue hand-off).
    pub dispatch_us: f64,
    /// Envelope encode + decode cost per byte, µs (protobuf analog; the
    /// payload is copied into and out of the envelope).
    pub codec_us_per_byte: f64,
}

impl FaasmModel {
    /// Defaults calibrated to the paper's Figure 7 shape: ~4× PingPong
    /// latency at small messages, converging (but still behind) at large
    /// ones.
    pub fn new(profile: SystemProfile) -> FaasmModel {
        FaasmModel {
            profile,
            dispatch_us: 2.8,
            codec_us_per_byte: 0.000_12, // two extra copies + varint framing
        }
    }

    /// One message through the broker: two hops plus codec cost.
    pub fn message_time(&self, bytes: usize) -> SimTime {
        let hop = self.profile.p2p_time(0, 1, bytes);
        let codec = SimTime::micros(2.0 * bytes as f64 * self.codec_us_per_byte);
        SimTime::micros(self.dispatch_us) + hop * 2.0 + codec
    }

    /// PingPong half-round-trip time (what IMB reports), as Figure 7 plots.
    pub fn pingpong(&self, bytes: usize) -> SimTime {
        // One message each way per iteration; reported time is per
        // direction.
        self.message_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::CostModel;

    #[test]
    fn faasm_is_slower_than_mpiwasm_at_all_sizes() {
        let profile = SystemProfile::supermuc_ng();
        let faasm = FaasmModel::new(profile.clone());
        let mpiwasm = CostModel::wasm(profile, 0.15);
        for log in 0..=22 {
            let bytes = 1usize << log;
            let f = faasm.pingpong(bytes).as_micros();
            let m = mpiwasm.pingpong(bytes).as_micros();
            assert!(f > m, "faasm {f}us <= mpiwasm {m}us at {bytes}B");
        }
    }

    #[test]
    fn geometric_mean_speedup_matches_paper_ballpark() {
        let profile = SystemProfile::supermuc_ng();
        let faasm = FaasmModel::new(profile.clone());
        let mpiwasm = CostModel::wasm(profile, 0.15);
        let mut log_sum = 0.0;
        let mut count = 0;
        for log in 0..=22 {
            let bytes = 1usize << log;
            let ratio =
                faasm.pingpong(bytes).as_micros() / mpiwasm.pingpong(bytes).as_micros();
            log_sum += ratio.ln();
            count += 1;
        }
        let gm = (log_sum / count as f64).exp();
        // Paper: 4.28x. Accept the band 2.5-7x for the reproduction.
        assert!((2.5..7.0).contains(&gm), "GM speedup {gm}");
    }

    #[test]
    fn gap_persists_across_the_size_sweep() {
        // Figure 7: Faasm stays behind MPIWasm over the whole sweep — the
        // double hop dominates at small sizes, the extra copies and the
        // second bandwidth crossing at large ones.
        let profile = SystemProfile::supermuc_ng();
        let faasm = FaasmModel::new(profile.clone());
        let native = CostModel::native(profile);
        for log in [3u32, 10, 16, 22] {
            let bytes = 1usize << log;
            let ratio = faasm.pingpong(bytes).as_micros() / native.pingpong(bytes).as_micros();
            assert!(ratio > 2.0, "ratio {ratio} at {bytes}B");
        }
    }
}

//! A real broker-mediated messaging platform: the functional Faasm analog.
//!
//! Worker (rank) threads never talk to each other directly; every message
//! is serialized into an envelope, sent to the router thread, routed, and
//! deserialized on the receiving side — the structural difference from
//! MPIWasm that Figure 7 measures. The platform exposes the MPI-1-subset
//! send/recv that Faasm's MPI layer provides (no user-defined
//! communicators — the paper notes Faasm cannot run the full IMB suite for
//! exactly this reason).

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Serialized message envelope: the protobuf stand-in. Header: from, to,
/// tag, payload length; payload copied in (encode) and out (decode).
fn encode(from: u32, to: u32, tag: i32, payload: &[u8]) -> Vec<u8> {
    let mut env = Vec::with_capacity(16 + payload.len());
    env.extend_from_slice(&from.to_le_bytes());
    env.extend_from_slice(&to.to_le_bytes());
    env.extend_from_slice(&tag.to_le_bytes());
    env.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    env.extend_from_slice(payload);
    env
}

fn decode(env: &[u8]) -> (u32, u32, i32, Vec<u8>) {
    let from = u32::from_le_bytes(env[0..4].try_into().unwrap());
    let to = u32::from_le_bytes(env[4..8].try_into().unwrap());
    let tag = i32::from_le_bytes(env[8..12].try_into().unwrap());
    let len = u32::from_le_bytes(env[12..16].try_into().unwrap()) as usize;
    (from, to, tag, env[16..16 + len].to_vec())
}

/// Handle each worker uses to communicate through the broker.
pub struct WorkerComm {
    rank: u32,
    size: u32,
    to_broker: Sender<Vec<u8>>,
    inbox: Receiver<Vec<u8>>,
    /// Messages received but not yet matched (tag mismatch).
    stash: Mutex<Vec<(u32, i32, Vec<u8>)>>,
}

impl WorkerComm {
    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn size(&self) -> u32 {
        self.size
    }

    /// Send `payload` to `dest` via the broker.
    pub fn send(&self, payload: &[u8], dest: u32, tag: i32) {
        let env = encode(self.rank, dest, tag, payload);
        self.to_broker.send(env).expect("broker alive");
    }

    /// Blocking receive from a specific source and tag.
    pub fn recv(&self, src: u32, tag: i32) -> Vec<u8> {
        // Check the stash first.
        {
            let mut stash = self.stash.lock();
            if let Some(pos) = stash.iter().position(|(f, t, _)| *f == src && *t == tag) {
                return stash.remove(pos).2;
            }
        }
        loop {
            let env = self.inbox.recv().expect("broker alive");
            let (from, _to, got_tag, payload) = decode(&env);
            if from == src && got_tag == tag {
                return payload;
            }
            self.stash.lock().push((from, got_tag, payload));
            let mut stash = self.stash.lock();
            if let Some(pos) = stash.iter().position(|(f, t, _)| *f == src && *t == tag) {
                return stash.remove(pos).2;
            }
        }
    }
}

/// The platform: spawns the router and `size` workers.
pub struct FaasmPlatform;

impl FaasmPlatform {
    /// Run `size` workers through a central broker; returns per-worker
    /// results in rank order (the `run_world` analog).
    pub fn run<R, F>(size: u32, body: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Arc<WorkerComm>) -> R + Send + Sync + 'static,
    {
        let (to_broker, broker_rx) = unbounded::<Vec<u8>>();
        let mut inboxes = Vec::new();
        let mut worker_handles = Vec::new();
        let body = Arc::new(body);

        let mut senders = Vec::new();
        for _ in 0..size {
            let (tx, rx) = unbounded::<Vec<u8>>();
            senders.push(tx);
            inboxes.push(rx);
        }

        // Router thread: every message takes this extra hop.
        let router = std::thread::spawn(move || {
            while let Ok(env) = broker_rx.recv() {
                let to = u32::from_le_bytes(env[4..8].try_into().unwrap());
                if senders[to as usize].send(env).is_err() {
                    break;
                }
            }
        });

        for (rank, inbox) in inboxes.into_iter().enumerate() {
            let comm = Arc::new(WorkerComm {
                rank: rank as u32,
                size,
                to_broker: to_broker.clone(),
                inbox,
                stash: Mutex::new(Vec::new()),
            });
            let body = Arc::clone(&body);
            worker_handles.push(std::thread::spawn(move || body(comm)));
        }
        drop(to_broker);

        let results: Vec<R> =
            worker_handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        router.join().expect("router panicked");
        results
    }

    /// A wall-clock PingPong on the broker platform: returns mean one-way
    /// time in µs over `iters` iterations at `bytes` payload.
    pub fn pingpong_us(bytes: usize, iters: u32) -> f64 {
        let out = Self::run(2, move |comm| {
            let payload = vec![7u8; bytes];
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                if comm.rank() == 0 {
                    comm.send(&payload, 1, 0);
                    let _ = comm.recv(1, 0);
                } else {
                    let got = comm.recv(0, 0);
                    comm.send(&got, 0, 0);
                }
            }
            t0.elapsed().as_secs_f64() * 1e6 / (iters as f64 * 2.0)
        });
        out[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let env = encode(3, 5, 42, b"payload");
        let (from, to, tag, payload) = decode(&env);
        assert_eq!((from, to, tag), (3, 5, 42));
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn messages_route_through_broker() {
        let out = FaasmPlatform::run(3, |comm| {
            if comm.rank() == 0 {
                comm.send(b"to-1", 1, 9);
                comm.send(b"to-2", 2, 9);
                0
            } else {
                let got = comm.recv(0, 9);
                got.len() as u32 + comm.rank()
            }
        });
        assert_eq!(out, vec![0, 5, 6]);
    }

    #[test]
    fn tag_mismatch_is_stashed_not_lost() {
        let out = FaasmPlatform::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(b"first-tag-1", 1, 1);
                comm.send(b"then-tag-2", 1, 2);
                Vec::new()
            } else {
                // Receive in reverse tag order.
                let two = comm.recv(0, 2);
                let one = comm.recv(0, 1);
                vec![two, one]
            }
        });
        assert_eq!(out[1][0], b"then-tag-2");
        assert_eq!(out[1][1], b"first-tag-1");
    }

    #[test]
    fn pingpong_completes_and_reports_positive_time() {
        let t = FaasmPlatform::pingpong_us(1024, 20);
        assert!(t > 0.0);
    }
}

//! Integration tests for the `mpiwasm` CLI binary (the paper's Listing 4
//! interface).

use std::path::PathBuf;
use std::process::Command;

use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

fn mpiwasm_bin() -> &'static str {
    env!("CARGO_BIN_EXE_mpiwasm")
}

/// A self-contained guest: prints "rank <r> of <n>\n" on every rank and
/// exits with code 0.
fn build_hello() -> Vec<u8> {
    use ValType::I32;
    let mut b = ModuleBuilder::new();
    b.name("cli-hello");
    b.memory(4, None);
    let init = b.import_func("env", "MPI_Init", vec![I32; 2], vec![I32]);
    let comm_rank = b.import_func("env", "MPI_Comm_rank", vec![I32; 2], vec![I32]);
    let comm_size = b.import_func("env", "MPI_Comm_size", vec![I32; 2], vec![I32]);
    let finalize = b.import_func("env", "MPI_Finalize", vec![], vec![I32]);
    let fd_write =
        b.import_func("wasi_snapshot_preview1", "fd_write", vec![I32; 4], vec![I32]);
    b.data(512, b"rank ? of ?\n".to_vec());
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let size = Var::new(f, ValType::I32);
        emit_block(f, &[
            call_drop(init, vec![int(0), int(0)]),
            call_drop(comm_rank, vec![int(0), int(16)]),
            rank.set(int(16).load(ValType::I32, 0)),
            call_drop(comm_size, vec![int(0), int(16)]),
            size.set(int(16).load(ValType::I32, 0)),
            // Patch the digits into the template (single digits suffice).
            store_u8(int(512), 5, int('0' as i32) + rank.get()),
            store_u8(int(512), 10, int('0' as i32) + size.get()),
            store(int(64), 0, int(512)),
            store(int(64), 4, int(12)),
            call_drop(fd_write, vec![int(1), int(64), int(1), int(32)]),
            call_drop(finalize, vec![]),
        ]);
    });
    encode_module(&b.finish())
}

fn write_module(name: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mpiwasm-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

#[test]
fn runs_hello_on_three_ranks() {
    let module = write_module("hello.wasm", &build_hello());
    let out = Command::new(mpiwasm_bin())
        .args(["-np", "3", "-quiet"])
        .arg(&module)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_file(&module).ok();
}

#[test]
fn echoes_guest_stdout_by_default() {
    let module = write_module("echo.wasm", &build_hello());
    let out = Command::new(mpiwasm_bin()).args(["-np", "2"]).arg(&module).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rank 0 of 2"), "{stdout}");
    assert!(stdout.contains("rank 1 of 2"), "{stdout}");
    std::fs::remove_file(&module).ok();
}

#[test]
fn wat_flag_prints_module_text() {
    let module = write_module("wat.wasm", &build_hello());
    let out = Command::new(mpiwasm_bin()).arg("-wat").arg(&module).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(import \"env\" \"MPI_Init\""), "{stdout}");
    assert!(stdout.contains("(export \"_start\""), "{stdout}");
    std::fs::remove_file(&module).ok();
}

#[test]
fn cache_flag_reports_hit_on_second_run() {
    let module = write_module("cached.wasm", &build_hello());
    let cache_dir =
        std::env::temp_dir().join(format!("mpiwasm-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = || {
        Command::new(mpiwasm_bin())
            .args(["-np", "1", "-cache"])
            .arg(&cache_dir)
            .arg(&module)
            .output()
            .unwrap()
    };
    let first = run();
    assert!(first.status.success());
    assert!(!String::from_utf8_lossy(&first.stderr).contains("cache hit"));
    let second = run();
    assert!(second.status.success());
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("cache hit"),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    std::fs::remove_file(&module).ok();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A guest with real p2p traffic: rank 0 sends 64 bytes to rank 1.
fn build_pingpong() -> Vec<u8> {
    use ValType::I32;
    let mut b = ModuleBuilder::new();
    b.name("cli-pingpong");
    b.memory(4, None);
    let init = b.import_func("env", "MPI_Init", vec![I32; 2], vec![I32]);
    let comm_rank = b.import_func("env", "MPI_Comm_rank", vec![I32; 2], vec![I32]);
    let send = b.import_func("env", "MPI_Send", vec![I32; 6], vec![I32]);
    let recv = b.import_func("env", "MPI_Recv", vec![I32; 7], vec![I32]);
    let finalize = b.import_func("env", "MPI_Finalize", vec![], vec![I32]);
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        emit_block(f, &[
            call_drop(init, vec![int(0), int(0)]),
            call_drop(comm_rank, vec![int(0), int(16)]),
            rank.set(int(16).load(ValType::I32, 0)),
            // MPI_BYTE handle is 0, as is COMM_WORLD; ignore status.
            if_else(
                rank.get().eq(int(0)),
                &[call_drop(send, vec![int(1024), int(64), int(0), int(1), int(9), int(0)])],
                &[call_drop(
                    recv,
                    vec![int(2048), int(64), int(0), int(0), int(9), int(0), int(128)],
                )],
            ),
            call_drop(finalize, vec![]),
        ]);
    });
    encode_module(&b.finish())
}

#[test]
fn trace_flag_writes_chrome_json_and_metrics_prints_table() {
    let module = write_module("traced.wasm", &build_pingpong());
    for clock in ["real", "virtual"] {
        let trace_path = std::env::temp_dir()
            .join(format!("mpiwasm-cli-trace-{}-{clock}.json", std::process::id()));
        let out = Command::new(mpiwasm_bin())
            .args(["-np", "2", "-quiet", "--clock", clock, "--metrics", "--trace"])
            .arg(&trace_path)
            .arg(&module)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "clock {clock} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = std::fs::read_to_string(&trace_path).unwrap();
        assert!(doc.contains("\"traceEvents\": ["), "{clock}: {doc}");
        assert!(doc.contains("\"name\":\"rank 0\""), "{clock}: missing rank track");
        assert!(doc.contains("\"name\":\"rank 1\""), "{clock}: missing rank track");
        assert!(doc.contains("\"ph\":\"s\""), "{clock}: no flow start");
        assert!(doc.contains("\"ph\":\"f\""), "{clock}: no flow finish");
        assert!(doc.contains(&format!("\"clock\": \"{clock}\"")));

        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("mpi.eager_messages"), "{clock}: {stdout}");
        assert!(stdout.contains("trace.events"), "{clock}: {stdout}");
        std::fs::remove_file(&trace_path).ok();
    }
    std::fs::remove_file(&module).ok();
}

#[test]
fn bad_usage_exits_2() {
    let out = Command::new(mpiwasm_bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = Command::new(mpiwasm_bin()).args(["-np", "zero", "x.wasm"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_module_exits_1() {
    let out = Command::new(mpiwasm_bin()).arg("/nonexistent/app.wasm").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn trapping_guest_exits_nonzero_with_rank_report() {
    // A guest that hits unreachable on rank 0.
    let mut b = ModuleBuilder::new();
    b.memory(1, None);
    b.func("_start", vec![], vec![], |f| {
        f.unreachable();
    });
    let module = write_module("trap.wasm", &encode_module(&b.finish()));
    let out = Command::new(mpiwasm_bin()).args(["-np", "1", "-quiet"]).arg(&module).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("trapped"));
    std::fs::remove_file(&module).ok();
}

#[test]
fn host_dir_preopen_via_d_flag() {
    // Guest writes a file into the preopened directory.
    use ValType::{I32, I64};
    let mut b = ModuleBuilder::new();
    b.memory(4, None);
    let path_open = b.import_func(
        "wasi_snapshot_preview1",
        "path_open",
        vec![I32, I32, I32, I32, I32, I64, I64, I32, I32],
        vec![I32],
    );
    let fd_write =
        b.import_func("wasi_snapshot_preview1", "fd_write", vec![I32; 4], vec![I32]);
    b.data(512, b"out.txt".to_vec());
    b.data(600, b"written-from-wasm".to_vec());
    b.func("_start", vec![], vec![], |f| {
        emit_block(f, &[
            call_drop(path_open, vec![
                int(3), int(0), int(512), int(7),
                int(1 /* CREAT */),
                long(1 << 6 | 1 << 1), long(0), int(0), int(16),
            ]),
            store(int(64), 0, int(600)),
            store(int(64), 4, int(17)),
            call_drop(fd_write, vec![
                int(16).load(ValType::I32, 0), int(64), int(1), int(32),
            ]),
        ]);
    });
    let module = write_module("io.wasm", &encode_module(&b.finish()));
    let dir = std::env::temp_dir().join(format!("mpiwasm-cli-dir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(mpiwasm_bin())
        .args(["-np", "1", "-quiet", "-d"])
        .arg(&dir)
        .arg(&module)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let contents = std::fs::read_to_string(dir.join("out.txt")).unwrap();
    assert_eq!(contents, "written-from-wasm");
    std::fs::remove_file(&module).ok();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Runner-level fault tolerance: guest resource limits (fuel, deadline),
//! fault-plan injection, and the hang watchdog, all through the public
//! `JobConfig` surface.
//!
//! The invariant under test is the containment chain: a runaway or
//! crashed guest becomes a *failed rank* (never a hung job), its peers
//! observe `MPI_ERR_PROC_FAILED` (code 75) through the guest ABI with
//! errors-return semantics, and the diagnosis surfaces on `JobResult`.

use std::time::Duration;

use mpi_substrate::WatchdogConfig;
use mpiwasm::{handles, JobConfig, Runner};
use netsim::FaultPlan;
use wasm_engine::dsl::*;
use wasm_engine::types::ValType;
use wasm_engine::{encode_module, ModuleBuilder};

const PROC_FAILED: i32 = 75; // MPI_ERR_PROC_FAILED

/// Rank 1 spins forever; every other rank blocks in `MPI_Recv` from rank
/// 1 and exits with the receive's return code.
fn spin_vs_recv_guest() -> Vec<u8> {
    use ValType::I32;
    let mut b = ModuleBuilder::new();
    b.name("spin-vs-recv");
    b.memory(4, None);
    let init = b.import_func("env", "MPI_Init", vec![I32; 2], vec![I32]);
    let comm_rank = b.import_func("env", "MPI_Comm_rank", vec![I32; 2], vec![I32]);
    let recv = b.import_func("env", "MPI_Recv", vec![I32; 7], vec![I32]);
    let proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit", vec![I32], vec![]);
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let code = Var::new(f, ValType::I32);
        emit_block(f, &[
            call_drop(init, vec![int(0), int(0)]),
            call_drop(comm_rank, vec![int(0), int(16)]),
            rank.set(int(16).load(ValType::I32, 0)),
            if_then(rank.get().eq(int(1)), &[
                while_loop(int(1), &[]), // runaway guest
            ]),
            code.set(call(
                recv,
                vec![int(64), int(4), int(handles::MPI_BYTE), int(1), int(0), int(0), int(0)],
                ValType::I32,
            )),
            call_stmt(proc_exit, vec![code.get()]),
        ]);
    });
    encode_module(&b.finish())
}

/// Every rank runs two barriers and exits with their OR-ed return codes.
fn two_barriers_guest() -> Vec<u8> {
    use ValType::I32;
    let mut b = ModuleBuilder::new();
    b.name("two-barriers");
    b.memory(1, None);
    let init = b.import_func("env", "MPI_Init", vec![I32; 2], vec![I32]);
    let barrier = b.import_func("env", "MPI_Barrier", vec![I32], vec![I32]);
    let proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit", vec![I32], vec![]);
    b.func("_start", vec![], vec![], |f| {
        let code = Var::new(f, ValType::I32);
        emit_block(f, &[
            call_drop(init, vec![int(0), int(0)]),
            code.set(call(barrier, vec![int(0)], ValType::I32)),
            code.set(code.get().or(call(barrier, vec![int(0)], ValType::I32))),
            call_stmt(proc_exit, vec![code.get()]),
        ]);
    });
    encode_module(&b.finish())
}

/// Rank 0 blocks in a receive that can never be satisfied; rank 1 exits
/// immediately without sending.
fn starved_recv_guest() -> Vec<u8> {
    use ValType::I32;
    let mut b = ModuleBuilder::new();
    b.name("starved-recv");
    b.memory(4, None);
    let init = b.import_func("env", "MPI_Init", vec![I32; 2], vec![I32]);
    let comm_rank = b.import_func("env", "MPI_Comm_rank", vec![I32; 2], vec![I32]);
    let recv = b.import_func("env", "MPI_Recv", vec![I32; 7], vec![I32]);
    let proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit", vec![I32], vec![]);
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let code = Var::new(f, ValType::I32);
        emit_block(f, &[
            call_drop(init, vec![int(0), int(0)]),
            call_drop(comm_rank, vec![int(0), int(16)]),
            rank.set(int(16).load(ValType::I32, 0)),
            if_then(rank.get().eq(int(0)), &[
                code.set(call(
                    recv,
                    vec![int(64), int(4), int(handles::MPI_BYTE), int(1), int(0), int(0), int(0)],
                    ValType::I32,
                )),
                call_stmt(proc_exit, vec![code.get()]),
            ]),
            call_stmt(proc_exit, vec![int(0)]),
        ]);
    });
    encode_module(&b.finish())
}

/// Rank 0 posts an `Irecv` from rank 1 (which the fault plan kills) and
/// drives it with `MPI_Waitall`: the call must return code 75 with
/// errors-return semantics, null the guest's request handle, AND write
/// MPI_ERR_PROC_FAILED into the failed request's status MPI_ERROR word
/// (offset +8), as the Waitall contract pins. Exits with 75 when all
/// three hold.
fn waitall_after_crash_guest() -> Vec<u8> {
    use ValType::I32;
    let mut b = ModuleBuilder::new();
    b.name("waitall-after-crash");
    b.memory(4, None);
    let init = b.import_func("env", "MPI_Init", vec![I32; 2], vec![I32]);
    let comm_rank = b.import_func("env", "MPI_Comm_rank", vec![I32; 2], vec![I32]);
    let irecv = b.import_func("env", "MPI_Irecv", vec![I32; 7], vec![I32]);
    let waitall = b.import_func("env", "MPI_Waitall", vec![I32; 3], vec![I32]);
    let barrier = b.import_func("env", "MPI_Barrier", vec![I32], vec![I32]);
    let proc_exit = b.import_func("wasi_snapshot_preview1", "proc_exit", vec![I32], vec![]);
    // Request handle word lives at 128; receive buffer at 64.
    b.func("_start", vec![], vec![], |f| {
        let rank = Var::new(f, ValType::I32);
        let code = Var::new(f, ValType::I32);
        emit_block(f, &[
            call_drop(init, vec![int(0), int(0)]),
            call_drop(comm_rank, vec![int(0), int(16)]),
            rank.set(int(16).load(ValType::I32, 0)),
            if_then(rank.get().eq(int(1)), &[
                // Dies at this barrier's entry (fault plan, call 4 after
                // the runner's 3-call COMM_SELF split). Rank 0 never
                // barriers, so the crash MUST land here or the pair
                // deadlocks.
                call_drop(barrier, vec![int(0)]),
                call_stmt(proc_exit, vec![int(0)]),
            ]),
            call_drop(irecv, vec![
                int(64), int(4), int(handles::MPI_BYTE), int(1), int(0), int(0), int(128),
            ]),
            // Real status array at 192 (not MPI_STATUSES_IGNORE): the
            // failed request's MPI_ERROR word must be readable back.
            code.set(call(waitall, vec![int(1), int(128), int(192)], ValType::I32)),
            // The failed handle must have been rewritten to
            // MPI_REQUEST_NULL; report a distinct code if it was not.
            if_then(int(128).load(ValType::I32, 0).ne(int(handles::MPI_REQUEST_NULL)), &[
                call_stmt(proc_exit, vec![int(99)]),
            ]),
            // Status MPI_ERROR word (offset +8) carries the per-request
            // failure code, not a hardcoded success.
            if_then(int(192).load(ValType::I32, 8).ne(int(75)), &[
                call_stmt(proc_exit, vec![int(98)]),
            ]),
            call_stmt(proc_exit, vec![code.get()]),
        ]);
    });
    encode_module(&b.finish())
}

#[test]
fn fuel_exhaustion_becomes_a_contained_rank_failure() {
    let result = Runner::new()
        .run(
            &spin_vs_recv_guest(),
            JobConfig { np: 2, max_fuel: Some(5_000_000), ..Default::default() },
        )
        .unwrap();
    let spinner = &result.ranks[1];
    assert_eq!(spinner.exit_code, -1);
    assert!(
        spinner.error.as_deref().unwrap_or("").contains("fuel"),
        "{:?}",
        spinner.error
    );
    // The blocked peer observes MPI_ERR_PROC_FAILED, not a hang.
    assert_eq!(result.ranks[0].exit_code, PROC_FAILED);
    assert!(result.ranks[0].error.is_none());
}

#[test]
fn deadline_interrupts_a_runaway_guest() {
    let result = Runner::new()
        .run(
            &spin_vs_recv_guest(),
            JobConfig {
                np: 2,
                deadline: Some(Duration::from_millis(300)),
                ..Default::default()
            },
        )
        .unwrap();
    let spinner = &result.ranks[1];
    assert!(
        spinner.error.as_deref().unwrap_or("").contains("interrupted"),
        "{:?}",
        spinner.error
    );
    // The peer either unblocked with code 75 or was itself interrupted
    // at a guard point after the failure propagated — contained either way.
    let peer = &result.ranks[0];
    assert!(
        peer.exit_code == PROC_FAILED || peer.error.is_some(),
        "rank 0 must not report clean success: {peer:?}"
    );
}

#[test]
fn injected_crash_surfaces_as_proc_failed_on_every_rank() {
    let result = Runner::new()
        .run(
            &two_barriers_guest(),
            JobConfig {
                np: 2,
                // Calls 1-3 are the runner's COMM_SELF split (allgather +
                // ring isend/recv at np=2); call 4 is the guest's first
                // barrier.
                fault: Some(FaultPlan::parse("seed=5;crash@call:rank=1,call=4").unwrap()),
                ..Default::default()
            },
        )
        .unwrap();
    // Both guests exit cleanly *with* the ULFM error code: the failure is
    // data, not a trap (MPI_ERRORS_RETURN semantics).
    for r in &result.ranks {
        assert_eq!(r.exit_code, PROC_FAILED, "rank {}: {:?}", r.rank, r.error);
        assert!(r.error.is_none(), "rank {}: {:?}", r.rank, r.error);
    }
    assert!(!result.success());
}

#[test]
fn waitall_nulls_handles_and_returns_proc_failed_after_crash() {
    let result = Runner::new()
        .run(
            &waitall_after_crash_guest(),
            JobConfig {
                np: 2,
                // Past the runner's 3-call COMM_SELF split: rank 1 dies
                // at its first (and only) guest barrier.
                fault: Some(FaultPlan::parse("seed=6;crash@call:rank=1,call=4").unwrap()),
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(
        result.ranks[0].exit_code, PROC_FAILED,
        "waitall must return 75 and null the handle: {:?}",
        result.ranks[0]
    );
}

#[test]
fn watchdog_report_lands_on_the_job_result() {
    let result = Runner::new()
        .run(
            &starved_recv_guest(),
            JobConfig {
                np: 2,
                watchdog: Some(WatchdogConfig::wall(Duration::from_millis(250))),
                ..Default::default()
            },
        )
        .unwrap();
    let report = result.watchdog_report.as_deref().expect("watchdog must fire");
    assert!(report.contains("rank 0"), "{report}");
    assert!(!result.success());
}

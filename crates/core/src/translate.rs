//! The embedder's two translation layers (paper §3.5, §3.6) plus the
//! instrumentation of §4.6.
//!
//! **Address translation (§3.5).** The guest supplies 32-bit offsets into
//! its linear memory; the host MPI library wants host pointers. Because
//! the instance's linear memory is one contiguous host allocation, the
//! translation is `host_ptr = base + offset`, rendered in safe Rust as a
//! bounds-checked subslice — a zero-copy view, no bytes are moved. The
//! same view is handed to the MPI substrate, which reads/writes guest
//! memory directly.
//!
//! **Datatype translation (§3.6).** MPI libraries do not share an ABI;
//! guests therefore see every MPI object as an opaque 32-bit integer
//! handle. This module owns the handle spaces for datatypes, ops, and
//! communicators and converts between them and the host library's types.
//!
//! **Instrumentation (§4.6).** When enabled, each translation on the send
//! path is timed with the host's monotonic clock and accumulated per
//! datatype and message-size bucket; the Figure 6 harness reads these
//! counters back.

use mpi_substrate::{Datatype, MpiError, ReduceOp};

/// Guest-visible handle constants. These are the values our `mpi.h`
/// equivalent (the DSL guest library in crate `hpc-benchmarks`) uses.
pub mod handles {
    pub const MPI_COMM_WORLD: i32 = 0;
    pub const MPI_COMM_SELF: i32 = 1;
    /// First handle available for `MPI_Comm_split`/`MPI_Comm_dup` results.
    pub const FIRST_DYNAMIC_COMM: i32 = 2;

    pub const MPI_BYTE: i32 = 0;
    pub const MPI_CHAR: i32 = 1;
    pub const MPI_INT: i32 = 2;
    pub const MPI_UNSIGNED: i32 = 3;
    pub const MPI_LONG: i32 = 4;
    pub const MPI_UNSIGNED_LONG: i32 = 5;
    pub const MPI_FLOAT: i32 = 6;
    pub const MPI_DOUBLE: i32 = 7;
    /// First handle assigned to guest-constructed derived datatypes
    /// (`MPI_Type_contiguous`/`Type_vector`/`Type_create_struct`); handles
    /// below this are the predefined primitives above.
    pub const FIRST_DERIVED_DATATYPE: i32 = 8;
    /// `MPI_Type_free` writes this into the guest's handle word. Negative
    /// (and distinct from `MPI_UNDEFINED`) so it can never collide with a
    /// primitive or derived handle.
    pub const MPI_DATATYPE_NULL: i32 = -2;

    /// Null group handle (`MPI_GROUP_NULL`); real group handles are ≥ 1.
    pub const MPI_GROUP_NULL: i32 = 0;
    /// `MPI_Comm_create` result for callers outside the group
    /// (`MPI_COMM_NULL`). Negative so it can never collide with a real
    /// communicator handle.
    pub const MPI_COMM_NULL: i32 = -1;

    pub const MPI_SUM: i32 = 0;
    pub const MPI_PROD: i32 = 1;
    pub const MPI_MAX: i32 = 2;
    pub const MPI_MIN: i32 = 3;
    pub const MPI_BAND: i32 = 4;
    pub const MPI_BOR: i32 = 5;
    pub const MPI_BXOR: i32 = 6;
    pub const MPI_LAND: i32 = 7;
    pub const MPI_LOR: i32 = 8;

    pub const MPI_ANY_SOURCE: i32 = -1;
    pub const MPI_ANY_TAG: i32 = -1;
    /// Null status pointer (`MPI_STATUS_IGNORE`).
    pub const MPI_STATUS_IGNORE: i32 = 0;
    /// Null statuses-array pointer (`MPI_STATUSES_IGNORE`).
    pub const MPI_STATUSES_IGNORE: i32 = 0;
    /// Null request handle (`MPI_REQUEST_NULL`).
    pub const MPI_REQUEST_NULL: i32 = 0;
    /// Null matched-probe message handle (`MPI_MESSAGE_NULL`).
    pub const MPI_MESSAGE_NULL: i32 = 0;
    /// `MPI_UNDEFINED`: no active request in a completion set.
    pub const MPI_UNDEFINED: i32 = -1;
    pub const MPI_SUCCESS: i32 = 0;

    /// Thread levels for `MPI_Init_thread`/`MPI_Query_thread`, in the
    /// standard order (`SINGLE < FUNNELED < SERIALIZED < MULTIPLE`).
    pub const MPI_THREAD_SINGLE: i32 = 0;
    pub const MPI_THREAD_FUNNELED: i32 = 1;
    pub const MPI_THREAD_SERIALIZED: i32 = 2;
    pub const MPI_THREAD_MULTIPLE: i32 = 3;
}

/// Translate a guest datatype handle to the host datatype.
#[inline]
pub fn datatype_from_handle(h: i32) -> Result<Datatype, MpiError> {
    Ok(match h {
        handles::MPI_BYTE => Datatype::Byte,
        handles::MPI_CHAR => Datatype::Char,
        handles::MPI_INT => Datatype::Int,
        handles::MPI_UNSIGNED => Datatype::Unsigned,
        handles::MPI_LONG => Datatype::Long,
        handles::MPI_UNSIGNED_LONG => Datatype::UnsignedLong,
        handles::MPI_FLOAT => Datatype::Float,
        handles::MPI_DOUBLE => Datatype::Double,
        other => return Err(MpiError::InvalidDatatype(other as u32)),
    })
}

/// Translate a guest op handle to the host reduction operator.
#[inline]
pub fn op_from_handle(h: i32) -> Result<ReduceOp, MpiError> {
    Ok(match h {
        handles::MPI_SUM => ReduceOp::Sum,
        handles::MPI_PROD => ReduceOp::Prod,
        handles::MPI_MAX => ReduceOp::Max,
        handles::MPI_MIN => ReduceOp::Min,
        handles::MPI_BAND => ReduceOp::Band,
        handles::MPI_BOR => ReduceOp::Bor,
        handles::MPI_BXOR => ReduceOp::Bxor,
        handles::MPI_LAND => ReduceOp::Land,
        handles::MPI_LOR => ReduceOp::Lor,
        other => return Err(MpiError::InvalidOp(other as u32)),
    })
}

/// Byte length of `count` elements of the datatype behind handle `dt`.
#[inline]
pub fn byte_len(count: i32, dt: Datatype) -> Result<u32, MpiError> {
    if count < 0 {
        return Err(MpiError::BadCount { bytes: count as isize as usize, type_size: dt.size() });
    }
    Ok(count as u32 * dt.size() as u32)
}

// --- derived datatypes ---------------------------------------------------

/// One contiguous byte run inside a derived datatype's extent.
///
/// `elem_size` is the primitive element size the run is made of — kept per
/// segment (not per type) so `MPI_Get_elements` can count basic elements
/// across struct types mixing primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeSegment {
    pub offset: u32,
    pub len: u32,
    pub elem_size: u32,
}

/// A guest-constructed derived datatype, canonicalized to a *segment
/// list*: the byte runs (in typemap order) one element occupies inside
/// its extent. Composition (contiguous-of-vector, struct-of-struct)
/// flattens at construction time, so the send/receive paths only ever
/// walk one flat list — pack-on-send gathers the runs into a contiguous
/// wire payload, unpack-on-recv scatters them back. The wire format is
/// therefore identical to a manually packed send, which is what the
/// differential proptests pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedDatatype {
    /// Byte runs of one element, in typemap (pack) order, adjacent runs
    /// coalesced.
    pub segments: Vec<TypeSegment>,
    /// Packed (wire) bytes per element: the sum of segment lengths.
    pub packed_size: u32,
    /// Stride between consecutive elements of this type in guest memory.
    pub extent: u32,
    /// `MPI_Type_commit` has run; communication requires it.
    pub committed: bool,
}

/// Construction-size guard: a single derived type may not flatten to more
/// than this many segments (a `Type_vector(10^9, …)` must not OOM the
/// host).
const MAX_TYPE_SEGMENTS: usize = 1 << 20;

impl DerivedDatatype {
    /// The segment-list view of a primitive datatype (the composition
    /// leaf).
    pub fn primitive(dt: Datatype) -> DerivedDatatype {
        let s = dt.size() as u32;
        DerivedDatatype {
            segments: vec![TypeSegment { offset: 0, len: s, elem_size: s }],
            packed_size: s,
            extent: s,
            committed: true,
        }
    }

    /// Append `inner`'s segments shifted by `base`, coalescing with the
    /// tail run when byte-adjacent in pack order and of the same element
    /// size.
    fn push_shifted(&mut self, inner: &DerivedDatatype, base: u32) {
        for seg in &inner.segments {
            let offset = base + seg.offset;
            if let Some(last) = self.segments.last_mut() {
                if last.offset + last.len == offset && last.elem_size == seg.elem_size {
                    last.len += seg.len;
                    continue;
                }
            }
            self.segments.push(TypeSegment { offset, len: seg.len, elem_size: seg.elem_size });
        }
    }

    fn empty() -> DerivedDatatype {
        DerivedDatatype { segments: Vec::new(), packed_size: 0, extent: 0, committed: false }
    }

    /// Guard the flattened size: `placements` instances of `inner` may
    /// not exceed the segment budget (a `Type_vector(10^9, …)` must not
    /// OOM the host), and every derived byte quantity must fit `u32`
    /// (guest memory is 32-bit).
    fn check_size(placements: u64, inner: &DerivedDatatype, end: u64) -> Result<(), MpiError> {
        if placements * inner.segments.len().max(1) as u64 > MAX_TYPE_SEGMENTS as u64
            || end > u32::MAX as u64
        {
            return Err(MpiError::BadCount {
                bytes: end as usize,
                type_size: inner.extent.max(1) as usize,
            });
        }
        Ok(())
    }

    /// `MPI_Type_contiguous(count, inner)`.
    pub fn contiguous(count: u32, inner: &DerivedDatatype) -> Result<DerivedDatatype, MpiError> {
        let extent = count as u64 * inner.extent as u64;
        Self::check_size(count as u64, inner, extent.max(count as u64 * inner.packed_size as u64))?;
        let mut t = Self::empty();
        for i in 0..count {
            t.push_shifted(inner, i * inner.extent);
        }
        t.packed_size = count * inner.packed_size;
        t.extent = extent as u32;
        Ok(t)
    }

    /// `MPI_Type_vector(count, blocklen, stride, inner)`. `stride` is in
    /// elements of `inner`, as in MPI; negative strides are not supported
    /// (rejected at the host call).
    pub fn vector(
        count: u32,
        blocklen: u32,
        stride: u32,
        inner: &DerivedDatatype,
    ) -> Result<DerivedDatatype, MpiError> {
        if count > 0 && stride < blocklen {
            // Overlapping blocks would make unpack scatter the same bytes
            // twice; MPI allows them for sends only. Keep the table
            // symmetric and reject at construction.
            return Err(MpiError::BadCount {
                bytes: stride as usize,
                type_size: blocklen as usize,
            });
        }
        let placements = count as u64 * blocklen as u64;
        let extent = if count == 0 {
            0
        } else {
            ((count - 1) as u64 * stride as u64 + blocklen as u64) * inner.extent as u64
        };
        Self::check_size(placements, inner, extent.max(placements * inner.packed_size as u64))?;
        let mut t = Self::empty();
        for i in 0..count {
            for j in 0..blocklen {
                t.push_shifted(inner, (i * stride + j) * inner.extent);
            }
        }
        t.packed_size = count * blocklen * inner.packed_size;
        t.extent = extent as u32;
        Ok(t)
    }

    /// `MPI_Type_create_struct`: blocks of `(count, byte displacement,
    /// inner)` in typemap order. The extent is the furthest byte any
    /// block reaches (no alignment padding — the guest controls layout
    /// through explicit displacements).
    pub fn structure(
        blocks: &[(u32, u32, &DerivedDatatype)],
    ) -> Result<DerivedDatatype, MpiError> {
        let mut t = Self::empty();
        let mut packed: u64 = 0;
        for &(count, displ, inner) in blocks {
            let end = displ as u64 + count as u64 * inner.extent as u64;
            packed += count as u64 * inner.packed_size as u64;
            Self::check_size(count as u64, inner, end.max(packed))?;
            for i in 0..count {
                t.push_shifted(inner, displ + i * inner.extent);
            }
            t.packed_size += count * inner.packed_size;
            t.extent = t.extent.max(end as u32);
        }
        if t.segments.len() > MAX_TYPE_SEGMENTS {
            return Err(MpiError::BadCount { bytes: t.segments.len(), type_size: 1 });
        }
        Ok(t)
    }

    /// Bytes of guest memory `count` elements touch: the last element's
    /// furthest segment end. 0 for empty types.
    pub fn span(&self, count: u32) -> u32 {
        if count == 0 || self.segments.is_empty() {
            return 0;
        }
        let last_end = self
            .segments
            .iter()
            .map(|s| s.offset + s.len)
            .max()
            .unwrap_or(0);
        (count - 1) * self.extent + last_end
    }

    /// Pack `count` elements from `src` (a guest-memory view starting at
    /// the buffer base, at least [`DerivedDatatype::span`] bytes) into a
    /// contiguous wire payload.
    pub fn pack(&self, count: u32, src: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity((count * self.packed_size) as usize);
        for i in 0..count {
            let base = (i * self.extent) as usize;
            for seg in &self.segments {
                let at = base + seg.offset as usize;
                out.extend_from_slice(&src[at..at + seg.len as usize]);
            }
        }
        out
    }

    /// Scatter a packed wire payload back into `dst` (a guest-memory view
    /// starting at the buffer base). Fewer bytes than the posted count is
    /// fine (a shorter message was received; trailing elements stay
    /// untouched), including a partial final segment.
    pub fn unpack(&self, bytes: &[u8], dst: &mut [u8]) {
        let mut read = 0usize;
        let mut elem = 0u32;
        'outer: loop {
            let base = (elem * self.extent) as usize;
            for seg in &self.segments {
                if read == bytes.len() {
                    break 'outer;
                }
                let take = (seg.len as usize).min(bytes.len() - read);
                let at = base + seg.offset as usize;
                dst[at..at + take].copy_from_slice(&bytes[read..read + take]);
                read += take;
            }
            elem += 1;
        }
    }

    /// `MPI_Get_elements`: the number of *basic* elements in `bytes`
    /// packed bytes of this type, or `None` when the byte count ends
    /// inside a basic element (`MPI_UNDEFINED`).
    pub fn elements_in(&self, bytes: u32) -> Option<u32> {
        if self.packed_size == 0 {
            return Some(0);
        }
        let full = bytes / self.packed_size;
        let mut rem = bytes % self.packed_size;
        let per_elem: u32 = self.segments.iter().map(|s| s.len / s.elem_size).sum();
        let mut n = full * per_elem;
        for seg in &self.segments {
            if rem == 0 {
                break;
            }
            let take = rem.min(seg.len);
            if take % seg.elem_size != 0 {
                return None;
            }
            n += take / seg.elem_size;
            rem -= take;
        }
        Some(n)
    }
}

/// Accumulated translation-overhead measurements (Figure 6).
///
/// Indexed by datatype and by log₂ message-size bucket; each cell holds
/// the summed nanoseconds and the sample count.
#[derive(Debug, Clone)]
pub struct TranslationStats {
    /// `[datatype][size_bucket] -> (total_ns, samples)`.
    pub cells: Vec<[(f64, u64); Self::BUCKETS]>,
}

impl Default for TranslationStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TranslationStats {
    /// Buckets cover 1 byte .. 4 MiB and beyond (2^0 .. 2^23+).
    pub const BUCKETS: usize = 24;

    pub fn new() -> Self {
        Self { cells: vec![[(0.0, 0); Self::BUCKETS]; Datatype::ALL.len()] }
    }

    pub fn bucket_of(bytes: u32) -> usize {
        (32 - bytes.max(1).leading_zeros() - 1).min(Self::BUCKETS as u32 - 1) as usize
    }

    fn dt_index(dt: Datatype) -> usize {
        Datatype::ALL.iter().position(|d| *d == dt).unwrap()
    }

    pub fn record(&mut self, dt: Datatype, bytes: u32, ns: f64) {
        let cell = &mut self.cells[Self::dt_index(dt)][Self::bucket_of(bytes)];
        cell.0 += ns;
        cell.1 += 1;
    }

    /// Mean translation overhead in ns for a datatype/size bucket, if any
    /// samples were recorded.
    pub fn mean_ns(&self, dt: Datatype, bytes: u32) -> Option<f64> {
        let (total, n) = self.cells[Self::dt_index(dt)][Self::bucket_of(bytes)];
        (n > 0).then(|| total / n as f64)
    }

    /// Mean over every sample of a datatype.
    pub fn mean_ns_all_sizes(&self, dt: Datatype) -> Option<f64> {
        let (total, n) = self.cells[Self::dt_index(dt)]
            .iter()
            .fold((0.0, 0u64), |(t, c), (ct, cc)| (t + ct, c + cc));
        (n > 0).then(|| total / n as f64)
    }

    pub fn total_samples(&self) -> u64 {
        self.cells.iter().flatten().map(|(_, n)| n).sum()
    }

    pub fn merge(&mut self, other: &TranslationStats) {
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.0 += t.0;
                m.1 += t.1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_handles_roundtrip() {
        for (h, dt) in [
            (handles::MPI_BYTE, Datatype::Byte),
            (handles::MPI_CHAR, Datatype::Char),
            (handles::MPI_INT, Datatype::Int),
            (handles::MPI_FLOAT, Datatype::Float),
            (handles::MPI_DOUBLE, Datatype::Double),
            (handles::MPI_LONG, Datatype::Long),
        ] {
            assert_eq!(datatype_from_handle(h).unwrap(), dt);
        }
        assert!(datatype_from_handle(99).is_err());
        assert!(datatype_from_handle(-2).is_err());
    }

    #[test]
    fn op_handles_roundtrip() {
        assert_eq!(op_from_handle(handles::MPI_SUM).unwrap(), ReduceOp::Sum);
        assert_eq!(op_from_handle(handles::MPI_LOR).unwrap(), ReduceOp::Lor);
        assert!(op_from_handle(42).is_err());
    }

    #[test]
    fn byte_len_checks_sign() {
        assert_eq!(byte_len(16, Datatype::Double).unwrap(), 128);
        assert_eq!(byte_len(0, Datatype::Int).unwrap(), 0);
        assert!(byte_len(-1, Datatype::Int).is_err());
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(TranslationStats::bucket_of(1), 0);
        assert_eq!(TranslationStats::bucket_of(8), 3);
        assert_eq!(TranslationStats::bucket_of(9), 3);
        assert_eq!(TranslationStats::bucket_of(1 << 20), 20);
        assert_eq!(TranslationStats::bucket_of(u32::MAX), 23);
        assert_eq!(TranslationStats::bucket_of(0), 0);
    }

    #[test]
    fn record_and_mean() {
        let mut s = TranslationStats::new();
        s.record(Datatype::Double, 1024, 100.0);
        s.record(Datatype::Double, 1024, 200.0);
        assert_eq!(s.mean_ns(Datatype::Double, 1024), Some(150.0));
        assert_eq!(s.mean_ns(Datatype::Int, 1024), None);
        assert_eq!(s.total_samples(), 2);
        assert_eq!(s.mean_ns_all_sizes(Datatype::Double), Some(150.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TranslationStats::new();
        a.record(Datatype::Int, 8, 10.0);
        let mut b = TranslationStats::new();
        b.record(Datatype::Int, 8, 30.0);
        a.merge(&b);
        assert_eq!(a.mean_ns(Datatype::Int, 8), Some(20.0));
    }
}

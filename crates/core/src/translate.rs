//! The embedder's two translation layers (paper §3.5, §3.6) plus the
//! instrumentation of §4.6.
//!
//! **Address translation (§3.5).** The guest supplies 32-bit offsets into
//! its linear memory; the host MPI library wants host pointers. Because
//! the instance's linear memory is one contiguous host allocation, the
//! translation is `host_ptr = base + offset`, rendered in safe Rust as a
//! bounds-checked subslice — a zero-copy view, no bytes are moved. The
//! same view is handed to the MPI substrate, which reads/writes guest
//! memory directly.
//!
//! **Datatype translation (§3.6).** MPI libraries do not share an ABI;
//! guests therefore see every MPI object as an opaque 32-bit integer
//! handle. This module owns the handle spaces for datatypes, ops, and
//! communicators and converts between them and the host library's types.
//!
//! **Instrumentation (§4.6).** When enabled, each translation on the send
//! path is timed with the host's monotonic clock and accumulated per
//! datatype and message-size bucket; the Figure 6 harness reads these
//! counters back.

use mpi_substrate::{Datatype, MpiError, ReduceOp};

/// Guest-visible handle constants. These are the values our `mpi.h`
/// equivalent (the DSL guest library in crate `hpc-benchmarks`) uses.
pub mod handles {
    pub const MPI_COMM_WORLD: i32 = 0;
    pub const MPI_COMM_SELF: i32 = 1;
    /// First handle available for `MPI_Comm_split`/`MPI_Comm_dup` results.
    pub const FIRST_DYNAMIC_COMM: i32 = 2;

    pub const MPI_BYTE: i32 = 0;
    pub const MPI_CHAR: i32 = 1;
    pub const MPI_INT: i32 = 2;
    pub const MPI_UNSIGNED: i32 = 3;
    pub const MPI_LONG: i32 = 4;
    pub const MPI_UNSIGNED_LONG: i32 = 5;
    pub const MPI_FLOAT: i32 = 6;
    pub const MPI_DOUBLE: i32 = 7;

    pub const MPI_SUM: i32 = 0;
    pub const MPI_PROD: i32 = 1;
    pub const MPI_MAX: i32 = 2;
    pub const MPI_MIN: i32 = 3;
    pub const MPI_BAND: i32 = 4;
    pub const MPI_BOR: i32 = 5;
    pub const MPI_BXOR: i32 = 6;
    pub const MPI_LAND: i32 = 7;
    pub const MPI_LOR: i32 = 8;

    pub const MPI_ANY_SOURCE: i32 = -1;
    pub const MPI_ANY_TAG: i32 = -1;
    /// Null status pointer (`MPI_STATUS_IGNORE`).
    pub const MPI_STATUS_IGNORE: i32 = 0;
    /// Null statuses-array pointer (`MPI_STATUSES_IGNORE`).
    pub const MPI_STATUSES_IGNORE: i32 = 0;
    /// Null request handle (`MPI_REQUEST_NULL`).
    pub const MPI_REQUEST_NULL: i32 = 0;
    /// Null matched-probe message handle (`MPI_MESSAGE_NULL`).
    pub const MPI_MESSAGE_NULL: i32 = 0;
    /// `MPI_UNDEFINED`: no active request in a completion set.
    pub const MPI_UNDEFINED: i32 = -1;
    pub const MPI_SUCCESS: i32 = 0;

    /// Thread levels for `MPI_Init_thread`/`MPI_Query_thread`, in the
    /// standard order (`SINGLE < FUNNELED < SERIALIZED < MULTIPLE`).
    pub const MPI_THREAD_SINGLE: i32 = 0;
    pub const MPI_THREAD_FUNNELED: i32 = 1;
    pub const MPI_THREAD_SERIALIZED: i32 = 2;
    pub const MPI_THREAD_MULTIPLE: i32 = 3;
}

/// Translate a guest datatype handle to the host datatype.
#[inline]
pub fn datatype_from_handle(h: i32) -> Result<Datatype, MpiError> {
    Ok(match h {
        handles::MPI_BYTE => Datatype::Byte,
        handles::MPI_CHAR => Datatype::Char,
        handles::MPI_INT => Datatype::Int,
        handles::MPI_UNSIGNED => Datatype::Unsigned,
        handles::MPI_LONG => Datatype::Long,
        handles::MPI_UNSIGNED_LONG => Datatype::UnsignedLong,
        handles::MPI_FLOAT => Datatype::Float,
        handles::MPI_DOUBLE => Datatype::Double,
        other => return Err(MpiError::InvalidDatatype(other as u32)),
    })
}

/// Translate a guest op handle to the host reduction operator.
#[inline]
pub fn op_from_handle(h: i32) -> Result<ReduceOp, MpiError> {
    Ok(match h {
        handles::MPI_SUM => ReduceOp::Sum,
        handles::MPI_PROD => ReduceOp::Prod,
        handles::MPI_MAX => ReduceOp::Max,
        handles::MPI_MIN => ReduceOp::Min,
        handles::MPI_BAND => ReduceOp::Band,
        handles::MPI_BOR => ReduceOp::Bor,
        handles::MPI_BXOR => ReduceOp::Bxor,
        handles::MPI_LAND => ReduceOp::Land,
        handles::MPI_LOR => ReduceOp::Lor,
        other => return Err(MpiError::InvalidOp(other as u32)),
    })
}

/// Byte length of `count` elements of the datatype behind handle `dt`.
#[inline]
pub fn byte_len(count: i32, dt: Datatype) -> Result<u32, MpiError> {
    if count < 0 {
        return Err(MpiError::BadCount { bytes: count as isize as usize, type_size: dt.size() });
    }
    Ok(count as u32 * dt.size() as u32)
}

/// Accumulated translation-overhead measurements (Figure 6).
///
/// Indexed by datatype and by log₂ message-size bucket; each cell holds
/// the summed nanoseconds and the sample count.
#[derive(Debug, Clone)]
pub struct TranslationStats {
    /// `[datatype][size_bucket] -> (total_ns, samples)`.
    pub cells: Vec<[(f64, u64); Self::BUCKETS]>,
}

impl Default for TranslationStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TranslationStats {
    /// Buckets cover 1 byte .. 4 MiB and beyond (2^0 .. 2^23+).
    pub const BUCKETS: usize = 24;

    pub fn new() -> Self {
        Self { cells: vec![[(0.0, 0); Self::BUCKETS]; Datatype::ALL.len()] }
    }

    pub fn bucket_of(bytes: u32) -> usize {
        (32 - bytes.max(1).leading_zeros() - 1).min(Self::BUCKETS as u32 - 1) as usize
    }

    fn dt_index(dt: Datatype) -> usize {
        Datatype::ALL.iter().position(|d| *d == dt).unwrap()
    }

    pub fn record(&mut self, dt: Datatype, bytes: u32, ns: f64) {
        let cell = &mut self.cells[Self::dt_index(dt)][Self::bucket_of(bytes)];
        cell.0 += ns;
        cell.1 += 1;
    }

    /// Mean translation overhead in ns for a datatype/size bucket, if any
    /// samples were recorded.
    pub fn mean_ns(&self, dt: Datatype, bytes: u32) -> Option<f64> {
        let (total, n) = self.cells[Self::dt_index(dt)][Self::bucket_of(bytes)];
        (n > 0).then(|| total / n as f64)
    }

    /// Mean over every sample of a datatype.
    pub fn mean_ns_all_sizes(&self, dt: Datatype) -> Option<f64> {
        let (total, n) = self.cells[Self::dt_index(dt)]
            .iter()
            .fold((0.0, 0u64), |(t, c), (ct, cc)| (t + ct, c + cc));
        (n > 0).then(|| total / n as f64)
    }

    pub fn total_samples(&self) -> u64 {
        self.cells.iter().flatten().map(|(_, n)| n).sum()
    }

    pub fn merge(&mut self, other: &TranslationStats) {
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.0 += t.0;
                m.1 += t.1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_handles_roundtrip() {
        for (h, dt) in [
            (handles::MPI_BYTE, Datatype::Byte),
            (handles::MPI_CHAR, Datatype::Char),
            (handles::MPI_INT, Datatype::Int),
            (handles::MPI_FLOAT, Datatype::Float),
            (handles::MPI_DOUBLE, Datatype::Double),
            (handles::MPI_LONG, Datatype::Long),
        ] {
            assert_eq!(datatype_from_handle(h).unwrap(), dt);
        }
        assert!(datatype_from_handle(99).is_err());
        assert!(datatype_from_handle(-2).is_err());
    }

    #[test]
    fn op_handles_roundtrip() {
        assert_eq!(op_from_handle(handles::MPI_SUM).unwrap(), ReduceOp::Sum);
        assert_eq!(op_from_handle(handles::MPI_LOR).unwrap(), ReduceOp::Lor);
        assert!(op_from_handle(42).is_err());
    }

    #[test]
    fn byte_len_checks_sign() {
        assert_eq!(byte_len(16, Datatype::Double).unwrap(), 128);
        assert_eq!(byte_len(0, Datatype::Int).unwrap(), 0);
        assert!(byte_len(-1, Datatype::Int).is_err());
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(TranslationStats::bucket_of(1), 0);
        assert_eq!(TranslationStats::bucket_of(8), 3);
        assert_eq!(TranslationStats::bucket_of(9), 3);
        assert_eq!(TranslationStats::bucket_of(1 << 20), 20);
        assert_eq!(TranslationStats::bucket_of(u32::MAX), 23);
        assert_eq!(TranslationStats::bucket_of(0), 0);
    }

    #[test]
    fn record_and_mean() {
        let mut s = TranslationStats::new();
        s.record(Datatype::Double, 1024, 100.0);
        s.record(Datatype::Double, 1024, 200.0);
        assert_eq!(s.mean_ns(Datatype::Double, 1024), Some(150.0));
        assert_eq!(s.mean_ns(Datatype::Int, 1024), None);
        assert_eq!(s.total_samples(), 2);
        assert_eq!(s.mean_ns_all_sizes(Datatype::Double), Some(150.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TranslationStats::new();
        a.record(Datatype::Int, 8, 10.0);
        let mut b = TranslationStats::new();
        b.record(Datatype::Int, 8, 30.0);
        a.merge(&b);
        assert_eq!(a.mean_ns(Datatype::Int, 8), Some(20.0));
    }
}

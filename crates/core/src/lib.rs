//! # MPIWasm — a WebAssembly embedder for MPI-based HPC applications
//!
//! This crate is the reproduction of the paper's primary contribution: an
//! embedder that executes MPI applications compiled to WebAssembly with
//! close-to-native performance (PPoPP '23, "Exploring the Use of
//! WebAssembly in HPC").
//!
//! Architecture (paper §3):
//!
//! * [`env::Env`] — per-rank global state: the rank's MPI communicator
//!   handles, datatype/op translation tables, WASI context, and the
//!   translation-overhead instrumentation of §4.6.
//! * [`translate`] — the two translations at the heart of the design:
//!   guest (32-bit) ↔ host (64-bit) **address translation** implemented as
//!   zero-copy views over the instance's linear memory (§3.5), and
//!   **datatype/handle translation** between the guest's opaque 32-bit
//!   integers and host library types (§3.6).
//! * [`mpi_host`] — the `env.MPI_*` host functions (§3.7). Each one
//!   translates its arguments and defers to the host MPI library
//!   (crate `mpi-substrate`, standing in for OpenMPI + rsmpi).
//!   `MPI_Alloc_mem`/`MPI_Free_mem` re-enter the guest's exported
//!   `malloc`/`free`, exactly as the paper describes.
//! * [`cache`] — the compiled-module cache (§3.3): artifacts are stored
//!   content-addressed in the filesystem; re-running a module skips
//!   compilation entirely.
//! * [`runner`] — the `mpirun`-equivalent: compile (or load from cache)
//!   once, then instantiate the module once per rank and run the ranks to
//!   completion, gathering stdout, exit codes and I/O counters.
//! * [`hash`] — a from-scratch SHA-256 used for content addressing
//!   (substitution for the paper's BLAKE-3; see DESIGN.md).

pub mod cache;
pub mod env;
pub mod hash;
pub mod mpi_host;
pub mod runner;
pub mod translate;

pub use cache::ModuleCache;
pub use env::{Env, MpiState};
pub use runner::{JobConfig, JobResult, RankResult, Runner};
pub use translate::handles;

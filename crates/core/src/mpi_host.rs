//! The `env.MPI_*` host functions (paper §3.7).
//!
//! Every function follows the same pattern the paper describes: translate
//! the guest's 32-bit handles and addresses (crate-level [`crate::translate`]),
//! then defer to the host MPI library with zero-copy buffer views over the
//! instance's linear memory. MPI failures surface as guest-visible MPI
//! error codes; engine-level faults (out-of-bounds addresses) trap.
//!
//! `MPI_Alloc_mem`/`MPI_Free_mem` are the special case of §3.7: the host
//! MPI library's allocator would return 64-bit host addresses that mean
//! nothing inside the guest's 32-bit memory, so the embedder re-enters the
//! guest's exported `malloc`/`free` instead.

use std::any::Any;
use std::time::Instant;

use mpi_substrate::request::backoff;
use mpi_substrate::{Comm, MpiError, Source, Status, Tag};
use wasm_engine::error::Trap;
use wasm_engine::runtime::{Instance, Linker, Memory, Slot};
use wasm_engine::types::{FuncType, ValType};

use crate::env::Env;
use crate::translate::{
    byte_len, datatype_from_handle, handles, op_from_handle, DerivedDatatype,
};

/// Guest-side `MPI_Status` layout (our `mpi.h` equivalent):
/// `{ i32 MPI_SOURCE; i32 MPI_TAG; i32 MPI_ERROR; i32 count_bytes;
///    i32 cancelled }`. The trailing word is the implementation-internal
/// field `MPI_Test_cancelled` reads, as in real MPI's opaque status.
pub const STATUS_SIZE: u32 = 20;

fn env_of(data: &mut (dyn Any + Send)) -> &mut Env {
    data.downcast_mut::<Env>().expect("instance data is not an mpiwasm Env")
}

fn code(r: Result<(), MpiError>) -> Vec<Slot> {
    vec![Slot::from_i32(match r {
        Ok(()) => handles::MPI_SUCCESS,
        Err(e) => e.code(),
    })]
}

/// Write a guest `MPI_Status`. `err` is the operation's outcome for the
/// `MPI_ERROR` word (MPI_SUCCESS on the happy path) — `Waitall`/`Waitsome`
/// partial-failure semantics depend on each failed request's status
/// carrying its own error code, not a hardcoded zero.
fn write_status(mem: &mut Memory, ptr: u32, st: &Status, err: i32) -> Result<(), Trap> {
    if ptr == handles::MPI_STATUS_IGNORE as u32 {
        return Ok(());
    }
    mem.write_i32_at(ptr, st.source as i32)?;
    mem.write_i32_at(ptr + 4, st.tag)?;
    mem.write_i32_at(ptr + 8, err)?;
    mem.write_i32_at(ptr + 12, st.bytes as i32)?;
    mem.write_i32_at(ptr + 16, st.cancelled as i32)?;
    Ok(())
}

/// Resolve any datatype handle to its segment-list view: primitive
/// handles become their one-segment leaf, derived handles come from the
/// rank's type table (committed or not — construction composes over
/// uncommitted types).
fn resolve_dtype(env: &Env, h: i32) -> Result<DerivedDatatype, MpiError> {
    if h < handles::FIRST_DERIVED_DATATYPE {
        Ok(DerivedDatatype::primitive(datatype_from_handle(h)?))
    } else {
        env.mpi.dtype(h).cloned()
    }
}

/// Resolve a derived handle for communication: it must exist *and* be
/// committed, and the count must be non-negative.
fn resolve_for_comm(env: &Env, count: i32, h: i32) -> Result<DerivedDatatype, MpiError> {
    let dt = resolve_dtype(env, h)?;
    if !dt.committed {
        return Err(MpiError::InvalidDatatype(h as u32));
    }
    if count < 0 {
        return Err(MpiError::BadCount {
            bytes: count as isize as usize,
            type_size: dt.packed_size.max(1) as usize,
        });
    }
    Ok(dt)
}

/// Pack-on-send: gather `count` elements of derived type `dt_h` starting
/// at guest address `buf` into an owned contiguous wire payload. The wire
/// bytes are identical to a manually packed send, so the receiver never
/// needs to know the sender used a derived type.
fn pack_guest(
    mem: &Memory,
    env: &Env,
    buf: u32,
    count: i32,
    dt_h: i32,
) -> Result<Box<[u8]>, MpiError> {
    let dt = resolve_for_comm(env, count, dt_h)?;
    let span = dt.span(count as u32);
    let view = mem.slice(buf, span).map_err(|_| MpiError::BadCount {
        bytes: span as usize,
        type_size: 1,
    })?;
    Ok(dt.pack(count as u32, view).into_boxed_slice())
}

/// Unpack-on-recv: blocking receive of a derived-type message. The packed
/// wire payload lands in a host staging buffer, then scatters into guest
/// memory per the type's segment list. The status carries *packed* bytes,
/// which is what `MPI_Get_count`/`MPI_Get_elements` divide by.
#[allow(clippy::too_many_arguments)]
fn recv_derived(
    mem: &mut Memory,
    env: &mut Env,
    buf: u32,
    count: i32,
    dt_h: i32,
    src: i32,
    tag: i32,
    comm_h: i32,
) -> Result<Status, MpiError> {
    let dt = resolve_for_comm(env, count, dt_h)?;
    let span = dt.span(count as u32);
    // Validate the scatter region up front, as real MPI requires of the
    // posted buffer.
    mem.slice_mut(buf, span).map_err(|_| MpiError::BadCount {
        bytes: span as usize,
        type_size: 1,
    })?;
    let max_bytes = count as u64 * dt.packed_size as u64;
    if max_bytes > u32::MAX as u64 {
        return Err(MpiError::BadCount {
            bytes: max_bytes as usize,
            type_size: dt.packed_size as usize,
        });
    }
    let mut staging = vec![0u8; max_bytes as usize];
    let mut req = {
        let comm = env.mpi.comm(comm_h)?;
        unsafe {
            comm.irecv_raw_uncharged(
                staging.as_mut_ptr(),
                staging.len(),
                source_of(src),
                tag_of(tag),
            )
        }
    }?;
    let st = wait_local(env, &mut req)?;
    let view = mem.slice_mut(buf, span).map_err(|_| MpiError::BadCount {
        bytes: span as usize,
        type_size: 1,
    })?;
    dt.unpack(&staging[..st.bytes.min(staging.len())], view);
    Ok(st)
}

/// Buffered-mode send body (`MPI_Bsend`/`MPI_Ibsend`): enforce the
/// attach-buffer accounting, copy (or pack) the payload into an owned
/// wire buffer, start the send and *detach* it — buffered sends complete
/// locally by definition; the detached request stays parked in the table
/// and delivers the payload when the peer drains it.
///
/// The guest's attached buffer is accounting only: the host never stages
/// bytes through guest memory (the owned copy already decouples the
/// guest's source buffer), it just refuses sends larger than what the
/// guest declared, as real MPI's MPI_ERR_BUFFER contract requires.
#[allow(clippy::too_many_arguments)]
fn buffered_send(
    mem: &mut Memory,
    env: &mut Env,
    buf: u32,
    count: i32,
    dt_h: i32,
    dest: i32,
    tag: i32,
    comm_h: i32,
) -> Result<(), MpiError> {
    let data: Box<[u8]> = if dt_h >= handles::FIRST_DERIVED_DATATYPE {
        pack_guest(mem, env, buf, count, dt_h)?
    } else {
        let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
        let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
            bytes: bytes as usize,
            type_size: 1,
        })?;
        view.into()
    };
    env.mpi.check_buffered(data.len())?;
    let req = {
        let comm = env.mpi.comm(comm_h)?;
        comm.isend_owned(data, dest as u32, tag)
    }?;
    let h = env.mpi.insert_request(req);
    env.mpi.detach_request(h)
}

fn source_of(h: i32) -> Source {
    if h == handles::MPI_ANY_SOURCE {
        Source::Any
    } else {
        Source::Rank(h as u32)
    }
}

fn tag_of(h: i32) -> Tag {
    if h == handles::MPI_ANY_TAG {
        Tag::Any
    } else {
        Tag::Value(h)
    }
}

/// Wait for one request by guest handle. Handles `MPI_REQUEST_NULL`
/// (returns the empty status), writes the status back (tolerating
/// `MPI_STATUS_IGNORE`), removes completed one-shot requests from the
/// table, and rewrites the guest's handle word to `MPI_REQUEST_NULL` —
/// *also on failure*, so error paths never leave dangling handles behind.
///
/// While parked, the rank's whole request table keeps progressing: a
/// guest waiting on a rendezvous Isend before its posted Irecv must still
/// service the peer's symmetric exchange, exactly like a real MPI
/// progress engine.
fn wait_one(
    mem: &mut Memory,
    env: &mut Env,
    handle_ptr: u32,
    handle: i32,
    status_ptr: u32,
) -> Result<(), MpiError> {
    if handle <= 0 {
        let _ = write_status(mem, status_ptr, &Status::empty(), handles::MPI_SUCCESS);
        return Ok(());
    }
    let mut spins = 0u32;
    loop {
        // Drive the whole table first: matching is pinned at arrival by
        // the substrate's posted-receive queues, but matched receives
        // still need their delivery step, and rendezvous peers park
        // until it runs.
        env.mpi.progress_all();
        match try_complete(mem, env, handle_ptr, handle)? {
            Completion::Done(st) => {
                let _ = write_status(mem, status_ptr, &st, handles::MPI_SUCCESS);
                return Ok(());
            }
            Completion::Error(e) => {
                let _ = write_status(mem, status_ptr, &Status::empty(), e.code());
                return Err(e);
            }
            Completion::NotReady => {
                let target_drives = env.mpi.request_mut(handle)?.needs_progress();
                if env.mpi.progress_work() == usize::from(target_drives) {
                    // Nothing else needs driving: park on this request's
                    // blocking wait (condvar/slot) instead of polling. The
                    // table guard is held across the park and dropped
                    // before the handle is retired (the lock is not
                    // reentrant); the wake-up comes from the peer's
                    // mailbox side, which never takes our table lock.
                    let (persistent, outcome) = {
                        let mut req = env.mpi.request_mut(handle)?;
                        (req.is_persistent(), req.wait())
                    };
                    if !persistent {
                        let _ = env.mpi.remove_request(handle);
                        let _ = mem.write_i32_at(handle_ptr, handles::MPI_REQUEST_NULL);
                    }
                    let st = match outcome {
                        Ok(st) => st,
                        Err(e) => {
                            let _ = write_status(
                                mem,
                                status_ptr,
                                &Status::empty(),
                                e.code(),
                            );
                            return Err(e);
                        }
                    };
                    let _ = write_status(mem, status_ptr, &st, handles::MPI_SUCCESS);
                    return Ok(());
                }
                backoff(&mut spins);
            }
        }
    }
}

/// Outcome of [`try_complete`] on one live request.
enum Completion {
    NotReady,
    Done(Status),
    Error(MpiError),
}

/// Progress request `handle`; if it completed — or failed — retire it:
/// non-persistent requests leave the table and the guest's handle word at
/// `handle_ptr` is rewritten to `MPI_REQUEST_NULL` (persistent requests
/// survive both completion and errors, as `MPI_Start` must remain legal).
/// The outer `Err` is an invalid handle.
fn try_complete(
    mem: &mut Memory,
    env: &mut Env,
    handle_ptr: u32,
    handle: i32,
) -> Result<Completion, MpiError> {
    // Scope the table guard: removal below re-takes the table lock.
    let (persistent, outcome) = {
        let mut req = env.mpi.request_mut(handle)?;
        (req.is_persistent(), req.test())
    };
    let finished = !matches!(outcome, Ok(None));
    if finished && !persistent {
        let _ = env.mpi.remove_request(handle);
        let _ = mem.write_i32_at(handle_ptr, handles::MPI_REQUEST_NULL);
    }
    Ok(match outcome {
        Ok(Some(st)) => Completion::Done(st),
        Ok(None) => Completion::NotReady,
        Err(e) => Completion::Error(e),
    })
}

/// Whether `handle` participates in `*any`/`*some` completion sets
/// (pending or completed-unretired; inactive persistent requests do not).
fn handle_participates(env: &mut Env, handle: i32) -> Result<bool, MpiError> {
    Ok(env.mpi.request_mut(handle)?.participates())
}

/// One scan step of the `*any`/`*some` completion loops: read the handle
/// word at `handle_ptr` and drive it. `None` means there is nothing to
/// wait for in this slot (null handle or inactive persistent request);
/// invalid handles surface as `Completion::Error`.
fn scan_slot(
    mem: &mut Memory,
    env: &mut Env,
    handle_ptr: u32,
) -> Result<Option<Completion>, Trap> {
    let handle = mem.read_i32_at(handle_ptr)?;
    if handle <= 0 {
        return Ok(None);
    }
    match handle_participates(env, handle) {
        Ok(true) => {}
        Ok(false) => return Ok(None),
        Err(e) => return Ok(Some(Completion::Error(e))),
    }
    match try_complete(mem, env, handle_ptr, handle) {
        Ok(c) => Ok(Some(c)),
        Err(e) => Ok(Some(Completion::Error(e))),
    }
}

/// Progress one live request (outcomes latch inside it): is it complete?
fn progress_handle(env: &mut Env, handle: i32) -> Result<bool, MpiError> {
    let mut req = env.mpi.request_mut(handle)?;
    req.progress();
    Ok(req.is_complete())
}

/// Retire a completed request: `(is_persistent, outcome)`.
fn retire_handle(
    env: &mut Env,
    handle: i32,
) -> Result<(bool, Result<Status, MpiError>), MpiError> {
    let mut req = env.mpi.request_mut(handle)?;
    let persistent = req.is_persistent();
    let outcome = req.take_result();
    Ok((persistent, outcome))
}

/// Complete a local (untabled) request while keeping the rank's request
/// table progressing — the blocking p2p host functions are composed from
/// request primitives so a rank parked in `MPI_Send`/`MPI_Recv` still
/// services its posted receives (real-MPI progress guarantee: a posted
/// `MPI_Irecv` lets the peer's matching standard-mode send proceed).
///
/// With an empty request table (the overwhelmingly common plain
/// `MPI_Recv`/`MPI_Send` case) there is nothing else to drive, so the
/// request parks on the substrate's condvar/slot instead of polling.
fn wait_local(
    env: &mut Env,
    req: &mut mpi_substrate::Request<'static>,
) -> Result<Status, MpiError> {
    let mut spins = 0u32;
    loop {
        // Table first: posted receives claim their messages at arrival,
        // but the delivery step (payload copy, clock charge, rendezvous
        // completion) runs here, and parked peers depend on it.
        env.mpi.progress_all();
        req.progress();
        if req.is_complete() {
            return req.take_result();
        }
        if env.mpi.progress_work() == 0 {
            // Nothing older to drive: park on the condvar/slot.
            return req.wait();
        }
        backoff(&mut spins);
    }
}

/// Shared loop of the blocking probe host calls (`MPI_Probe`/
/// `MPI_Mprobe`): poll the non-blocking `attempt` while the rank's
/// request table keeps progressing — a probe may only become answerable
/// once this rank's own pending operations drive their protocols — and
/// fall back to `park` (the substrate's condvar-blocking form) when the
/// table has nothing to drive, mirroring [`wait_local`]'s structure.
fn blocking_probe<T>(
    env: &mut Env,
    comm_h: i32,
    attempt: impl Fn(&Comm) -> Result<Option<T>, MpiError>,
    park: impl Fn(&Comm) -> Result<T, MpiError>,
) -> Result<T, MpiError> {
    let mut spins = 0u32;
    loop {
        match env.mpi.comm(comm_h).and_then(&attempt) {
            Ok(Some(hit)) => return Ok(hit),
            Ok(None) => {
                if env.mpi.progress_work() == 0 {
                    return env.mpi.comm(comm_h).and_then(&park);
                }
                env.mpi.progress_all();
                backoff(&mut spins);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Register a freshly created request and write its guest handle, or
/// surface the creation error as an MPI code — the shared tail of every
/// request-creating host function.
fn finish_request(
    mem: &mut Memory,
    env: &mut Env,
    req_ptr: u32,
    req: Result<mpi_substrate::Request<'static>, MpiError>,
) -> Result<Vec<Slot>, Trap> {
    match req {
        Ok(req) => {
            let h = env.mpi.insert_request(req);
            mem.write_i32_at(req_ptr, h)?;
            Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
        }
        Err(e) => Ok(vec![Slot::from_i32(e.code())]),
    }
}

/// Status slot for request `i` of a completion array, honoring
/// `MPI_STATUSES_IGNORE`.
fn status_slot(statuses_ptr: u32, i: u32) -> u32 {
    if statuses_ptr == handles::MPI_STATUSES_IGNORE as u32 {
        handles::MPI_STATUS_IGNORE as u32
    } else {
        statuses_ptr + i * STATUS_SIZE
    }
}

/// Translate `(count, datatype_handle)` on an instrumented path: returns
/// the host datatype and byte length, recording the translation time when
/// instrumentation is on (§4.6).
fn translate_instrumented(
    env: &mut Env,
    count: i32,
    dt_handle: i32,
) -> Result<(mpi_substrate::Datatype, u32), MpiError> {
    if env.mpi.instrument {
        let t0 = Instant::now();
        let dt = datatype_from_handle(dt_handle)?;
        let bytes = byte_len(count, dt)?;
        let ns = t0.elapsed().as_nanos() as f64;
        env.mpi.stats.record(dt, bytes.max(1), ns);
        Ok((dt, bytes))
    } else {
        let dt = datatype_from_handle(dt_handle)?;
        let bytes = byte_len(count, dt)?;
        Ok((dt, bytes))
    }
}

/// Read a guest `i32[p]` counts/displacements array and scale it to
/// bytes by the datatype's element size (`MPI_Alltoallv` translation).
fn read_extents(
    mem: &Memory,
    ptr: u32,
    p: u32,
    elem_size: usize,
) -> Result<Vec<usize>, MpiError> {
    let mut out = Vec::with_capacity(p as usize);
    for i in 0..p {
        let v = mem
            .read_i32_at(ptr + i * 4)
            .map_err(|_| MpiError::BadCount { bytes: p as usize * 4, type_size: 4 })?;
        if v < 0 {
            return Err(MpiError::BadCount {
                bytes: v as isize as usize,
                type_size: elem_size,
            });
        }
        out.push(v as usize * elem_size);
    }
    Ok(out)
}

/// Byte extent a vector collective touches: `max(displ + count)`.
fn extent_of(counts: &[usize], displs: &[usize]) -> usize {
    counts.iter().zip(displs).map(|(c, d)| c + d).max().unwrap_or(0)
}

/// Shared translation for `MPI_Alltoallv`/`MPI_Ialltoallv`: build the
/// raw-pointer substrate request from the guest's count/displacement
/// arrays and buffer addresses.
#[allow(clippy::too_many_arguments)]
fn alltoallv_request(
    mem: &mut Memory,
    env: &mut Env,
    sbuf: u32,
    scounts_ptr: u32,
    sdispls_ptr: u32,
    stype: i32,
    rbuf: u32,
    rcounts_ptr: u32,
    rdispls_ptr: u32,
    rtype: i32,
    comm_h: i32,
) -> Result<mpi_substrate::Request<'static>, MpiError> {
    let sdt = datatype_from_handle(stype)?;
    let rdt = datatype_from_handle(rtype)?;
    let comm = env.mpi.comm(comm_h)?;
    let p = comm.size();
    let scounts = read_extents(mem, scounts_ptr, p, sdt.size())?;
    let sdispls = read_extents(mem, sdispls_ptr, p, sdt.size())?;
    let rcounts = read_extents(mem, rcounts_ptr, p, rdt.size())?;
    let rdispls = read_extents(mem, rdispls_ptr, p, rdt.size())?;
    let s_extent = extent_of(&scounts, &sdispls) as u32;
    let r_extent = extent_of(&rcounts, &rdispls) as u32;
    let (sview, rview) = mem
        .disjoint_pair((sbuf, s_extent), (rbuf, r_extent))
        .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
    let (sptr, slen) = (sview.as_ptr(), sview.len());
    let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
    let comm = env.mpi.comm(comm_h)?;
    unsafe {
        comm.ialltoallv_raw(sptr, slen, scounts, sdispls, rptr, rlen, rcounts, rdispls)
    }
}

macro_rules! mpi_fn {
    ($linker:expr, $name:literal, ($($p:expr),*) -> $r:expr, $body:expr) => {
        $linker.func("env", $name, FuncType::new(vec![$($p),*], vec![$r]), $body);
    };
}

/// Register every MPI function the embedder provides.
pub fn register_mpi(linker: &mut Linker) {
    use ValType::{F64, I32};

    mpi_fn!(linker, "MPI_Init", (I32, I32) -> I32, |inst, _args| {
        let env = env_of(inst.parts().1);
        env.mpi.initialized = true;
        env.mpi.charge_wasm_overhead();
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    mpi_fn!(linker, "MPI_Finalize", () -> I32, |inst: &mut Instance, _args: &[Slot]| {
        let env = env_of(inst.parts().1);
        env.mpi.finalized = true;
        env.mpi.charge_wasm_overhead();
        // Ranks synchronize at finalize, as real MPI implementations do —
        // via the nonblocking barrier so detached sends and leftover
        // posted receives keep progressing while parked.
        let req = env.mpi.world().ibarrier();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    mpi_fn!(linker, "MPI_Initialized", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        mem.write_i32_at(ptr, env.mpi.initialized as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    mpi_fn!(linker, "MPI_Finalized", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        mem.write_i32_at(ptr, env.mpi.finalized as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    mpi_fn!(linker, "MPI_Comm_rank", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let (comm_h, ptr) = (args[0].i32(), args[1].u32());
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.comm(comm_h) {
            Ok(c) => {
                mem.write_i32_at(ptr, c.rank() as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    mpi_fn!(linker, "MPI_Comm_size", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let (comm_h, ptr) = (args[0].i32(), args[1].u32());
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.comm(comm_h) {
            Ok(c) => {
                mem.write_i32_at(ptr, c.size() as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Send(buf, count, datatype, dest, tag, comm)
    mpi_fn!(linker, "MPI_Send", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            if dt_h >= handles::FIRST_DERIVED_DATATYPE {
                // Pack-on-send: the wire payload is owned, so the guest
                // buffer needs no pinning past this call.
                let data = pack_guest(mem, env, buf, count, dt_h)?;
                let comm = env.mpi.comm(comm_h)?;
                return comm.isend_owned(data, dest as u32, tag);
            }
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            // Zero-copy: the slice *is* guest memory (§3.5).
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.isend_raw(ptr, len, dest as u32, tag) }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Recv(buf, count, datatype, source, tag, comm, status)
    mpi_fn!(linker, "MPI_Recv", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let src = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let status_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = if dt_h >= handles::FIRST_DERIVED_DATATYPE {
            recv_derived(mem, env, buf, count, dt_h, src, tag, comm_h)
        } else {
            (|| {
                let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
                let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                    bytes: bytes as usize,
                    type_size: 1,
                })?;
                let (ptr, len) = (view.as_mut_ptr(), view.len());
                let comm = env.mpi.comm(comm_h)?;
                unsafe { comm.irecv_raw_uncharged(ptr, len, source_of(src), tag_of(tag)) }
            })()
            .and_then(|mut req| wait_local(env, &mut req))
        };
        match r {
            Ok(st) => {
                write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => {
                let _ = write_status(mem, status_ptr, &Status::empty(), e.code());
                Ok(vec![Slot::from_i32(e.code())])
            }
        }
    });

    // MPI_Sendrecv(sbuf, scount, stype, dest, stag,
    //              rbuf, rcount, rtype, source, rtag, comm, status)
    {
        let params = vec![I32; 12];
        linker.func("env", "MPI_Sendrecv", FuncType::new(params, vec![I32]), |inst, args| {
            let sbuf = args[0].u32();
            let scount = args[1].i32();
            let stype = args[2].i32();
            let dest = args[3].i32();
            let stag = args[4].i32();
            let rbuf = args[5].u32();
            let rcount = args[6].i32();
            let rtype = args[7].i32();
            let src = args[8].i32();
            let rtag = args[9].i32();
            let comm_h = args[10].i32();
            let status_ptr = args[11].u32();
            let (mem, data) = inst.parts();
            let env = env_of(data);
            env.mpi.charge_wasm_overhead();
            let reqs = (|| {
                let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
                let (_rdt, rbytes) = translate_instrumented(env, rcount, rtype)?;
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, sbytes), (rbuf, rbytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (sptr, slen) = (sview.as_ptr(), sview.len());
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                let comm = env.mpi.comm(comm_h)?;
                let sreq = unsafe { comm.isend_raw(sptr, slen, dest as u32, stag) }?;
                let rreq = unsafe {
                    comm.irecv_raw_uncharged(rptr, rlen, source_of(src), tag_of(rtag))
                }?;
                Ok((sreq, rreq))
            })();
            let r: Result<Status, MpiError> = reqs.and_then(|(mut sreq, mut rreq)| {
                // Receive first (it needs active progress); the send then
                // completes passively once the peer drains it. The send is
                // driven to completion even when the receive errors —
                // cancelling it would un-send a message the peer may be
                // blocked waiting for.
                let recv_result = wait_local(env, &mut rreq);
                let send_result = wait_local(env, &mut sreq);
                let st = recv_result?;
                send_result?;
                Ok(st)
            });
            match r {
                Ok(st) => {
                    write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                    Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
                }
                Err(e) => Ok(vec![Slot::from_i32(e.code())]),
            }
        });
    }

    // MPI_Barrier(comm): the nonblocking barrier driven to completion, so
    // a rank parked here still services its posted receives (a peer may
    // be waiting on one before it can reach this same barrier).
    mpi_fn!(linker, "MPI_Barrier", (I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let env = env_of(inst.parts().1);
        env.mpi.charge_wasm_overhead();
        let req = env.mpi.comm(comm_h).and_then(|c| c.ibarrier());
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Bcast(buf, count, datatype, root, comm): the nonblocking
    // broadcast driven to completion (keeps the request table moving).
    mpi_fn!(linker, "MPI_Bcast", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let root = args[3].i32();
        let comm_h = args[4].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_mut_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.ibcast_raw(ptr, len, root as u32) }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Reduce(sendbuf, recvbuf, count, datatype, op, root, comm): the
    // nonblocking reduce driven to completion (keeps the request table
    // moving), like every other host collective.
    mpi_fn!(linker, "MPI_Reduce", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let rbuf = args[1].u32();
        let count = args[2].i32();
        let dt_h = args[3].i32();
        let op_h = args[4].i32();
        let root = args[5].i32();
        let comm_h = args[6].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let op = op_from_handle(op_h)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, bytes), (rbuf, bytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                let send: &[u8] = sview;
                unsafe { comm.ireduce_raw(send, rptr, rlen, dt, op, root as u32) }
            } else {
                let sview = mem.slice(sbuf, bytes).map_err(|_| MpiError::BadCount {
                    bytes: bytes as usize,
                    type_size: 1,
                })?;
                unsafe {
                    comm.ireduce_raw(sview, std::ptr::null_mut(), 0, dt, op, root as u32)
                }
            }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Allreduce(sendbuf, recvbuf, count, datatype, op, comm): the
    // nonblocking allreduce driven to completion (keeps the request table
    // moving).
    mpi_fn!(linker, "MPI_Allreduce", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let rbuf = args[1].u32();
        let count = args[2].i32();
        let dt_h = args[3].i32();
        let op_h = args[4].i32();
        let comm_h = args[5].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let op = op_from_handle(op_h)?;
            let (sview, rview) = mem
                .disjoint_pair((sbuf, bytes), (rbuf, bytes))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
            let send: &[u8] = sview;
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.iallreduce_raw(send, rptr, rlen, dt, op) }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Gather(sbuf, scount, stype, rbuf, rcount, rtype, root, comm)
    mpi_fn!(linker, "MPI_Gather", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let root = args[6].i32();
        let comm_h = args[7].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
                let comm = env.mpi.comm(comm_h)?;
                let total = rbytes_each * comm.size();
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, sbytes), (rbuf, total))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                unsafe {
                    comm.igather_raw(sview.as_ptr(), sview.len(), rptr, rlen, root as u32)
                }
            } else {
                let sview = mem.slice(sbuf, sbytes).map_err(|_| MpiError::BadCount {
                    bytes: sbytes as usize,
                    type_size: 1,
                })?;
                unsafe {
                    comm.igather_raw(
                        sview.as_ptr(),
                        sview.len(),
                        std::ptr::null_mut(),
                        0,
                        root as u32,
                    )
                }
            }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Allgather(sbuf, scount, stype, rbuf, rcount, rtype, comm)
    mpi_fn!(linker, "MPI_Allgather", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let comm_h = args[6].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
            let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            let total = rbytes_each * comm.size();
            let (sview, rview) = mem
                .disjoint_pair((sbuf, sbytes), (rbuf, total))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
            let send: &[u8] = sview;
            unsafe { comm.iallgather_raw(send, rptr, rlen) }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Scatter(sbuf, scount, stype, rbuf, rcount, rtype, root, comm)
    mpi_fn!(linker, "MPI_Scatter", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let root = args[6].i32();
        let comm_h = args[7].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_rdt, rbytes) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (_sdt, sbytes_each) = translate_instrumented(env, scount, stype)?;
                let comm = env.mpi.comm(comm_h)?;
                let total = sbytes_each * comm.size();
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, total), (rbuf, rbytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                unsafe {
                    comm.iscatter_raw(sview.as_ptr(), sview.len(), rptr, rlen, root as u32)
                }
            } else {
                let rview = mem.slice_mut(rbuf, rbytes).map_err(|_| MpiError::BadCount {
                    bytes: rbytes as usize,
                    type_size: 1,
                })?;
                unsafe {
                    comm.iscatter_raw(
                        std::ptr::null(),
                        0,
                        rview.as_mut_ptr(),
                        rview.len(),
                        root as u32,
                    )
                }
            }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Alltoall(sbuf, scount, stype, rbuf, rcount, rtype, comm)
    mpi_fn!(linker, "MPI_Alltoall", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let comm_h = args[6].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_sdt, sbytes_each) = translate_instrumented(env, scount, stype)?;
            let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            let stotal = sbytes_each * comm.size();
            let rtotal = rbytes_each * comm.size();
            let (sview, rview) = mem
                .disjoint_pair((sbuf, stotal), (rbuf, rtotal))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
            unsafe { comm.ialltoall_raw(sview.as_ptr(), sview.len(), rptr, rlen) }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Alltoallv(sbuf, scounts, sdispls, stype,
    //               rbuf, rcounts, rdispls, rtype, comm)
    {
        let params = vec![I32; 9];
        linker.func("env", "MPI_Alltoallv", FuncType::new(params, vec![I32]), |inst, args| {
            let (mem, data) = inst.parts();
            let env = env_of(data);
            env.mpi.charge_wasm_overhead();
            let req = alltoallv_request(
                mem,
                env,
                args[0].u32(),
                args[1].u32(),
                args[2].u32(),
                args[3].i32(),
                args[4].u32(),
                args[5].u32(),
                args[6].u32(),
                args[7].i32(),
                args[8].i32(),
            );
            let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
            Ok(code(r))
        });
    }

    // MPI_Comm_split(comm, color, key, newcomm_ptr)
    mpi_fn!(linker, "MPI_Comm_split", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let color = args[1].i32();
        let key = args[2].i32();
        let out_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let result: Result<Option<Comm>, MpiError> =
            env.mpi.comm(comm_h).and_then(|c| c.split(color, key));
        match result {
            Ok(Some(new_comm)) => {
                let h = env.mpi.insert_comm(new_comm);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Ok(None) => {
                mem.write_i32_at(out_ptr, -1)?; // MPI_COMM_NULL
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Comm_dup(comm, newcomm_ptr)
    mpi_fn!(linker, "MPI_Comm_dup", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let out_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        match env.mpi.comm(comm_h).and_then(|c| c.dup()) {
            Ok(new_comm) => {
                let h = env.mpi.insert_comm(new_comm);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Comm_free(comm_ptr)
    mpi_fn!(linker, "MPI_Comm_free", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let h = mem.read_i32_at(ptr)?;
        let r = env.mpi.free_comm(h);
        if r.is_ok() {
            mem.write_i32_at(ptr, -1)?; // MPI_COMM_NULL
        }
        Ok(code(r))
    });

    // MPI_Wtime() -> f64
    linker.func("env", "MPI_Wtime", FuncType::new(vec![], vec![F64]), |inst, _args| {
        let env = env_of(inst.parts().1);
        Ok(vec![Slot::from_f64(env.mpi.world().wtime())])
    });

    // MPI_Wtick() -> f64
    linker.func("env", "MPI_Wtick", FuncType::new(vec![], vec![F64]), |_inst, _args| {
        Ok(vec![Slot::from_f64(1e-9)])
    });

    // MPI_Abort(comm, errorcode): traps the instance.
    mpi_fn!(linker, "MPI_Abort", (I32, I32) -> I32, |_inst, args: &[Slot]| {
        Err(Trap::host(format!("MPI_Abort called with code {}", args[1].i32())))
    });

    // mpiwasm_stats(ptr, cap_bytes) -> bytes_written: embedder extension
    // exposing this rank's ProtocolSnapshot as little-endian u64 words in
    // the fixed `ProtocolSnapshot::as_words` order, so guest benchmarks
    // can assert protocol behavior (e.g. zero-copy rendezvous counts,
    // prepost coverage) from inside the sandbox. Writes as many whole
    // words as fit in `cap_bytes`.
    mpi_fn!(linker, "mpiwasm_stats", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let cap = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let words = env.mpi.world().protocol_stats().as_words();
        let n = (cap as usize / 8).min(words.len());
        for (i, w) in words[..n].iter().enumerate() {
            mem.write_u64_at(ptr + (i as u32) * 8, *w)?;
        }
        Ok(vec![Slot::from_i32((n * 8) as i32)])
    });

    // MPI_Get_count(status_ptr, datatype, count_ptr). A byte count that
    // is not a whole number of datatype elements yields MPI_UNDEFINED
    // (MPI-4 §3.2.5) — flooring would silently misreport a truncated or
    // mismatched message as shorter-but-valid. Derived handles divide by
    // the type's packed (wire) size.
    mpi_fn!(linker, "MPI_Get_count", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let status_ptr = args[0].u32();
        let dt_h = args[1].i32();
        let out_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match resolve_dtype(env, dt_h) {
            Ok(dt) => {
                let bytes = mem.read_i32_at(status_ptr + 12)? as u32;
                let count = match dt.packed_size {
                    0 if bytes == 0 => 0,
                    0 => handles::MPI_UNDEFINED,
                    size if bytes % size == 0 => (bytes / size) as i32,
                    _ => handles::MPI_UNDEFINED,
                };
                mem.write_i32_at(out_ptr, count)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Get_elements(status_ptr, datatype, count_ptr): the number of
    // *basic* elements received — finer-grained than MPI_Get_count for
    // derived types, where a partial final element still has a defined
    // basic-element count as long as no primitive was split.
    mpi_fn!(linker, "MPI_Get_elements", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let status_ptr = args[0].u32();
        let dt_h = args[1].i32();
        let out_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match resolve_dtype(env, dt_h) {
            Ok(dt) => {
                let bytes = mem.read_i32_at(status_ptr + 12)? as u32;
                let n = dt
                    .elements_in(bytes)
                    .map_or(handles::MPI_UNDEFINED, |n| n as i32);
                mem.write_i32_at(out_ptr, n)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Iprobe(source, tag, comm, flag_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Iprobe", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let src = args[0].i32();
        let tag = args[1].i32();
        let comm_h = args[2].i32();
        let flag_ptr = args[3].u32();
        let status_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let probed = env
            .mpi
            .comm(comm_h)
            .and_then(|c| c.iprobe(source_of(src), tag_of(tag)));
        match probed {
            Ok(Some(st)) => {
                mem.write_i32_at(flag_ptr, 1)?;
                write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Ok(None) => {
                mem.write_i32_at(flag_ptr, 0)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Probe(source, tag, comm, status_ptr): blocking probe (see
    // blocking_probe for the progress structure).
    mpi_fn!(linker, "MPI_Probe", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let src = args[0].i32();
        let tag = args[1].i32();
        let comm_h = args[2].i32();
        let status_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = blocking_probe(
            env,
            comm_h,
            |c| c.iprobe(source_of(src), tag_of(tag)),
            |c| c.probe(source_of(src), tag_of(tag)),
        );
        match r {
            Ok(st) => {
                write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Improbe(source, tag, comm, flag_ptr, message_ptr, status_ptr):
    // non-blocking matched probe. On a hit the message is *extracted*
    // into the rank's message table (no concurrent receive can steal it)
    // and its handle is written to message_ptr.
    mpi_fn!(linker, "MPI_Improbe", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let src = args[0].i32();
        let tag = args[1].i32();
        let comm_h = args[2].i32();
        let flag_ptr = args[3].u32();
        let msg_ptr = args[4].u32();
        let status_ptr = args[5].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let probed = env
            .mpi
            .comm(comm_h)
            .and_then(|c| c.improbe(source_of(src), tag_of(tag)));
        match probed {
            Ok(Some((msg, st))) => {
                let h = env.mpi.insert_message(msg);
                mem.write_i32_at(flag_ptr, 1)?;
                mem.write_i32_at(msg_ptr, h)?;
                write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Ok(None) => {
                mem.write_i32_at(flag_ptr, 0)?;
                mem.write_i32_at(msg_ptr, handles::MPI_MESSAGE_NULL)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Mprobe(source, tag, comm, message_ptr, status_ptr): blocking
    // matched probe (see blocking_probe for the progress structure).
    mpi_fn!(linker, "MPI_Mprobe", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let src = args[0].i32();
        let tag = args[1].i32();
        let comm_h = args[2].i32();
        let msg_ptr = args[3].u32();
        let status_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = blocking_probe(
            env,
            comm_h,
            |c| c.improbe(source_of(src), tag_of(tag)),
            |c| c.mprobe(source_of(src), tag_of(tag)),
        );
        match r {
            Ok((msg, st)) => {
                let h = env.mpi.insert_message(msg);
                mem.write_i32_at(msg_ptr, h)?;
                write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Mrecv(buf, count, datatype, message_ptr, status_ptr): receive a
    // matched-probe message. Never blocks — the message was extracted at
    // probe time; only the delivery (copy, clock charge, rendezvous
    // completion) runs. The guest's message handle word is rewritten to
    // MPI_MESSAGE_NULL exactly when the message was consumed: a
    // translation failure *before* the message is taken leaves the handle
    // live (the guest can still Mrecv it, and the extracted message is
    // not stranded in the table with its sender parked on a handshake);
    // truncation consumes the message, so it nulls like a success.
    mpi_fn!(linker, "MPI_Mrecv", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let msg_ptr = args[3].u32();
        let status_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let handle = mem.read_i32_at(msg_ptr)?;
        if handle == handles::MPI_MESSAGE_NULL {
            let _ = write_status(mem, status_ptr, &Status::empty(), handles::MPI_SUCCESS);
            return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
        }
        let r = match translate_instrumented(env, count, dt_h) {
            Ok((_dt, bytes)) => match mem.slice_mut(buf, bytes) {
                Ok(view) => env.mpi.take_message(handle).map(|msg| msg.recv(view)),
                Err(_) => {
                    Err(MpiError::BadCount { bytes: bytes as usize, type_size: 1 })
                }
            },
            Err(e) => Err(e),
        };
        match r {
            Ok(received) => {
                // The message was consumed (delivered, or truncated with
                // the handshake completed): null the handle either way.
                mem.write_i32_at(msg_ptr, handles::MPI_MESSAGE_NULL)?;
                match received {
                    Ok(st) => {
                        write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
                    }
                    Err(e) => Ok(vec![Slot::from_i32(e.code())]),
                }
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Imrecv(buf, count, datatype, message_ptr, request_ptr): the
    // nonblocking matched receive — converts the message handle into a
    // request handle (completable on its first progress step).
    mpi_fn!(linker, "MPI_Imrecv", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let msg_ptr = args[3].u32();
        let req_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let handle = mem.read_i32_at(msg_ptr)?;
        if handle == handles::MPI_MESSAGE_NULL {
            mem.write_i32_at(req_ptr, handles::MPI_REQUEST_NULL)?;
            return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
        }
        let req = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_mut_ptr(), view.len());
            let msg = env.mpi.take_message(handle)?;
            Ok(unsafe { msg.imrecv_raw(ptr, len) })
        })();
        if req.is_ok() {
            mem.write_i32_at(msg_ptr, handles::MPI_MESSAGE_NULL)?;
        }
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Cancel(request_ptr): mark for cancellation. A pending send
    // still queued unmatched at the destination is retracted; a posted
    // unmatched receive is unposted; anything already matched completes
    // normally. Completion (Wait/Test) still retires the request, with
    // the outcome surfaced through MPI_Test_cancelled.
    mpi_fn!(linker, "MPI_Cancel", (I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        if handle <= 0 {
            return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
        }
        let r = env.mpi.request_mut(handle).map(|mut req| req.cancel());
        Ok(code(r))
    });

    // MPI_Test_cancelled(status_ptr, flag_ptr)
    mpi_fn!(linker, "MPI_Test_cancelled", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let status_ptr = args[0].u32();
        let flag_ptr = args[1].u32();
        let mem = &mut inst.memory;
        let cancelled = mem.read_i32_at(status_ptr + 16)?;
        mem.write_i32_at(flag_ptr, (cancelled != 0) as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // MPI_Init_thread(argc, argv, required, provided_ptr): the substrate
    // is MPI_THREAD_MULTIPLE-clean (lock-protected mailbox matching and
    // request table), so the granted level is simply the clamped request.
    mpi_fn!(linker, "MPI_Init_thread", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let required = args[2].i32();
        let provided_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.initialized = true;
        env.mpi.thread_level =
            required.clamp(handles::MPI_THREAD_SINGLE, handles::MPI_THREAD_MULTIPLE);
        env.mpi.charge_wasm_overhead();
        mem.write_i32_at(provided_ptr, env.mpi.thread_level)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // MPI_Query_thread(provided_ptr)
    mpi_fn!(linker, "MPI_Query_thread", (I32) -> I32, |inst, args: &[Slot]| {
        let provided_ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        mem.write_i32_at(provided_ptr, env.mpi.thread_level)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // MPI_Type_size(datatype, size_ptr): for derived handles this is the
    // packed (wire) size — the bytes one element contributes to a message.
    mpi_fn!(linker, "MPI_Type_size", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let dt_h = args[0].i32();
        let ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match resolve_dtype(env, dt_h) {
            Ok(dt) => {
                mem.write_i32_at(ptr, dt.packed_size as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Alloc_mem(size, info, baseptr_ptr): re-enters guest malloc (§3.7).
    mpi_fn!(linker, "MPI_Alloc_mem", (I32, I32, I32) -> I32, |inst: &mut Instance, args: &[Slot]| {
        let size = args[0].i32();
        let out_ptr = args[2].u32();
        if inst.export_func("malloc").is_none() {
            return Ok(vec![Slot::from_i32(2 /* MPI_ERR_COUNT-ish: no allocator */)]);
        }
        let results = inst.invoke("malloc", &[wasm_engine::Value::I32(size)])?;
        let guest_ptr = results.first().map(|v| v.as_i32()).transpose()?.unwrap_or(0);
        inst.memory.write_i32_at(out_ptr, guest_ptr)?;
        Ok(vec![Slot::from_i32(if guest_ptr == 0 { 2 } else { handles::MPI_SUCCESS })])
    });

    // MPI_Free_mem(ptr): re-enters guest free.
    mpi_fn!(linker, "MPI_Free_mem", (I32) -> I32, |inst: &mut Instance, args: &[Slot]| {
        if inst.export_func("free").is_none() {
            return Ok(vec![Slot::from_i32(2)]);
        }
        inst.invoke("free", &[wasm_engine::Value::I32(args[0].i32())])?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // --- nonblocking operations (MPI_Request = i32 handle, 0 = NULL) ---
    //
    // Requests are true pending operations in the substrate's progress
    // engine (see crate::env for the handle encoding). The buffers live in
    // the instance's linear memory, which the embedder pins while requests
    // are pending, so the raw-pointer substrate API is sound here.

    // MPI_Isend(buf, count, datatype, dest, tag, comm, request_ptr)
    mpi_fn!(linker, "MPI_Isend", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            if dt_h >= handles::FIRST_DERIVED_DATATYPE {
                // Pack-on-send into an owned payload: the guest may reuse
                // its buffer immediately, but the request must still be
                // completed (it carries the delivery handshake).
                let data = pack_guest(mem, env, buf, count, dt_h)?;
                let comm = env.mpi.comm(comm_h)?;
                return comm.isend_owned(data, dest as u32, tag);
            }
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.isend_raw(ptr, len, dest as u32, tag) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Irecv(buf, count, datatype, source, tag, comm, request_ptr)
    //
    // Derived-datatype handles are rejected here (and on MPI_Recv_init
    // and the collectives) by the primitive-handle translation: a
    // nonblocking unpack would need the staging buffer to outlive this
    // call. Guests receive derived types with the blocking MPI_Recv.
    mpi_fn!(linker, "MPI_Irecv", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let src = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            // The target region must be valid now, as real MPI requires.
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_mut_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.irecv_raw(ptr, len, source_of(src), tag_of(tag)) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Send_init(buf, count, datatype, dest, tag, comm, request_ptr)
    mpi_fn!(linker, "MPI_Send_init", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let req = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.send_init_raw(ptr, len, dest as u32, tag) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Recv_init(buf, count, datatype, source, tag, comm, request_ptr)
    mpi_fn!(linker, "MPI_Recv_init", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let src = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let req = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_mut_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.recv_init_raw(ptr, len, source_of(src), tag_of(tag)) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Start(request_ptr)
    mpi_fn!(linker, "MPI_Start", (I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        let r = env.mpi.request_mut(handle).and_then(|mut req| req.start());
        Ok(code(r))
    });

    // MPI_Startall(count, requests_ptr)
    mpi_fn!(linker, "MPI_Startall", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32();
        let reqs_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r = (|| {
            for i in 0..count.max(0) as u32 {
                let handle = mem.read_i32_at(reqs_ptr + i * 4).map_err(|_| {
                    MpiError::BadCount { bytes: count as usize * 4, type_size: 4 }
                })?;
                env.mpi.request_mut(handle)?.start()?;
            }
            Ok(())
        })();
        Ok(code(r))
    });

    // MPI_Request_free(request_ptr): active requests are completed first
    // (the simple rendering of "marked for deletion on completion").
    mpi_fn!(linker, "MPI_Request_free", (I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        if handle <= 0 {
            return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
        }
        let r = (|| {
            // MPI_Request_free must return immediately ("marked for
            // deletion on completion"). Receives and finished requests
            // are dropped outright — a freed speculative receive may
            // never match, and its message (if any) stays queued for
            // other receives. In-flight sends are *detached*: parked
            // alive until the peer drains them, since the payload must
            // still arrive. Only active nonblocking collectives — which
            // MPI-3 §5.12 forbids freeing — are driven to completion
            // rather than corrupting the schedule for every peer.
            enum Step {
                Detach,
                Retired,
                Pending,
            }
            let mut spins = 0u32;
            loop {
                // Scope the table guard: detach/progress_all below re-take
                // the table lock.
                let step = {
                    let mut req = env.mpi.request_mut(handle)?;
                    if req.safe_to_detach() || req.completes_passively() {
                        Step::Detach
                    } else {
                        req.progress();
                        if req.is_complete() {
                            let _ = req.take_result();
                            Step::Retired
                        } else {
                            Step::Pending
                        }
                    }
                };
                match step {
                    Step::Detach => {
                        env.mpi.detach_request(handle)?;
                        return Ok(());
                    }
                    Step::Retired => break,
                    Step::Pending => {
                        env.mpi.progress_all();
                        backoff(&mut spins);
                    }
                }
            }
            env.mpi.remove_request(handle)?;
            Ok(())
        })();
        if r.is_ok() {
            mem.write_i32_at(req_ptr, handles::MPI_REQUEST_NULL)?;
        }
        Ok(code(r))
    });

    // MPI_Wait(request_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Wait", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let status_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        let r = wait_one(mem, env, req_ptr, handle, status_ptr);
        Ok(code(r))
    });

    // MPI_Waitall(count, requests_ptr, statuses_ptr). Tolerates
    // MPI_STATUSES_IGNORE; every completed handle is rewritten to
    // MPI_REQUEST_NULL even when a later request fails (the first error
    // code is returned after attempting every request).
    mpi_fn!(linker, "MPI_Waitall", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32();
        let reqs_ptr = args[1].u32();
        let statuses_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let mut first_err: Option<MpiError> = None;
        for i in 0..count.max(0) as u32 {
            let handle = match mem.read_i32_at(reqs_ptr + i * 4) {
                Ok(h) => h,
                Err(_) => {
                    first_err.get_or_insert(MpiError::BadCount {
                        bytes: count as usize * 4,
                        type_size: 4,
                    });
                    continue;
                }
            };
            if let Err(e) = wait_one(mem, env, reqs_ptr + i * 4, handle, status_slot(statuses_ptr, i)) {
                first_err.get_or_insert(e);
            }
        }
        Ok(code(first_err.map_or(Ok(()), Err)))
    });

    // MPI_Waitany(count, requests_ptr, index_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Waitany", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32().max(0) as u32;
        let reqs_ptr = args[1].u32();
        let index_ptr = args[2].u32();
        let status_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let mut spins = 0u32;
        loop {
            let mut any_active = false;
            for i in 0..count {
                match scan_slot(mem, env, reqs_ptr + i * 4)? {
                    None => {}
                    Some(Completion::NotReady) => any_active = true,
                    Some(Completion::Done(st)) => {
                        mem.write_i32_at(index_ptr, i as i32)?;
                        write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                        return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
                    }
                    Some(Completion::Error(e)) => {
                        mem.write_i32_at(index_ptr, i as i32)?;
                        let _ = write_status(mem, status_ptr, &Status::empty(), e.code());
                        return Ok(vec![Slot::from_i32(e.code())]);
                    }
                }
            }
            if !any_active {
                mem.write_i32_at(index_ptr, handles::MPI_UNDEFINED)?;
                let _ = write_status(mem, status_ptr, &Status::empty(), handles::MPI_SUCCESS);
                return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
            }
            env.mpi.progress_all();
            backoff(&mut spins);
        }
    });

    // MPI_Waitsome(incount, requests_ptr, outcount_ptr, indices_ptr,
    //              statuses_ptr)
    mpi_fn!(linker, "MPI_Waitsome", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let incount = args[0].i32().max(0) as u32;
        let reqs_ptr = args[1].u32();
        let outcount_ptr = args[2].u32();
        let indices_ptr = args[3].u32();
        let statuses_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let mut spins = 0u32;
        loop {
            let mut any_active = false;
            let mut ndone = 0u32;
            let mut first_err: Option<MpiError> = None;
            for i in 0..incount {
                match scan_slot(mem, env, reqs_ptr + i * 4)? {
                    None => {}
                    Some(Completion::NotReady) => any_active = true,
                    Some(Completion::Done(st)) => {
                        mem.write_i32_at(indices_ptr + ndone * 4, i as i32)?;
                        write_status(mem, status_slot(statuses_ptr, ndone), &st, handles::MPI_SUCCESS)?;
                        ndone += 1;
                    }
                    Some(Completion::Error(e)) => {
                        // A failed request is still a completed request:
                        // report its slot with the error latched in its
                        // status word and finish the pass, so one dead
                        // peer cannot hide the live completions behind it
                        // (ULFM-style partial failure).
                        mem.write_i32_at(indices_ptr + ndone * 4, i as i32)?;
                        write_status(
                            mem,
                            status_slot(statuses_ptr, ndone),
                            &Status::empty(),
                            e.code(),
                        )?;
                        ndone += 1;
                        first_err.get_or_insert(e);
                    }
                }
            }
            if ndone > 0 {
                mem.write_i32_at(outcount_ptr, ndone as i32)?;
                return Ok(code(first_err.map_or(Ok(()), Err)));
            }
            if !any_active {
                mem.write_i32_at(outcount_ptr, handles::MPI_UNDEFINED)?;
                return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
            }
            env.mpi.progress_all();
            backoff(&mut spins);
        }
    });

    // MPI_Test(request_ptr, flag_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Test", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let flag_ptr = args[1].u32();
        let status_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        if handle <= 0 {
            mem.write_i32_at(flag_ptr, 1)?;
            let _ = write_status(mem, status_ptr, &Status::empty(), handles::MPI_SUCCESS);
            return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
        }
        let completion = match try_complete(mem, env, req_ptr, handle) {
            Ok(c) => c,
            Err(e) => return Ok(vec![Slot::from_i32(e.code())]),
        };
        match completion {
            Completion::Done(st) => {
                mem.write_i32_at(flag_ptr, 1)?;
                write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
            }
            Completion::NotReady => mem.write_i32_at(flag_ptr, 0)?,
            Completion::Error(e) => {
                // Leave the out-params benign even on failure: guests
                // that forget to check the return code must not act on a
                // stale flag word. The status still carries the error.
                let _ = mem.write_i32_at(flag_ptr, 0);
                let _ = write_status(mem, status_ptr, &Status::empty(), e.code());
                return Ok(vec![Slot::from_i32(e.code())]);
            }
        }
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // MPI_Testall(count, requests_ptr, flag_ptr, statuses_ptr)
    mpi_fn!(linker, "MPI_Testall", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32().max(0) as u32;
        let reqs_ptr = args[1].u32();
        let flag_ptr = args[2].u32();
        let statuses_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        // First pass: progress everything, check completion.
        let mut all_done = true;
        for i in 0..count {
            let handle = mem.read_i32_at(reqs_ptr + i * 4)?;
            if handle <= 0 {
                continue;
            }
            match progress_handle(env, handle) {
                Ok(complete) => all_done &= complete,
                Err(e) => return Ok(vec![Slot::from_i32(e.code())]),
            }
        }
        if !all_done {
            mem.write_i32_at(flag_ptr, 0)?;
            return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
        }
        // Second pass: retire everything, statuses in request order; the
        // first latched error is reported after all requests are retired.
        let mut first_err: Option<MpiError> = None;
        for i in 0..count {
            let handle = mem.read_i32_at(reqs_ptr + i * 4)?;
            let st_ptr = status_slot(statuses_ptr, i);
            if handle <= 0 {
                let _ = write_status(mem, st_ptr, &Status::empty(), handles::MPI_SUCCESS);
                continue;
            }
            let (persistent, outcome) = match retire_handle(env, handle) {
                Ok(v) => v,
                Err(e) => return Ok(vec![Slot::from_i32(e.code())]),
            };
            if !persistent {
                let _ = env.mpi.remove_request(handle);
                mem.write_i32_at(reqs_ptr + i * 4, handles::MPI_REQUEST_NULL)?;
            }
            match outcome {
                Ok(st) => write_status(mem, st_ptr, &st, handles::MPI_SUCCESS)?,
                Err(e) => {
                    write_status(mem, st_ptr, &Status::empty(), e.code())?;
                    first_err.get_or_insert(e);
                }
            }
        }
        mem.write_i32_at(flag_ptr, 1)?;
        Ok(code(first_err.map_or(Ok(()), Err)))
    });

    // MPI_Testany(count, requests_ptr, index_ptr, flag_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Testany", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32().max(0) as u32;
        let reqs_ptr = args[1].u32();
        let index_ptr = args[2].u32();
        let flag_ptr = args[3].u32();
        let status_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let mut any_active = false;
        for i in 0..count {
            match scan_slot(mem, env, reqs_ptr + i * 4)? {
                None => {}
                Some(Completion::NotReady) => any_active = true,
                Some(Completion::Done(st)) => {
                    mem.write_i32_at(index_ptr, i as i32)?;
                    mem.write_i32_at(flag_ptr, 1)?;
                    write_status(mem, status_ptr, &st, handles::MPI_SUCCESS)?;
                    return Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)]);
                }
                Some(Completion::Error(e)) => {
                    // Benign out-params on failure (see MPI_Test).
                    let _ = mem.write_i32_at(flag_ptr, 0);
                    let _ = mem.write_i32_at(index_ptr, handles::MPI_UNDEFINED);
                    return Ok(vec![Slot::from_i32(e.code())]);
                }
            }
        }
        // Testany with nothing ready: flag=0, index=MPI_UNDEFINED (MPI
        // 3.1 §3.7.5); with nothing active at all, MPI sets flag=1 with
        // the empty status and index MPI_UNDEFINED.
        if any_active {
            mem.write_i32_at(index_ptr, handles::MPI_UNDEFINED)?;
            mem.write_i32_at(flag_ptr, 0)?;
        } else {
            mem.write_i32_at(index_ptr, handles::MPI_UNDEFINED)?;
            mem.write_i32_at(flag_ptr, 1)?;
            let _ = write_status(mem, status_ptr, &Status::empty(), handles::MPI_SUCCESS);
        }
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // --- nonblocking collectives ---------------------------------------

    // MPI_Ibarrier(comm, request_ptr)
    mpi_fn!(linker, "MPI_Ibarrier", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let req_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = env.mpi.comm(comm_h).and_then(|c| c.ibarrier());
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Ibcast(buf, count, datatype, root, comm, request_ptr)
    mpi_fn!(linker, "MPI_Ibcast", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let root = args[3].i32();
        let comm_h = args[4].i32();
        let req_ptr = args[5].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_mut_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.ibcast_raw(ptr, len, root as u32) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Iallreduce(sendbuf, recvbuf, count, datatype, op, comm,
    //                request_ptr)
    mpi_fn!(linker, "MPI_Iallreduce", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let rbuf = args[1].u32();
        let count = args[2].i32();
        let dt_h = args[3].i32();
        let op_h = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let op = op_from_handle(op_h)?;
            let (sview, rview) = mem
                .disjoint_pair((sbuf, bytes), (rbuf, bytes))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
            let send: &[u8] = sview;
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.iallreduce_raw(send, rptr, rlen, dt, op) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Ireduce(sendbuf, recvbuf, count, datatype, op, root, comm,
    //             request_ptr)
    mpi_fn!(linker, "MPI_Ireduce", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let rbuf = args[1].u32();
        let count = args[2].i32();
        let dt_h = args[3].i32();
        let op_h = args[4].i32();
        let root = args[5].i32();
        let comm_h = args[6].i32();
        let req_ptr = args[7].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let op = op_from_handle(op_h)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, bytes), (rbuf, bytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                let send: &[u8] = sview;
                let comm = env.mpi.comm(comm_h)?;
                unsafe { comm.ireduce_raw(send, rptr, rlen, dt, op, root as u32) }
            } else {
                let sview = mem.slice(sbuf, bytes).map_err(|_| MpiError::BadCount {
                    bytes: bytes as usize,
                    type_size: 1,
                })?;
                unsafe {
                    comm.ireduce_raw(sview, std::ptr::null_mut(), 0, dt, op, root as u32)
                }
            }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Igather(sbuf, scount, stype, rbuf, rcount, rtype, root, comm,
    //             request_ptr)
    mpi_fn!(linker, "MPI_Igather", (I32, I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let root = args[6].i32();
        let comm_h = args[7].i32();
        let req_ptr = args[8].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
                let comm = env.mpi.comm(comm_h)?;
                let total = rbytes_each * comm.size();
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, sbytes), (rbuf, total))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                unsafe {
                    comm.igather_raw(sview.as_ptr(), sview.len(), rptr, rlen, root as u32)
                }
            } else {
                let sview = mem.slice(sbuf, sbytes).map_err(|_| MpiError::BadCount {
                    bytes: sbytes as usize,
                    type_size: 1,
                })?;
                unsafe {
                    comm.igather_raw(
                        sview.as_ptr(),
                        sview.len(),
                        std::ptr::null_mut(),
                        0,
                        root as u32,
                    )
                }
            }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Iscatter(sbuf, scount, stype, rbuf, rcount, rtype, root, comm,
    //              request_ptr)
    mpi_fn!(linker, "MPI_Iscatter", (I32, I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let root = args[6].i32();
        let comm_h = args[7].i32();
        let req_ptr = args[8].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_rdt, rbytes) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (_sdt, sbytes_each) = translate_instrumented(env, scount, stype)?;
                let comm = env.mpi.comm(comm_h)?;
                let total = sbytes_each * comm.size();
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, total), (rbuf, rbytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
                unsafe {
                    comm.iscatter_raw(sview.as_ptr(), sview.len(), rptr, rlen, root as u32)
                }
            } else {
                let rview = mem.slice_mut(rbuf, rbytes).map_err(|_| MpiError::BadCount {
                    bytes: rbytes as usize,
                    type_size: 1,
                })?;
                unsafe {
                    comm.iscatter_raw(
                        std::ptr::null(),
                        0,
                        rview.as_mut_ptr(),
                        rview.len(),
                        root as u32,
                    )
                }
            }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Iallgather(sbuf, scount, stype, rbuf, rcount, rtype, comm,
    //                request_ptr)
    mpi_fn!(linker, "MPI_Iallgather", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let comm_h = args[6].i32();
        let req_ptr = args[7].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
            let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            let total = rbytes_each * comm.size();
            let (sview, rview) = mem
                .disjoint_pair((sbuf, sbytes), (rbuf, total))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
            let send: &[u8] = sview;
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.iallgather_raw(send, rptr, rlen) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Ialltoall(sbuf, scount, stype, rbuf, rcount, rtype, comm,
    //               request_ptr)
    mpi_fn!(linker, "MPI_Ialltoall", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let comm_h = args[6].i32();
        let req_ptr = args[7].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            let (_sdt, sbytes_each) = translate_instrumented(env, scount, stype)?;
            let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            let stotal = sbytes_each * comm.size();
            let rtotal = rbytes_each * comm.size();
            let (sview, rview) = mem
                .disjoint_pair((sbuf, stotal), (rbuf, rtotal))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            let (rptr, rlen) = (rview.as_mut_ptr(), rview.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.ialltoall_raw(sview.as_ptr(), sview.len(), rptr, rlen) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Ialltoallv(sbuf, scounts, sdispls, stype,
    //                rbuf, rcounts, rdispls, rtype, comm, request_ptr)
    {
        let params = vec![I32; 10];
        linker.func("env", "MPI_Ialltoallv", FuncType::new(params, vec![I32]), |inst, args| {
            let req_ptr = args[9].u32();
            let (mem, data) = inst.parts();
            let env = env_of(data);
            env.mpi.charge_wasm_overhead();
            let req = alltoallv_request(
                mem,
                env,
                args[0].u32(),
                args[1].u32(),
                args[2].u32(),
                args[3].i32(),
                args[4].u32(),
                args[5].u32(),
                args[6].u32(),
                args[7].i32(),
                args[8].i32(),
            );
            finish_request(mem, env, req_ptr, req)
        });
    }

    // MPI_Get_processor_name(name_ptr, resultlen_ptr)
    mpi_fn!(linker, "MPI_Get_processor_name", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let name_ptr = args[0].u32();
        let len_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let name = format!("mpiwasm-rank-{}", env.mpi.world().rank());
        mem.slice_mut(name_ptr, name.len() as u32 + 1)?[..name.len()]
            .copy_from_slice(name.as_bytes());
        mem.slice_mut(name_ptr + name.len() as u32, 1)?[0] = 0;
        mem.write_i32_at(len_ptr, name.len() as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // --- derived datatypes (pack-on-send / unpack-on-recv) --------------
    //
    // Constructors flatten to a segment list at creation time (see
    // crate::translate::DerivedDatatype), so the communication paths only
    // ever walk a flat list. The wire format of a derived-type send is
    // byte-identical to a manually packed send.

    // MPI_Type_contiguous(count, oldtype, newtype_ptr)
    mpi_fn!(linker, "MPI_Type_contiguous", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32();
        let old_h = args[1].i32();
        let out_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r = (|| {
            if count < 0 {
                return Err(MpiError::BadCount { bytes: count as isize as usize, type_size: 1 });
            }
            let inner = resolve_dtype(env, old_h)?;
            DerivedDatatype::contiguous(count as u32, &inner)
        })();
        match r {
            Ok(dt) => {
                let h = env.mpi.insert_dtype(dt);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Type_vector(count, blocklength, stride, oldtype, newtype_ptr).
    // Strides are in oldtype elements; negative and block-overlapping
    // strides are rejected (the symmetric pack/unpack table cannot
    // represent overlap).
    mpi_fn!(linker, "MPI_Type_vector", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32();
        let blocklen = args[1].i32();
        let stride = args[2].i32();
        let old_h = args[3].i32();
        let out_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r = (|| {
            if count < 0 || blocklen < 0 || stride < 0 {
                return Err(MpiError::BadCount {
                    bytes: count.min(blocklen).min(stride) as isize as usize,
                    type_size: 1,
                });
            }
            let inner = resolve_dtype(env, old_h)?;
            DerivedDatatype::vector(count as u32, blocklen as u32, stride as u32, &inner)
        })();
        match r {
            Ok(dt) => {
                let h = env.mpi.insert_dtype(dt);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Type_create_struct(count, blocklengths_ptr, displacements_ptr,
    //                        types_ptr, newtype_ptr). Displacements are
    // byte offsets (MPI_Aint is i32 in the 32-bit guest ABI) and must be
    // non-negative; the guest controls padding through them explicitly.
    mpi_fn!(linker, "MPI_Type_create_struct", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32();
        let lens_ptr = args[1].u32();
        let displs_ptr = args[2].u32();
        let types_ptr = args[3].u32();
        let out_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r = (|| {
            if count < 0 {
                return Err(MpiError::BadCount { bytes: count as isize as usize, type_size: 1 });
            }
            let mut resolved: Vec<(u32, u32, DerivedDatatype)> =
                Vec::with_capacity(count as usize);
            for i in 0..count as u32 {
                let read = |p: u32| {
                    mem.read_i32_at(p + i * 4).map_err(|_| MpiError::BadCount {
                        bytes: count as usize * 4,
                        type_size: 4,
                    })
                };
                let (blen, displ, th) = (read(lens_ptr)?, read(displs_ptr)?, read(types_ptr)?);
                if blen < 0 || displ < 0 {
                    return Err(MpiError::BadCount {
                        bytes: blen.min(displ) as isize as usize,
                        type_size: 1,
                    });
                }
                resolved.push((blen as u32, displ as u32, resolve_dtype(env, th)?));
            }
            let blocks: Vec<(u32, u32, &DerivedDatatype)> =
                resolved.iter().map(|(c, d, t)| (*c, *d, t)).collect();
            DerivedDatatype::structure(&blocks)
        })();
        match r {
            Ok(dt) => {
                let h = env.mpi.insert_dtype(dt);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Type_commit(type_ptr)
    mpi_fn!(linker, "MPI_Type_commit", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let h = mem.read_i32_at(ptr)?;
        Ok(code(env.mpi.commit_dtype(h)))
    });

    // MPI_Type_free(type_ptr): frees the slot and nulls the guest handle.
    // Packing is eager at each send/receive, so no in-flight operation
    // can reference a freed type.
    mpi_fn!(linker, "MPI_Type_free", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let h = mem.read_i32_at(ptr)?;
        let r = env.mpi.free_dtype(h);
        if r.is_ok() {
            mem.write_i32_at(ptr, handles::MPI_DATATYPE_NULL)?;
        }
        Ok(code(r))
    });

    // --- send modes -----------------------------------------------------

    // MPI_Ssend(buf, count, datatype, dest, tag, comm): synchronous mode —
    // completion implies the receiver matched the message. Above the
    // rendezvous threshold the standard path already has this property;
    // below it the substrate runs a receipt-acknowledged deferred-eager
    // variant (the payload parks in a rendezvous slot the receiver must
    // consume before the send completes).
    mpi_fn!(linker, "MPI_Ssend", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            if dt_h >= handles::FIRST_DERIVED_DATATYPE {
                let data = pack_guest(mem, env, buf, count, dt_h)?;
                let comm = env.mpi.comm(comm_h)?;
                return comm.issend_owned(data, dest as u32, tag);
            }
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.issend_raw(ptr, len, dest as u32, tag) }
        })();
        let r = req.and_then(|mut req| wait_local(env, &mut req).map(|_| ()));
        Ok(code(r))
    });

    // MPI_Issend(buf, count, datatype, dest, tag, comm, request_ptr)
    mpi_fn!(linker, "MPI_Issend", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let req = (|| {
            if dt_h >= handles::FIRST_DERIVED_DATATYPE {
                let data = pack_guest(mem, env, buf, count, dt_h)?;
                let comm = env.mpi.comm(comm_h)?;
                return comm.issend_owned(data, dest as u32, tag);
            }
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let (ptr, len) = (view.as_ptr(), view.len());
            let comm = env.mpi.comm(comm_h)?;
            unsafe { comm.issend_raw(ptr, len, dest as u32, tag) }
        })();
        finish_request(mem, env, req_ptr, req)
    });

    // MPI_Buffer_attach(buf, size): one attached buffer at a time, as MPI
    // requires. The buffer is pure accounting (see buffered_send).
    mpi_fn!(linker, "MPI_Buffer_attach", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let size = args[1].i32();
        let env = env_of(inst.parts().1);
        if size < 0 {
            return Ok(vec![Slot::from_i32(
                MpiError::BadCount { bytes: size as isize as usize, type_size: 1 }.code(),
            )]);
        }
        Ok(code(env.mpi.attach_buffer(ptr, size as u32)))
    });

    // MPI_Buffer_detach(bufptr_ptr, size_ptr): returns the attached
    // buffer's address and size. Outstanding buffered messages live as
    // detached owned-payload requests in the rank's table — they no
    // longer reference the guest buffer, so detach need not block.
    mpi_fn!(linker, "MPI_Buffer_detach", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf_ptr = args[0].u32();
        let size_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.detach_buffer() {
            Ok((ptr, size)) => {
                mem.write_i32_at(buf_ptr, ptr as i32)?;
                mem.write_i32_at(size_ptr, size as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Bsend(buf, count, datatype, dest, tag, comm): buffered mode —
    // completes locally once the payload is copied out of guest memory.
    mpi_fn!(linker, "MPI_Bsend", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        Ok(code(buffered_send(mem, env, buf, count, dt_h, dest, tag, comm_h)))
    });

    // MPI_Ibsend(buf, count, datatype, dest, tag, comm, request_ptr):
    // like MPI_Bsend but returns a request. A buffered send is complete
    // the moment it is initiated (the payload is owned), so the request
    // handle is immediately MPI_REQUEST_NULL — waiting on it is a no-op,
    // which is exactly the buffered-mode completion contract.
    mpi_fn!(linker, "MPI_Ibsend", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = buffered_send(mem, env, buf, count, dt_h, dest, tag, comm_h);
        if r.is_ok() {
            mem.write_i32_at(req_ptr, handles::MPI_REQUEST_NULL)?;
        }
        Ok(code(r))
    });

    // --- communicator groups --------------------------------------------
    //
    // A group handle names an ordered world-rank list in the rank's local
    // group table (handles are local, as in MPI). Set operations are pure
    // list manipulation; only MPI_Comm_create communicates.

    // MPI_Comm_group(comm, group_ptr)
    mpi_fn!(linker, "MPI_Comm_group", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let out_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.comm(comm_h).map(|c| c.group_world_ranks()) {
            Ok(ranks) => {
                let h = env.mpi.insert_group(ranks);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Group_size(group, size_ptr)
    mpi_fn!(linker, "MPI_Group_size", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let group_h = args[0].i32();
        let out_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.group(group_h) {
            Ok(g) => {
                let n = g.len() as i32;
                mem.write_i32_at(out_ptr, n)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Group_rank(group, rank_ptr): the calling rank's position in the
    // group, or MPI_UNDEFINED when it is not a member.
    mpi_fn!(linker, "MPI_Group_rank", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let group_h = args[0].i32();
        let out_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let me = env.mpi.world().rank();
        match env.mpi.group(group_h) {
            Ok(g) => {
                let rank = g
                    .iter()
                    .position(|&w| w == me)
                    .map_or(handles::MPI_UNDEFINED, |i| i as i32);
                mem.write_i32_at(out_ptr, rank)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Group_incl(group, n, ranks_ptr, newgroup_ptr)
    mpi_fn!(linker, "MPI_Group_incl", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let group_h = args[0].i32();
        let n = args[1].i32();
        let ranks_ptr = args[2].u32();
        let out_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r: Result<Vec<u32>, MpiError> = (|| {
            let g = env.mpi.group(group_h)?;
            let mut picked = Vec::with_capacity(n.max(0) as usize);
            for i in 0..n.max(0) as u32 {
                let idx = mem.read_i32_at(ranks_ptr + i * 4).map_err(|_| {
                    MpiError::BadCount { bytes: n as usize * 4, type_size: 4 }
                })?;
                let w = *g.get(idx.max(0) as usize).filter(|_| idx >= 0).ok_or(
                    MpiError::InvalidRank { rank: idx as u32, size: g.len() as u32 },
                )?;
                picked.push(w);
            }
            Ok(picked)
        })();
        match r {
            Ok(picked) => {
                let h = env.mpi.insert_group(picked);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Group_excl(group, n, ranks_ptr, newgroup_ptr): the complement,
    // preserving the original order.
    mpi_fn!(linker, "MPI_Group_excl", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let group_h = args[0].i32();
        let n = args[1].i32();
        let ranks_ptr = args[2].u32();
        let out_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r = (|| {
            let g = env.mpi.group(group_h)?;
            let mut drop = vec![false; g.len()];
            for i in 0..n.max(0) as u32 {
                let idx = mem.read_i32_at(ranks_ptr + i * 4).map_err(|_| {
                    MpiError::BadCount { bytes: n as usize * 4, type_size: 4 }
                })?;
                if idx < 0 || idx as usize >= g.len() {
                    return Err(MpiError::InvalidRank {
                        rank: idx as u32,
                        size: g.len() as u32,
                    });
                }
                drop[idx as usize] = true;
            }
            Ok(g.iter()
                .enumerate()
                .filter(|(i, _)| !drop[*i])
                .map(|(_, &w)| w)
                .collect::<Vec<u32>>())
        })();
        match r {
            Ok(kept) => {
                let h = env.mpi.insert_group(kept);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Group_free(group_ptr)
    mpi_fn!(linker, "MPI_Group_free", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let h = mem.read_i32_at(ptr)?;
        let r = env.mpi.free_group(h);
        if r.is_ok() {
            mem.write_i32_at(ptr, handles::MPI_GROUP_NULL)?;
        }
        Ok(code(r))
    });

    // MPI_Comm_create(comm, group, newcomm_ptr): collective over comm —
    // every member must pass a group with the same membership (verified
    // by an allgathered hash, like MPI's erroneous-usage check). Members
    // of the group get the new communicator; everyone else gets
    // MPI_COMM_NULL.
    mpi_fn!(linker, "MPI_Comm_create", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let group_h = args[1].i32();
        let out_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let world_ranks = env.mpi.group(group_h)?.clone();
            let comm = env.mpi.comm(comm_h)?;
            comm.create_from_group(&world_ranks)
        })();
        match r {
            Ok(Some(new_comm)) => {
                let h = env.mpi.insert_comm(new_comm);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Ok(None) => {
                mem.write_i32_at(out_ptr, handles::MPI_COMM_NULL)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });
}

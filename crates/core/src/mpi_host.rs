//! The `env.MPI_*` host functions (paper §3.7).
//!
//! Every function follows the same pattern the paper describes: translate
//! the guest's 32-bit handles and addresses (crate-level [`crate::translate`]),
//! then defer to the host MPI library with zero-copy buffer views over the
//! instance's linear memory. MPI failures surface as guest-visible MPI
//! error codes; engine-level faults (out-of-bounds addresses) trap.
//!
//! `MPI_Alloc_mem`/`MPI_Free_mem` are the special case of §3.7: the host
//! MPI library's allocator would return 64-bit host addresses that mean
//! nothing inside the guest's 32-bit memory, so the embedder re-enters the
//! guest's exported `malloc`/`free` instead.

use std::any::Any;
use std::time::Instant;

use mpi_substrate::{Comm, MpiError, Source, Status, Tag};
use wasm_engine::error::Trap;
use wasm_engine::runtime::{Instance, Linker, Memory, Slot};
use wasm_engine::types::{FuncType, ValType};

use crate::env::Env;
use crate::translate::{byte_len, datatype_from_handle, handles, op_from_handle};

/// Guest-side `MPI_Status` layout (our `mpi.h` equivalent):
/// `{ i32 MPI_SOURCE; i32 MPI_TAG; i32 MPI_ERROR; i32 count_bytes }`.
pub const STATUS_SIZE: u32 = 16;

fn env_of(data: &mut (dyn Any + Send)) -> &mut Env {
    data.downcast_mut::<Env>().expect("instance data is not an mpiwasm Env")
}

fn code(r: Result<(), MpiError>) -> Vec<Slot> {
    vec![Slot::from_i32(match r {
        Ok(()) => handles::MPI_SUCCESS,
        Err(e) => e.code(),
    })]
}

fn write_status(mem: &mut Memory, ptr: u32, st: &Status) -> Result<(), Trap> {
    if ptr == handles::MPI_STATUS_IGNORE as u32 {
        return Ok(());
    }
    mem.write_i32_at(ptr, st.source as i32)?;
    mem.write_i32_at(ptr + 4, st.tag)?;
    mem.write_i32_at(ptr + 8, 0)?;
    mem.write_i32_at(ptr + 12, st.bytes as i32)?;
    Ok(())
}

fn source_of(h: i32) -> Source {
    if h == handles::MPI_ANY_SOURCE {
        Source::Any
    } else {
        Source::Rank(h as u32)
    }
}

fn tag_of(h: i32) -> Tag {
    if h == handles::MPI_ANY_TAG {
        Tag::Any
    } else {
        Tag::Value(h)
    }
}

/// Complete one nonblocking request: no-op for finished sends, a real
/// (blocking) receive into guest memory for deferred receives.
fn complete_request(
    mem: &mut Memory,
    env: &mut Env,
    handle: i32,
    status_ptr: u32,
) -> Result<(), MpiError> {
    match env.mpi.take_request(handle)? {
        crate::env::PendingRequest::Done => Ok(()),
        crate::env::PendingRequest::Recv { comm, buf, bytes, src, tag } => {
            let comm = env.mpi.comm(comm)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let st = comm.recv(view, source_of(src), tag_of(tag))?;
            let _ = write_status(mem, status_ptr, &st);
            Ok(())
        }
    }
}

/// Translate `(count, datatype_handle)` on an instrumented path: returns
/// the host datatype and byte length, recording the translation time when
/// instrumentation is on (§4.6).
fn translate_instrumented(
    env: &mut Env,
    count: i32,
    dt_handle: i32,
) -> Result<(mpi_substrate::Datatype, u32), MpiError> {
    if env.mpi.instrument {
        let t0 = Instant::now();
        let dt = datatype_from_handle(dt_handle)?;
        let bytes = byte_len(count, dt)?;
        let ns = t0.elapsed().as_nanos() as f64;
        env.mpi.stats.record(dt, bytes.max(1), ns);
        Ok((dt, bytes))
    } else {
        let dt = datatype_from_handle(dt_handle)?;
        let bytes = byte_len(count, dt)?;
        Ok((dt, bytes))
    }
}

macro_rules! mpi_fn {
    ($linker:expr, $name:literal, ($($p:expr),*) -> $r:expr, $body:expr) => {
        $linker.func("env", $name, FuncType::new(vec![$($p),*], vec![$r]), $body);
    };
}

/// Register every MPI function the embedder provides.
pub fn register_mpi(linker: &mut Linker) {
    use ValType::{F64, I32};

    mpi_fn!(linker, "MPI_Init", (I32, I32) -> I32, |inst, _args| {
        let env = env_of(inst.parts().1);
        env.mpi.initialized = true;
        env.mpi.charge_wasm_overhead();
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    mpi_fn!(linker, "MPI_Finalize", () -> I32, |inst: &mut Instance, _args: &[Slot]| {
        let env = env_of(inst.parts().1);
        env.mpi.finalized = true;
        env.mpi.charge_wasm_overhead();
        // Ranks synchronize at finalize, as real MPI implementations do.
        let r = env.mpi.world().barrier();
        Ok(code(r))
    });

    mpi_fn!(linker, "MPI_Initialized", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        mem.write_i32_at(ptr, env.mpi.initialized as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    mpi_fn!(linker, "MPI_Finalized", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        mem.write_i32_at(ptr, env.mpi.finalized as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    mpi_fn!(linker, "MPI_Comm_rank", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let (comm_h, ptr) = (args[0].i32(), args[1].u32());
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.comm(comm_h) {
            Ok(c) => {
                mem.write_i32_at(ptr, c.rank() as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    mpi_fn!(linker, "MPI_Comm_size", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let (comm_h, ptr) = (args[0].i32(), args[1].u32());
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.comm(comm_h) {
            Ok(c) => {
                mem.write_i32_at(ptr, c.size() as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Send(buf, count, datatype, dest, tag, comm)
    mpi_fn!(linker, "MPI_Send", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let comm = env.mpi.comm(comm_h)?;
            // Zero-copy: the slice *is* guest memory (§3.5).
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            comm.send(view, dest as u32, tag)
        })();
        Ok(code(r))
    });

    // MPI_Recv(buf, count, datatype, source, tag, comm, status)
    mpi_fn!(linker, "MPI_Recv", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let src = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let status_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let mut status = None;
        let r = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let comm = env.mpi.comm(comm_h)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            let st = comm.recv(view, source_of(src), tag_of(tag))?;
            status = Some(st);
            Ok(())
        })();
        if let Some(st) = status {
            write_status(mem, status_ptr, &st)?;
        }
        Ok(code(r))
    });

    // MPI_Sendrecv(sbuf, scount, stype, dest, stag,
    //              rbuf, rcount, rtype, source, rtag, comm, status)
    {
        let params = vec![I32; 12];
        linker.func("env", "MPI_Sendrecv", FuncType::new(params, vec![I32]), |inst, args| {
            let sbuf = args[0].u32();
            let scount = args[1].i32();
            let stype = args[2].i32();
            let dest = args[3].i32();
            let stag = args[4].i32();
            let rbuf = args[5].u32();
            let rcount = args[6].i32();
            let rtype = args[7].i32();
            let src = args[8].i32();
            let rtag = args[9].i32();
            let comm_h = args[10].i32();
            let status_ptr = args[11].u32();
            let (mem, data) = inst.parts();
            let env = env_of(data);
            env.mpi.charge_wasm_overhead();
            let mut status = None;
            let r = (|| {
                let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
                let (_rdt, rbytes) = translate_instrumented(env, rcount, rtype)?;
                let comm = env.mpi.comm(comm_h)?;
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, sbytes), (rbuf, rbytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                let st = comm.sendrecv(
                    sview,
                    dest as u32,
                    stag,
                    rview,
                    source_of(src),
                    tag_of(rtag),
                )?;
                status = Some(st);
                Ok(())
            })();
            if let Some(st) = status {
                write_status(mem, status_ptr, &st)?;
            }
            Ok(code(r))
        });
    }

    mpi_fn!(linker, "MPI_Barrier", (I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let env = env_of(inst.parts().1);
        env.mpi.charge_wasm_overhead();
        let r = env.mpi.comm(comm_h).and_then(|c| c.barrier());
        Ok(code(r))
    });

    // MPI_Bcast(buf, count, datatype, root, comm)
    mpi_fn!(linker, "MPI_Bcast", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let root = args[3].i32();
        let comm_h = args[4].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let comm = env.mpi.comm(comm_h)?;
            let view = mem.slice_mut(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            comm.bcast(view, root as u32)
        })();
        Ok(code(r))
    });

    // MPI_Reduce(sendbuf, recvbuf, count, datatype, op, root, comm)
    mpi_fn!(linker, "MPI_Reduce", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let rbuf = args[1].u32();
        let count = args[2].i32();
        let dt_h = args[3].i32();
        let op_h = args[4].i32();
        let root = args[5].i32();
        let comm_h = args[6].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let op = op_from_handle(op_h)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, bytes), (rbuf, bytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                comm.reduce(sview, Some(rview), dt, op, root as u32)
            } else {
                let sview = mem.slice(sbuf, bytes).map_err(|_| MpiError::BadCount {
                    bytes: bytes as usize,
                    type_size: 1,
                })?;
                comm.reduce(sview, None, dt, op, root as u32)
            }
        })();
        Ok(code(r))
    });

    // MPI_Allreduce(sendbuf, recvbuf, count, datatype, op, comm)
    mpi_fn!(linker, "MPI_Allreduce", (I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let rbuf = args[1].u32();
        let count = args[2].i32();
        let dt_h = args[3].i32();
        let op_h = args[4].i32();
        let comm_h = args[5].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let op = op_from_handle(op_h)?;
            let comm = env.mpi.comm(comm_h)?;
            let (sview, rview) = mem
                .disjoint_pair((sbuf, bytes), (rbuf, bytes))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            comm.allreduce(sview, rview, dt, op)
        })();
        Ok(code(r))
    });

    // MPI_Gather(sbuf, scount, stype, rbuf, rcount, rtype, root, comm)
    mpi_fn!(linker, "MPI_Gather", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let root = args[6].i32();
        let comm_h = args[7].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
                let comm = env.mpi.comm(comm_h)?;
                let total = rbytes_each * comm.size();
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, sbytes), (rbuf, total))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                comm.gather(sview, Some(rview), root as u32)
            } else {
                let sview = mem.slice(sbuf, sbytes).map_err(|_| MpiError::BadCount {
                    bytes: sbytes as usize,
                    type_size: 1,
                })?;
                comm.gather(sview, None, root as u32)
            }
        })();
        Ok(code(r))
    });

    // MPI_Allgather(sbuf, scount, stype, rbuf, rcount, rtype, comm)
    mpi_fn!(linker, "MPI_Allgather", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let comm_h = args[6].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_sdt, sbytes) = translate_instrumented(env, scount, stype)?;
            let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            let total = rbytes_each * comm.size();
            let (sview, rview) = mem
                .disjoint_pair((sbuf, sbytes), (rbuf, total))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            comm.allgather(sview, rview)
        })();
        Ok(code(r))
    });

    // MPI_Scatter(sbuf, scount, stype, rbuf, rcount, rtype, root, comm)
    mpi_fn!(linker, "MPI_Scatter", (I32, I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let root = args[6].i32();
        let comm_h = args[7].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_rdt, rbytes) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            if comm.rank() == root as u32 {
                let (_sdt, sbytes_each) = translate_instrumented(env, scount, stype)?;
                let comm = env.mpi.comm(comm_h)?;
                let total = sbytes_each * comm.size();
                let (sview, rview) = mem
                    .disjoint_pair((sbuf, total), (rbuf, rbytes))
                    .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
                comm.scatter(Some(sview), rview, root as u32)
            } else {
                let rview = mem.slice_mut(rbuf, rbytes).map_err(|_| MpiError::BadCount {
                    bytes: rbytes as usize,
                    type_size: 1,
                })?;
                comm.scatter(None, rview, root as u32)
            }
        })();
        Ok(code(r))
    });

    // MPI_Alltoall(sbuf, scount, stype, rbuf, rcount, rtype, comm)
    mpi_fn!(linker, "MPI_Alltoall", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let sbuf = args[0].u32();
        let scount = args[1].i32();
        let stype = args[2].i32();
        let rbuf = args[3].u32();
        let rcount = args[4].i32();
        let rtype = args[5].i32();
        let comm_h = args[6].i32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_sdt, sbytes_each) = translate_instrumented(env, scount, stype)?;
            let (_rdt, rbytes_each) = translate_instrumented(env, rcount, rtype)?;
            let comm = env.mpi.comm(comm_h)?;
            let stotal = sbytes_each * comm.size();
            let rtotal = rbytes_each * comm.size();
            let (sview, rview) = mem
                .disjoint_pair((sbuf, stotal), (rbuf, rtotal))
                .map_err(|t| MpiError::CollectiveMismatch(t.to_string()))?;
            comm.alltoall(sview, rview)
        })();
        Ok(code(r))
    });

    // MPI_Comm_split(comm, color, key, newcomm_ptr)
    mpi_fn!(linker, "MPI_Comm_split", (I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let color = args[1].i32();
        let key = args[2].i32();
        let out_ptr = args[3].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let result: Result<Option<Comm>, MpiError> =
            env.mpi.comm(comm_h).and_then(|c| c.split(color, key));
        match result {
            Ok(Some(new_comm)) => {
                let h = env.mpi.insert_comm(new_comm);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Ok(None) => {
                mem.write_i32_at(out_ptr, -1)?; // MPI_COMM_NULL
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Comm_dup(comm, newcomm_ptr)
    mpi_fn!(linker, "MPI_Comm_dup", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let comm_h = args[0].i32();
        let out_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        match env.mpi.comm(comm_h).and_then(|c| c.dup()) {
            Ok(new_comm) => {
                let h = env.mpi.insert_comm(new_comm);
                mem.write_i32_at(out_ptr, h)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Comm_free(comm_ptr)
    mpi_fn!(linker, "MPI_Comm_free", (I32) -> I32, |inst, args: &[Slot]| {
        let ptr = args[0].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let h = mem.read_i32_at(ptr)?;
        let r = env.mpi.free_comm(h);
        if r.is_ok() {
            mem.write_i32_at(ptr, -1)?; // MPI_COMM_NULL
        }
        Ok(code(r))
    });

    // MPI_Wtime() -> f64
    linker.func("env", "MPI_Wtime", FuncType::new(vec![], vec![F64]), |inst, _args| {
        let env = env_of(inst.parts().1);
        Ok(vec![Slot::from_f64(env.mpi.world().wtime())])
    });

    // MPI_Wtick() -> f64
    linker.func("env", "MPI_Wtick", FuncType::new(vec![], vec![F64]), |_inst, _args| {
        Ok(vec![Slot::from_f64(1e-9)])
    });

    // MPI_Abort(comm, errorcode): traps the instance.
    mpi_fn!(linker, "MPI_Abort", (I32, I32) -> I32, |_inst, args: &[Slot]| {
        Err(Trap::host(format!("MPI_Abort called with code {}", args[1].i32())))
    });

    // MPI_Get_count(status_ptr, datatype, count_ptr)
    mpi_fn!(linker, "MPI_Get_count", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let status_ptr = args[0].u32();
        let dt_h = args[1].i32();
        let out_ptr = args[2].u32();
        let mem = &mut inst.memory;
        match datatype_from_handle(dt_h) {
            Ok(dt) => {
                let bytes = mem.read_i32_at(status_ptr + 12)?;
                mem.write_i32_at(out_ptr, bytes / dt.size() as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Iprobe(source, tag, comm, flag_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Iprobe", (I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let src = args[0].i32();
        let tag = args[1].i32();
        let comm_h = args[2].i32();
        let flag_ptr = args[3].u32();
        let status_ptr = args[4].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        match env.mpi.comm(comm_h) {
            Ok(c) => {
                match c.iprobe(source_of(src), tag_of(tag)) {
                    Some(st) => {
                        mem.write_i32_at(flag_ptr, 1)?;
                        write_status(mem, status_ptr, &st)?;
                    }
                    None => mem.write_i32_at(flag_ptr, 0)?,
                }
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Type_size(datatype, size_ptr)
    mpi_fn!(linker, "MPI_Type_size", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let dt_h = args[0].i32();
        let ptr = args[1].u32();
        match datatype_from_handle(dt_h) {
            Ok(dt) => {
                inst.memory.write_i32_at(ptr, dt.size() as i32)?;
                Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
            }
            Err(e) => Ok(vec![Slot::from_i32(e.code())]),
        }
    });

    // MPI_Alloc_mem(size, info, baseptr_ptr): re-enters guest malloc (§3.7).
    mpi_fn!(linker, "MPI_Alloc_mem", (I32, I32, I32) -> I32, |inst: &mut Instance, args: &[Slot]| {
        let size = args[0].i32();
        let out_ptr = args[2].u32();
        if inst.export_func("malloc").is_none() {
            return Ok(vec![Slot::from_i32(2 /* MPI_ERR_COUNT-ish: no allocator */)]);
        }
        let results = inst.invoke("malloc", &[wasm_engine::Value::I32(size)])?;
        let guest_ptr = results.first().map(|v| v.as_i32()).transpose()?.unwrap_or(0);
        inst.memory.write_i32_at(out_ptr, guest_ptr)?;
        Ok(vec![Slot::from_i32(if guest_ptr == 0 { 2 } else { handles::MPI_SUCCESS })])
    });

    // MPI_Free_mem(ptr): re-enters guest free.
    mpi_fn!(linker, "MPI_Free_mem", (I32) -> I32, |inst: &mut Instance, args: &[Slot]| {
        if inst.export_func("free").is_none() {
            return Ok(vec![Slot::from_i32(2)]);
        }
        inst.invoke("free", &[wasm_engine::Value::I32(args[0].i32())])?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // --- nonblocking operations (MPI_Request = i32 handle, 0 = NULL) ---

    // MPI_Isend(buf, count, datatype, dest, tag, comm, request_ptr):
    // eager-buffered, so the request is born complete.
    mpi_fn!(linker, "MPI_Isend", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let dest = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let r = (|| {
            let (_dt, bytes) = translate_instrumented(env, count, dt_h)?;
            let comm = env.mpi.comm(comm_h)?;
            let view = mem.slice(buf, bytes).map_err(|_| MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            })?;
            comm.send(view, dest as u32, tag)
        })();
        if r.is_ok() {
            let h = env.mpi.insert_request(crate::env::PendingRequest::Done);
            mem.write_i32_at(req_ptr, h)?;
        }
        Ok(code(r))
    });

    // MPI_Irecv(buf, count, datatype, source, tag, comm, request_ptr):
    // deferred — matched and delivered at MPI_Wait/MPI_Test.
    mpi_fn!(linker, "MPI_Irecv", (I32, I32, I32, I32, I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let buf = args[0].u32();
        let count = args[1].i32();
        let dt_h = args[2].i32();
        let src = args[3].i32();
        let tag = args[4].i32();
        let comm_h = args[5].i32();
        let req_ptr = args[6].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        env.mpi.charge_wasm_overhead();
        let bytes = match translate_instrumented(env, count, dt_h) {
            Ok((_, b)) => b,
            Err(e) => return Ok(vec![Slot::from_i32(e.code())]),
        };
        if let Err(e) = env.mpi.comm(comm_h) {
            return Ok(vec![Slot::from_i32(e.code())]);
        }
        // The target region must be valid now, as real MPI requires.
        if mem.slice(buf, bytes).is_err() {
            return Ok(vec![Slot::from_i32(MpiError::BadCount {
                bytes: bytes as usize,
                type_size: 1,
            }
            .code())]);
        }
        let h = env.mpi.insert_request(crate::env::PendingRequest::Recv {
            comm: comm_h,
            buf,
            bytes,
            src,
            tag,
        });
        mem.write_i32_at(req_ptr, h)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // MPI_Wait(request_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Wait", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let status_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        let r = complete_request(mem, env, handle, status_ptr);
        if r.is_ok() {
            mem.write_i32_at(req_ptr, 0)?; // MPI_REQUEST_NULL
        }
        Ok(code(r))
    });

    // MPI_Waitall(count, requests_ptr, statuses_ptr)
    mpi_fn!(linker, "MPI_Waitall", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let count = args[0].i32();
        let reqs_ptr = args[1].u32();
        let statuses_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let r = (|| {
            for i in 0..count.max(0) as u32 {
                let handle = mem.read_i32_at(reqs_ptr + i * 4).map_err(|_| {
                    MpiError::BadCount { bytes: count as usize * 4, type_size: 4 }
                })?;
                let st_ptr = if statuses_ptr == handles::MPI_STATUS_IGNORE as u32 {
                    handles::MPI_STATUS_IGNORE as u32
                } else {
                    statuses_ptr + i * STATUS_SIZE
                };
                complete_request(mem, env, handle, st_ptr)?;
                let _ = mem.write_i32_at(reqs_ptr + i * 4, 0);
            }
            Ok(())
        })();
        Ok(code(r))
    });

    // MPI_Test(request_ptr, flag_ptr, status_ptr)
    mpi_fn!(linker, "MPI_Test", (I32, I32, I32) -> I32, |inst, args: &[Slot]| {
        let req_ptr = args[0].u32();
        let flag_ptr = args[1].u32();
        let status_ptr = args[2].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let handle = mem.read_i32_at(req_ptr)?;
        let ready = match env.mpi.peek_request(handle) {
            None => true, // REQUEST_NULL or already completed
            Some(crate::env::PendingRequest::Done) => true,
            Some(crate::env::PendingRequest::Recv { comm, src, tag, .. }) => {
                match env.mpi.comm(*comm) {
                    Ok(c) => c.iprobe(source_of(*src), tag_of(*tag)).is_some(),
                    Err(e) => return Ok(vec![Slot::from_i32(e.code())]),
                }
            }
        };
        if ready {
            let r = complete_request(mem, env, handle, status_ptr);
            if let Err(e) = r {
                return Ok(vec![Slot::from_i32(e.code())]);
            }
            mem.write_i32_at(req_ptr, 0)?;
            mem.write_i32_at(flag_ptr, 1)?;
        } else {
            mem.write_i32_at(flag_ptr, 0)?;
        }
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });

    // MPI_Get_processor_name(name_ptr, resultlen_ptr)
    mpi_fn!(linker, "MPI_Get_processor_name", (I32, I32) -> I32, |inst, args: &[Slot]| {
        let name_ptr = args[0].u32();
        let len_ptr = args[1].u32();
        let (mem, data) = inst.parts();
        let env = env_of(data);
        let name = format!("mpiwasm-rank-{}", env.mpi.world().rank());
        mem.slice_mut(name_ptr, name.len() as u32 + 1)?[..name.len()]
            .copy_from_slice(name.as_bytes());
        mem.slice_mut(name_ptr + name.len() as u32, 1)?[0] = 0;
        mem.write_i32_at(len_ptr, name.len() as i32)?;
        Ok(vec![Slot::from_i32(handles::MPI_SUCCESS)])
    });
}

//! The `Env` structure: per-rank global state for the translations
//! (paper §3.7).
//!
//! Each MPI rank runs one instance of the embedder with one Wasm module
//! instance; the instance's data slot holds an `Env` containing the rank's
//! communicator table, the WASI context, and the instrumentation counters.

use mpi_substrate::{Comm, MpiError, Request};
use wasi_layer::WasiCtx;

use crate::translate::{handles, TranslationStats};

/// MPI-side state of one rank.
///
/// # Guest request-handle encoding
///
/// A guest `MPI_Request` is an `i32` handle into this rank's request
/// table: handle `h ≥ 1` maps to table slot `h - 1`; `0` is
/// `MPI_REQUEST_NULL`. Each slot holds a live substrate
/// [`mpi_substrate::Request`] — a true pending operation (eager send
/// awaiting credit, rendezvous handshake in flight, posted receive, or a
/// nonblocking-collective state machine). One-shot requests are removed
/// from the table when they complete and the guest's handle word is
/// rewritten to `MPI_REQUEST_NULL`; persistent requests (from
/// `MPI_Send_init`/`MPI_Recv_init`) stay in the table across
/// `Start`/completion cycles until `MPI_Request_free`.
///
/// The table stores `Request<'static>` built from raw pointers into the
/// instance's linear memory. This is sound because the embedder pins
/// linear memory while requests are pending: the benchmark guests
/// pre-size their memories, and growing memory with requests in flight is
/// undefined behavior in real MPI terms too (the buffer moved).
pub struct MpiState {
    /// Communicator handle table: index = guest handle.
    /// Slot 0 is `MPI_COMM_WORLD`, slot 1 is `MPI_COMM_SELF`.
    comms: Vec<Option<Comm>>,
    /// Nonblocking-request table: guest handle = index + 1
    /// (0 is `MPI_REQUEST_NULL`).
    requests: Vec<Option<Request<'static>>>,
    /// Requests freed by the guest while still active (`MPI_Request_free`
    /// on an in-flight send): no handle points here anymore; they are
    /// kept alive until the peer drains them, then dropped by
    /// [`MpiState::progress_all`].
    detached: Vec<Request<'static>>,
    /// `MPI_Init` has been called.
    pub initialized: bool,
    /// `MPI_Finalize` has been called.
    pub finalized: bool,
    /// Figure 6 instrumentation; populated when `instrument` is set.
    pub stats: TranslationStats,
    pub instrument: bool,
    /// Extra per-MPI-call software overhead (µs) charged to the rank's
    /// virtual clock — the measured embedder cost injected into
    /// simulated-time runs. Zero for native-path runs and real-time runs.
    pub wasm_call_overhead_us: f64,
}

impl MpiState {
    /// Build the state for one rank. `world` is the rank's world
    /// communicator; `comm_self` its size-1 self communicator.
    pub fn new(world: Comm, comm_self: Comm) -> MpiState {
        MpiState {
            comms: vec![Some(world), Some(comm_self)],
            requests: Vec::new(),
            detached: Vec::new(),
            initialized: false,
            finalized: false,
            stats: TranslationStats::new(),
            instrument: false,
            wasm_call_overhead_us: 0.0,
        }
    }

    /// Resolve a guest communicator handle.
    pub fn comm(&self, handle: i32) -> Result<&Comm, MpiError> {
        self.comms
            .get(handle as usize)
            .and_then(|c| c.as_ref())
            .ok_or(MpiError::InvalidComm(handle as u32))
    }

    /// The world communicator.
    pub fn world(&self) -> &Comm {
        self.comms[handles::MPI_COMM_WORLD as usize]
            .as_ref()
            .expect("world communicator always present")
    }

    /// Register a derived communicator; returns its guest handle.
    pub fn insert_comm(&mut self, comm: Comm) -> i32 {
        // Reuse freed slots beyond the two predefined handles.
        if let Some(slot) = self.comms.iter().skip(2).position(|c| c.is_none()) {
            let idx = slot + 2;
            self.comms[idx] = Some(comm);
            return idx as i32;
        }
        self.comms.push(Some(comm));
        (self.comms.len() - 1) as i32
    }

    /// Free a derived communicator handle (`MPI_Comm_free`). The
    /// predefined handles cannot be freed.
    pub fn free_comm(&mut self, handle: i32) -> Result<(), MpiError> {
        if handle < handles::FIRST_DYNAMIC_COMM {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        let slot = self
            .comms
            .get_mut(handle as usize)
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        Ok(())
    }

    /// Number of live communicators (diagnostics).
    pub fn live_comms(&self) -> usize {
        self.comms.iter().filter(|c| c.is_some()).count()
    }

    /// Register a pending request; returns its guest handle (≥ 1).
    ///
    /// Slots are append-only (freed interior slots are *not* reused), so
    /// table order is posting order. Matching itself is pinned at
    /// arrival by the substrate's posted-receive queues (a newer
    /// same-matcher receive can never steal an older one's message), so
    /// table order is no longer load-bearing for correctness — it is
    /// kept because posting-order progress retires older requests first.
    /// The tail is reclaimed as requests retire, bounding the table by
    /// the live-request high-water mark.
    pub fn insert_request(&mut self, req: Request<'static>) -> i32 {
        self.requests.push(Some(req));
        self.requests.len() as i32
    }

    /// Borrow a live request by guest handle (progress/test/start).
    pub fn request_mut(&mut self, handle: i32) -> Result<&mut Request<'static>, MpiError> {
        if handle <= 0 {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        self.requests
            .get_mut(handle as usize - 1)
            .and_then(|r| r.as_mut())
            .ok_or(MpiError::InvalidComm(handle as u32))
    }

    /// Remove a request from the table (completion of a one-shot request,
    /// or `MPI_Request_free`). Trailing freed slots are popped so the
    /// append-only table stays bounded.
    pub fn remove_request(&mut self, handle: i32) -> Result<Request<'static>, MpiError> {
        if handle <= 0 {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        let req = self
            .requests
            .get_mut(handle as usize - 1)
            .and_then(|r| r.take())
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        while self.requests.last().is_some_and(|s| s.is_none()) {
            self.requests.pop();
        }
        Ok(req)
    }

    /// Number of live (unwaited) requests, for leak diagnostics.
    pub fn live_requests(&self) -> usize {
        self.requests.iter().filter(|r| r.is_some()).count()
    }

    /// Number of table requests that need active driving (pending
    /// receives and collectives — see `Request::needs_progress`). Gates
    /// the completion calls' condvar-park fast path: inactive persistent
    /// handles, latched outcomes, and passive sends don't force polling.
    pub fn progress_work(&self) -> usize {
        self.requests.iter().flatten().filter(|r| r.needs_progress()).count()
    }

    /// Drive every live request one progress step. Called while a
    /// completion call is parked on one request so the rank's other
    /// pending operations (posted receives in particular) keep moving —
    /// without this, two ranks waiting on symmetric rendezvous sends
    /// before their receives would deadlock. Outcomes (including errors)
    /// latch inside each request until its owner retrieves them.
    /// Detached requests that finished are dropped here.
    pub fn progress_all(&mut self) {
        for req in self.requests.iter_mut().flatten() {
            req.progress();
        }
        self.detached.retain_mut(|req| {
            req.progress();
            !req.is_complete()
        });
    }

    /// Free a request immediately (`MPI_Request_free`). In-flight sends
    /// are parked in the detached list until the peer drains them — the
    /// payload must still arrive ("marked for deletion on completion");
    /// everything else (pending receives, finished requests) is dropped:
    /// a freed speculative receive may never match, and its message stays
    /// queued for other receives.
    pub fn detach_request(&mut self, handle: i32) -> Result<(), MpiError> {
        let req = self.remove_request(handle)?;
        if req.completes_passively() {
            self.detached.push(req);
        }
        Ok(())
    }

    /// Charge the configured per-call embedder overhead to the rank's
    /// virtual clock (no-op in real-clock worlds).
    pub fn charge_wasm_overhead(&self) {
        if self.wasm_call_overhead_us > 0.0 {
            self.world().charge_overhead_us(self.wasm_call_overhead_us);
        }
    }
}

/// Everything an instance's data slot holds: MPI state + WASI context.
pub struct Env {
    pub mpi: MpiState,
    pub wasi: WasiCtx,
    /// Values reported by the guest through the `bench.report` hook:
    /// `(key, value)` pairs, in call order. Benchmark guests use this to
    /// hand measured timings back to the harness without text parsing.
    pub reports: Vec<(i32, f64)>,
}

impl Env {
    pub fn new(mpi: MpiState, wasi: WasiCtx) -> Env {
        Env { mpi, wasi, reports: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::run_world;
    use wasi_layer::SharedFs;

    fn with_env(f: impl Fn(&mut Env) + Send + Sync + 'static) {
        run_world(2, move |comm| {
            let comm_self = comm.split(comm.rank() as i32, 0).unwrap().unwrap();
            let mpi = MpiState::new(comm, comm_self);
            let wasi = WasiCtx::new(SharedFs::memory(), vec![]);
            let mut env = Env::new(mpi, wasi);
            f(&mut env);
        });
    }

    #[test]
    fn predefined_handles_resolve() {
        with_env(|env| {
            assert_eq!(env.mpi.comm(handles::MPI_COMM_WORLD).unwrap().size(), 2);
            assert_eq!(env.mpi.comm(handles::MPI_COMM_SELF).unwrap().size(), 1);
            assert!(env.mpi.comm(5).is_err());
            assert!(env.mpi.comm(-1).is_err());
        });
    }

    #[test]
    fn insert_and_free_comm_reuses_slots() {
        with_env(|env| {
            let dup = env.mpi.world().dup().unwrap();
            let h = env.mpi.insert_comm(dup);
            assert_eq!(h, handles::FIRST_DYNAMIC_COMM);
            assert_eq!(env.mpi.live_comms(), 3);
            env.mpi.free_comm(h).unwrap();
            assert_eq!(env.mpi.live_comms(), 2);
            assert!(env.mpi.comm(h).is_err());
            let dup2 = env.mpi.world().dup().unwrap();
            assert_eq!(env.mpi.insert_comm(dup2), h, "slot reused");
        });
    }

    #[test]
    fn predefined_comms_cannot_be_freed() {
        with_env(|env| {
            assert!(env.mpi.free_comm(handles::MPI_COMM_WORLD).is_err());
            assert!(env.mpi.free_comm(handles::MPI_COMM_SELF).is_err());
            assert!(env.mpi.free_comm(99).is_err());
        });
    }
}

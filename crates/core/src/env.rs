//! The `Env` structure: per-rank global state for the translations
//! (paper §3.7).
//!
//! Each MPI rank runs one instance of the embedder with one Wasm module
//! instance; the instance's data slot holds an `Env` containing the rank's
//! communicator table, the WASI context, and the instrumentation counters.

use mpi_substrate::{Comm, MpiError, MpiMessage, Request, RequestRef, RequestTable};
use wasi_layer::WasiCtx;

use crate::translate::{handles, DerivedDatatype, TranslationStats};

/// MPI-side state of one rank.
///
/// # Guest request-handle encoding
///
/// A guest `MPI_Request` is an `i32` handle into this rank's request
/// table: handle `h ≥ 1` maps to table slot `h - 1`; `0` is
/// `MPI_REQUEST_NULL`. Each slot holds a live substrate
/// [`mpi_substrate::Request`] — a true pending operation (eager send
/// awaiting credit, rendezvous handshake in flight, posted receive, or a
/// nonblocking-collective state machine). One-shot requests are removed
/// from the table when they complete and the guest's handle word is
/// rewritten to `MPI_REQUEST_NULL`; persistent requests (from
/// `MPI_Send_init`/`MPI_Recv_init`) stay in the table across
/// `Start`/completion cycles until `MPI_Request_free`. The table itself
/// is the substrate's lock-protected [`mpi_substrate::RequestTable`], so
/// under `MPI_THREAD_MULTIPLE` several threads of one rank may insert,
/// progress, and retire requests concurrently (see
/// [`MpiState::thread_level`]).
///
/// # Guest message-handle encoding
///
/// A guest `MPI_Message` (from `MPI_Mprobe`/`MPI_Improbe`) is an `i32`
/// handle into this rank's message table with the same shape: handle
/// `h ≥ 1` maps to slot `h - 1`, `0` is `MPI_MESSAGE_NULL`. Each slot
/// owns a substrate [`mpi_substrate::MpiMessage`] — a message atomically
/// *extracted* from the pending queue at probe time, so no concurrent
/// receive can steal it. `MPI_Mrecv`/`MPI_Imrecv` consume the slot and
/// rewrite the guest's handle word to `MPI_MESSAGE_NULL`.
///
/// # Guest thread-level encoding
///
/// `MPI_Init_thread`'s `required`/`provided` use the standard ordering
/// `MPI_THREAD_SINGLE(0) < FUNNELED(1) < SERIALIZED(2) < MULTIPLE(3)`.
/// The substrate supports `MPI_THREAD_MULTIPLE` (mailbox matching and
/// the request table are lock-protected), so `provided` is always the
/// clamped `required`; plain `MPI_Init` records `MPI_THREAD_SINGLE`.
/// `MPI_Query_thread` reads the recorded level back.
///
/// The table stores `Request<'static>` built from raw pointers into the
/// instance's linear memory. This is sound because the embedder pins
/// linear memory while requests are pending: the benchmark guests
/// pre-size their memories, and growing memory with requests in flight is
/// undefined behavior in real MPI terms too (the buffer moved).
pub struct MpiState {
    /// Communicator handle table: index = guest handle.
    /// Slot 0 is `MPI_COMM_WORLD`, slot 1 is `MPI_COMM_SELF`.
    comms: Vec<Option<Comm>>,
    /// Nonblocking-request table: guest handle = index + 1
    /// (0 is `MPI_REQUEST_NULL`). Lock-protected for thread-multiple
    /// embedders; detached requests (freed while in flight) live inside
    /// it until the peer drains them.
    requests: RequestTable,
    /// Matched-probe message table: guest handle = index + 1
    /// (0 is `MPI_MESSAGE_NULL`).
    messages: Vec<Option<MpiMessage>>,
    /// Derived-datatype table: guest handle =
    /// `handles::FIRST_DERIVED_DATATYPE + index` (handles below that are
    /// the predefined primitives). Freed slots are reused.
    dtypes: Vec<Option<DerivedDatatype>>,
    /// Group table (`MPI_Comm_group`/`Group_incl`/…): each group is a
    /// list of *world* ranks in group-rank order. Guest handle =
    /// index + 1 (0 is `MPI_GROUP_NULL`); freed slots are reused.
    groups: Vec<Option<Vec<u32>>>,
    /// Buffered-send attach buffer (`MPI_Buffer_attach`): guest pointer
    /// and size. The host never reads the guest buffer — payloads are
    /// copied host-side at `Bsend` — it only enforces MPI's accounting:
    /// attach before buffered sends, and sends no larger than the
    /// attached capacity.
    attach_buffer: Option<(u32, u32)>,
    /// `MPI_Init` has been called.
    pub initialized: bool,
    /// `MPI_Finalize` has been called.
    pub finalized: bool,
    /// Thread level granted at initialization (`MPI_Init_thread`):
    /// `handles::MPI_THREAD_SINGLE` … `MPI_THREAD_MULTIPLE`.
    pub thread_level: i32,
    /// Figure 6 instrumentation; populated when `instrument` is set.
    pub stats: TranslationStats,
    pub instrument: bool,
    /// Extra per-MPI-call software overhead (µs) charged to the rank's
    /// virtual clock — the measured embedder cost injected into
    /// simulated-time runs. Zero for native-path runs and real-time runs.
    pub wasm_call_overhead_us: f64,
}

impl MpiState {
    /// Build the state for one rank. `world` is the rank's world
    /// communicator; `comm_self` its size-1 self communicator.
    pub fn new(world: Comm, comm_self: Comm) -> MpiState {
        MpiState {
            comms: vec![Some(world), Some(comm_self)],
            requests: RequestTable::new(),
            messages: Vec::new(),
            dtypes: Vec::new(),
            groups: Vec::new(),
            attach_buffer: None,
            initialized: false,
            finalized: false,
            thread_level: handles::MPI_THREAD_SINGLE,
            stats: TranslationStats::new(),
            instrument: false,
            wasm_call_overhead_us: 0.0,
        }
    }

    /// Resolve a guest communicator handle.
    pub fn comm(&self, handle: i32) -> Result<&Comm, MpiError> {
        self.comms
            .get(handle as usize)
            .and_then(|c| c.as_ref())
            .ok_or(MpiError::InvalidComm(handle as u32))
    }

    /// The world communicator.
    pub fn world(&self) -> &Comm {
        self.comms[handles::MPI_COMM_WORLD as usize]
            .as_ref()
            .expect("world communicator always present")
    }

    /// Register a derived communicator; returns its guest handle.
    pub fn insert_comm(&mut self, comm: Comm) -> i32 {
        // Reuse freed slots beyond the two predefined handles.
        if let Some(slot) = self.comms.iter().skip(2).position(|c| c.is_none()) {
            let idx = slot + 2;
            self.comms[idx] = Some(comm);
            return idx as i32;
        }
        self.comms.push(Some(comm));
        (self.comms.len() - 1) as i32
    }

    /// Free a derived communicator handle (`MPI_Comm_free`). The
    /// predefined handles cannot be freed.
    pub fn free_comm(&mut self, handle: i32) -> Result<(), MpiError> {
        if handle < handles::FIRST_DYNAMIC_COMM {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        let slot = self
            .comms
            .get_mut(handle as usize)
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        Ok(())
    }

    /// Number of live communicators (diagnostics).
    pub fn live_comms(&self) -> usize {
        self.comms.iter().filter(|c| c.is_some()).count()
    }

    /// Register a pending request; returns its guest handle (≥ 1).
    ///
    /// Slots are append-only (freed interior slots are *not* reused), so
    /// table order is posting order. Matching itself is pinned at
    /// arrival by the substrate's posted-receive queues (a newer
    /// same-matcher receive can never steal an older one's message), so
    /// table order is no longer load-bearing for correctness — it is
    /// kept because posting-order progress retires older requests first.
    /// The tail is reclaimed as requests retire, bounding the table by
    /// the live-request high-water mark.
    pub fn insert_request(&mut self, req: Request<'static>) -> i32 {
        self.requests.insert(req)
    }

    /// Borrow a live request by guest handle (progress/test/start). The
    /// returned guard holds the table lock: drop it before calling any
    /// other request-table method (the lock is not reentrant).
    pub fn request_mut(&self, handle: i32) -> Result<RequestRef<'_>, MpiError> {
        self.requests.request_mut(handle)
    }

    /// Remove a request from the table (completion of a one-shot request,
    /// or `MPI_Request_free`). Trailing freed slots are popped so the
    /// append-only table stays bounded.
    pub fn remove_request(&mut self, handle: i32) -> Result<Request<'static>, MpiError> {
        self.requests.remove(handle)
    }

    /// Number of live (unwaited) requests, for leak diagnostics.
    pub fn live_requests(&self) -> usize {
        self.requests.live()
    }

    /// Number of table requests that need active driving (pending
    /// receives and collectives — see `Request::needs_progress`). Gates
    /// the completion calls' condvar-park fast path: inactive persistent
    /// handles, latched outcomes, and passive sends don't force polling.
    pub fn progress_work(&self) -> usize {
        self.requests.progress_work()
    }

    /// Drive every live request one progress step. Called while a
    /// completion call is parked on one request so the rank's other
    /// pending operations (posted receives in particular) keep moving —
    /// without this, two ranks waiting on symmetric rendezvous sends
    /// before their receives would deadlock. Outcomes (including errors)
    /// latch inside each request until its owner retrieves them.
    /// Detached requests that finished are dropped here.
    pub fn progress_all(&mut self) {
        self.requests.progress_all();
    }

    /// Free a request immediately (`MPI_Request_free`). In-flight sends
    /// are parked in the detached list until the peer drains them — the
    /// payload must still arrive ("marked for deletion on completion");
    /// everything else (pending receives, finished requests) is dropped:
    /// a freed speculative receive may never match, and its message stays
    /// queued for other receives.
    pub fn detach_request(&mut self, handle: i32) -> Result<(), MpiError> {
        self.requests.detach(handle)
    }

    /// Register an extracted matched-probe message; returns its guest
    /// handle (≥ 1; `0` is `MPI_MESSAGE_NULL`). Slot shape mirrors the
    /// request table: freed interior slots are not reused, the freed tail
    /// is reclaimed.
    pub fn insert_message(&mut self, msg: MpiMessage) -> i32 {
        self.messages.push(Some(msg));
        self.messages.len() as i32
    }

    /// Consume a message handle (`MPI_Mrecv`/`MPI_Imrecv`).
    pub fn take_message(&mut self, handle: i32) -> Result<MpiMessage, MpiError> {
        if handle <= 0 {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        let msg = self
            .messages
            .get_mut(handle as usize - 1)
            .and_then(|m| m.take())
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        while self.messages.last().is_some_and(|s| s.is_none()) {
            self.messages.pop();
        }
        Ok(msg)
    }

    /// Number of live (unreceived) matched-probe messages.
    pub fn live_messages(&self) -> usize {
        self.messages.iter().filter(|m| m.is_some()).count()
    }

    // --- derived datatypes ----------------------------------------------

    /// Register a constructed derived datatype; returns its guest handle.
    pub fn insert_dtype(&mut self, dt: DerivedDatatype) -> i32 {
        let idx = match self.dtypes.iter().position(|d| d.is_none()) {
            Some(slot) => {
                self.dtypes[slot] = Some(dt);
                slot
            }
            None => {
                self.dtypes.push(Some(dt));
                self.dtypes.len() - 1
            }
        };
        handles::FIRST_DERIVED_DATATYPE + idx as i32
    }

    /// Resolve a derived-datatype handle (primitive handles are not in
    /// this table; use `translate::datatype_from_handle` for those).
    pub fn dtype(&self, handle: i32) -> Result<&DerivedDatatype, MpiError> {
        let idx = (handle - handles::FIRST_DERIVED_DATATYPE) as usize;
        if handle < handles::FIRST_DERIVED_DATATYPE {
            return Err(MpiError::InvalidDatatype(handle as u32));
        }
        self.dtypes
            .get(idx)
            .and_then(|d| d.as_ref())
            .ok_or(MpiError::InvalidDatatype(handle as u32))
    }

    /// `MPI_Type_commit`: mark the type usable for communication.
    pub fn commit_dtype(&mut self, handle: i32) -> Result<(), MpiError> {
        let idx = (handle - handles::FIRST_DERIVED_DATATYPE) as usize;
        if handle < handles::FIRST_DERIVED_DATATYPE {
            // Committing a predefined type is a no-op, as in MPI.
            return crate::translate::datatype_from_handle(handle).map(|_| ());
        }
        self.dtypes
            .get_mut(idx)
            .and_then(|d| d.as_mut())
            .map(|d| d.committed = true)
            .ok_or(MpiError::InvalidDatatype(handle as u32))
    }

    /// `MPI_Type_free`. Packing happens eagerly at each send/receive, so
    /// no in-flight operation can reference a freed slot.
    pub fn free_dtype(&mut self, handle: i32) -> Result<(), MpiError> {
        let idx = (handle - handles::FIRST_DERIVED_DATATYPE) as usize;
        if handle < handles::FIRST_DERIVED_DATATYPE {
            return Err(MpiError::InvalidDatatype(handle as u32));
        }
        let slot = self
            .dtypes
            .get_mut(idx)
            .ok_or(MpiError::InvalidDatatype(handle as u32))?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidDatatype(handle as u32));
        }
        Ok(())
    }

    /// Number of live derived datatypes (leak diagnostics).
    pub fn live_dtypes(&self) -> usize {
        self.dtypes.iter().filter(|d| d.is_some()).count()
    }

    // --- groups ---------------------------------------------------------

    /// Register a group (a world-rank list in group-rank order); returns
    /// its guest handle (≥ 1; 0 is `MPI_GROUP_NULL`).
    pub fn insert_group(&mut self, ranks: Vec<u32>) -> i32 {
        let idx = match self.groups.iter().position(|g| g.is_none()) {
            Some(slot) => {
                self.groups[slot] = Some(ranks);
                slot
            }
            None => {
                self.groups.push(Some(ranks));
                self.groups.len() - 1
            }
        };
        idx as i32 + 1
    }

    /// Resolve a group handle.
    pub fn group(&self, handle: i32) -> Result<&Vec<u32>, MpiError> {
        if handle <= 0 {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        self.groups
            .get(handle as usize - 1)
            .and_then(|g| g.as_ref())
            .ok_or(MpiError::InvalidComm(handle as u32))
    }

    /// `MPI_Group_free`.
    pub fn free_group(&mut self, handle: i32) -> Result<(), MpiError> {
        if handle <= 0 {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        let slot = self
            .groups
            .get_mut(handle as usize - 1)
            .ok_or(MpiError::InvalidComm(handle as u32))?;
        if slot.take().is_none() {
            return Err(MpiError::InvalidComm(handle as u32));
        }
        Ok(())
    }

    /// Number of live groups (leak diagnostics).
    pub fn live_groups(&self) -> usize {
        self.groups.iter().filter(|g| g.is_some()).count()
    }

    // --- buffered-send attach buffer ------------------------------------

    /// `MPI_Buffer_attach`. MPI allows one attached buffer at a time.
    pub fn attach_buffer(&mut self, ptr: u32, size: u32) -> Result<(), MpiError> {
        if self.attach_buffer.is_some() {
            return Err(MpiError::NoBuffer { needed: size as usize, available: 0 });
        }
        self.attach_buffer = Some((ptr, size));
        Ok(())
    }

    /// `MPI_Buffer_detach`: returns the attached `(ptr, size)`.
    pub fn detach_buffer(&mut self) -> Result<(u32, u32), MpiError> {
        self.attach_buffer
            .take()
            .ok_or(MpiError::NoBuffer { needed: 0, available: 0 })
    }

    /// Capacity check for a buffered send of `len` bytes.
    pub fn check_buffered(&self, len: usize) -> Result<(), MpiError> {
        match self.attach_buffer {
            Some((_, size)) if len <= size as usize => Ok(()),
            Some((_, size)) => {
                Err(MpiError::NoBuffer { needed: len, available: size as usize })
            }
            None => Err(MpiError::NoBuffer { needed: len, available: 0 }),
        }
    }

    /// Charge the configured per-call embedder overhead to the rank's
    /// virtual clock (no-op in real-clock worlds).
    pub fn charge_wasm_overhead(&self) {
        if self.wasm_call_overhead_us > 0.0 {
            self.world().charge_overhead_us(self.wasm_call_overhead_us);
        }
    }
}

/// Everything an instance's data slot holds: MPI state + WASI context.
pub struct Env {
    pub mpi: MpiState,
    pub wasi: WasiCtx,
    /// Values reported by the guest through the `bench.report` hook:
    /// `(key, value)` pairs, in call order. Benchmark guests use this to
    /// hand measured timings back to the harness without text parsing.
    pub reports: Vec<(i32, f64)>,
}

impl Env {
    pub fn new(mpi: MpiState, wasi: WasiCtx) -> Env {
        Env { mpi, wasi, reports: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_substrate::run_world;
    use wasi_layer::SharedFs;

    fn with_env(f: impl Fn(&mut Env) + Send + Sync + 'static) {
        run_world(2, move |comm| {
            let comm_self = comm.split(comm.rank() as i32, 0).unwrap().unwrap();
            let mpi = MpiState::new(comm, comm_self);
            let wasi = WasiCtx::new(SharedFs::memory(), vec![]);
            let mut env = Env::new(mpi, wasi);
            f(&mut env);
        });
    }

    #[test]
    fn predefined_handles_resolve() {
        with_env(|env| {
            assert_eq!(env.mpi.comm(handles::MPI_COMM_WORLD).unwrap().size(), 2);
            assert_eq!(env.mpi.comm(handles::MPI_COMM_SELF).unwrap().size(), 1);
            assert!(env.mpi.comm(5).is_err());
            assert!(env.mpi.comm(-1).is_err());
        });
    }

    #[test]
    fn insert_and_free_comm_reuses_slots() {
        with_env(|env| {
            let dup = env.mpi.world().dup().unwrap();
            let h = env.mpi.insert_comm(dup);
            assert_eq!(h, handles::FIRST_DYNAMIC_COMM);
            assert_eq!(env.mpi.live_comms(), 3);
            env.mpi.free_comm(h).unwrap();
            assert_eq!(env.mpi.live_comms(), 2);
            assert!(env.mpi.comm(h).is_err());
            let dup2 = env.mpi.world().dup().unwrap();
            assert_eq!(env.mpi.insert_comm(dup2), h, "slot reused");
        });
    }

    #[test]
    fn predefined_comms_cannot_be_freed() {
        with_env(|env| {
            assert!(env.mpi.free_comm(handles::MPI_COMM_WORLD).is_err());
            assert!(env.mpi.free_comm(handles::MPI_COMM_SELF).is_err());
            assert!(env.mpi.free_comm(99).is_err());
        });
    }

    #[test]
    fn message_table_encodes_index_plus_one_and_reclaims() {
        with_env(|env| {
            // A self-send makes a message probe-extractable locally.
            let comm_self = env.mpi.comm(handles::MPI_COMM_SELF).unwrap();
            comm_self.send(b"one", 0, 1).unwrap();
            comm_self.send(b"two", 0, 1).unwrap();
            let (m1, _) = comm_self.improbe(mpi_substrate::ANY_SOURCE, mpi_substrate::ANY_TAG)
                .unwrap()
                .expect("first message pending");
            let (m2, _) = comm_self.improbe(mpi_substrate::ANY_SOURCE, mpi_substrate::ANY_TAG)
                .unwrap()
                .expect("second message pending");
            let h1 = env.mpi.insert_message(m1);
            let h2 = env.mpi.insert_message(m2);
            assert_eq!((h1, h2), (1, 2));
            assert_eq!(env.mpi.live_messages(), 2);
            assert!(env.mpi.take_message(0).is_err(), "0 is MPI_MESSAGE_NULL");
            assert!(env.mpi.take_message(3).is_err());

            let mut buf = [0u8; 3];
            let st = env.mpi.take_message(h1).unwrap().recv(&mut buf).unwrap();
            assert_eq!((&buf, st.bytes), (b"one", 3));
            assert!(env.mpi.take_message(h1).is_err(), "slot consumed");
            // Dropping the second unreceived requeues it; the emptied
            // tail is reclaimed, so the next insert reuses handle 1.
            drop(env.mpi.take_message(h2).unwrap());
            assert_eq!(env.mpi.live_messages(), 0);
            let comm_self = env.mpi.comm(handles::MPI_COMM_SELF).unwrap();
            let (m, st) = comm_self.improbe(mpi_substrate::ANY_SOURCE, mpi_substrate::ANY_TAG)
                .unwrap()
                .expect("dropped message requeued");
            assert_eq!(st.bytes, 3);
            assert_eq!(env.mpi.insert_message(m), 1, "tail reclaimed");
            env.mpi.take_message(1).unwrap().recv(&mut buf).unwrap();
            assert_eq!(&buf, b"two");
        });
    }

    #[test]
    fn thread_level_defaults_to_single() {
        with_env(|env| {
            assert_eq!(env.mpi.thread_level, handles::MPI_THREAD_SINGLE);
        });
    }
}

//! The compiled-module cache (paper §3.3).
//!
//! Wasmer's LLVM backend made compilation expensive, so MPIWasm caches the
//! generated shared object in the filesystem under a BLAKE-3 content hash.
//! This reproduction does the same with its Max tier: the serialized flat
//! IR (this engine's "shared object") is stored under
//! `sha256(module bytes ‖ tier)`; re-running an unchanged module loads the
//! artifact instead of recompiling, and any change to the module bytes
//! changes the key and forces recompilation.

use std::io::Write;
use std::path::{Path, PathBuf};

use wasm_engine::decode::decode_module;
use wasm_engine::encode::encode_instr;
use wasm_engine::interp::SideTable;
use wasm_engine::ir::{Cmp, Dest, FlatFunc, Op};
use wasm_engine::leb128::{self, Reader};
use wasm_engine::runtime::CompiledModule;
use wasm_engine::tier::{CompiledBody, Tier};
use wasm_engine::types::ValType;

use crate::hash::{sha256, to_hex, Sha256};

const MAGIC: &[u8; 4] = b"MWAC";
// Version history:
//  1 — enum-tagged Value engine, superinstruction set through F64AddL.
//  2 — untyped-slot IR: Drop2/Select2, shift/indexed-load and
//      compare-and-branch superinstructions; slot-unit Dest heights.
const VERSION: u8 = 2;

/// A filesystem-backed compiled-module cache.
pub struct ModuleCache {
    dir: PathBuf,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

impl ModuleCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<ModuleCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ModuleCache { dir, hits: Default::default(), misses: Default::default() })
    }

    /// Content-address for `(module bytes, tier)`.
    pub fn key(wasm_bytes: &[u8], tier: Tier) -> String {
        let mut h = Sha256::new();
        h.update(wasm_bytes);
        h.update(&[tier_byte(tier)]);
        to_hex(&h.finalize())
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.mwac"))
    }

    /// Compile-through-cache: load the artifact if present, otherwise
    /// compile and store. Returns the compiled module and whether the
    /// cache was hit.
    pub fn get_or_compile(
        &self,
        wasm_bytes: &[u8],
        tier: Tier,
    ) -> Result<(CompiledModule, bool), String> {
        let key = Self::key(wasm_bytes, tier);
        let path = self.path_for(&key);
        if let Ok(artifact) = std::fs::read(&path) {
            match load_artifact(&artifact) {
                Ok(mut compiled) if compiled.tier() == tier => {
                    self.hits.set(self.hits.get() + 1);
                    // The portable op stream is redundant with the artifact
                    // on disk; drop it to halve resident module memory.
                    compiled.discard_portable_ops();
                    return Ok((compiled, true));
                }
                _ => {
                    // Corrupt or stale artifact: fall through to recompile.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        self.misses.set(self.misses.get() + 1);
        let module = decode_module(wasm_bytes).map_err(|e| e.to_string())?;
        let mut compiled = CompiledModule::compile(module, tier).map_err(|e| e.to_string())?;
        let artifact = store_artifact(wasm_bytes, &compiled);
        // Atomic-ish write: temp file then rename.
        let tmp = path.with_extension("tmp");
        if std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&artifact))
            .is_ok()
        {
            let _ = std::fs::rename(&tmp, &path);
        }
        // Artifact persisted — the portable stream can go (rebuilt on
        // demand by `store_artifact` if ever needed again).
        compiled.discard_portable_ops();
        Ok((compiled, false))
    }

    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// On-disk size of the artifact for `(bytes, tier)`, if cached. This
    /// is the "native binary size" measurement of the Table 2 analog.
    pub fn artifact_size(&self, wasm_bytes: &[u8], tier: Tier) -> Option<u64> {
        std::fs::metadata(self.path_for(&Self::key(wasm_bytes, tier)))
            .ok()
            .map(|m| m.len())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn tier_byte(tier: Tier) -> u8 {
    match tier {
        Tier::Baseline => 0,
        Tier::Optimizing => 1,
        Tier::Max => 2,
        Tier::MaxJit => 3,
    }
}

fn tier_from_byte(b: u8) -> Option<Tier> {
    Some(match b {
        0 => Tier::Baseline,
        1 => Tier::Optimizing,
        2 => Tier::Max,
        3 => Tier::MaxJit,
        _ => return None,
    })
}

/// Serialize a compiled module: header, tier, original module bytes, and
/// per-function compiled bodies.
///
/// Bodies whose portable op stream was dropped
/// ([`FlatFunc::discard_ops`]) are regenerated by re-running the
/// (deterministic) compile pipeline for their tier — the register form
/// itself is never serialized.
pub fn store_artifact(wasm_bytes: &[u8], compiled: &CompiledModule) -> Vec<u8> {
    let opt_level = match compiled.tier() {
        // MaxJit serializes exactly like Max: superblock chains are
        // derived at load time and never hit the artifact format.
        Tier::Max | Tier::MaxJit => 2,
        _ => 0,
    };
    let mut out = Vec::with_capacity(wasm_bytes.len() * 2);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(tier_byte(compiled.tier()));
    // Integrity digest of the module bytes.
    out.extend_from_slice(&sha256(wasm_bytes));
    leb128::write_u32(&mut out, wasm_bytes.len() as u32);
    out.extend_from_slice(wasm_bytes);
    leb128::write_u32(&mut out, compiled.bodies().len() as u32);
    for (i, body) in compiled.bodies().iter().enumerate() {
        match body {
            CompiledBody::Interp(_) => out.push(0),
            CompiledBody::Flat(f) => {
                out.push(1);
                if f.ops.is_empty() && !f.reg.code.is_empty() {
                    let module = compiled.module();
                    // Ops-only recompile: the register lowering is not
                    // serialized, so skip it.
                    let regenerated =
                        wasm_engine::ir::compile_ops(module, &module.functions[i], opt_level);
                    serialize_flat(&mut out, &regenerated);
                } else {
                    serialize_flat(&mut out, f);
                }
            }
        }
    }
    out
}

/// Load an artifact produced by [`store_artifact`].
pub fn load_artifact(bytes: &[u8]) -> Result<CompiledModule, String> {
    let mut r = Reader::new(bytes);
    let magic = r.read_bytes(4).map_err(|e| e.to_string())?;
    if magic != MAGIC {
        return Err("bad artifact magic".into());
    }
    let version = r.read_u8().map_err(|e| e.to_string())?;
    if version != VERSION {
        return Err(format!("unsupported artifact version {version}"));
    }
    let tier = tier_from_byte(r.read_u8().map_err(|e| e.to_string())?)
        .ok_or("bad tier byte")?;
    let digest: [u8; 32] = r
        .read_bytes(32)
        .map_err(|e| e.to_string())?
        .try_into()
        .unwrap();
    let len = r.read_u32().map_err(|e| e.to_string())? as usize;
    let wasm_bytes = r.read_bytes(len).map_err(|e| e.to_string())?;
    if sha256(wasm_bytes) != digest {
        return Err("artifact digest mismatch".into());
    }
    let module = decode_module(wasm_bytes).map_err(|e| e.to_string())?;
    let n_bodies = r.read_u32().map_err(|e| e.to_string())? as usize;
    let mut bodies = Vec::with_capacity(n_bodies);
    for i in 0..n_bodies {
        match r.read_u8().map_err(|e| e.to_string())? {
            0 => {
                let func = module
                    .functions
                    .get(i)
                    .ok_or("body count exceeds function count")?;
                bodies.push(CompiledBody::Interp(SideTable::build(&module, func)));
            }
            1 => {
                let mut f = deserialize_flat(&mut r)?;
                let func = module
                    .functions
                    .get(i)
                    .ok_or("body count exceeds function count")?;
                // Artifacts store the portable op form; the executable
                // register form is rebuilt (and verified) at load time.
                // A stream that fails to lower is corrupt — reject the
                // artifact so the cache recompiles.
                f.finalize(&module, func)?;
                bodies.push(CompiledBody::Flat(f));
            }
            b => return Err(format!("bad body tag {b}")),
        }
    }
    CompiledModule::from_parts(module, tier, bodies).map_err(|e| e.to_string())
}

// --- flat-IR (de)serialization: the engine's "shared object" format ---

fn serialize_flat(out: &mut Vec<u8>, f: &FlatFunc) {
    leb128::write_u32(out, f.n_params);
    leb128::write_u32(out, f.locals.len() as u32);
    for l in &f.locals {
        out.push(l.to_byte());
    }
    leb128::write_u32(out, f.result_arity);
    leb128::write_u32(out, f.ops.len() as u32);
    for op in &f.ops {
        serialize_op(out, op);
    }
}

fn write_dest(out: &mut Vec<u8>, d: &Dest) {
    leb128::write_u32(out, d.target);
    leb128::write_u32(out, d.height);
    leb128::write_u32(out, d.arity);
}

fn serialize_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Plain(instr) => {
            out.push(0);
            // Reuse the wasm binary encoding, terminated so the expression
            // decoder can read exactly one instruction back.
            encode_instr(out, instr);
            out.push(0x0b);
        }
        Op::Jump(t) => {
            out.push(1);
            leb128::write_u32(out, *t);
        }
        Op::JumpIfZero(t) => {
            out.push(2);
            leb128::write_u32(out, *t);
        }
        Op::Br(d) => {
            out.push(3);
            write_dest(out, d);
        }
        Op::BrIf(d) => {
            out.push(4);
            write_dest(out, d);
        }
        Op::BrTable { dests, default } => {
            out.push(5);
            leb128::write_u32(out, dests.len() as u32);
            for d in dests.iter() {
                write_dest(out, d);
            }
            write_dest(out, default);
        }
        Op::Return => out.push(6),
        Op::Unreachable => out.push(7),
        Op::Nop => out.push(8),
        Op::I32AddLL(a, b) => {
            out.push(9);
            leb128::write_u32(out, *a as u32);
            leb128::write_u32(out, *b as u32);
        }
        Op::I64AddLL(a, b) => {
            out.push(10);
            leb128::write_u32(out, *a as u32);
            leb128::write_u32(out, *b as u32);
        }
        Op::F64AddLL(a, b) => {
            out.push(11);
            leb128::write_u32(out, *a as u32);
            leb128::write_u32(out, *b as u32);
        }
        Op::F64MulLL(a, b) => {
            out.push(12);
            leb128::write_u32(out, *a as u32);
            leb128::write_u32(out, *b as u32);
        }
        Op::F64SubLL(a, b) => {
            out.push(13);
            leb128::write_u32(out, *a as u32);
            leb128::write_u32(out, *b as u32);
        }
        Op::I32AddLK(a, k) => {
            out.push(14);
            leb128::write_u32(out, *a as u32);
            leb128::write_i32(out, *k);
        }
        Op::I32IncL(a, k) => {
            out.push(15);
            leb128::write_u32(out, *a as u32);
            leb128::write_i32(out, *k);
        }
        Op::F64LoadL { local, bias, offset } => {
            out.push(16);
            leb128::write_u32(out, *local as u32);
            leb128::write_i32(out, *bias);
            leb128::write_u32(out, *offset);
        }
        Op::I32LoadL { local, bias, offset } => {
            out.push(17);
            leb128::write_u32(out, *local as u32);
            leb128::write_i32(out, *bias);
            leb128::write_u32(out, *offset);
        }
        Op::F64StoreLL { addr, val, offset } => {
            out.push(18);
            leb128::write_u32(out, *addr as u32);
            leb128::write_u32(out, *val as u32);
            leb128::write_u32(out, *offset);
        }
        Op::F64MulL(a) => {
            out.push(19);
            leb128::write_u32(out, *a as u32);
        }
        Op::F64AddL(a) => {
            out.push(20);
            leb128::write_u32(out, *a as u32);
        }
        Op::Drop2 => out.push(21),
        Op::Select2 => out.push(22),
        Op::I32ShlLK(a, k) => {
            out.push(23);
            leb128::write_u32(out, *a as u32);
            out.push(*k);
        }
        Op::I32AddK(k) => {
            out.push(24);
            leb128::write_i32(out, *k);
        }
        Op::I32AddShlLL { base, idx, shift } => {
            out.push(25);
            leb128::write_u32(out, *base as u32);
            leb128::write_u32(out, *idx as u32);
            out.push(*shift);
        }
        Op::F64LoadLSh { base, idx, shift, offset } => {
            out.push(26);
            leb128::write_u32(out, *base as u32);
            leb128::write_u32(out, *idx as u32);
            out.push(*shift);
            leb128::write_u32(out, *offset);
        }
        Op::I32LoadLSh { base, idx, shift, offset } => {
            out.push(27);
            leb128::write_u32(out, *base as u32);
            leb128::write_u32(out, *idx as u32);
            out.push(*shift);
            leb128::write_u32(out, *offset);
        }
        Op::F64LoadShlK { idx, shift, bias, offset } => {
            out.push(28);
            leb128::write_u32(out, *idx as u32);
            out.push(*shift);
            leb128::write_i32(out, *bias);
            leb128::write_u32(out, *offset);
        }
        Op::I32LoadShlK { idx, shift, bias, offset } => {
            out.push(29);
            leb128::write_u32(out, *idx as u32);
            out.push(*shift);
            leb128::write_i32(out, *bias);
            leb128::write_u32(out, *offset);
        }
        Op::F64MulAdd => out.push(30),
        Op::BrIfCmpLL { cmp, a, b, dest } => {
            out.push(31);
            out.push(cmp.to_byte());
            leb128::write_u32(out, *a as u32);
            leb128::write_u32(out, *b as u32);
            write_dest(out, dest);
        }
        Op::BrIfCmpLK { cmp, a, k, dest } => {
            out.push(32);
            out.push(cmp.to_byte());
            leb128::write_u32(out, *a as u32);
            leb128::write_i32(out, *k);
            write_dest(out, dest);
        }
        Op::BrIfCmp { cmp, dest } => {
            out.push(33);
            out.push(cmp.to_byte());
            write_dest(out, dest);
        }
        Op::BrIfEqz(d) => {
            out.push(34);
            write_dest(out, d);
        }
    }
}

fn read_cmp(r: &mut Reader<'_>) -> Result<Cmp, String> {
    let b = r.read_u8().map_err(|e| e.to_string())?;
    Cmp::from_byte(b).ok_or_else(|| format!("bad cmp byte {b}"))
}

fn read_shift(r: &mut Reader<'_>) -> Result<u8, String> {
    r.read_u8().map_err(|e| e.to_string())
}

fn read_dest(r: &mut Reader<'_>) -> Result<Dest, String> {
    Ok(Dest {
        target: r.read_u32().map_err(|e| e.to_string())?,
        height: r.read_u32().map_err(|e| e.to_string())?,
        arity: r.read_u32().map_err(|e| e.to_string())?,
    })
}

fn read_u16(r: &mut Reader<'_>) -> Result<u16, String> {
    let v = r.read_u32().map_err(|e| e.to_string())?;
    u16::try_from(v).map_err(|_| "local index exceeds u16".to_string())
}

fn deserialize_flat(r: &mut Reader<'_>) -> Result<FlatFunc, String> {
    let n_params = r.read_u32().map_err(|e| e.to_string())?;
    let n_locals = r.read_u32().map_err(|e| e.to_string())? as usize;
    let mut locals = Vec::with_capacity(n_locals);
    for _ in 0..n_locals {
        let pos = r.pos();
        let b = r.read_u8().map_err(|e| e.to_string())?;
        locals.push(ValType::from_byte(b, pos).map_err(|e| e.to_string())?);
    }
    let result_arity = r.read_u32().map_err(|e| e.to_string())?;
    let n_ops = r.read_u32().map_err(|e| e.to_string())? as usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let tag = r.read_u8().map_err(|e| e.to_string())?;
        let op = match tag {
            0 => {
                let mut instrs =
                    wasm_engine::decode::decode_expr(r).map_err(|e| e.to_string())?;
                // decode_expr returns [instr, End]; recover the instruction.
                if instrs.len() != 2 {
                    return Err("malformed plain-op encoding".into());
                }
                Op::Plain(instrs.swap_remove(0))
            }
            1 => Op::Jump(r.read_u32().map_err(|e| e.to_string())?),
            2 => Op::JumpIfZero(r.read_u32().map_err(|e| e.to_string())?),
            3 => Op::Br(read_dest(r)?),
            4 => Op::BrIf(read_dest(r)?),
            5 => {
                let n = r.read_u32().map_err(|e| e.to_string())? as usize;
                let mut dests = Vec::with_capacity(n);
                for _ in 0..n {
                    dests.push(read_dest(r)?);
                }
                let default = read_dest(r)?;
                Op::BrTable { dests: dests.into_boxed_slice(), default }
            }
            6 => Op::Return,
            7 => Op::Unreachable,
            // Tag 8 (Nop) is never emitted: compact_nops strips Nops
            // before serialization, so its presence means corruption.
            8 => return Err("unexpected nop op in artifact".into()),
            9 => Op::I32AddLL(read_u16(r)?, read_u16(r)?),
            10 => Op::I64AddLL(read_u16(r)?, read_u16(r)?),
            11 => Op::F64AddLL(read_u16(r)?, read_u16(r)?),
            12 => Op::F64MulLL(read_u16(r)?, read_u16(r)?),
            13 => Op::F64SubLL(read_u16(r)?, read_u16(r)?),
            14 => Op::I32AddLK(read_u16(r)?, r.read_i32().map_err(|e| e.to_string())?),
            15 => Op::I32IncL(read_u16(r)?, r.read_i32().map_err(|e| e.to_string())?),
            16 => Op::F64LoadL {
                local: read_u16(r)?,
                bias: r.read_i32().map_err(|e| e.to_string())?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            17 => Op::I32LoadL {
                local: read_u16(r)?,
                bias: r.read_i32().map_err(|e| e.to_string())?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            18 => Op::F64StoreLL {
                addr: read_u16(r)?,
                val: read_u16(r)?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            19 => Op::F64MulL(read_u16(r)?),
            20 => Op::F64AddL(read_u16(r)?),
            21 => Op::Drop2,
            22 => Op::Select2,
            23 => Op::I32ShlLK(read_u16(r)?, read_shift(r)?),
            24 => Op::I32AddK(r.read_i32().map_err(|e| e.to_string())?),
            25 => Op::I32AddShlLL { base: read_u16(r)?, idx: read_u16(r)?, shift: read_shift(r)? },
            26 => Op::F64LoadLSh {
                base: read_u16(r)?,
                idx: read_u16(r)?,
                shift: read_shift(r)?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            27 => Op::I32LoadLSh {
                base: read_u16(r)?,
                idx: read_u16(r)?,
                shift: read_shift(r)?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            28 => Op::F64LoadShlK {
                idx: read_u16(r)?,
                shift: read_shift(r)?,
                bias: r.read_i32().map_err(|e| e.to_string())?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            29 => Op::I32LoadShlK {
                idx: read_u16(r)?,
                shift: read_shift(r)?,
                bias: r.read_i32().map_err(|e| e.to_string())?,
                offset: r.read_u32().map_err(|e| e.to_string())?,
            },
            30 => Op::F64MulAdd,
            31 => Op::BrIfCmpLL {
                cmp: read_cmp(r)?,
                a: read_u16(r)?,
                b: read_u16(r)?,
                dest: read_dest(r)?,
            },
            32 => Op::BrIfCmpLK {
                cmp: read_cmp(r)?,
                a: read_u16(r)?,
                k: r.read_i32().map_err(|e| e.to_string())?,
                dest: read_dest(r)?,
            },
            33 => Op::BrIfCmp { cmp: read_cmp(r)?, dest: read_dest(r)? },
            34 => Op::BrIfEqz(read_dest(r)?),
            b => return Err(format!("bad op tag {b}")),
        };
        ops.push(op);
    }
    Ok(FlatFunc { ops, n_params, locals, result_arity, ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm_engine::dsl::*;
    use wasm_engine::runtime::{Linker, Value};
    use wasm_engine::{ModuleBuilder, ValType};

    fn sample_wasm() -> Vec<u8> {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("fib", vec![ValType::I32], vec![ValType::I32], |f| {
            let n = local(0, ValType::I32);
            let a = Var::new(f, ValType::I32);
            let bv = Var::new(f, ValType::I32);
            let i = Var::new(f, ValType::I32);
            let t = Var::new(f, ValType::I32);
            emit_block(f, &[
                bv.set(int(1)),
                for_range(i, int(0), n.get(), &[
                    t.set(a.get() + bv.get()),
                    a.set(bv.get()),
                    bv.set(t.get()),
                ]),
                ret(Some(a.get())),
            ]);
        });
        wasm_engine::encode_module(&b.finish())
    }

    fn tmp_cache() -> ModuleCache {
        let dir = std::env::temp_dir().join(format!(
            "mpiwasm-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ModuleCache::new(dir).unwrap()
    }

    fn run_fib(compiled: &CompiledModule, n: i32) -> i32 {
        let mut inst = Linker::new().instantiate(compiled, Box::new(())).unwrap();
        inst.invoke("fib", &[Value::I32(n)]).unwrap()[0].as_i32().unwrap()
    }

    #[test]
    fn artifact_roundtrip_executes_identically() {
        let wasm = sample_wasm();
        for tier in Tier::ALL {
            let module = decode_module(&wasm).unwrap();
            let compiled = CompiledModule::compile(module, tier).unwrap();
            let artifact = store_artifact(&wasm, &compiled);
            let loaded = load_artifact(&artifact).unwrap();
            assert_eq!(loaded.tier(), tier);
            // Chains are never serialized; a loaded MaxJit module rebuilds
            // its promotion state from scratch. Promote immediately so the
            // load path actually executes through chains (no-op otherwise).
            loaded.set_jit_threshold(1);
            assert_eq!(run_fib(&compiled, 10), 55);
            assert_eq!(run_fib(&loaded, 10), 55, "tier {tier}");
        }
    }

    #[test]
    fn cache_miss_then_hit() {
        let cache = tmp_cache();
        let wasm = sample_wasm();
        let (_, hit1) = cache.get_or_compile(&wasm, Tier::Max).unwrap();
        assert!(!hit1);
        let (compiled, hit2) = cache.get_or_compile(&wasm, Tier::Max).unwrap();
        assert!(hit2);
        assert_eq!(run_fib(&compiled, 12), 144);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn changed_bytes_change_key() {
        let wasm = sample_wasm();
        let mut other = wasm.clone();
        let last = other.len() - 1;
        other[last] ^= 1;
        assert_ne!(ModuleCache::key(&wasm, Tier::Max), ModuleCache::key(&other, Tier::Max));
        assert_ne!(
            ModuleCache::key(&wasm, Tier::Max),
            ModuleCache::key(&wasm, Tier::Baseline)
        );
    }

    #[test]
    fn corrupt_artifact_forces_recompile() {
        let cache = tmp_cache();
        let wasm = sample_wasm();
        cache.get_or_compile(&wasm, Tier::Max).unwrap();
        // Corrupt the stored artifact.
        let key = ModuleCache::key(&wasm, Tier::Max);
        let path = cache.dir().join(format!("{key}.mwac"));
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (compiled, hit) = cache.get_or_compile(&wasm, Tier::Max).unwrap();
        assert!(!hit, "corrupt artifact must not be served");
        assert_eq!(run_fib(&compiled, 10), 55);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_version_artifact_forces_recompile() {
        // An artifact written by an older engine (different VERSION byte,
        // e.g. the pre-slot-stack IR encoding) must not be served: the
        // loader rejects it and the cache falls back to recompilation.
        let cache = tmp_cache();
        let wasm = sample_wasm();
        cache.get_or_compile(&wasm, Tier::Max).unwrap();
        let key = ModuleCache::key(&wasm, Tier::Max);
        let path = cache.dir().join(format!("{key}.mwac"));
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[4], VERSION);
        bytes[4] = VERSION - 1; // stale on-disk format
        std::fs::write(&path, &bytes).unwrap();
        let (compiled, hit) = cache.get_or_compile(&wasm, Tier::Max).unwrap();
        assert!(!hit, "stale-version artifact must not be served");
        assert_eq!(run_fib(&compiled, 10), 55);
        // The stale file was replaced by a fresh, loadable artifact.
        let fresh = std::fs::read(&path).unwrap();
        assert_eq!(fresh[4], VERSION);
        assert!(load_artifact(&fresh).is_ok());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn artifact_rejects_tampered_module_bytes() {
        let wasm = sample_wasm();
        let module = decode_module(&wasm).unwrap();
        let compiled = CompiledModule::compile(module, Tier::Max).unwrap();
        let mut artifact = store_artifact(&wasm, &compiled);
        // Flip a byte inside the embedded module region.
        artifact[60] ^= 1;
        assert!(load_artifact(&artifact).is_err());
    }

    #[test]
    fn cache_drops_portable_ops_and_still_serializes() {
        let cache = tmp_cache();
        let wasm = sample_wasm();
        // Miss path: ops dropped after the artifact is persisted.
        let (compiled, _) = cache.get_or_compile(&wasm, Tier::Max).unwrap();
        let resident: usize = compiled.code_size();
        for body in compiled.bodies() {
            if let CompiledBody::Flat(f) = body {
                assert!(f.ops.is_empty(), "portable ops must be dropped after store");
                assert!(!f.reg.code.is_empty(), "register form must remain");
            }
        }
        assert_eq!(run_fib(&compiled, 10), 55, "discarded module must still run");
        // Hit path: same.
        let (loaded, hit) = cache.get_or_compile(&wasm, Tier::Max).unwrap();
        assert!(hit);
        for body in loaded.bodies() {
            if let CompiledBody::Flat(f) = body {
                assert!(f.ops.is_empty(), "portable ops must be dropped on load");
            }
        }
        assert_eq!(run_fib(&loaded, 12), 144);
        // Resident size halved vs a module that kept its ops.
        let full = CompiledModule::compile(decode_module(&wasm).unwrap(), Tier::Max).unwrap();
        assert!(
            resident * 3 < full.code_size() * 2,
            "dropping ops should reclaim a sizable share: {} vs {}",
            resident,
            full.code_size()
        );
        // Serializing a discarded module regenerates the identical artifact.
        let direct = store_artifact(&wasm, &full);
        let regenerated = store_artifact(&wasm, &compiled);
        assert_eq!(direct, regenerated, "regenerated op streams must be identical");
        assert!(load_artifact(&regenerated).is_ok());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn artifact_size_reported_after_store() {
        let cache = tmp_cache();
        let wasm = sample_wasm();
        assert!(cache.artifact_size(&wasm, Tier::Max).is_none());
        cache.get_or_compile(&wasm, Tier::Max).unwrap();
        let size = cache.artifact_size(&wasm, Tier::Max).unwrap();
        assert!(size > wasm.len() as u64, "IR artifact should outweigh the wasm bytes");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

//! The `mpiwasm` command-line embedder.
//!
//! ```text
//! mpiwasm -np 4 app.wasm [app args...]
//! mpiwasm -np 2 -d ./shared -tier max -cache ~/.cache/mpiwasm app.wasm
//! ```
//!
//! This is the paper's Listing 4 interface folded into one binary: where
//! the paper runs `mpirun -np N ./mpiWasm app.wasm`, the rank launcher
//! here is in-process (one thread per rank; see crate `mpi-substrate`).

use std::process::ExitCode;

use mpi_substrate::ClockMode;
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};
use obs::{Recorder, TraceClock};
use wasi_layer::{Rights, SharedFs};
use wasm_engine::Tier;

const USAGE: &str = "\
mpiwasm — execute MPI applications compiled to WebAssembly

USAGE:
    mpiwasm [OPTIONS] <module.wasm> [guest args...]

OPTIONS:
    -np <N>          number of MPI ranks (default 1)
    -tier <T>        execution tier: baseline | optimizing | max | max+jit (default max)
    -d <DIR>         preopen host directory read-write as /<basename>
    -d-ro <DIR>      preopen host directory read-only as /<basename>
    -cache <DIR>     compiled-module cache directory (content-addressed)
    -entry <NAME>    exported entry function (default _start)
    -quiet           do not echo guest stdout/stderr
    -wat             print the module in text format and exit
    --clock <MODE>   wall-clock mode: real | virtual (default real);
                     virtual replays the LogP-simulated timeline
    --trace <FILE>   record a flight-recorder trace and write it as
                     Chrome trace-event JSON (load in Perfetto/about:tracing)
    --metrics        print the unified metrics table (protocol + JIT +
                     trace counters) after the run
    -h, --help       show this help
";

struct Options {
    np: u32,
    tier: Tier,
    preopens: Vec<(String, String, Rights)>,
    cache: Option<String>,
    entry: String,
    quiet: bool,
    wat: bool,
    virtual_clock: bool,
    trace: Option<String>,
    metrics: bool,
    module: String,
    guest_args: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        np: 1,
        tier: Tier::Max,
        preopens: Vec::new(),
        cache: None,
        entry: "_start".into(),
        quiet: false,
        wat: false,
        virtual_clock: false,
        trace: None,
        metrics: false,
        module: String::new(),
        guest_args: Vec::new(),
    };
    let mut it = args.iter().peekable();
    let need = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                flag: &str|
     -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-np" => {
                opts.np = need(&mut it, "-np")?
                    .parse()
                    .map_err(|_| "-np expects a positive integer".to_string())?;
                if opts.np == 0 {
                    return Err("-np must be at least 1".into());
                }
            }
            "-tier" => {
                opts.tier = match need(&mut it, "-tier")?.as_str() {
                    "baseline" | "singlepass" => Tier::Baseline,
                    "optimizing" | "cranelift" => Tier::Optimizing,
                    "max" | "llvm" => Tier::Max,
                    "max+jit" | "maxjit" => Tier::MaxJit,
                    other => return Err(format!("unknown tier {other:?}")),
                };
            }
            "-d" | "-d-ro" => {
                let rights =
                    if arg == "-d" { Rights::READ_WRITE } else { Rights::READ_ONLY };
                let dir = need(&mut it, arg)?;
                let name = std::path::Path::new(&dir)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "data".into());
                opts.preopens.push((name, dir, rights));
            }
            "-cache" => opts.cache = Some(need(&mut it, "-cache")?),
            "-entry" => opts.entry = need(&mut it, "-entry")?,
            "-quiet" => opts.quiet = true,
            "-wat" => opts.wat = true,
            "--clock" | "-clock" => {
                opts.virtual_clock = match need(&mut it, "--clock")?.as_str() {
                    "real" => false,
                    "virtual" => true,
                    other => return Err(format!("unknown clock mode {other:?}")),
                };
            }
            "--trace" | "-trace" => opts.trace = Some(need(&mut it, "--trace")?),
            "--metrics" | "-metrics" => opts.metrics = true,
            other if opts.module.is_empty() && !other.starts_with('-') => {
                opts.module = other.to_string();
            }
            other if !opts.module.is_empty() => {
                opts.guest_args.push(other.to_string());
                opts.guest_args.extend(it.by_ref().cloned());
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    if opts.module.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let wasm_bytes = match std::fs::read(&opts.module) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mpiwasm: cannot read {}: {e}", opts.module);
            return ExitCode::from(1);
        }
    };

    if opts.wat {
        match wasm_engine::decode_module(&wasm_bytes) {
            Ok(m) => {
                print!("{}", wasm_engine::wat::to_wat(&m));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mpiwasm: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // Filesystem: the requested preopens (virtual names hide host paths,
    // paper §3.4), or an in-memory scratch directory when none are given.
    let fs = if opts.preopens.is_empty() {
        SharedFs::memory()
    } else {
        SharedFs::new(
            opts.preopens
                .iter()
                .map(|(name, dir, rights)| wasi_layer::Preopen {
                    guest_name: name.clone(),
                    rights: *rights,
                    backend: wasi_layer::DirBackend::Host(dir.into()),
                })
                .collect(),
        )
    };

    let runner = match &opts.cache {
        Some(dir) => match Runner::new().with_cache(dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mpiwasm: cannot open cache {dir}: {e}");
                return ExitCode::from(1);
            }
        },
        None => Runner::new(),
    };

    let clock = if opts.virtual_clock {
        ClockMode::Virtual(CostModel::native(SystemProfile::container()))
    } else {
        ClockMode::Real
    };
    let recorder = if opts.trace.is_some() || opts.metrics {
        let trace_clock =
            if opts.virtual_clock { TraceClock::Virtual } else { TraceClock::Real };
        Some(Recorder::new(opts.np as usize, obs::DEFAULT_CAPACITY, trace_clock))
    } else {
        None
    };

    let mut guest_args = vec![opts.module.clone()];
    guest_args.extend(opts.guest_args.clone());
    let config = JobConfig {
        np: opts.np,
        tier: opts.tier,
        clock,
        args: guest_args,
        fs,
        echo_stdout: !opts.quiet,
        entry: opts.entry.clone(),
        recorder: recorder.clone(),
        ..Default::default()
    };

    match runner.run(&wasm_bytes, config) {
        Ok(result) => {
            if let Some(rec) = &recorder {
                if let Some(path) = &opts.trace {
                    let json = obs::export_chrome_trace(rec);
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("mpiwasm: cannot write trace {path}: {e}");
                        return ExitCode::from(1);
                    }
                    if !opts.quiet {
                        eprintln!(
                            "mpiwasm: trace written to {path} ({} events{})",
                            (0..rec.n_ranks())
                                .map(|r| rec.rank_events(r).len())
                                .sum::<usize>()
                                + rec.engine_events().len(),
                            match rec.total_dropped() {
                                0 => String::new(),
                                n => format!(", {n} dropped"),
                            },
                        );
                    }
                }
                if opts.metrics {
                    print!("{}", rec.metrics().render_table());
                }
            }
            if !opts.quiet {
                eprintln!(
                    "mpiwasm: {} ranks, compile {:.2}ms{}",
                    result.ranks.len(),
                    result.compile_time.as_secs_f64() * 1e3,
                    if result.cache_hit { " (cache hit)" } else { "" },
                );
            }
            let mut exit = 0;
            for r in &result.ranks {
                if let Some(err) = &r.error {
                    eprintln!("mpiwasm: rank {} trapped: {err}", r.rank);
                    exit = 1;
                } else if r.exit_code != 0 && exit == 0 {
                    exit = r.exit_code.clamp(0, 255);
                }
            }
            ExitCode::from(exit as u8)
        }
        Err(e) => {
            eprintln!("mpiwasm: {e}");
            ExitCode::from(1)
        }
    }
}

//! The `mpiwasm` command-line embedder.
//!
//! ```text
//! mpiwasm -np 4 app.wasm [app args...]
//! mpiwasm -np 2 -d ./shared -tier max -cache ~/.cache/mpiwasm app.wasm
//! ```
//!
//! This is the paper's Listing 4 interface folded into one binary: where
//! the paper runs `mpirun -np N ./mpiWasm app.wasm`, the rank launcher
//! here is in-process (one thread per rank; see crate `mpi-substrate`).

use std::process::ExitCode;

use mpi_substrate::ClockMode;
use mpiwasm::{JobConfig, Runner};
use netsim::{CostModel, SystemProfile};
use obs::{Recorder, TraceClock};
use wasi_layer::{Rights, SharedFs};
use wasm_engine::Tier;

const USAGE: &str = "\
mpiwasm — execute MPI applications compiled to WebAssembly

USAGE:
    mpiwasm [OPTIONS] <module.wasm> [guest args...]

OPTIONS:
    -np <N>          number of MPI ranks (default 1)
    -tier <T>        execution tier: baseline | optimizing | max | max+jit (default max)
    -d <DIR>         preopen host directory read-write as /<basename>
    -d-ro <DIR>      preopen host directory read-only as /<basename>
    -cache <DIR>     compiled-module cache directory (content-addressed)
    -entry <NAME>    exported entry function (default _start)
    -quiet           do not echo guest stdout/stderr
    -wat             print the module in text format and exit
    --clock <MODE>   wall-clock mode: real | virtual (default real);
                     virtual replays the LogP-simulated timeline
    --trace <FILE>   record a flight-recorder trace and write it as
                     Chrome trace-event JSON (load in Perfetto/about:tracing)
    --metrics        print the unified metrics table (protocol + JIT +
                     trace counters) after the run
    --fault <PLAN>   deterministic fault plan, e.g.
                     \"seed=42;crash@call:rank=1,call=10;drop:rank=0,nth=3\"
                     (see docs/fault_tolerance.md for the grammar)
    --max-fuel <N>   per-rank execution-fuel budget in guard-point ticks;
                     an exhausted rank fails (peers see RankFailed)
    --max-memory <B> per-rank linear-memory cap in bytes (suffixes k/m/g)
    --deadline <S>   wall-clock job deadline in seconds; ranks still
                     running are interrupted and become failed ranks
    --watchdog <S>   hang watchdog: fail the job with a per-rank report
                     after S seconds without global progress
    -h, --help       show this help
";

struct Options {
    np: u32,
    tier: Tier,
    preopens: Vec<(String, String, Rights)>,
    cache: Option<String>,
    entry: String,
    quiet: bool,
    wat: bool,
    virtual_clock: bool,
    trace: Option<String>,
    metrics: bool,
    fault: Option<netsim::FaultPlan>,
    max_fuel: Option<u64>,
    max_memory: Option<u64>,
    deadline: Option<f64>,
    watchdog: Option<f64>,
    module: String,
    guest_args: Vec<String>,
}

/// Parse a byte count with optional `k`/`m`/`g` suffix (powers of 1024).
fn parse_bytes(text: &str) -> Result<u64, String> {
    let t = text.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match t.as_bytes()[t.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1u64 << 20,
                _ => 1u64 << 30,
            };
            (d, mult)
        }
        None => (t.as_str(), 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("invalid byte count {text:?}"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        np: 1,
        tier: Tier::Max,
        preopens: Vec::new(),
        cache: None,
        entry: "_start".into(),
        quiet: false,
        wat: false,
        virtual_clock: false,
        trace: None,
        metrics: false,
        fault: None,
        max_fuel: None,
        max_memory: None,
        deadline: None,
        watchdog: None,
        module: String::new(),
        guest_args: Vec::new(),
    };
    let mut it = args.iter().peekable();
    let need = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                flag: &str|
     -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-np" => {
                opts.np = need(&mut it, "-np")?
                    .parse()
                    .map_err(|_| "-np expects a positive integer".to_string())?;
                if opts.np == 0 {
                    return Err("-np must be at least 1".into());
                }
            }
            "-tier" => {
                opts.tier = match need(&mut it, "-tier")?.as_str() {
                    "baseline" | "singlepass" => Tier::Baseline,
                    "optimizing" | "cranelift" => Tier::Optimizing,
                    "max" | "llvm" => Tier::Max,
                    "max+jit" | "maxjit" => Tier::MaxJit,
                    other => return Err(format!("unknown tier {other:?}")),
                };
            }
            "-d" | "-d-ro" => {
                let rights =
                    if arg == "-d" { Rights::READ_WRITE } else { Rights::READ_ONLY };
                let dir = need(&mut it, arg)?;
                let name = std::path::Path::new(&dir)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "data".into());
                opts.preopens.push((name, dir, rights));
            }
            "-cache" => opts.cache = Some(need(&mut it, "-cache")?),
            "-entry" => opts.entry = need(&mut it, "-entry")?,
            "-quiet" => opts.quiet = true,
            "-wat" => opts.wat = true,
            "--clock" | "-clock" => {
                opts.virtual_clock = match need(&mut it, "--clock")?.as_str() {
                    "real" => false,
                    "virtual" => true,
                    other => return Err(format!("unknown clock mode {other:?}")),
                };
            }
            "--trace" | "-trace" => opts.trace = Some(need(&mut it, "--trace")?),
            "--metrics" | "-metrics" => opts.metrics = true,
            "--fault" | "-fault" => {
                opts.fault = Some(
                    netsim::FaultPlan::parse(&need(&mut it, "--fault")?)
                        .map_err(|e| format!("--fault: {e}"))?,
                );
            }
            "--max-fuel" | "-max-fuel" => {
                opts.max_fuel = Some(
                    need(&mut it, "--max-fuel")?
                        .parse()
                        .map_err(|_| "--max-fuel expects an integer tick count".to_string())?,
                );
            }
            "--max-memory" | "-max-memory" => {
                opts.max_memory = Some(parse_bytes(&need(&mut it, "--max-memory")?)?);
            }
            "--deadline" | "-deadline" => {
                let secs: f64 = need(&mut it, "--deadline")?
                    .parse()
                    .map_err(|_| "--deadline expects seconds".to_string())?;
                if !(secs > 0.0) {
                    return Err("--deadline must be positive".into());
                }
                opts.deadline = Some(secs);
            }
            "--watchdog" | "-watchdog" => {
                let secs: f64 = need(&mut it, "--watchdog")?
                    .parse()
                    .map_err(|_| "--watchdog expects seconds".to_string())?;
                if !(secs > 0.0) {
                    return Err("--watchdog must be positive".into());
                }
                opts.watchdog = Some(secs);
            }
            other if opts.module.is_empty() && !other.starts_with('-') => {
                opts.module = other.to_string();
            }
            other if !opts.module.is_empty() => {
                opts.guest_args.push(other.to_string());
                opts.guest_args.extend(it.by_ref().cloned());
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    if opts.module.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let wasm_bytes = match std::fs::read(&opts.module) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mpiwasm: cannot read {}: {e}", opts.module);
            return ExitCode::from(1);
        }
    };

    if opts.wat {
        match wasm_engine::decode_module(&wasm_bytes) {
            Ok(m) => {
                print!("{}", wasm_engine::wat::to_wat(&m));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("mpiwasm: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // Filesystem: the requested preopens (virtual names hide host paths,
    // paper §3.4), or an in-memory scratch directory when none are given.
    let fs = if opts.preopens.is_empty() {
        SharedFs::memory()
    } else {
        SharedFs::new(
            opts.preopens
                .iter()
                .map(|(name, dir, rights)| wasi_layer::Preopen {
                    guest_name: name.clone(),
                    rights: *rights,
                    backend: wasi_layer::DirBackend::Host(dir.into()),
                })
                .collect(),
        )
    };

    let runner = match &opts.cache {
        Some(dir) => match Runner::new().with_cache(dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mpiwasm: cannot open cache {dir}: {e}");
                return ExitCode::from(1);
            }
        },
        None => Runner::new(),
    };

    let clock = if opts.virtual_clock {
        ClockMode::Virtual(CostModel::native(SystemProfile::container()))
    } else {
        ClockMode::Real
    };
    let recorder = if opts.trace.is_some() || opts.metrics {
        let trace_clock =
            if opts.virtual_clock { TraceClock::Virtual } else { TraceClock::Real };
        Some(Recorder::new(opts.np as usize, obs::DEFAULT_CAPACITY, trace_clock))
    } else {
        None
    };

    let mut guest_args = vec![opts.module.clone()];
    guest_args.extend(opts.guest_args.clone());
    let config = JobConfig {
        np: opts.np,
        tier: opts.tier,
        clock,
        args: guest_args,
        fs,
        echo_stdout: !opts.quiet,
        entry: opts.entry.clone(),
        recorder: recorder.clone(),
        fault: opts.fault.clone(),
        max_fuel: opts.max_fuel,
        max_memory: opts.max_memory,
        deadline: opts.deadline.map(std::time::Duration::from_secs_f64),
        watchdog: opts
            .watchdog
            .map(|s| mpi_substrate::WatchdogConfig::wall(std::time::Duration::from_secs_f64(s))),
        ..Default::default()
    };

    match runner.run(&wasm_bytes, config) {
        Ok(result) => {
            if let Some(rec) = &recorder {
                if let Some(path) = &opts.trace {
                    let json = obs::export_chrome_trace(rec);
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("mpiwasm: cannot write trace {path}: {e}");
                        return ExitCode::from(1);
                    }
                    if !opts.quiet {
                        eprintln!(
                            "mpiwasm: trace written to {path} ({} events{})",
                            (0..rec.n_ranks())
                                .map(|r| rec.rank_events(r).len())
                                .sum::<usize>()
                                + rec.engine_events().len(),
                            match rec.total_dropped() {
                                0 => String::new(),
                                n => format!(", {n} dropped"),
                            },
                        );
                    }
                }
                if opts.metrics {
                    print!("{}", rec.metrics().render_table());
                }
            }
            if !opts.quiet {
                eprintln!(
                    "mpiwasm: {} ranks, compile {:.2}ms{}",
                    result.ranks.len(),
                    result.compile_time.as_secs_f64() * 1e3,
                    if result.cache_hit { " (cache hit)" } else { "" },
                );
            }
            let mut exit = 0;
            for r in &result.ranks {
                if let Some(err) = &r.error {
                    eprintln!("mpiwasm: rank {} trapped: {err}", r.rank);
                    exit = 1;
                } else if r.exit_code != 0 && exit == 0 {
                    exit = r.exit_code.clamp(0, 255);
                }
            }
            if let Some(report) = &result.watchdog_report {
                eprintln!("mpiwasm: hang watchdog fired:\n{report}");
                exit = 1;
            }
            ExitCode::from(exit as u8)
        }
        Err(e) => {
            eprintln!("mpiwasm: {e}");
            ExitCode::from(1)
        }
    }
}

//! The job runner: the library behind the `mpiwasm` CLI.
//!
//! `mpirun -np N ./mpiwasm app.wasm` (paper Listing 4) becomes
//! [`Runner::run`]: the module is compiled once (through the cache when
//! one is configured), then instantiated once per MPI rank — each rank an
//! OS thread with its own linear memory, `Env`, and WASI context — and the
//! exported entry point is invoked on every rank.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpi_substrate::{run_world_configured, ClockMode, WatchdogConfig, WorldConfig};
use netsim::FaultPlan;
use obs::Recorder;
use wasi_layer::{register_wasi, SharedFs, WasiCtx};
use wasm_engine::error::Trap;
use wasm_engine::runtime::{CompiledModule, Linker};
use wasm_engine::tier::Tier;

use crate::cache::ModuleCache;
use crate::env::{Env, MpiState};
use crate::mpi_host::register_mpi;
use crate::translate::TranslationStats;

/// Configuration of one job launch.
#[derive(Clone)]
pub struct JobConfig {
    /// Number of MPI ranks (`mpirun -np`).
    pub np: u32,
    /// Execution tier (the paper ships LLVM/Max as the default, §3.3).
    pub tier: Tier,
    /// Real or simulated time (see crate `mpi-substrate`).
    pub clock: ClockMode,
    /// Per-MPI-call embedder overhead (µs) charged to virtual clocks; use
    /// the measured Figure 6 value for Wasm-path simulations, 0 otherwise.
    pub wasm_call_overhead_us: f64,
    /// Record per-call translation timings (Figure 6 instrumentation).
    pub instrument: bool,
    /// Guest `argv` (element 0 is the program name).
    pub args: Vec<String>,
    /// Preopened filesystem shared by all ranks.
    pub fs: SharedFs,
    /// Echo guest stdout/stderr to the host terminal.
    pub echo_stdout: bool,
    /// Exported entry function, `_start` by convention.
    pub entry: String,
    /// Flight recorder for per-rank event tracing and the unified metrics
    /// registry. When attached the run also enables JIT profiling counters
    /// and a promotion hook on the compiled module, and folds the JIT and
    /// protocol counters into the recorder's metrics at completion.
    pub recorder: Option<Arc<Recorder>>,
    /// Per-rank execution-fuel budget (guard-point ticks; see
    /// `Instance::set_fuel`). A rank that exhausts its budget traps with
    /// `OutOfFuel` and is marked *failed*, so its peers observe
    /// `RankFailed` instead of hanging. `None` = unlimited.
    pub max_fuel: Option<u64>,
    /// Per-rank linear-memory cap in bytes (rounded down to whole pages,
    /// never below the module's initial size). A `memory.grow` past the
    /// cap fails with -1, exactly like exceeding the declared maximum.
    pub max_memory: Option<u64>,
    /// Wall-clock deadline for the whole job. One timer thread raises a
    /// shared interruption flag; every rank still executing traps with
    /// `Interrupted` at its next guard point and becomes a failed rank.
    pub deadline: Option<Duration>,
    /// Deterministic fault plan (injected rank crashes, message drops,
    /// extra delays) forwarded to the world; see `netsim::FaultPlan`.
    pub fault: Option<FaultPlan>,
    /// Hang watchdog forwarded to the world: fires when global progress
    /// stalls (or a virtual clock passes its budget), dumps a per-rank
    /// report, and shuts the world down so blocked ranks return errors.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            np: 1,
            tier: Tier::Max,
            clock: ClockMode::Real,
            wasm_call_overhead_us: 0.0,
            instrument: false,
            args: vec!["app.wasm".into()],
            fs: SharedFs::memory(),
            echo_stdout: false,
            entry: "_start".into(),
            recorder: None,
            max_fuel: None,
            max_memory: None,
            deadline: None,
            fault: None,
            watchdog: None,
        }
    }
}

/// Outcome of one rank.
#[derive(Debug)]
pub struct RankResult {
    pub rank: u32,
    /// 0 on clean completion or `proc_exit(0)`.
    pub exit_code: i32,
    /// Trap message if the rank died on a non-exit trap.
    pub error: Option<String>,
    pub stdout: String,
    pub stderr: String,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Final virtual clock (µs); 0 in real-clock mode.
    pub virtual_time_us: f64,
    /// Figure 6 counters (empty unless `instrument` was set).
    pub stats: TranslationStats,
    /// Guest-reported `(key, value)` pairs from the `bench.report` hook.
    pub reports: Vec<(i32, f64)>,
}

/// Outcome of one job.
#[derive(Debug)]
pub struct JobResult {
    pub ranks: Vec<RankResult>,
    /// Time spent obtaining executable code (compile or cache load).
    pub compile_time: Duration,
    pub cache_hit: bool,
    /// Per-rank diagnosis captured if the hang watchdog fired (what each
    /// rank was blocked in, call counts, failed set). Also stored as the
    /// `watchdog_report` annotation on an attached recorder.
    pub watchdog_report: Option<String>,
}

impl JobResult {
    /// True when every rank exited cleanly.
    pub fn success(&self) -> bool {
        self.ranks.iter().all(|r| r.exit_code == 0 && r.error.is_none())
    }

    /// Maximum virtual completion time across ranks (what a benchmark
    /// reports as its iteration time at scale).
    pub fn max_virtual_time_us(&self) -> f64 {
        self.ranks.iter().map(|r| r.virtual_time_us).fold(0.0, f64::max)
    }

    /// Merged translation statistics across ranks.
    pub fn merged_stats(&self) -> TranslationStats {
        let mut out = TranslationStats::new();
        for r in &self.ranks {
            out.merge(&r.stats);
        }
        out
    }

    pub fn rank0_stdout(&self) -> &str {
        &self.ranks[0].stdout
    }
}

/// Errors launching a job (per-rank failures live in [`RankResult`]).
#[derive(Debug)]
pub enum RunError {
    Decode(String),
    Compile(String),
    Cache(String),
    NoEntry(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Decode(m) => write!(f, "failed to decode module: {m}"),
            RunError::Compile(m) => write!(f, "failed to compile module: {m}"),
            RunError::Cache(m) => write!(f, "cache failure: {m}"),
            RunError::NoEntry(name) => write!(f, "module does not export {name:?}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The embedder: a linker with the full `env.MPI_*` + WASI surface, plus
/// an optional module cache.
pub struct Runner {
    linker: Linker,
    cache: Option<ModuleCache>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with MPI and WASI host functions registered.
    pub fn new() -> Runner {
        let mut linker = Linker::new();
        register_mpi(&mut linker);
        register_wasi(&mut linker, |data| {
            &mut data.downcast_mut::<Env>().expect("instance data is not Env").wasi
        });
        // Harness hook: guests report measured values as (key, f64) pairs.
        linker.func(
            "bench",
            "report",
            wasm_engine::types::FuncType::new(
                vec![wasm_engine::types::ValType::I32, wasm_engine::types::ValType::F64],
                vec![],
            ),
            |inst, args| {
                let key = args[0].i32();
                let value = args[1].f64();
                let env = inst.data_mut::<Env>().expect("instance data is not Env");
                env.reports.push((key, value));
                Ok(vec![])
            },
        );
        Runner { linker, cache: None }
    }

    /// Attach a filesystem cache (paper §3.3).
    pub fn with_cache(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Runner> {
        self.cache = Some(ModuleCache::new(dir)?);
        Ok(self)
    }

    /// Direct access to the linker, for embedders that add extra host
    /// functions (e.g. benchmark harness hooks).
    pub fn linker_mut(&mut self) -> &mut Linker {
        &mut self.linker
    }

    /// Compile (through the cache when configured).
    pub fn prepare(&self, wasm_bytes: &[u8], tier: Tier) -> Result<(CompiledModule, bool), RunError> {
        if let Some(cache) = &self.cache {
            return cache.get_or_compile(wasm_bytes, tier).map_err(RunError::Cache);
        }
        let module =
            wasm_engine::decode_module(wasm_bytes).map_err(|e| RunError::Decode(e.to_string()))?;
        CompiledModule::compile(module, tier)
            .map(|c| (c, false))
            .map_err(|e| RunError::Compile(e.to_string()))
    }

    /// Run a job from wasm bytes.
    pub fn run(&self, wasm_bytes: &[u8], config: JobConfig) -> Result<JobResult, RunError> {
        let t0 = Instant::now();
        let (compiled, cache_hit) = self.prepare(wasm_bytes, config.tier)?;
        let compile_time = t0.elapsed();
        let mut result = self.run_compiled(&compiled, config)?;
        result.compile_time = compile_time;
        result.cache_hit = cache_hit;
        Ok(result)
    }

    /// Run a job from an already-compiled module (the per-rank
    /// instantiation path; compilation cost is reported as zero).
    pub fn run_compiled(
        &self,
        compiled: &CompiledModule,
        config: JobConfig,
    ) -> Result<JobResult, RunError> {
        if compiled.module().export(&config.entry).is_none() {
            return Err(RunError::NoEntry(config.entry.clone()));
        }
        let linker = Arc::new(self.linker.clone());
        let compiled = compiled.clone();
        let recorder = config.recorder.clone();
        if let Some(rec) = &recorder {
            // Promotions happen on rank threads but belong to the shared
            // engine: they land on the recorder's engine track.
            let hook_rec = Arc::clone(rec);
            compiled.set_promotion_hook(Box::new(move |func| {
                hook_rec.emit_engine(obs::EventKind::Promotion { func });
            }));
            compiled.set_jit_profiling(true);
        }
        // A second handle for the post-run snapshot (the JitState behind
        // it is shared, not duplicated, by the clone).
        let compiled_jit = compiled.clone();
        let config = Arc::new(config);
        let np = config.np;
        let clock = config.clock.clone();
        let fault_plan = config.fault.clone();
        let watchdog_cfg = config.watchdog.clone();

        // One deadline timer drives every rank through a shared
        // interruption flag; each rank traps `Interrupted` at its next
        // guard point. The timer thread is detached — if the job finishes
        // first it sets a flag nobody reads.
        let deadline_flag = config.deadline.map(|deadline| {
            let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let timer = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(deadline);
                timer.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            flag
        });

        let body_rec = recorder.clone();
        let body = move |comm: mpi_substrate::Comm| {
            let rank = comm.rank();
            // MPI_COMM_SELF is built collectively before the guest starts.
            // The split can fail for real — a fault plan may kill a rank
            // (this one or a peer) mid-collective — and that must contain
            // as a failed rank, not a panic.
            let comm_self = match comm.split(rank as i32, 0) {
                Ok(c) => c.expect("color is never undefined"),
                Err(e) => {
                    comm.fail_self();
                    return RankResult {
                        rank,
                        exit_code: -1,
                        error: Some(format!("launch failed: {e}")),
                        stdout: String::new(),
                        stderr: String::new(),
                        bytes_read: 0,
                        bytes_written: 0,
                        virtual_time_us: comm.virtual_time_us(),
                        stats: TranslationStats::new(),
                        reports: Vec::new(),
                    };
                }
            };
            let mut mpi = MpiState::new(comm, comm_self);
            mpi.instrument = config.instrument;
            mpi.wasm_call_overhead_us = config.wasm_call_overhead_us;

            let mut wasi = WasiCtx::new(config.fs.clone(), config.args.clone());
            wasi.echo = config.echo_stdout;
            wasi.env.push(("MPIWASM_RANK".into(), rank.to_string()));
            wasi.seed_random(0x5eed_0000 + rank as u64);

            let env = Env::new(mpi, wasi);
            let mut inst = match linker.instantiate(&compiled, Box::new(env)) {
                Ok(i) => i,
                Err(e) => {
                    return RankResult {
                        rank,
                        exit_code: -1,
                        error: Some(e.to_string()),
                        stdout: String::new(),
                        stderr: String::new(),
                        bytes_read: 0,
                        bytes_written: 0,
                        virtual_time_us: 0.0,
                        stats: TranslationStats::new(),
                        reports: Vec::new(),
                    }
                }
            };
            if let Some(fuel) = config.max_fuel {
                inst.set_fuel(fuel);
            }
            if let Some(bytes) = config.max_memory {
                inst.cap_memory(bytes);
            }
            if let Some(flag) = &deadline_flag {
                inst.set_interrupt_flag(Arc::clone(flag));
            }

            let outcome = inst.invoke(&config.entry, &[]);
            let (exit_code, mut error, limit_kill) = match outcome {
                Ok(_) => (0, None, false),
                Err(Trap::Exit(code)) => (code, None, false),
                Err(t) => {
                    let limit = matches!(t, Trap::OutOfFuel | Trap::Interrupted);
                    (-1, Some(t.to_string()), limit)
                }
            };
            let env = inst.data_mut::<Env>().expect("data is Env");
            if limit_kill {
                if let Some(rec) = &body_rec {
                    let ts = match rec.clock() {
                        obs::TraceClock::Virtual => env.mpi.world().virtual_time_us(),
                        obs::TraceClock::Real => rec.elapsed_us(),
                    };
                    rec.emit(rank as usize, ts, obs::EventKind::FuelExhausted { rank });
                }
            }
            if error.is_some() {
                // A trapped guest is a failed rank: peers blocked on it
                // observe `RankFailed` (ULFM semantics) instead of
                // hanging on a rank that will never call MPI again.
                env.mpi.world().fail_self();
            } else if exit_code == 0 && env.mpi.world().failed_ranks().contains(&rank) {
                // The inverse masking: a killed rank whose guest swallowed
                // every MPI error code and exited *cleanly* would misreport
                // the job. A nonzero exit (canonically 75) is the guest
                // reporting the failure itself — errors-return semantics —
                // and stays untouched.
                error = Some(format!("rank {rank} killed by fault injection"));
            }
            RankResult {
                rank,
                exit_code,
                error,
                stdout: env.wasi.stdout_string(),
                stderr: String::from_utf8_lossy(&env.wasi.stderr).into_owned(),
                bytes_read: env.wasi.bytes_read,
                bytes_written: env.wasi.bytes_written,
                virtual_time_us: env.mpi.world().virtual_time_us(),
                stats: env.mpi.stats.clone(),
                reports: std::mem::take(&mut env.reports),
            }
        };

        let mut world_config = WorldConfig::new(clock);
        if let Some(rec) = &recorder {
            world_config = world_config.with_recorder(Arc::clone(rec));
        }
        if let Some(plan) = fault_plan {
            world_config = world_config.with_fault(plan);
        }
        // Capture the watchdog report so it outlives the world (chaining
        // any caller-installed `on_fire`); it lands on the `JobResult`.
        let watchdog_report: Arc<Mutex<Option<String>>> = Arc::default();
        if let Some(mut wd) = watchdog_cfg {
            let user_hook = wd.on_fire.take();
            let capture = Arc::clone(&watchdog_report);
            wd.on_fire = Some(Arc::new(move |report: &str| {
                *capture.lock().unwrap() = Some(report.to_string());
                if let Some(hook) = &user_hook {
                    hook(report);
                }
            }));
            world_config = world_config.with_watchdog(wd);
        }

        let ranks = run_world_configured(np, world_config, body);

        if let Some(rec) = &recorder {
            if let Some(snap) = compiled_jit.jit_snapshot() {
                rec.fold_metrics(snap.metric_entries());
            }
        }
        let watchdog_report = watchdog_report.lock().unwrap().take();
        Ok(JobResult { ranks, compile_time: Duration::ZERO, cache_hit: false, watchdog_report })
    }
}

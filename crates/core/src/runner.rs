//! The job runner: the library behind the `mpiwasm` CLI.
//!
//! `mpirun -np N ./mpiwasm app.wasm` (paper Listing 4) becomes
//! [`Runner::run`]: the module is compiled once (through the cache when
//! one is configured), then instantiated once per MPI rank — each rank an
//! OS thread with its own linear memory, `Env`, and WASI context — and the
//! exported entry point is invoked on every rank.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpi_substrate::{run_world_recorded, run_world_with, ClockMode};
use obs::Recorder;
use wasi_layer::{register_wasi, SharedFs, WasiCtx};
use wasm_engine::error::Trap;
use wasm_engine::runtime::{CompiledModule, Linker};
use wasm_engine::tier::Tier;

use crate::cache::ModuleCache;
use crate::env::{Env, MpiState};
use crate::mpi_host::register_mpi;
use crate::translate::TranslationStats;

/// Configuration of one job launch.
#[derive(Clone)]
pub struct JobConfig {
    /// Number of MPI ranks (`mpirun -np`).
    pub np: u32,
    /// Execution tier (the paper ships LLVM/Max as the default, §3.3).
    pub tier: Tier,
    /// Real or simulated time (see crate `mpi-substrate`).
    pub clock: ClockMode,
    /// Per-MPI-call embedder overhead (µs) charged to virtual clocks; use
    /// the measured Figure 6 value for Wasm-path simulations, 0 otherwise.
    pub wasm_call_overhead_us: f64,
    /// Record per-call translation timings (Figure 6 instrumentation).
    pub instrument: bool,
    /// Guest `argv` (element 0 is the program name).
    pub args: Vec<String>,
    /// Preopened filesystem shared by all ranks.
    pub fs: SharedFs,
    /// Echo guest stdout/stderr to the host terminal.
    pub echo_stdout: bool,
    /// Exported entry function, `_start` by convention.
    pub entry: String,
    /// Flight recorder for per-rank event tracing and the unified metrics
    /// registry. When attached the run also enables JIT profiling counters
    /// and a promotion hook on the compiled module, and folds the JIT and
    /// protocol counters into the recorder's metrics at completion.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            np: 1,
            tier: Tier::Max,
            clock: ClockMode::Real,
            wasm_call_overhead_us: 0.0,
            instrument: false,
            args: vec!["app.wasm".into()],
            fs: SharedFs::memory(),
            echo_stdout: false,
            entry: "_start".into(),
            recorder: None,
        }
    }
}

/// Outcome of one rank.
#[derive(Debug)]
pub struct RankResult {
    pub rank: u32,
    /// 0 on clean completion or `proc_exit(0)`.
    pub exit_code: i32,
    /// Trap message if the rank died on a non-exit trap.
    pub error: Option<String>,
    pub stdout: String,
    pub stderr: String,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Final virtual clock (µs); 0 in real-clock mode.
    pub virtual_time_us: f64,
    /// Figure 6 counters (empty unless `instrument` was set).
    pub stats: TranslationStats,
    /// Guest-reported `(key, value)` pairs from the `bench.report` hook.
    pub reports: Vec<(i32, f64)>,
}

/// Outcome of one job.
#[derive(Debug)]
pub struct JobResult {
    pub ranks: Vec<RankResult>,
    /// Time spent obtaining executable code (compile or cache load).
    pub compile_time: Duration,
    pub cache_hit: bool,
}

impl JobResult {
    /// True when every rank exited cleanly.
    pub fn success(&self) -> bool {
        self.ranks.iter().all(|r| r.exit_code == 0 && r.error.is_none())
    }

    /// Maximum virtual completion time across ranks (what a benchmark
    /// reports as its iteration time at scale).
    pub fn max_virtual_time_us(&self) -> f64 {
        self.ranks.iter().map(|r| r.virtual_time_us).fold(0.0, f64::max)
    }

    /// Merged translation statistics across ranks.
    pub fn merged_stats(&self) -> TranslationStats {
        let mut out = TranslationStats::new();
        for r in &self.ranks {
            out.merge(&r.stats);
        }
        out
    }

    pub fn rank0_stdout(&self) -> &str {
        &self.ranks[0].stdout
    }
}

/// Errors launching a job (per-rank failures live in [`RankResult`]).
#[derive(Debug)]
pub enum RunError {
    Decode(String),
    Compile(String),
    Cache(String),
    NoEntry(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Decode(m) => write!(f, "failed to decode module: {m}"),
            RunError::Compile(m) => write!(f, "failed to compile module: {m}"),
            RunError::Cache(m) => write!(f, "cache failure: {m}"),
            RunError::NoEntry(name) => write!(f, "module does not export {name:?}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The embedder: a linker with the full `env.MPI_*` + WASI surface, plus
/// an optional module cache.
pub struct Runner {
    linker: Linker,
    cache: Option<ModuleCache>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with MPI and WASI host functions registered.
    pub fn new() -> Runner {
        let mut linker = Linker::new();
        register_mpi(&mut linker);
        register_wasi(&mut linker, |data| {
            &mut data.downcast_mut::<Env>().expect("instance data is not Env").wasi
        });
        // Harness hook: guests report measured values as (key, f64) pairs.
        linker.func(
            "bench",
            "report",
            wasm_engine::types::FuncType::new(
                vec![wasm_engine::types::ValType::I32, wasm_engine::types::ValType::F64],
                vec![],
            ),
            |inst, args| {
                let key = args[0].i32();
                let value = args[1].f64();
                let env = inst.data_mut::<Env>().expect("instance data is not Env");
                env.reports.push((key, value));
                Ok(vec![])
            },
        );
        Runner { linker, cache: None }
    }

    /// Attach a filesystem cache (paper §3.3).
    pub fn with_cache(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Runner> {
        self.cache = Some(ModuleCache::new(dir)?);
        Ok(self)
    }

    /// Direct access to the linker, for embedders that add extra host
    /// functions (e.g. benchmark harness hooks).
    pub fn linker_mut(&mut self) -> &mut Linker {
        &mut self.linker
    }

    /// Compile (through the cache when configured).
    pub fn prepare(&self, wasm_bytes: &[u8], tier: Tier) -> Result<(CompiledModule, bool), RunError> {
        if let Some(cache) = &self.cache {
            return cache.get_or_compile(wasm_bytes, tier).map_err(RunError::Cache);
        }
        let module =
            wasm_engine::decode_module(wasm_bytes).map_err(|e| RunError::Decode(e.to_string()))?;
        CompiledModule::compile(module, tier)
            .map(|c| (c, false))
            .map_err(|e| RunError::Compile(e.to_string()))
    }

    /// Run a job from wasm bytes.
    pub fn run(&self, wasm_bytes: &[u8], config: JobConfig) -> Result<JobResult, RunError> {
        let t0 = Instant::now();
        let (compiled, cache_hit) = self.prepare(wasm_bytes, config.tier)?;
        let compile_time = t0.elapsed();
        let mut result = self.run_compiled(&compiled, config)?;
        result.compile_time = compile_time;
        result.cache_hit = cache_hit;
        Ok(result)
    }

    /// Run a job from an already-compiled module (the per-rank
    /// instantiation path; compilation cost is reported as zero).
    pub fn run_compiled(
        &self,
        compiled: &CompiledModule,
        config: JobConfig,
    ) -> Result<JobResult, RunError> {
        if compiled.module().export(&config.entry).is_none() {
            return Err(RunError::NoEntry(config.entry.clone()));
        }
        let linker = Arc::new(self.linker.clone());
        let compiled = compiled.clone();
        let recorder = config.recorder.clone();
        if let Some(rec) = &recorder {
            // Promotions happen on rank threads but belong to the shared
            // engine: they land on the recorder's engine track.
            let hook_rec = Arc::clone(rec);
            compiled.set_promotion_hook(Box::new(move |func| {
                hook_rec.emit_engine(obs::EventKind::Promotion { func });
            }));
            compiled.set_jit_profiling(true);
        }
        // A second handle for the post-run snapshot (the JitState behind
        // it is shared, not duplicated, by the clone).
        let compiled_jit = compiled.clone();
        let config = Arc::new(config);
        let np = config.np;
        let clock = config.clock.clone();

        let body = move |comm: mpi_substrate::Comm| {
            let rank = comm.rank();
            // MPI_COMM_SELF is built collectively before the guest starts.
            let comm_self = comm
                .split(rank as i32, 0)
                .expect("self-comm split cannot fail")
                .expect("color is never undefined");
            let mut mpi = MpiState::new(comm, comm_self);
            mpi.instrument = config.instrument;
            mpi.wasm_call_overhead_us = config.wasm_call_overhead_us;

            let mut wasi = WasiCtx::new(config.fs.clone(), config.args.clone());
            wasi.echo = config.echo_stdout;
            wasi.env.push(("MPIWASM_RANK".into(), rank.to_string()));
            wasi.seed_random(0x5eed_0000 + rank as u64);

            let env = Env::new(mpi, wasi);
            let mut inst = match linker.instantiate(&compiled, Box::new(env)) {
                Ok(i) => i,
                Err(e) => {
                    return RankResult {
                        rank,
                        exit_code: -1,
                        error: Some(e.to_string()),
                        stdout: String::new(),
                        stderr: String::new(),
                        bytes_read: 0,
                        bytes_written: 0,
                        virtual_time_us: 0.0,
                        stats: TranslationStats::new(),
                        reports: Vec::new(),
                    }
                }
            };

            let outcome = inst.invoke(&config.entry, &[]);
            let (exit_code, error) = match outcome {
                Ok(_) => (0, None),
                Err(Trap::Exit(code)) => (code, None),
                Err(t) => (-1, Some(t.to_string())),
            };
            let env = inst.data_mut::<Env>().expect("data is Env");
            RankResult {
                rank,
                exit_code,
                error,
                stdout: env.wasi.stdout_string(),
                stderr: String::from_utf8_lossy(&env.wasi.stderr).into_owned(),
                bytes_read: env.wasi.bytes_read,
                bytes_written: env.wasi.bytes_written,
                virtual_time_us: env.mpi.world().virtual_time_us(),
                stats: env.mpi.stats.clone(),
                reports: std::mem::take(&mut env.reports),
            }
        };

        let ranks = match &recorder {
            Some(rec) => run_world_recorded(np, clock, None, Arc::clone(rec), body),
            None => run_world_with(np, clock, body),
        };

        if let Some(rec) = &recorder {
            if let Some(snap) = compiled_jit.jit_snapshot() {
                rec.fold_metrics(snap.metric_entries());
            }
        }
        Ok(JobResult { ranks, compile_time: Duration::ZERO, cache_hit: false })
    }
}

//! A WASI `snapshot_preview1` subset with filesystem isolation.
//!
//! Implements the system interface the paper's guests need (§2.3, Listing
//! 1): `fd_read`/`fd_write`/`fd_seek`/`fd_close`, `path_open`, `proc_exit`,
//! args/environ, `clock_time_get`, `random_get`, and the prestat calls that
//! let `wasi-libc`-style startup discover preopened directories.
//!
//! Filesystem isolation follows §3.4: the guest sees a **virtual directory
//! tree** whose roots are the preopened directories. Preopen names are
//! flat children of `/` (the host path, usernames included, is never
//! exposed), rights can be restricted per directory (read-only preopens of
//! a writable host directory), and path resolution rejects every attempt
//! to escape (`..`, absolute paths). Directories can be backed by host
//! directories or by a process-wide in-memory filesystem shared between
//! ranks (what the IOR benchmark writes to).

pub mod ctx;
pub mod errno;
pub mod fs;
pub mod host;

pub use ctx::{FdEntry, WasiCtx};
pub use errno::Errno;
pub use fs::{DirBackend, Preopen, Rights, SharedFs};
pub use host::register_wasi;

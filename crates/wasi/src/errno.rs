//! WASI errno values (the subset this layer reports).

/// WASI `errno` codes, as defined by `wasi_snapshot_preview1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Errno {
    Success = 0,
    Acces = 2,
    Badf = 8,
    Exist = 20,
    Inval = 28,
    Io = 29,
    Isdir = 31,
    Noent = 44,
    Notdir = 54,
    Notcapable = 76,
}

impl Errno {
    /// The i32 WASI functions return.
    pub fn raw(self) -> i32 {
        self as u16 as i32
    }
}

impl From<Errno> for i32 {
    fn from(e: Errno) -> i32 {
        e.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_is_zero() {
        assert_eq!(Errno::Success.raw(), 0);
    }

    #[test]
    fn codes_match_wasi_spec() {
        assert_eq!(Errno::Badf.raw(), 8);
        assert_eq!(Errno::Noent.raw(), 44);
        assert_eq!(Errno::Notcapable.raw(), 76);
        assert_eq!(Errno::Inval.raw(), 28);
        assert_eq!(Errno::Acces.raw(), 2);
    }
}

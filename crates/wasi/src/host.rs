//! Registration of the `wasi_snapshot_preview1` host functions into a
//! [`wasm_engine::Linker`].
//!
//! The embedder stores a [`WasiCtx`] somewhere inside its per-instance
//! data; `register_wasi` takes an *accessor* that projects the instance
//! data to that context, so this crate stays independent of the embedder's
//! state layout.

use std::any::Any;

use wasm_engine::error::Trap;
use wasm_engine::runtime::{Instance, Linker, Memory, Slot};
#[cfg(test)]
use wasm_engine::runtime::Value;
use wasm_engine::types::{FuncType, ValType};

use crate::ctx::WasiCtx;
use crate::errno::Errno;
use crate::fs::Rights;

/// WASI `oflags` bits for `path_open`.
pub mod oflags {
    pub const CREAT: u32 = 1;
    pub const DIRECTORY: u32 = 2;
    pub const EXCL: u32 = 4;
    pub const TRUNC: u32 = 8;
}

/// WASI rights bits (the two this layer distinguishes).
pub mod rights {
    pub const FD_READ: u64 = 1 << 1;
    pub const FD_WRITE: u64 = 1 << 6;
}

type Accessor = std::sync::Arc<dyn Fn(&mut (dyn Any + Send)) -> &mut WasiCtx + Send + Sync>;

fn errno_val(e: Errno) -> Vec<Slot> {
    vec![Slot::from_i32(e.raw())]
}

fn ok() -> Vec<Slot> {
    vec![Slot::from_i32(0)]
}

/// Gathered scatter/gather list: `(ptr, len)` pairs read from guest memory.
fn read_iovs(mem: &Memory, iovs: u32, count: u32) -> Result<Vec<(u32, u32)>, Trap> {
    let mut out = Vec::with_capacity(count.min(64) as usize);
    for i in 0..count {
        let base = iovs + i * 8;
        out.push((mem.read_u32_at(base)?, mem.read_u32_at(base + 4)?));
    }
    Ok(out)
}

/// Register the WASI subset. `get_ctx` projects the embedder's instance
/// data to its [`WasiCtx`].
pub fn register_wasi(
    linker: &mut Linker,
    get_ctx: impl Fn(&mut (dyn Any + Send)) -> &mut WasiCtx + Send + Sync + 'static,
) {
    let ns = "wasi_snapshot_preview1";
    let acc: Accessor = std::sync::Arc::new(get_ctx);
    let i32s = |n: usize| vec![ValType::I32; n];

    // args_sizes_get(argc_ptr, argv_buf_size_ptr) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "args_sizes_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            let argc = ctx.args.len() as u32;
            let buf_size: u32 = ctx.args.iter().map(|a| a.len() as u32 + 1).sum();
            mem.write_u32_at(args[0].u32(), argc)?;
            mem.write_u32_at(args[1].u32(), buf_size)?;
            Ok(ok())
        });
    }
    // args_get(argv_ptr, argv_buf_ptr) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "args_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            let mut argv = args[0].u32();
            let mut buf = args[1].u32();
            let owned: Vec<String> = ctx.args.clone();
            for a in owned {
                mem.write_u32_at(argv, buf)?;
                let bytes = a.as_bytes();
                mem.slice_mut(buf, bytes.len() as u32)?.copy_from_slice(bytes);
                mem.slice_mut(buf + bytes.len() as u32, 1)?[0] = 0;
                buf += bytes.len() as u32 + 1;
                argv += 4;
            }
            Ok(ok())
        });
    }
    // environ_sizes_get / environ_get
    {
        let acc = acc.clone();
        linker.func(ns, "environ_sizes_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            let count = ctx.env.len() as u32;
            let size: u32 = ctx.env.iter().map(|(k, v)| (k.len() + v.len() + 2) as u32).sum();
            mem.write_u32_at(args[0].u32(), count)?;
            mem.write_u32_at(args[1].u32(), size)?;
            Ok(ok())
        });
    }
    {
        let acc = acc.clone();
        linker.func(ns, "environ_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            let mut envp = args[0].u32();
            let mut buf = args[1].u32();
            let owned: Vec<(String, String)> = ctx.env.clone();
            for (k, v) in owned {
                let entry = format!("{k}={v}");
                mem.write_u32_at(envp, buf)?;
                let bytes = entry.as_bytes();
                mem.slice_mut(buf, bytes.len() as u32)?.copy_from_slice(bytes);
                mem.slice_mut(buf + bytes.len() as u32, 1)?[0] = 0;
                buf += bytes.len() as u32 + 1;
                envp += 4;
            }
            Ok(ok())
        });
    }
    // clock_time_get(id, precision: i64, time_ptr) -> errno
    linker.func(
        ns,
        "clock_time_get",
        FuncType::new(vec![ValType::I32, ValType::I64, ValType::I32], i32s(1)),
        move |inst, args| {
            let now_ns: u64 = match args[0].i32() {
                // CLOCK_REALTIME
                0 => std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0),
                // CLOCK_MONOTONIC (and others): a process-global monotonic
                _ => {
                    use std::sync::OnceLock;
                    static START: OnceLock<std::time::Instant> = OnceLock::new();
                    START.get_or_init(std::time::Instant::now).elapsed().as_nanos() as u64
                }
            };
            inst.memory.write_u64_at(args[2].u32(), now_ns)?;
            Ok(ok())
        },
    );
    // random_get(buf, len) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "random_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let (ptr, len) = (args[0].u32(), args[1].u32());
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            let dst = mem.slice_mut(ptr, len)?;
            let mut i = 0;
            while i < dst.len() {
                let r = ctx.next_random().to_le_bytes();
                let n = (dst.len() - i).min(8);
                dst[i..i + n].copy_from_slice(&r[..n]);
                i += n;
            }
            Ok(ok())
        });
    }
    // fd_write(fd, iovs, iovs_len, nwritten_ptr) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "fd_write", FuncType::new(i32s(4), i32s(1)), move |inst, args| {
            let fd = args[0].u32();
            let (mem, data) = inst.parts();
            let iovs = read_iovs(mem, args[1].u32(), args[2].u32())?;
            let ctx = acc(data);
            let mut written = 0u32;
            for (ptr, len) in iovs {
                let chunk = mem.slice(ptr, len)?;
                match ctx.write(fd, chunk) {
                    Ok(n) => written += n as u32,
                    Err(e) => return Ok(errno_val(e)),
                }
            }
            mem.write_u32_at(args[3].u32(), written)?;
            Ok(ok())
        });
    }
    // fd_read(fd, iovs, iovs_len, nread_ptr) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "fd_read", FuncType::new(i32s(4), i32s(1)), move |inst, args| {
            let fd = args[0].u32();
            let (mem, data) = inst.parts();
            let iovs = read_iovs(mem, args[1].u32(), args[2].u32())?;
            let ctx = acc(data);
            let mut nread = 0u32;
            for (ptr, len) in iovs {
                let buf = mem.slice_mut(ptr, len)?;
                match ctx.read(fd, buf) {
                    Ok(n) => {
                        nread += n as u32;
                        if n < len as usize {
                            break; // EOF
                        }
                    }
                    Err(e) => return Ok(errno_val(e)),
                }
            }
            mem.write_u32_at(args[3].u32(), nread)?;
            Ok(ok())
        });
    }
    // fd_seek(fd, offset: i64, whence, newoffset_ptr) -> errno
    {
        let acc = acc.clone();
        linker.func(
            ns,
            "fd_seek",
            FuncType::new(vec![ValType::I32, ValType::I64, ValType::I32, ValType::I32], i32s(1)),
            move |inst, args| {
                let fd = args[0].u32();
                let offset = args[1].i64();
                let whence = args[2].i32() as u8;
                let out_ptr = args[3].u32();
                let (mem, data) = inst.parts();
                let ctx = acc(data);
                match ctx.seek(fd, offset, whence) {
                    Ok(newpos) => {
                        mem.write_u64_at(out_ptr, newpos)?;
                        Ok(ok())
                    }
                    Err(e) => Ok(errno_val(e)),
                }
            },
        );
    }
    // fd_close(fd) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "fd_close", FuncType::new(i32s(1), i32s(1)), move |inst, args| {
            let fd = args[0].u32();
            let (_, data) = inst.parts();
            let ctx = acc(data);
            match ctx.close(fd) {
                Ok(()) => Ok(ok()),
                Err(e) => Ok(errno_val(e)),
            }
        });
    }
    // fd_fdstat_get(fd, stat_ptr) -> errno: minimal (filetype only).
    {
        let acc = acc.clone();
        linker.func(ns, "fd_fdstat_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let fd = args[0].u32();
            let ptr = args[1].u32();
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            let filetype: u8 = match ctx.entry(fd) {
                Ok(crate::ctx::FdEntry::Preopen(_)) => 3, // directory
                Ok(crate::ctx::FdEntry::File { .. }) => 4, // regular_file
                Ok(_) => 2,                                // character_device
                Err(e) => return Ok(errno_val(e)),
            };
            let stat = mem.slice_mut(ptr, 24)?;
            stat.fill(0);
            stat[0] = filetype;
            Ok(ok())
        });
    }
    // fd_prestat_get(fd, prestat_ptr) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "fd_prestat_get", FuncType::new(i32s(2), i32s(1)), move |inst, args| {
            let fd = args[0].u32();
            let ptr = args[1].u32();
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            match ctx.entry(fd) {
                Ok(crate::ctx::FdEntry::Preopen(i)) => {
                    // Virtual names are presented as "/<name>".
                    let name_len = ctx.fs.preopens()[*i].guest_name.len() as u32 + 1;
                    mem.write_u32_at(ptr, 0)?; // tag: prestat_dir
                    mem.write_u32_at(ptr + 4, name_len)?;
                    Ok(ok())
                }
                Ok(_) | Err(_) => Ok(errno_val(Errno::Badf)),
            }
        });
    }
    // fd_prestat_dir_name(fd, path_ptr, path_len) -> errno
    {
        let acc = acc.clone();
        linker.func(ns, "fd_prestat_dir_name", FuncType::new(i32s(3), i32s(1)), move |inst, args| {
            let fd = args[0].u32();
            let ptr = args[1].u32();
            let len = args[2].u32();
            let (mem, data) = inst.parts();
            let ctx = acc(data);
            match ctx.entry(fd) {
                Ok(crate::ctx::FdEntry::Preopen(i)) => {
                    let name = format!("/{}", ctx.fs.preopens()[*i].guest_name);
                    if (name.len() as u32) > len {
                        return Ok(errno_val(Errno::Inval));
                    }
                    mem.slice_mut(ptr, name.len() as u32)?.copy_from_slice(name.as_bytes());
                    Ok(ok())
                }
                Ok(_) | Err(_) => Ok(errno_val(Errno::Badf)),
            }
        });
    }
    // path_open(dirfd, dirflags, path_ptr, path_len, oflags,
    //           rights_base: i64, rights_inheriting: i64, fdflags,
    //           opened_fd_ptr) -> errno
    {
        let acc = acc.clone();
        let params = vec![
            ValType::I32, // dirfd
            ValType::I32, // dirflags
            ValType::I32, // path_ptr
            ValType::I32, // path_len
            ValType::I32, // oflags
            ValType::I64, // rights_base
            ValType::I64, // rights_inheriting
            ValType::I32, // fdflags
            ValType::I32, // opened_fd_ptr
        ];
        linker.func(ns, "path_open", FuncType::new(params, i32s(1)), move |inst, args| {
            let dirfd = args[0].u32();
            let path_ptr = args[2].u32();
            let path_len = args[3].u32();
            let oflags = args[4].u32();
            let rights_base = args[5].i64() as u64;
            let out_ptr = args[8].u32();

            let (mem, data) = inst.parts();
            let path_bytes = mem.slice(path_ptr, path_len)?.to_vec();
            let Ok(path) = String::from_utf8(path_bytes) else {
                return Ok(errno_val(Errno::Inval));
            };
            let ctx = acc(data);
            let dir = match ctx.entry(dirfd) {
                Ok(crate::ctx::FdEntry::Preopen(i)) => *i,
                Ok(_) => return Ok(errno_val(Errno::Notdir)),
                Err(e) => return Ok(errno_val(e)),
            };
            if oflags & oflags::DIRECTORY != 0 {
                return Ok(errno_val(Errno::Isdir));
            }
            let want_write = rights_base & rights::FD_WRITE != 0;
            let want_read = rights_base & rights::FD_READ != 0 || !want_write;
            let create = oflags & oflags::CREAT != 0;
            let trunc = oflags & oflags::TRUNC != 0;
            match ctx.fs.open(dir, &path, create, trunc, want_write) {
                Ok(handle) => {
                    let fd = ctx.push_file(
                        handle,
                        Rights { read: want_read, write: want_write },
                    );
                    mem.write_u32_at(out_ptr, fd)?;
                    Ok(ok())
                }
                Err(e) => Ok(errno_val(e)),
            }
        });
    }
    // proc_exit(code) -> ! (renders as a trap carrying the exit code)
    linker.func(ns, "proc_exit", FuncType::new(i32s(1), vec![]), move |_inst, args| {
        Err(Trap::Exit(args[0].i32()))
    });
    let _ = acc;
}

/// Convenience: the default accessor for instances whose data *is* a
/// [`WasiCtx`].
pub fn wasi_is_data(data: &mut (dyn Any + Send)) -> &mut WasiCtx {
    data.downcast_mut::<WasiCtx>().expect("instance data is not a WasiCtx")
}

#[allow(unused)]
fn _assert_instance_type(_: &Instance) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::SharedFs;
    use wasm_engine::builder::ModuleBuilder;
    use wasm_engine::dsl::*;
    use wasm_engine::runtime::CompiledModule;
    use wasm_engine::tier::Tier;

    fn wasi_linker() -> Linker {
        let mut linker = Linker::new();
        register_wasi(&mut linker, wasi_is_data);
        linker
    }

    fn instantiate(b: ModuleBuilder, args: Vec<String>) -> Instance {
        let compiled = CompiledModule::compile(b.finish(), Tier::Max).unwrap();
        let ctx = WasiCtx::new(SharedFs::memory(), args);
        wasi_linker().instantiate(&compiled, Box::new(ctx)).unwrap()
    }

    #[test]
    fn fd_write_to_stdout_is_captured() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let fd_write = b.import_func(
            "wasi_snapshot_preview1",
            "fd_write",
            vec![ValType::I32; 4],
            vec![ValType::I32],
        );
        b.data(64, b"hi from wasm".to_vec());
        b.func("_start", vec![], vec![], |f| {
            emit_block(f, &[
                // iov at 0: ptr=64 len=12
                store(int(0), 0, int(64)),
                store(int(4), 0, int(12)),
                call_drop(fd_write, vec![int(1), int(0), int(1), int(32)]),
            ]);
        });
        let mut inst = instantiate(b, vec![]);
        inst.invoke("_start", &[]).unwrap();
        assert_eq!(inst.data::<WasiCtx>().unwrap().stdout_string(), "hi from wasm");
        assert_eq!(inst.memory.read_u32_at(32).unwrap(), 12);
    }

    #[test]
    fn args_roundtrip_through_guest_memory() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let sizes = b.import_func(
            "wasi_snapshot_preview1",
            "args_sizes_get",
            vec![ValType::I32; 2],
            vec![ValType::I32],
        );
        let get = b.import_func(
            "wasi_snapshot_preview1",
            "args_get",
            vec![ValType::I32; 2],
            vec![ValType::I32],
        );
        b.func("_start", vec![], vec![], |f| {
            emit_block(f, &[
                call_drop(sizes, vec![int(0), int(4)]),
                call_drop(get, vec![int(16), int(256)]),
            ]);
        });
        let mut inst = instantiate(b, vec!["prog".into(), "-x".into()]);
        inst.invoke("_start", &[]).unwrap();
        assert_eq!(inst.memory.read_u32_at(0).unwrap(), 2); // argc
        assert_eq!(inst.memory.read_u32_at(4).unwrap(), 8); // "prog\0-x\0"
        let a0 = inst.memory.read_u32_at(16).unwrap();
        assert_eq!(inst.memory.read_cstr(a0, 32).unwrap(), "prog");
        let a1 = inst.memory.read_u32_at(20).unwrap();
        assert_eq!(inst.memory.read_cstr(a1, 32).unwrap(), "-x");
    }

    #[test]
    fn path_open_write_read_via_guest() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let path_open = b.import_func(
            "wasi_snapshot_preview1",
            "path_open",
            vec![
                ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32,
                ValType::I64, ValType::I64, ValType::I32, ValType::I32,
            ],
            vec![ValType::I32],
        );
        let fd_write = b.import_func(
            "wasi_snapshot_preview1",
            "fd_write",
            vec![ValType::I32; 4],
            vec![ValType::I32],
        );
        let fd_close = b.import_func(
            "wasi_snapshot_preview1",
            "fd_close",
            vec![ValType::I32],
            vec![ValType::I32],
        );
        b.data(100, b"out.bin".to_vec());
        b.data(200, b"PAYLOAD!".to_vec());
        b.func("_start", vec![], vec![ValType::I32], |f| {
            let fd = Var::new(f, ValType::I32);
            emit_block(f, &[
                // open "out.bin" under preopen fd 3 with create|trunc, rw.
                call_drop(path_open, vec![
                    int(3), int(0), int(100), int(7), int((oflags::CREAT | oflags::TRUNC) as i32),
                    long((rights::FD_READ | rights::FD_WRITE) as i64), long(0), int(0), int(60),
                ]),
                fd.set(int(60).load(ValType::I32, 0)),
                store(int(0), 0, int(200)),
                store(int(4), 0, int(8)),
                call_drop(fd_write, vec![fd.get(), int(0), int(1), int(64)]),
                call_drop(fd_close, vec![fd.get()]),
                ret(Some(fd.get())),
            ]);
        });
        let mut inst = instantiate(b, vec![]);
        let out = inst.invoke("_start", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(4)]); // first free fd after 0..3
        let ctx = inst.data::<WasiCtx>().unwrap();
        assert_eq!(ctx.bytes_written, 8);
        // The file is visible in the shared fs.
        let h = ctx.fs.open(0, "out.bin", false, false, false).unwrap();
        match h {
            crate::fs::FileHandle::Mem(m) => assert_eq!(&*m.read(), b"PAYLOAD!"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn proc_exit_traps_with_code() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let exit = b.import_func(
            "wasi_snapshot_preview1",
            "proc_exit",
            vec![ValType::I32],
            vec![],
        );
        b.func("_start", vec![], vec![], |f| {
            emit_block(f, &[call_stmt(exit, vec![int(3)])]);
        });
        let mut inst = instantiate(b, vec![]);
        let err = inst.invoke("_start", &[]).unwrap_err();
        assert_eq!(err, Trap::Exit(3));
    }

    #[test]
    fn prestat_reports_virtual_name() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let get = b.import_func(
            "wasi_snapshot_preview1",
            "fd_prestat_get",
            vec![ValType::I32; 2],
            vec![ValType::I32],
        );
        let name = b.import_func(
            "wasi_snapshot_preview1",
            "fd_prestat_dir_name",
            vec![ValType::I32; 3],
            vec![ValType::I32],
        );
        b.func("_start", vec![], vec![ValType::I32], |f| {
            let r = Var::new(f, ValType::I32);
            emit_block(f, &[
                call_drop(get, vec![int(3), int(0)]),
                r.set(call(name, vec![int(3), int(16), int(8)], ValType::I32)),
                ret(Some(r.get())),
            ]);
        });
        let mut inst = instantiate(b, vec![]);
        let out = inst.invoke("_start", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(0)]);
        // name_len includes the leading '/'.
        assert_eq!(inst.memory.read_u32_at(4).unwrap(), 5); // "/data"
        assert_eq!(&inst.memory.slice(16, 5).unwrap(), b"/data");
    }

    #[test]
    fn random_get_fills_buffer_deterministically() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let rg = b.import_func(
            "wasi_snapshot_preview1",
            "random_get",
            vec![ValType::I32; 2],
            vec![ValType::I32],
        );
        b.func("_start", vec![], vec![], |f| {
            emit_block(f, &[call_drop(rg, vec![int(0), int(16)])]);
        });
        let run = || {
            let compiled = CompiledModule::compile(
                {
                    let mut b2 = ModuleBuilder::new();
                    b2.memory(1, None);
                    let rg2 = b2.import_func(
                        "wasi_snapshot_preview1",
                        "random_get",
                        vec![ValType::I32; 2],
                        vec![ValType::I32],
                    );
                    b2.func("_start", vec![], vec![], |f| {
                        emit_block(f, &[call_drop(rg2, vec![int(0), int(16)])]);
                    });
                    b2.finish()
                },
                Tier::Max,
            )
            .unwrap();
            let mut ctx = WasiCtx::new(SharedFs::memory(), vec![]);
            ctx.seed_random(1234);
            let mut inst = wasi_linker().instantiate(&compiled, Box::new(ctx)).unwrap();
            inst.invoke("_start", &[]).unwrap();
            inst.memory.slice(0, 16).unwrap().to_vec()
        };
        let a = run();
        let b2 = run();
        assert_eq!(a, b2);
        assert_ne!(a, vec![0u8; 16]);
    }
}

//! The virtual filesystem: preopened directory roots with per-directory
//! rights, backed either by host directories or by a shared in-memory
//! store.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::errno::Errno;

/// Rights attached to a preopened directory (a coarse rendering of the
/// WASI rights bitsets, which is all the embedder's `-d`/`-d-ro` flags
/// need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rights {
    pub read: bool,
    pub write: bool,
}

impl Rights {
    pub const READ_ONLY: Rights = Rights { read: true, write: false };
    pub const READ_WRITE: Rights = Rights { read: true, write: true };
}

/// An in-memory file shared between all handles that open it.
pub type MemFile = Arc<RwLock<Vec<u8>>>;

/// Directory backend.
pub enum DirBackend {
    /// Shared in-memory directory: file name → contents. Used by tests,
    /// the IOR guest, and any run that should not touch the host disk.
    Memory(Mutex<HashMap<String, MemFile>>),
    /// A host directory. Guest paths resolve strictly beneath it.
    Host(PathBuf),
}

impl std::fmt::Debug for DirBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirBackend::Memory(m) => write!(f, "Memory({} files)", m.lock().len()),
            DirBackend::Host(p) => write!(f, "Host({})", p.display()),
        }
    }
}

/// One preopened directory: the guest-visible name (always a direct child
/// of the virtual root, hiding the host path per §3.4), its rights, and
/// its backend.
#[derive(Debug)]
pub struct Preopen {
    pub guest_name: String,
    pub rights: Rights,
    pub backend: DirBackend,
}

/// The filesystem shared by every rank of a job. Cloning shares state.
#[derive(Clone, Debug)]
pub struct SharedFs {
    preopens: Arc<Vec<Preopen>>,
}

/// An opened file handle.
pub enum FileHandle {
    Mem(MemFile),
    Host(std::fs::File),
}

impl std::fmt::Debug for FileHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileHandle::Mem(_) => write!(f, "FileHandle::Mem"),
            FileHandle::Host(_) => write!(f, "FileHandle::Host"),
        }
    }
}

impl SharedFs {
    /// Build a filesystem from preopens. Guest names are sanitized to
    /// simple path components.
    pub fn new(preopens: Vec<Preopen>) -> SharedFs {
        SharedFs { preopens: Arc::new(preopens) }
    }

    /// Convenience: one writable in-memory preopen named `/data`.
    pub fn memory() -> SharedFs {
        SharedFs::new(vec![Preopen {
            guest_name: "data".into(),
            rights: Rights::READ_WRITE,
            backend: DirBackend::Memory(Mutex::new(HashMap::new())),
        }])
    }

    /// Convenience: preopen a host directory under a virtual name
    /// (the embedder's `-d` flag).
    pub fn host_dir(guest_name: &str, host_path: impl Into<PathBuf>, rights: Rights) -> SharedFs {
        SharedFs::new(vec![Preopen {
            guest_name: guest_name.trim_matches('/').to_string(),
            rights,
            backend: DirBackend::Host(host_path.into()),
        }])
    }

    pub fn preopens(&self) -> &[Preopen] {
        &self.preopens
    }

    /// Validate a guest-relative path: plain components only; `..`,
    /// absolute paths, and empty components are rejected — this is the
    /// escape-prevention check.
    fn sanitize(path: &str) -> Result<Vec<&str>, Errno> {
        if path.starts_with('/') {
            return Err(Errno::Notcapable);
        }
        let mut parts = Vec::new();
        for comp in path.split('/') {
            match comp {
                "" | "." => continue,
                ".." => return Err(Errno::Notcapable),
                c => parts.push(c),
            }
        }
        if parts.is_empty() {
            return Err(Errno::Inval);
        }
        Ok(parts)
    }

    /// Open `path` relative to preopen index `dir`, honoring rights.
    /// `create` requires write rights; `trunc` empties an existing file.
    pub fn open(
        &self,
        dir: usize,
        path: &str,
        create: bool,
        trunc: bool,
        write: bool,
    ) -> Result<FileHandle, Errno> {
        let preopen = self.preopens.get(dir).ok_or(Errno::Badf)?;
        if write && !preopen.rights.write {
            return Err(Errno::Notcapable);
        }
        if !write && !preopen.rights.read {
            return Err(Errno::Notcapable);
        }
        if (create || trunc) && !preopen.rights.write {
            return Err(Errno::Notcapable);
        }
        let parts = Self::sanitize(path)?;
        match &preopen.backend {
            DirBackend::Memory(files) => {
                // The in-memory backend is flat; nested paths are joined.
                let key = parts.join("/");
                let mut files = files.lock();
                match files.get(&key) {
                    Some(f) => {
                        if trunc {
                            f.write().clear();
                        }
                        Ok(FileHandle::Mem(Arc::clone(f)))
                    }
                    None if create => {
                        let f: MemFile = Arc::new(RwLock::new(Vec::new()));
                        files.insert(key, Arc::clone(&f));
                        Ok(FileHandle::Mem(f))
                    }
                    None => Err(Errno::Noent),
                }
            }
            DirBackend::Host(root) => {
                let mut full = root.clone();
                for p in &parts {
                    full.push(p);
                }
                // Defense in depth: the joined path must stay under root.
                if !full.starts_with(root) {
                    return Err(Errno::Notcapable);
                }
                let mut opts = std::fs::OpenOptions::new();
                opts.read(true);
                if write {
                    opts.write(true);
                }
                if create {
                    opts.create(true);
                }
                if trunc {
                    opts.truncate(true);
                }
                opts.open(&full).map(FileHandle::Host).map_err(|e| match e.kind() {
                    std::io::ErrorKind::NotFound => Errno::Noent,
                    std::io::ErrorKind::PermissionDenied => Errno::Acces,
                    _ => Errno::Io,
                })
            }
        }
    }

    /// Look up a preopen by guest name.
    pub fn preopen_index(&self, guest_name: &str) -> Option<usize> {
        let name = guest_name.trim_matches('/');
        self.preopens.iter().position(|p| p.guest_name == name)
    }

    /// Total bytes stored in in-memory backends (diagnostics, IOR checks).
    pub fn memory_usage(&self) -> usize {
        self.preopens
            .iter()
            .map(|p| match &p.backend {
                DirBackend::Memory(files) => {
                    files.lock().values().map(|f| f.read().len()).sum()
                }
                DirBackend::Host(_) => 0,
            })
            .sum()
    }
}

/// Resolve `path` against a host root, for tooling. Exposed for tests.
pub fn resolve_under(root: &Path, path: &str) -> Result<PathBuf, Errno> {
    let parts = SharedFs::sanitize(path)?;
    let mut full = root.to_path_buf();
    for p in parts {
        full.push(p);
    }
    Ok(full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_rejects_escapes() {
        assert!(SharedFs::sanitize("/etc/passwd").is_err());
        assert!(SharedFs::sanitize("../secret").is_err());
        assert!(SharedFs::sanitize("a/../../b").is_err());
        assert!(SharedFs::sanitize("").is_err());
        assert_eq!(SharedFs::sanitize("a/./b//c").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn memory_create_write_reopen() {
        let fs = SharedFs::memory();
        let f = fs.open(0, "out.dat", true, false, true).unwrap();
        match f {
            FileHandle::Mem(m) => m.write().extend_from_slice(b"hello"),
            _ => unreachable!(),
        }
        // Reopen without create sees the same bytes.
        match fs.open(0, "out.dat", false, false, false).unwrap() {
            FileHandle::Mem(m) => assert_eq!(&*m.read(), b"hello"),
            _ => unreachable!(),
        }
        assert_eq!(fs.memory_usage(), 5);
    }

    #[test]
    fn missing_file_without_create_is_noent() {
        let fs = SharedFs::memory();
        assert_eq!(fs.open(0, "nope", false, false, false).unwrap_err(), Errno::Noent);
    }

    #[test]
    fn truncate_clears_contents() {
        let fs = SharedFs::memory();
        if let FileHandle::Mem(m) = fs.open(0, "f", true, false, true).unwrap() {
            m.write().extend_from_slice(b"data");
        }
        fs.open(0, "f", false, true, true).unwrap();
        if let FileHandle::Mem(m) = fs.open(0, "f", false, false, false).unwrap() {
            assert!(m.read().is_empty());
        }
    }

    #[test]
    fn read_only_preopen_blocks_writes() {
        let fs = SharedFs::new(vec![Preopen {
            guest_name: "ro".into(),
            rights: Rights::READ_ONLY,
            backend: DirBackend::Memory(Mutex::new(HashMap::new())),
        }]);
        assert_eq!(fs.open(0, "f", true, false, true).unwrap_err(), Errno::Notcapable);
        // Creating via read path is also rejected.
        assert_eq!(fs.open(0, "f", true, false, false).unwrap_err(), Errno::Notcapable);
    }

    #[test]
    fn bad_preopen_index_is_badf() {
        let fs = SharedFs::memory();
        assert_eq!(fs.open(7, "f", true, false, true).unwrap_err(), Errno::Badf);
    }

    #[test]
    fn host_backend_respects_root() {
        let dir = std::env::temp_dir().join(format!("wasi-fs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("inside.txt"), b"ok").unwrap();
        let fs = SharedFs::host_dir("data", &dir, Rights::READ_WRITE);
        assert!(fs.open(0, "inside.txt", false, false, false).is_ok());
        assert_eq!(fs.open(0, "../outside", false, false, false).unwrap_err(), Errno::Notcapable);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preopen_lookup_by_name() {
        let fs = SharedFs::memory();
        assert_eq!(fs.preopen_index("data"), Some(0));
        assert_eq!(fs.preopen_index("/data"), Some(0));
        assert_eq!(fs.preopen_index("other"), None);
    }

    #[test]
    fn shared_between_clones() {
        let fs = SharedFs::memory();
        let fs2 = fs.clone();
        if let FileHandle::Mem(m) = fs.open(0, "shared", true, false, true).unwrap() {
            m.write().push(42);
        }
        if let FileHandle::Mem(m) = fs2.open(0, "shared", false, false, false).unwrap() {
            assert_eq!(&*m.read(), &[42]);
        }
    }
}

//! Per-instance WASI state: the file-descriptor table, program arguments,
//! environment, captured stdout/stderr, and I/O byte counters.

use std::io::{Read, Seek, SeekFrom, Write};

use crate::errno::Errno;
use crate::fs::{FileHandle, Rights, SharedFs};

/// One slot in the descriptor table.
#[derive(Debug)]
pub enum FdEntry {
    Stdin,
    Stdout,
    Stderr,
    /// A preopened directory (index into [`SharedFs::preopens`]).
    Preopen(usize),
    /// An opened file with an independent cursor.
    File { handle: FileHandle, rights: Rights, pos: u64 },
}

/// WASI state for one instance (one MPI rank).
pub struct WasiCtx {
    pub fs: SharedFs,
    pub args: Vec<String>,
    pub env: Vec<(String, String)>,
    fds: Vec<Option<FdEntry>>,
    /// Captured stdout bytes (also echoed to the host when `echo` is set).
    pub stdout: Vec<u8>,
    pub stderr: Vec<u8>,
    /// Echo guest stdout/stderr to the host's (the CLI turns this on).
    pub echo: bool,
    /// Exit code recorded by `proc_exit`.
    pub exit_code: Option<i32>,
    /// Cumulative bytes moved through fd_read / fd_write on files (not
    /// stdio), for the IOR bandwidth accounting.
    pub bytes_read: u64,
    pub bytes_written: u64,
    rand_state: u64,
}

impl WasiCtx {
    pub fn new(fs: SharedFs, args: Vec<String>) -> WasiCtx {
        let mut fds: Vec<Option<FdEntry>> =
            vec![Some(FdEntry::Stdin), Some(FdEntry::Stdout), Some(FdEntry::Stderr)];
        for i in 0..fs.preopens().len() {
            fds.push(Some(FdEntry::Preopen(i)));
        }
        WasiCtx {
            fs,
            args,
            env: Vec::new(),
            fds,
            stdout: Vec::new(),
            stderr: Vec::new(),
            echo: false,
            exit_code: None,
            bytes_read: 0,
            bytes_written: 0,
            rand_state: 0x853c_49e6_748f_ea9b,
        }
    }

    /// Seed the deterministic `random_get` stream (per-rank in MPI jobs).
    pub fn seed_random(&mut self, seed: u64) {
        self.rand_state = seed | 1;
    }

    pub fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rand_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rand_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn entry(&self, fd: u32) -> Result<&FdEntry, Errno> {
        self.fds.get(fd as usize).and_then(|e| e.as_ref()).ok_or(Errno::Badf)
    }

    fn entry_mut(&mut self, fd: u32) -> Result<&mut FdEntry, Errno> {
        self.fds.get_mut(fd as usize).and_then(|e| e.as_mut()).ok_or(Errno::Badf)
    }

    /// Allocate a descriptor for an opened file.
    pub fn push_file(&mut self, handle: FileHandle, rights: Rights) -> u32 {
        let entry = FdEntry::File { handle, rights, pos: 0 };
        if let Some(slot) = self.fds.iter().position(|e| e.is_none()) {
            self.fds[slot] = Some(entry);
            slot as u32
        } else {
            self.fds.push(Some(entry));
            (self.fds.len() - 1) as u32
        }
    }

    pub fn close(&mut self, fd: u32) -> Result<(), Errno> {
        let slot = self.fds.get_mut(fd as usize).ok_or(Errno::Badf)?;
        match slot {
            Some(FdEntry::File { .. }) => {
                *slot = None;
                Ok(())
            }
            Some(_) => Err(Errno::Notcapable), // stdio/preopens stay open
            None => Err(Errno::Badf),
        }
    }

    /// Write `data` through descriptor `fd`. Returns bytes written.
    pub fn write(&mut self, fd: u32, data: &[u8]) -> Result<usize, Errno> {
        match self.entry(fd)? {
            FdEntry::Stdout => {
                self.stdout.extend_from_slice(data);
                if self.echo {
                    let _ = std::io::stdout().write_all(data);
                }
                Ok(data.len())
            }
            FdEntry::Stderr => {
                self.stderr.extend_from_slice(data);
                if self.echo {
                    let _ = std::io::stderr().write_all(data);
                }
                Ok(data.len())
            }
            FdEntry::Stdin | FdEntry::Preopen(_) => Err(Errno::Badf),
            FdEntry::File { .. } => {
                let n = data.len();
                let FdEntry::File { handle, rights, pos } = self.entry_mut(fd)? else {
                    unreachable!()
                };
                if !rights.write {
                    return Err(Errno::Notcapable);
                }
                match handle {
                    FileHandle::Mem(m) => {
                        let mut contents = m.write();
                        let at = *pos as usize;
                        if contents.len() < at + n {
                            contents.resize(at + n, 0);
                        }
                        contents[at..at + n].copy_from_slice(data);
                        *pos += n as u64;
                    }
                    FileHandle::Host(f) => {
                        f.seek(SeekFrom::Start(*pos)).map_err(|_| Errno::Io)?;
                        f.write_all(data).map_err(|_| Errno::Io)?;
                        *pos += n as u64;
                    }
                }
                self.bytes_written += n as u64;
                Ok(n)
            }
        }
    }

    /// Read up to `buf.len()` bytes from `fd`. Returns bytes read.
    pub fn read(&mut self, fd: u32, buf: &mut [u8]) -> Result<usize, Errno> {
        match self.entry_mut(fd)? {
            FdEntry::Stdin => Ok(0), // EOF: guests get no interactive input
            FdEntry::File { handle, rights, pos } => {
                if !rights.read {
                    return Err(Errno::Notcapable);
                }
                let n = match handle {
                    FileHandle::Mem(m) => {
                        let contents = m.read();
                        let at = (*pos as usize).min(contents.len());
                        let n = buf.len().min(contents.len() - at);
                        buf[..n].copy_from_slice(&contents[at..at + n]);
                        *pos += n as u64;
                        n
                    }
                    FileHandle::Host(f) => {
                        f.seek(SeekFrom::Start(*pos)).map_err(|_| Errno::Io)?;
                        let n = f.read(buf).map_err(|_| Errno::Io)?;
                        *pos += n as u64;
                        n
                    }
                };
                self.bytes_read += n as u64;
                Ok(n)
            }
            _ => Err(Errno::Badf),
        }
    }

    /// `fd_seek`: whence 0 = set, 1 = cur, 2 = end. Returns new offset.
    pub fn seek(&mut self, fd: u32, offset: i64, whence: u8) -> Result<u64, Errno> {
        match self.entry_mut(fd)? {
            FdEntry::File { handle, pos, .. } => {
                let end = match handle {
                    FileHandle::Mem(m) => m.read().len() as i64,
                    FileHandle::Host(f) => {
                        f.metadata().map_err(|_| Errno::Io)?.len() as i64
                    }
                };
                let base = match whence {
                    0 => 0,
                    1 => *pos as i64,
                    2 => end,
                    _ => return Err(Errno::Inval),
                };
                let target = base + offset;
                if target < 0 {
                    return Err(Errno::Inval);
                }
                *pos = target as u64;
                Ok(*pos)
            }
            _ => Err(Errno::Badf),
        }
    }

    /// Captured stdout as UTF-8 (lossy).
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> WasiCtx {
        WasiCtx::new(SharedFs::memory(), vec!["prog".into(), "arg1".into()])
    }

    #[test]
    fn stdio_descriptors_preassigned() {
        let c = ctx();
        assert!(matches!(c.entry(0).unwrap(), FdEntry::Stdin));
        assert!(matches!(c.entry(1).unwrap(), FdEntry::Stdout));
        assert!(matches!(c.entry(2).unwrap(), FdEntry::Stderr));
        assert!(matches!(c.entry(3).unwrap(), FdEntry::Preopen(0)));
        assert!(c.entry(4).is_err());
    }

    #[test]
    fn stdout_capture() {
        let mut c = ctx();
        c.write(1, b"hello ").unwrap();
        c.write(1, b"world").unwrap();
        assert_eq!(c.stdout_string(), "hello world");
        c.write(2, b"oops").unwrap();
        assert_eq!(c.stderr, b"oops");
    }

    #[test]
    fn file_write_read_seek_cycle() {
        let mut c = ctx();
        let h = c.fs.open(0, "f.bin", true, false, true).unwrap();
        let fd = c.push_file(h, Rights::READ_WRITE);
        assert_eq!(fd, 4);
        c.write(fd, b"0123456789").unwrap();
        assert_eq!(c.seek(fd, 2, 0).unwrap(), 2);
        let mut buf = [0u8; 4];
        assert_eq!(c.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"2345");
        // Seek from end.
        assert_eq!(c.seek(fd, -1, 2).unwrap(), 9);
        assert_eq!(c.read(fd, &mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'9');
        assert_eq!(c.bytes_written, 10);
        assert_eq!(c.bytes_read, 5);
    }

    #[test]
    fn close_frees_slot_for_reuse() {
        let mut c = ctx();
        let h = c.fs.open(0, "a", true, false, true).unwrap();
        let fd = c.push_file(h, Rights::READ_WRITE);
        c.close(fd).unwrap();
        assert!(c.entry(fd).is_err());
        let h2 = c.fs.open(0, "b", true, false, true).unwrap();
        let fd2 = c.push_file(h2, Rights::READ_WRITE);
        assert_eq!(fd, fd2, "slot should be reused");
    }

    #[test]
    fn stdio_cannot_be_closed() {
        let mut c = ctx();
        assert_eq!(c.close(1).unwrap_err(), Errno::Notcapable);
    }

    #[test]
    fn read_only_fd_rejects_write() {
        let mut c = ctx();
        let h = c.fs.open(0, "f", true, false, true).unwrap();
        let fd = c.push_file(h, Rights::READ_ONLY);
        assert_eq!(c.write(fd, b"x").unwrap_err(), Errno::Notcapable);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = ctx();
        let mut b = ctx();
        a.seed_random(7);
        b.seed_random(7);
        assert_eq!(a.next_random(), b.next_random());
        let mut c2 = ctx();
        c2.seed_random(8);
        assert_ne!(a.next_random(), c2.next_random());
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut c = ctx();
        let h = c.fs.open(0, "sparse", true, false, true).unwrap();
        let fd = c.push_file(h, Rights::READ_WRITE);
        c.seek(fd, 4, 0).unwrap();
        c.write(fd, b"zz").unwrap();
        c.seek(fd, 0, 0).unwrap();
        let mut buf = [0xFFu8; 6];
        c.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, &[0, 0, 0, 0, b'z', b'z']);
    }
}

//! Deterministic fault injection for simulated and real-clock worlds.
//!
//! A [`FaultPlan`] is a seeded list of failure scenarios — rank crashes at
//! a point in (virtual or wall) time or at the Nth MPI call, message
//! drops, and extra wire delays — evaluated purely from its inputs, so a
//! given plan reproduces the identical failure schedule on every run.
//! The MPI substrate consults the plan at its call sites and send paths;
//! this module only *decides*, it never mutates shared state (per-pair
//! message counters live with the consumer).

use crate::rng::SplitMix64;

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Kill `rank` at the first MPI call at or after `at_us` (virtual
    /// microseconds in simulated worlds, elapsed wall microseconds in
    /// real-clock worlds).
    CrashAtTime { rank: u32, at_us: f64 },
    /// Kill `rank` at its `call`th MPI call (1-based).
    CrashAtCall { rank: u32, call: u64 },
    /// Silently discard the `nth` message (1-based) from `src` to `dst`.
    Drop { src: u32, dst: u32, nth: u64 },
    /// Add `extra_us` of wire delay to each `src`→`dst` message with
    /// probability `prob` (deterministic per message: the decision is a
    /// pure function of the plan seed and the message's pair sequence
    /// number).
    Delay { src: u32, dst: u32, extra_us: f64, prob: f64 },
}

/// Wire-level outcome for one message, as decided by the plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFault {
    pub drop: bool,
    pub delay_us: f64,
}

impl WireFault {
    pub fn none() -> WireFault {
        WireFault { drop: false, delay_us: 0.0 }
    }
}

/// A seeded, reproducible failure schedule. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, specs: Vec::new() }
    }

    pub fn crash_at_time(mut self, rank: u32, at_us: f64) -> FaultPlan {
        self.specs.push(FaultSpec::CrashAtTime { rank, at_us });
        self
    }

    pub fn crash_at_call(mut self, rank: u32, call: u64) -> FaultPlan {
        self.specs.push(FaultSpec::CrashAtCall { rank, call });
        self
    }

    pub fn drop_nth(mut self, src: u32, dst: u32, nth: u64) -> FaultPlan {
        self.specs.push(FaultSpec::Drop { src, dst, nth });
        self
    }

    pub fn delay(mut self, src: u32, dst: u32, extra_us: f64, prob: f64) -> FaultPlan {
        self.specs.push(FaultSpec::Delay { src, dst, extra_us, prob });
        self
    }

    /// Should `rank` die now? `now_us` is the rank's current clock and
    /// `call` its (1-based) MPI call count including the current call.
    pub fn crash_due(&self, rank: u32, now_us: f64, call: u64) -> bool {
        self.specs.iter().any(|s| match *s {
            FaultSpec::CrashAtTime { rank: r, at_us } => r == rank && now_us >= at_us,
            FaultSpec::CrashAtCall { rank: r, call: c } => r == rank && call >= c,
            _ => false,
        })
    }

    /// Wire fault for the `pair_seq`th (1-based) message from `src` to
    /// `dst`. Deterministic: same plan, same pair sequence → same answer.
    pub fn wire_fault(&self, src: u32, dst: u32, pair_seq: u64) -> WireFault {
        let mut out = WireFault::none();
        for s in &self.specs {
            match *s {
                FaultSpec::Drop { src: a, dst: b, nth } => {
                    if a == src && b == dst && nth == pair_seq {
                        out.drop = true;
                    }
                }
                FaultSpec::Delay { src: a, dst: b, extra_us, prob } => {
                    if a == src && b == dst {
                        // One independent draw per message, keyed so that
                        // reordering other traffic cannot change it.
                        let key = self
                            .seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            ^ ((src as u64) << 40)
                            ^ ((dst as u64) << 20)
                            ^ pair_seq;
                        if SplitMix64::new(key).next_f64() < prob {
                            out.delay_us += extra_us;
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Whether the plan can kill `rank` at some point.
    pub fn targets(&self, rank: u32) -> bool {
        self.specs.iter().any(|s| matches!(
            *s,
            FaultSpec::CrashAtTime { rank: r, .. } | FaultSpec::CrashAtCall { rank: r, .. }
                if r == rank
        ))
    }

    /// Parse the compact text form used by the `mpiwasm --fault` flag and
    /// CI scenarios:
    ///
    /// ```text
    /// seed=42;crash@call:rank=1,call=10;crash@t:rank=2,at_us=500;
    /// drop:src=0,dst=1,nth=3;delay:src=0,dst=2,extra_us=50,prob=0.5
    /// ```
    ///
    /// Clauses are `;`-separated; fields within a clause are
    /// `,`-separated `key=value` pairs. Unknown clauses or fields are
    /// errors (a typo must not silently weaken a fault scenario).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for clause in text.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed.trim().parse().map_err(|e| format!("bad seed: {e}"))?;
                continue;
            }
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause {clause:?} has no ':'"))?;
            let mut fields = std::collections::HashMap::new();
            for kv in rest.split(',').map(str::trim).filter(|f| !f.is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("field {kv:?} is not key=value"))?;
                fields.insert(k.trim(), v.trim());
            }
            let get = |k: &str| -> Result<&str, String> {
                fields.get(k).copied().ok_or_else(|| format!("{kind}: missing field {k:?}"))
            };
            let num = |k: &str| -> Result<u64, String> {
                get(k)?.parse().map_err(|e| format!("{kind}: bad {k}: {e}"))
            };
            let float = |k: &str| -> Result<f64, String> {
                get(k)?.parse().map_err(|e| format!("{kind}: bad {k}: {e}"))
            };
            let spec = match kind.trim() {
                "crash@t" => FaultSpec::CrashAtTime {
                    rank: num("rank")? as u32,
                    at_us: float("at_us")?,
                },
                "crash@call" => FaultSpec::CrashAtCall {
                    rank: num("rank")? as u32,
                    call: num("call")?,
                },
                "drop" => FaultSpec::Drop {
                    src: num("src")? as u32,
                    dst: num("dst")? as u32,
                    nth: num("nth")?,
                },
                "delay" => FaultSpec::Delay {
                    src: num("src")? as u32,
                    dst: num("dst")? as u32,
                    extra_us: float("extra_us")?,
                    prob: float("prob")?,
                },
                other => return Err(format!("unknown fault clause {other:?}")),
            };
            let expected: &[&str] = match kind.trim() {
                "crash@t" => &["rank", "at_us"],
                "crash@call" => &["rank", "call"],
                "drop" => &["src", "dst", "nth"],
                _ => &["src", "dst", "extra_us", "prob"],
            };
            for k in fields.keys() {
                if !expected.contains(k) {
                    return Err(format!("{kind}: unknown field {k:?}"));
                }
            }
            plan.specs.push(spec);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_due_matches_time_and_call() {
        let plan = FaultPlan::new(1).crash_at_time(2, 100.0).crash_at_call(3, 5);
        assert!(!plan.crash_due(2, 99.9, 1));
        assert!(plan.crash_due(2, 100.0, 1));
        assert!(!plan.crash_due(3, 0.0, 4));
        assert!(plan.crash_due(3, 0.0, 5));
        assert!(plan.crash_due(3, 0.0, 6), "late checks still fire");
        assert!(!plan.crash_due(1, 1e9, 1_000_000), "untargeted rank never dies");
    }

    #[test]
    fn drop_hits_exactly_the_nth_message() {
        let plan = FaultPlan::new(7).drop_nth(0, 1, 3);
        assert!(!plan.wire_fault(0, 1, 2).drop);
        assert!(plan.wire_fault(0, 1, 3).drop);
        assert!(!plan.wire_fault(0, 1, 4).drop);
        assert!(!plan.wire_fault(1, 0, 3).drop, "direction matters");
    }

    #[test]
    fn delay_is_deterministic_and_probabilistic() {
        let plan = FaultPlan::new(9).delay(0, 1, 50.0, 0.5);
        let first = plan.wire_fault(0, 1, 1);
        assert_eq!(first, plan.wire_fault(0, 1, 1), "same message, same draw");
        let hits = (1..=1000).filter(|&n| plan.wire_fault(0, 1, n).delay_us > 0.0).count();
        assert!((350..=650).contains(&hits), "≈half delayed, got {hits}");
        assert_eq!(plan.wire_fault(2, 1, 1), WireFault::none());
    }

    #[test]
    fn parse_round_trips_every_clause() {
        let plan = FaultPlan::parse(
            "seed=42; crash@call:rank=1,call=10; crash@t:rank=2,at_us=500.5; \
             drop:src=0,dst=1,nth=3; delay:src=0,dst=2,extra_us=50,prob=0.25",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.specs.len(), 4);
        assert_eq!(plan.specs[0], FaultSpec::CrashAtCall { rank: 1, call: 10 });
        assert_eq!(plan.specs[1], FaultSpec::CrashAtTime { rank: 2, at_us: 500.5 });
        assert_eq!(plan.specs[2], FaultSpec::Drop { src: 0, dst: 1, nth: 3 });
        assert_eq!(
            plan.specs[3],
            FaultSpec::Delay { src: 0, dst: 2, extra_us: 50.0, prob: 0.25 }
        );
        assert!(plan.targets(1) && plan.targets(2) && !plan.targets(0));
    }

    #[test]
    fn parse_rejects_typos() {
        assert!(FaultPlan::parse("crash@x:rank=1").is_err());
        assert!(FaultPlan::parse("crash@call:rank=1").is_err(), "missing call");
        assert!(FaultPlan::parse("drop:src=0,dst=1,nth=1,bogus=2").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
    }
}

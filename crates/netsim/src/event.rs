//! A generic discrete-event queue: a time-ordered priority queue with
//! stable FIFO ordering for simultaneous events.
//!
//! The simulated-time MPI transport and the Faasm baseline schedule their
//! message deliveries and scheduler decisions through this queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue over payloads of type `T`.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`. Events scheduled in the
    /// past are clamped to `now` (they fire immediately, preserving order).
    pub fn schedule_at(&mut self, at: SimTime, payload: T) {
        let time = at.max(self.now);
        self.heap.push(Entry { time, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Schedule `payload` after a delay relative to `now`.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.payload))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Run until the queue drains, calling `handler(time, payload, queue)`
    /// for each event. The handler may schedule follow-up events.
    pub fn run(&mut self, mut handler: impl FnMut(SimTime, T, &mut Self)) {
        while let Some((t, payload)) = self.pop() {
            handler(t, payload, self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::micros(3.0), "c");
        q.schedule_at(SimTime::micros(1.0), "a");
        q.schedule_at(SimTime::micros(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::micros(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::micros(10.0), ());
        q.pop();
        assert_eq!(q.now().as_micros(), 10.0);
        // Scheduling in the past clamps to now.
        q.schedule_at(SimTime::micros(1.0), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_micros(), 10.0);
    }

    #[test]
    fn run_drains_with_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::micros(1.0), 3u32);
        let mut fired = Vec::new();
        q.run(|t, n, q| {
            fired.push((t.as_micros(), n));
            if n > 0 {
                q.schedule_after(SimTime::micros(1.0), n - 1);
            }
        });
        assert_eq!(fired, vec![(1.0, 3), (2.0, 2), (3.0, 1), (4.0, 0)]);
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::micros(5.0), "x");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_micros(), 5.0);
        q.schedule_after(SimTime::micros(5.0), "y");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_micros(), 10.0);
    }
}

//! Simulated time, in microseconds (the unit the Intel MPI Benchmarks
//! report iteration times in).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub fn micros(us: f64) -> Self {
        SimTime(us)
    }

    pub fn nanos(ns: f64) -> Self {
        SimTime(ns / 1_000.0)
    }

    pub fn millis(ms: f64) -> Self {
        SimTime(ms * 1_000.0)
    }

    pub fn seconds(s: f64) -> Self {
        SimTime(s * 1_000_000.0)
    }

    pub fn as_micros(&self) -> f64 {
        self.0
    }

    pub fn as_nanos(&self) -> f64 {
        self.0 * 1_000.0
    }

    pub fn as_seconds(&self) -> f64 {
        self.0 / 1_000_000.0
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000.0 {
            write!(f, "{:.3}s", self.as_seconds())
        } else if self.0 >= 1_000.0 {
            write!(f, "{:.3}ms", self.0 / 1_000.0)
        } else {
            write!(f, "{:.3}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(SimTime::nanos(1500.0).as_micros(), 1.5);
        assert_eq!(SimTime::millis(2.0).as_micros(), 2000.0);
        assert_eq!(SimTime::seconds(1.0).as_micros(), 1e6);
        assert_eq!(SimTime::micros(3.0).as_nanos(), 3000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::micros(10.0) + SimTime::micros(5.0);
        assert_eq!(t.as_micros(), 15.0);
        assert_eq!((t - SimTime::micros(5.0)).as_micros(), 10.0);
        assert_eq!((t * 2.0).as_micros(), 30.0);
        assert_eq!((t / 3.0).as_micros(), 5.0);
        let total: SimTime = [SimTime::micros(1.0); 4].into_iter().sum();
        assert_eq!(total.as_micros(), 4.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::micros(1.5).to_string(), "1.500us");
        assert_eq!(SimTime::micros(1500.0).to_string(), "1.500ms");
        assert_eq!(SimTime::seconds(2.0).to_string(), "2.000s");
    }
}

//! Machine models: the systems of the paper's §4.1 as parameter sets.

use crate::time::SimTime;

/// Parameters describing one evaluation system: topology plus link and
/// software constants for the α–β cost models.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// Human-readable name used in harness output.
    pub name: String,
    /// MPI ranks per node (one rank per core, pure-MPI configuration §4.3).
    pub cores_per_node: u32,
    /// Number of nodes available.
    pub nodes: u32,
    /// One-way small-message latency within a node (shared memory), µs.
    pub intra_latency_us: f64,
    /// Shared-memory bandwidth, bytes per µs (= MB/s).
    pub intra_bw_bytes_per_us: f64,
    /// One-way small-message latency across the fabric, µs.
    pub inter_latency_us: f64,
    /// Fabric bandwidth per node, bytes per µs.
    pub inter_bw_bytes_per_us: f64,
    /// Eager→rendezvous protocol switch point, bytes. Messages above this
    /// pay one extra handshake latency.
    pub rendezvous_threshold: usize,
    /// Per-byte reduction-compute cost, µs (used by Reduce/Allreduce).
    pub compute_gamma_us_per_byte: f64,
    /// Per-call MPI software overhead for the native path, µs.
    pub native_call_overhead_us: f64,
    /// Relative spread of the timing jitter used for min/max error bars.
    pub jitter_spread: f64,
    /// Sustained per-core floating point rate for compute kernels, in
    /// FLOP/µs (used by the HPCG large-scale model).
    pub flops_per_us_per_core: f64,
    /// Aggregate parallel-filesystem bandwidth, bytes per µs (IOR model).
    pub pfs_bw_bytes_per_us: f64,
}

impl SystemProfile {
    /// The production HPC system of §4.1: SuperMUC-NG-like. Intel
    /// Skylake-SP, 48 cores/node, Intel OmniPath at 100 Gbit/s
    /// (≈ 12.5 GB/s), Spectrum Scale PFS at 200 GiB/s aggregate.
    pub fn supermuc_ng() -> Self {
        SystemProfile {
            name: "SuperMUC-NG (x86_64, OmniPath)".into(),
            cores_per_node: 48,
            nodes: 128,
            intra_latency_us: 0.35,
            intra_bw_bytes_per_us: 8_000.0, // ~8 GB/s shared-memory copy
            inter_latency_us: 1.05,
            inter_bw_bytes_per_us: 12_500.0, // 100 Gbit/s OmniPath
            rendezvous_threshold: 16 * 1024,
            compute_gamma_us_per_byte: 0.000_25,
            native_call_overhead_us: 0.06,
            jitter_spread: 0.07,
            flops_per_us_per_core: 1_600.0, // ~1.6 GFLOP/s sustained HPCG-like
            pfs_bw_bytes_per_us: 50_000_000.0, // 200 GiB/s aggregate, 4-node share applied by model
        }
    }

    /// The AWS Graviton2 node of §4.1: aarch64 Neoverse-N1, 32 cores,
    /// single node (all traffic is shared memory).
    pub fn graviton2() -> Self {
        SystemProfile {
            name: "AWS Graviton2 (aarch64, single node)".into(),
            cores_per_node: 32,
            nodes: 1,
            intra_latency_us: 0.45,
            intra_bw_bytes_per_us: 11_000.0, // ~11 GB/s
            inter_latency_us: 0.45,          // unused on one node
            inter_bw_bytes_per_us: 11_000.0,
            rendezvous_threshold: 32 * 1024,
            compute_gamma_us_per_byte: 0.000_35,
            native_call_overhead_us: 0.07,
            jitter_spread: 0.05,
            flops_per_us_per_core: 900.0,
            pfs_bw_bytes_per_us: 2_000_000.0,
        }
    }

    /// A 4096-rank (64 nodes × 64 cores) cluster for the scaling sweeps:
    /// the substrate's simulated-scale benchmark and the `bench_scale`
    /// latency-vs-rank-count curves run collective schedules on worlds
    /// up to this size under the virtual clock.
    pub fn scale_cluster() -> Self {
        SystemProfile {
            name: "scale cluster (64x64, fat-tree)".into(),
            cores_per_node: 64,
            nodes: 64,
            intra_latency_us: 0.4,
            intra_bw_bytes_per_us: 9_000.0,
            inter_latency_us: 1.2,
            inter_bw_bytes_per_us: 12_500.0,
            rendezvous_threshold: 16 * 1024,
            compute_gamma_us_per_byte: 0.000_3,
            native_call_overhead_us: 0.06,
            jitter_spread: 0.06,
            flops_per_us_per_core: 1_200.0,
            pfs_bw_bytes_per_us: 20_000_000.0,
        }
    }

    /// A modest container-sized system for the artifact-evaluation style
    /// small-scale runs (§A.3.1).
    pub fn container() -> Self {
        SystemProfile {
            name: "container (4 ranks, shared memory)".into(),
            cores_per_node: 4,
            nodes: 1,
            intra_latency_us: 0.5,
            intra_bw_bytes_per_us: 6_000.0,
            inter_latency_us: 0.5,
            inter_bw_bytes_per_us: 6_000.0,
            rendezvous_threshold: 32 * 1024,
            compute_gamma_us_per_byte: 0.000_4,
            native_call_overhead_us: 0.08,
            jitter_spread: 0.1,
            flops_per_us_per_core: 700.0,
            pfs_bw_bytes_per_us: 500_000.0,
        }
    }

    /// Total rank capacity.
    pub fn max_ranks(&self) -> u32 {
        self.cores_per_node * self.nodes
    }

    /// Node index hosting `rank` (dense block placement, as SLURM does).
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.cores_per_node
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// One-way point-to-point time for `bytes` between two ranks.
    pub fn p2p_time(&self, from: u32, to: u32, bytes: usize) -> SimTime {
        let (alpha, bw) = if self.same_node(from, to) {
            (self.intra_latency_us, self.intra_bw_bytes_per_us)
        } else {
            (self.inter_latency_us, self.inter_bw_bytes_per_us)
        };
        let mut t = alpha + bytes as f64 / bw;
        if bytes > self.rendezvous_threshold {
            t += alpha; // rendezvous handshake
        }
        SimTime::micros(t)
    }

    /// α (latency) and β (µs/byte) for a communicator spanning `ranks`
    /// ranks: intra-node constants while the job fits one node, fabric
    /// constants as soon as it spans several.
    pub fn alpha_beta(&self, ranks: u32) -> (f64, f64) {
        if ranks <= self.cores_per_node {
            (self.intra_latency_us, 1.0 / self.intra_bw_bytes_per_us)
        } else {
            (self.inter_latency_us, 1.0 / self.inter_bw_bytes_per_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        let smng = SystemProfile::supermuc_ng();
        assert_eq!(smng.max_ranks(), 6144);
        let g2 = SystemProfile::graviton2();
        assert_eq!(g2.max_ranks(), 32);
        assert!(smng.inter_bw_bytes_per_us > g2.intra_bw_bytes_per_us);
        assert!(SystemProfile::scale_cluster().max_ranks() >= 4096);
    }

    #[test]
    fn node_placement_is_dense() {
        let p = SystemProfile::supermuc_ng();
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(47), 0);
        assert_eq!(p.node_of(48), 1);
        assert!(p.same_node(0, 47));
        assert!(!p.same_node(47, 48));
    }

    #[test]
    fn p2p_time_scales_with_bytes_and_distance() {
        let p = SystemProfile::supermuc_ng();
        let small_intra = p.p2p_time(0, 1, 8);
        let small_inter = p.p2p_time(0, 48, 8);
        assert!(small_inter > small_intra);
        let big = p.p2p_time(0, 48, 1 << 20);
        assert!(big > small_inter * 10.0);
        // Bandwidth-bound: 1 MiB over 12.5 GB/s ≈ 84 µs.
        assert!((big.as_micros() - 85.0).abs() < 10.0, "{big}");
    }

    #[test]
    fn rendezvous_adds_latency() {
        let p = SystemProfile::supermuc_ng();
        let just_below = p.p2p_time(0, 48, p.rendezvous_threshold);
        let just_above = p.p2p_time(0, 48, p.rendezvous_threshold + 1);
        let delta = just_above.as_micros() - just_below.as_micros();
        assert!(delta > p.inter_latency_us * 0.9, "delta {delta}");
    }

    #[test]
    fn alpha_beta_switches_at_node_boundary() {
        let p = SystemProfile::supermuc_ng();
        let (a_intra, _) = p.alpha_beta(48);
        let (a_inter, _) = p.alpha_beta(49);
        assert!(a_inter > a_intra);
    }

    #[test]
    fn profile_clone_preserves_fields() {
        let p = SystemProfile::graviton2();
        let q = p.clone();
        assert_eq!(p.name, q.name);
        assert_eq!(p.cores_per_node, q.cores_per_node);
        assert_eq!(p.rendezvous_threshold, q.rendezvous_threshold);
    }
}

//! Deterministic pseudo-random jitter for simulated timings.
//!
//! Benchmarks report min/avg/max iteration times; the simulator produces
//! the spread with a small deterministic noise source so repeated runs of
//! the harness regenerate identical tables.

/// SplitMix64: tiny, high-quality, seedable generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Multiplicative jitter factor in `[1 - spread, 1 + spread]`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.next_f64() * 2.0 - 1.0) * spread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn jitter_within_spread() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

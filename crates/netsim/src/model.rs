//! α–β cost models for MPI point-to-point and collective operations, with
//! message-size-dependent algorithm selection mirroring production MPI
//! libraries (binomial trees for small messages, ring / recursive-doubling
//! / pairwise schedules for large ones).
//!
//! Each model returns the completion time of the *slowest* participating
//! rank, which is what the Intel MPI Benchmarks report per iteration.

use crate::profile::SystemProfile;
use crate::time::SimTime;

/// The collective schedule a cost evaluation selected; exposed so the
/// ablation benchmarks can report crossovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgorithm {
    BinomialTree,
    RecursiveDoubling,
    Ring,
    PairwiseExchange,
    ScatterAllgather,
    Linear,
    Dissemination,
    Bruck,
}

/// Cost model bound to a system profile plus a per-MPI-call software
/// overhead (µs). The overhead parameter is how the harness injects the
/// *measured* embedder cost: native runs use
/// [`SystemProfile::native_call_overhead_us`], Wasm runs add the measured
/// host-trampoline + datatype-translation time on top (Figure 6).
#[derive(Debug, Clone)]
pub struct CostModel {
    pub profile: SystemProfile,
    /// Software overhead charged once per MPI call on every rank, µs.
    pub call_overhead_us: f64,
    /// Proportional scaling of communication time. 1.0 for the native
    /// path; the Wasm path carries a small calibrated factor representing
    /// the embedder's memory-path interference (sandbox bounds checks on
    /// the buffers the NIC pipeline touches), which is what keeps the
    /// paper's Wasm series a few percent above native even at message
    /// sizes where a constant per-call cost would vanish (§4.5).
    pub time_scale: f64,
}

/// Calibrated proportional overhead of the Wasm communication path (+4%),
/// chosen inside the paper's reported GM-slowdown band (0.01–0.14).
pub const WASM_WIRE_FACTOR: f64 = 1.04;

impl CostModel {
    /// Model for the native execution path.
    pub fn native(profile: SystemProfile) -> Self {
        let call_overhead_us = profile.native_call_overhead_us;
        Self { profile, call_overhead_us, time_scale: 1.0 }
    }

    /// Model for the Wasm execution path: native overhead plus the
    /// embedder's per-call cost (host-function trampoline, address and
    /// datatype translation) in µs, and the proportional wire factor.
    pub fn wasm(profile: SystemProfile, embedder_overhead_us: f64) -> Self {
        let call_overhead_us = profile.native_call_overhead_us + embedder_overhead_us;
        Self { profile, call_overhead_us, time_scale: WASM_WIRE_FACTOR }
    }

    #[inline]
    fn scaled(&self, t: SimTime) -> SimTime {
        t * self.time_scale
    }

    fn log2_ceil(p: u32) -> f64 {
        (p.max(1) as f64).log2().ceil()
    }

    /// Half round-trip of a PingPong (what IMB reports as `t_avg`).
    ///
    /// On a multi-node system the two ranks are placed on different nodes
    /// (the interesting fabric measurement); on a single node they share
    /// memory.
    pub fn pingpong(&self, bytes: usize) -> SimTime {
        let partner = if self.profile.nodes > 1 { self.profile.cores_per_node } else { 1 };
        let wire = self.profile.p2p_time(0, partner, bytes);
        self.scaled(wire + SimTime::micros(self.call_overhead_us * 2.0))
    }

    /// Concurrent send+recv per rank (IMB Sendrecv), `ranks` participants.
    pub fn sendrecv(&self, ranks: u32, bytes: usize) -> SimTime {
        let wire = self.profile.p2p_time(0, self.partner_rank(ranks), bytes);
        // Full-duplex links: overlap leaves ~1.2x a single transfer.
        self.scaled(wire * 1.2 + SimTime::micros(self.call_overhead_us * 2.0))
    }

    fn partner_rank(&self, ranks: u32) -> u32 {
        // Neighbour exchange: last rank wraps to 0; cross-node once the job
        // spans more than one node.
        if ranks > self.profile.cores_per_node {
            self.profile.cores_per_node // first off-node rank
        } else {
            1.min(ranks.saturating_sub(1))
        }
    }

    /// Broadcast to `ranks` ranks.
    pub fn bcast(&self, ranks: u32, bytes: usize) -> SimTime {
        let (algo, t) = self.bcast_with_algo(ranks, bytes);
        let _ = algo;
        t
    }

    pub fn bcast_with_algo(&self, ranks: u32, bytes: usize) -> (CollectiveAlgorithm, SimTime) {
        let (alpha, beta) = self.profile.alpha_beta(ranks);
        let p = ranks.max(1) as f64;
        let n = bytes as f64;
        let logp = Self::log2_ceil(ranks);
        let sw = self.call_overhead_us;
        if bytes <= 8192 || ranks <= 8 {
            // Binomial tree: log p rounds of the full message.
            let t = logp * (alpha + n * beta) + sw;
            (CollectiveAlgorithm::BinomialTree, self.scaled(SimTime::micros(t)))
        } else {
            // van de Geijn: scatter + allgather.
            let t = (logp + p - 1.0).min(2.0 * logp + 8.0) * alpha
                + 2.0 * n * beta * (p - 1.0) / p
                + sw;
            (CollectiveAlgorithm::ScatterAllgather, self.scaled(SimTime::micros(t)))
        }
    }

    /// Reduce `bytes` to a root over `ranks` ranks.
    pub fn reduce(&self, ranks: u32, bytes: usize) -> SimTime {
        let (alpha, beta) = self.profile.alpha_beta(ranks);
        let gamma = self.profile.compute_gamma_us_per_byte;
        let n = bytes as f64;
        let logp = Self::log2_ceil(ranks);
        self.scaled(SimTime::micros(
            logp * (alpha + n * beta + n * gamma) + self.call_overhead_us,
        ))
    }

    /// Allreduce over `ranks` ranks.
    pub fn allreduce(&self, ranks: u32, bytes: usize) -> SimTime {
        let (algo, t) = self.allreduce_with_algo(ranks, bytes);
        let _ = algo;
        t
    }

    pub fn allreduce_with_algo(
        &self,
        ranks: u32,
        bytes: usize,
    ) -> (CollectiveAlgorithm, SimTime) {
        let (alpha, beta) = self.profile.alpha_beta(ranks);
        let gamma = self.profile.compute_gamma_us_per_byte;
        let p = ranks.max(1) as f64;
        let n = bytes as f64;
        let logp = Self::log2_ceil(ranks);
        let sw = self.call_overhead_us;
        if bytes <= 4096 {
            // Recursive doubling.
            let t = logp * (alpha + n * beta + n * gamma) + sw;
            (CollectiveAlgorithm::RecursiveDoubling, self.scaled(SimTime::micros(t)))
        } else {
            // Rabenseifner: reduce-scatter + allgather.
            let t = 2.0 * logp * alpha
                + 2.0 * n * beta * (p - 1.0) / p
                + n * gamma * (p - 1.0) / p
                + sw;
            (CollectiveAlgorithm::RecursiveDoubling, self.scaled(SimTime::micros(t)))
        }
    }

    /// Gather `bytes` per rank to a root.
    pub fn gather(&self, ranks: u32, bytes: usize) -> SimTime {
        let (alpha, beta) = self.profile.alpha_beta(ranks);
        let p = ranks.max(1) as f64;
        let n = bytes as f64;
        let logp = Self::log2_ceil(ranks);
        // Binomial: log p rounds; the root's link carries (p-1)·n bytes.
        self.scaled(SimTime::micros(
            logp * alpha + (p - 1.0) * n * beta + self.call_overhead_us,
        ))
    }

    /// Scatter `bytes` per rank from a root (same shape as gather).
    pub fn scatter(&self, ranks: u32, bytes: usize) -> SimTime {
        self.gather(ranks, bytes)
    }

    /// Allgather `bytes` per rank.
    pub fn allgather(&self, ranks: u32, bytes: usize) -> SimTime {
        let (algo, t) = self.allgather_with_algo(ranks, bytes);
        let _ = algo;
        t
    }

    pub fn allgather_with_algo(
        &self,
        ranks: u32,
        bytes: usize,
    ) -> (CollectiveAlgorithm, SimTime) {
        let (alpha, beta) = self.profile.alpha_beta(ranks);
        let p = ranks.max(1) as f64;
        let n = bytes as f64;
        let logp = Self::log2_ceil(ranks);
        let sw = self.call_overhead_us;
        // Production libraries tune the switch point to approximate the
        // cheaper schedule; evaluate both and take the minimum.
        let rd = logp * alpha + (p - 1.0) * n * beta + sw;
        let ring = (p - 1.0) * (alpha + n * beta) + sw;
        if rd <= ring {
            (CollectiveAlgorithm::RecursiveDoubling, self.scaled(SimTime::micros(rd)))
        } else {
            (CollectiveAlgorithm::Ring, self.scaled(SimTime::micros(ring)))
        }
    }

    /// Alltoall with `bytes` per rank pair.
    pub fn alltoall(&self, ranks: u32, bytes: usize) -> SimTime {
        let (algo, t) = self.alltoall_with_algo(ranks, bytes);
        let _ = algo;
        t
    }

    pub fn alltoall_with_algo(
        &self,
        ranks: u32,
        bytes: usize,
    ) -> (CollectiveAlgorithm, SimTime) {
        let (alpha, beta) = self.profile.alpha_beta(ranks);
        let p = ranks.max(1) as f64;
        let n = bytes as f64;
        let logp = Self::log2_ceil(ranks);
        let sw = self.call_overhead_us;
        // Bruck (log p rounds of n·p/2 bytes) vs pairwise exchange (p-1
        // rounds of n bytes): take the cheaper schedule, as tuned
        // libraries do.
        let bruck = logp * (alpha + n * p / 2.0 * beta) + sw;
        let pairwise = (p - 1.0) * (alpha + n * beta) + sw;
        if bruck <= pairwise {
            (CollectiveAlgorithm::Bruck, self.scaled(SimTime::micros(bruck)))
        } else {
            (CollectiveAlgorithm::PairwiseExchange, self.scaled(SimTime::micros(pairwise)))
        }
    }

    /// Barrier over `ranks` ranks (dissemination).
    pub fn barrier(&self, ranks: u32) -> SimTime {
        let (alpha, _) = self.profile.alpha_beta(ranks);
        self.scaled(SimTime::micros(Self::log2_ceil(ranks) * alpha + self.call_overhead_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::native(SystemProfile::supermuc_ng())
    }

    #[test]
    fn pingpong_latency_and_bandwidth_regimes() {
        let m = model();
        let tiny = m.pingpong(8);
        // Small messages are latency-dominated: ~1µs plus sw overhead.
        assert!(tiny.as_micros() < 2.0, "{tiny}");
        let big = m.pingpong(1 << 22);
        // 4 MiB over ~12.5 GB/s ≈ 335 µs.
        assert!((250.0..500.0).contains(&big.as_micros()), "{big}");
    }

    #[test]
    fn collectives_grow_with_rank_count() {
        let m = model();
        for f in [
            CostModel::bcast as fn(&CostModel, u32, usize) -> SimTime,
            CostModel::allreduce,
            CostModel::allgather,
            CostModel::alltoall,
            CostModel::gather,
        ] {
            let small = f(&m, 48, 1024);
            let large = f(&m, 6144, 1024);
            assert!(large > small, "collective must slow down with more ranks");
        }
    }

    #[test]
    fn alltoall_is_most_expensive_large_collective() {
        let m = model();
        let p = 768;
        let n = 4096;
        let a2a = m.alltoall(p, n);
        assert!(a2a > m.allgather(p, n) * 0.9);
        assert!(a2a > m.bcast(p, n));
        assert!(a2a > m.allreduce(p, n));
    }

    #[test]
    fn algorithm_crossovers() {
        let m = model();
        let (small_algo, _) = m.bcast_with_algo(768, 1024);
        assert_eq!(small_algo, CollectiveAlgorithm::BinomialTree);
        let (large_algo, _) = m.bcast_with_algo(768, 1 << 20);
        assert_eq!(large_algo, CollectiveAlgorithm::ScatterAllgather);

        // The min-of-schedules selection must still pick Bruck for tiny
        // alltoall payloads and pairwise for large ones.
        let (a2a_small, _) = m.alltoall_with_algo(768, 8);
        assert_eq!(a2a_small, CollectiveAlgorithm::Bruck);
        let (a2a_large, _) = m.alltoall_with_algo(768, 1 << 16);
        assert_eq!(a2a_large, CollectiveAlgorithm::PairwiseExchange);
        // Allgather: the cheaper schedule wins at every point; both
        // schedules appear over the size sweep at large rank counts.
        let mut seen = std::collections::HashSet::new();
        for log in 0..=20 {
            let (algo, _) = m.allgather_with_algo(768, 1usize << log);
            seen.insert(format!("{algo:?}"));
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn wasm_model_overhead_structure() {
        let profile = SystemProfile::supermuc_ng();
        let native = CostModel::native(profile.clone());
        let wasm = CostModel::wasm(profile, 0.1);
        // Wasm slower everywhere.
        for bytes in [8usize, 4096, 1 << 20] {
            assert!(wasm.allreduce(6144, bytes) > native.allreduce(6144, bytes));
        }
        // Relative slowdown shrinks toward the proportional floor as the
        // constant per-call term is amortized — the paper's shape.
        let rel = |bytes: usize| {
            wasm.allreduce(2, bytes).as_micros() / native.allreduce(2, bytes).as_micros()
        };
        let small = rel(8);
        let large = rel(1 << 20);
        assert!(small > large, "{small} vs {large}");
        assert!(large >= WASM_WIRE_FACTOR - 1e-9);
        assert!(large < WASM_WIRE_FACTOR + 0.02);
    }

    #[test]
    fn barrier_is_logarithmic() {
        let m = model();
        let b48 = m.barrier(48).as_micros();
        let b6144 = m.barrier(6144).as_micros();
        // log2(6144)/log2(48) ≈ 2.25, amplified by the intra→inter α switch.
        assert!(b6144 / b48 < 10.0);
        assert!(b6144 > b48);
    }
}

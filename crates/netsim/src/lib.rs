//! Discrete-event HPC cluster and interconnect simulation.
//!
//! The paper evaluates MPIWasm on SuperMUC-NG (Intel Skylake-SP nodes on a
//! 100 Gbit/s Intel OmniPath fabric, up to 6144 ranks) and on a 32-core AWS
//! Graviton2 node. Neither is available here, so this crate provides the
//! substitute substrate (DESIGN.md substitution #3): parameterized machine
//! models ([`SystemProfile`]), α–β communication cost models with
//! per-algorithm collective schedules ([`CostModel`]), a deterministic
//! jitter source for error bars ([`rng::SplitMix64`]), and a generic
//! discrete-event queue ([`event::EventQueue`]) used by the simulated-time
//! MPI transport and the Faasm baseline.
//!
//! Semantics (what bytes land where) always come from real execution in
//! crate `mpi-substrate`; this crate only supplies *time*.

pub mod event;
pub mod fault;
pub mod model;
pub mod profile;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use fault::{FaultPlan, FaultSpec, WireFault};
pub use model::{CollectiveAlgorithm, CostModel};
pub use profile::SystemProfile;
pub use time::SimTime;

//! The optimizing tiers: flattening of structured Wasm bytecode into a
//! flat IR with resolved jump targets, plus the optimization pipeline run
//! by [`crate::tier::Tier::Max`].
//!
//! Flattening resolves all structured control flow (`block`/`loop`/`if`)
//! into direct jumps with precomputed stack-unwind information (in slot
//! units), eliminating the label-stack bookkeeping of the baseline
//! interpreter — this is the Cranelift analog. The walk is **fused with
//! the width pass**: the same single traversal of the body tracks operand
//! widths (slot heights, v128-ness of `drop`/`select`), so the flat tiers
//! never walk a function body twice. The Max tier then runs iterated
//! peephole passes (constant folding, local/load/store/shift fusion into
//! superinstructions, compare-and-branch fusion, and a final
//! jump-threading + nop-compaction pass) — the LLVM analog.
//!
//! Two representations coexist:
//!
//! * [`Op`] — the serializable form stored in the module cache (artifact
//!   VERSION 2). Plain instructions are embedded [`Instr`]s;
//!   superinstructions reference locals by *index*. After the cache
//!   artifact is persisted the stream can be dropped
//!   ([`FlatFunc::discard_ops`]) and regenerated on demand, halving
//!   resident compiled-module memory.
//! * [`crate::regalloc::RegOp`] — the stackless register form derived by
//!   [`FlatFunc::finalize`] at load time: every stack temporary is mapped
//!   to a fixed frame slot, operands become explicit register fields, and
//!   the stream is executed by the threaded handler table in
//!   [`crate::dispatch`]. See the `regalloc` module docs for the frame
//!   layout and the invariants the executor relies on.

use crate::error::Trap;
use crate::instr::Instr;
use crate::module::{Function, Module};
use crate::regalloc;
use crate::runtime::{Instance, Slot};
use crate::types::ValType;
use crate::widths;

/// A resolved branch destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dest {
    pub target: u32,
    /// Operand-stack height (in slots) to unwind to, relative to the
    /// frame's operand base.
    pub height: u32,
    /// Number of slots carried over the unwind.
    pub arity: u32,
}

/// An i32 comparison fused into a branch superinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Cmp {
    Eq = 0,
    Ne = 1,
    LtS = 2,
    LtU = 3,
    GtS = 4,
    GtU = 5,
    LeS = 6,
    LeU = 7,
    GeS = 8,
    GeU = 9,
}

impl Cmp {
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::LtS => a < b,
            Cmp::LtU => (a as u32) < (b as u32),
            Cmp::GtS => a > b,
            Cmp::GtU => (a as u32) > (b as u32),
            Cmp::LeS => a <= b,
            Cmp::LeU => (a as u32) <= (b as u32),
            Cmp::GeS => a >= b,
            Cmp::GeU => (a as u32) >= (b as u32),
        }
    }

    pub fn to_byte(self) -> u8 {
        self as u8
    }

    pub fn from_byte(b: u8) -> Option<Cmp> {
        Some(match b {
            0 => Cmp::Eq,
            1 => Cmp::Ne,
            2 => Cmp::LtS,
            3 => Cmp::LtU,
            4 => Cmp::GtS,
            5 => Cmp::GtU,
            6 => Cmp::LeS,
            7 => Cmp::LeU,
            8 => Cmp::GeS,
            9 => Cmp::GeU,
            _ => return None,
        })
    }
}

/// Map an i32 comparison instruction to its fusible [`Cmp`].
fn cmp_of(i: &Instr) -> Option<Cmp> {
    Some(match i {
        Instr::I32Eq => Cmp::Eq,
        Instr::I32Ne => Cmp::Ne,
        Instr::I32LtS => Cmp::LtS,
        Instr::I32LtU => Cmp::LtU,
        Instr::I32GtS => Cmp::GtS,
        Instr::I32GtU => Cmp::GtU,
        Instr::I32LeS => Cmp::LeS,
        Instr::I32LeU => Cmp::LeU,
        Instr::I32GeS => Cmp::GeS,
        Instr::I32GeU => Cmp::GeU,
        _ => return None,
    })
}

/// One flat-IR operation (the cache-serializable form).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A straight-line instruction with shared semantics.
    Plain(Instr),
    /// Unconditional jump (no stack adjustment; used for `else` skips).
    Jump(u32),
    /// Jump when the popped i32 is zero (used for `if`).
    JumpIfZero(u32),
    /// Resolved `br`.
    Br(Dest),
    /// Resolved `br_if` (jump taken when popped i32 is non-zero).
    BrIf(Dest),
    /// Resolved `br_table`.
    BrTable { dests: Box<[Dest]>, default: Dest },
    /// Return the function's results from the top of the stack.
    Return,
    /// Trap.
    Unreachable,
    /// No-op left behind by peephole rewrites (compacted away by the final
    /// Max-tier pass).
    Nop,
    /// `drop` of a two-slot (v128) operand.
    Drop2,
    /// `select` between two-slot (v128) operands.
    Select2,

    // --- superinstructions produced by the Max tier ---
    /// `push locals[a] + locals[b]` (i32).
    I32AddLL(u16, u16),
    /// `push locals[a] + locals[b]` (i64).
    I64AddLL(u16, u16),
    /// `push locals[a] + locals[b]` (f64).
    F64AddLL(u16, u16),
    /// `push locals[a] * locals[b]` (f64).
    F64MulLL(u16, u16),
    /// `push locals[a] - locals[b]` (f64).
    F64SubLL(u16, u16),
    /// `push locals[a] + k` (i32).
    I32AddLK(u16, i32),
    /// `locals[a] = locals[a] + k` (i32), the classic loop-counter step.
    I32IncL(u16, i32),
    /// `push f64_load((locals[a] +wrap bias) + offset)` — `bias` joins the
    /// dynamic address with i32 wrap-around (it fuses guest-level adds);
    /// `offset` is the non-wrapping memarg immediate.
    F64LoadL { local: u16, bias: i32, offset: u32 },
    /// `push i32_load((locals[a] +wrap bias) + offset)`.
    I32LoadL { local: u16, bias: i32, offset: u32 },
    /// `f64_store(locals[addr] + offset, locals[val])`.
    F64StoreLL { addr: u16, val: u16, offset: u32 },
    /// `push popped * locals[b]` (f64) — fuses a loaded value with a factor.
    F64MulL(u16),
    /// `push popped + locals[b]` (f64).
    F64AddL(u16),
    /// `push locals[a] << k` (i32), the indexed-address scale step.
    I32ShlLK(u16, u8),
    /// `push popped + k` (i32).
    I32AddK(i32),
    /// `push locals[base] + (locals[idx] << shift)` (i32 address form).
    I32AddShlLL { base: u16, idx: u16, shift: u8 },
    /// `push f64_load(locals[base] + (locals[idx] << shift) + offset)`.
    F64LoadLSh { base: u16, idx: u16, shift: u8, offset: u32 },
    /// `push i32_load(locals[base] + (locals[idx] << shift) + offset)`.
    I32LoadLSh { base: u16, idx: u16, shift: u8, offset: u32 },
    /// `push f64_load(((locals[idx] << shift) +wrap bias) + offset)` — a
    /// constant base fuses into `bias` with i32 wrap-around, matching the
    /// guest's own address arithmetic; `offset` is the memarg immediate.
    F64LoadShlK { idx: u16, shift: u8, bias: i32, offset: u32 },
    /// `push i32_load(((locals[idx] << shift) +wrap bias) + offset)`.
    I32LoadShlK { idx: u16, shift: u8, bias: i32, offset: u32 },
    /// `push c + a * b` (f64): fused multiply-then-add (no FMA
    /// contraction — both roundings are performed as in the unfused pair).
    F64MulAdd,
    /// Compare-and-branch: `if cmp(locals[a], locals[b]) branch dest`.
    BrIfCmpLL { cmp: Cmp, a: u16, b: u16, dest: Dest },
    /// Compare-and-branch against a constant.
    BrIfCmpLK { cmp: Cmp, a: u16, k: i32, dest: Dest },
    /// Compare-and-branch on the two topmost stack operands.
    BrIfCmp { cmp: Cmp, dest: Dest },
    /// `if popped == 0 branch dest` (fused `i32.eqz ; br_if`).
    BrIfEqz(Dest),
}

/// A fully compiled flat function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatFunc {
    /// Serializable ops (the cache artifact form). May be empty after
    /// [`FlatFunc::discard_ops`]; the cache regenerates the stream by
    /// recompiling when it needs to serialize again.
    pub ops: Vec<Op>,
    /// Stackless register form derived from `ops` by
    /// [`FlatFunc::finalize`]; the form the engine executes.
    pub reg: regalloc::RegFunc,
    pub n_params: u32,
    pub locals: Vec<ValType>,
    /// Result count in values (kept for the cache format).
    pub result_arity: u32,
}

impl FlatFunc {
    /// Approximate in-memory size in bytes (ops + register code dominate).
    pub fn size_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<Op>()
            + self.reg.size_bytes()
            + self.locals.len()
            + std::mem::size_of::<Self>()
    }

    /// Derive the executable register form (see [`crate::regalloc`]).
    /// Must be called (by [`compile`] or the cache loader) before the
    /// function can run. Fails on malformed op streams (corrupt cache
    /// artifacts); the loader treats that as a miss and recompiles.
    pub fn finalize(&mut self, module: &Module, func: &Function) -> Result<(), String> {
        self.reg = regalloc::lower(module, func, &self.ops)?;
        Ok(())
    }

    /// Drop the portable op stream to halve resident memory once the
    /// cache artifact is stored (or intentionally not wanted). The
    /// executable register form is unaffected; serialization regenerates
    /// the stream by recompiling the (deterministic) pipeline.
    pub fn discard_ops(&mut self) {
        self.ops = Vec::new();
    }
}

// --- compilation ---

struct Ctrl {
    /// Slot height of the frame (operand stack, frame-relative).
    height: u32,
    br_arity: u32,
    /// Start ip for loops (branch target).
    loop_start: Option<u32>,
    /// Forward-branch op indices to patch to this frame's end.
    patches: Vec<Patch>,
    /// `JumpIfZero` emitted at `if`, patched at `else`/`end`.
    if_patch: Option<usize>,
    /// `Jump` emitted at `else` (then-arm fallthrough), patched at `end`.
    else_jump: Option<usize>,
    /// Width-stack depth at block entry (params popped) — the fused
    /// width pass's reset point for `else`/`end`.
    wbase: usize,
    /// Operand widths of the block's params / results (true = v128).
    wparams: Vec<bool>,
    wresults: Vec<bool>,
}

enum Patch {
    /// Patch `ops[idx]`'s single target.
    Single(usize),
    /// Patch `ops[idx]`'s br_table destination `slot` (usize::MAX = default).
    Table(usize, usize),
}

/// Slot count of a width list (v128 entries span two slots).
fn wslots(ws: &[bool]) -> u32 {
    ws.iter().map(|&w| if w { 2 } else { 1 }).sum()
}

/// Net stack effect of a straight-line instruction in *values* (pops,
/// pushes). Slot-accurate accounting is done by [`crate::widths`], which
/// consumes these counts.
pub(crate) fn stack_effect(module: &Module, i: &Instr) -> (u32, u32) {
    use Instr::*;
    match i {
        Drop => (1, 0),
        Select => (3, 1),
        LocalGet(_) | GlobalGet(_) => (0, 1),
        LocalSet(_) | GlobalSet(_) => (1, 0),
        LocalTee(_) => (1, 1),
        Call(f) => {
            let t = module.func_type(*f).expect("validated");
            (t.params.len() as u32, t.results.len() as u32)
        }
        CallIndirect { type_idx, .. } => {
            let t = &module.types[*type_idx as usize];
            (t.params.len() as u32 + 1, t.results.len() as u32)
        }
        I32Load(_) | I64Load(_) | F32Load(_) | F64Load(_) | I32Load8S(_) | I32Load8U(_)
        | I32Load16S(_) | I32Load16U(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_)
        | I64Load16U(_) | I64Load32S(_) | I64Load32U(_) | V128Load(_) => (1, 1),
        I32Store(_) | I64Store(_) | F32Store(_) | F64Store(_) | I32Store8(_) | I32Store16(_)
        | I64Store8(_) | I64Store16(_) | I64Store32(_) | V128Store(_) => (2, 0),
        MemorySize => (0, 1),
        MemoryGrow => (1, 1),
        MemoryCopy | MemoryFill => (3, 0),
        I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) | V128Const(_) => (0, 1),
        I32Eqz | I64Eqz => (1, 1),
        // Comparisons and binary arithmetic pop two.
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU
        | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
        | I64GeU | F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq | F64Ne | F64Lt
        | F64Gt | F64Le | F64Ge | I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS
        | I32RemU | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr
        | I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr | F32Add | F32Sub | F32Mul
        | F32Div | F32Min | F32Max | F32Copysign | F64Add | F64Sub | F64Mul | F64Div
        | F64Min | F64Max | F64Copysign | I32x4Add | I32x4Sub | I32x4Mul | F32x4Add
        | F32x4Sub | F32x4Mul | F32x4Div | F64x2Add | F64x2Sub | F64x2Mul | F64x2Div
        | F64x2Eq | F64x2Ne | F64x2Lt | F64x2Gt | F64x2Le | F64x2Ge | V128And | V128Or
        | V128Xor => (2, 1),
        F64x2ReplaceLane(_) => (2, 1),
        // Unary ops.
        I32Clz | I32Ctz | I32Popcnt | I64Clz | I64Ctz | I64Popcnt | F32Abs | F32Neg
        | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt | F64Abs | F64Neg | F64Ceil
        | F64Floor | F64Trunc | F64Nearest | F64Sqrt | I32WrapI64 | I32TruncF32S
        | I32TruncF32U | I32TruncF64S | I32TruncF64U | I64ExtendI32S | I64ExtendI32U
        | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U | F32ConvertI32S
        | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F32DemoteF64 | F64ConvertI32S
        | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U | F64PromoteF32
        | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64
        | I32Extend8S | I32Extend16S | I64Extend8S | I64Extend16S | I64Extend32S
        | I32x4Splat | I64x2Splat | F32x4Splat | F64x2Splat | I32x4ExtractLane(_)
        | F32x4ExtractLane(_) | F64x2ExtractLane(_) | V128Not | V128AnyTrue | I32x4AllTrue
        | I32x4Bitmask => (1, 1),
        Nop => (0, 0),
        Unreachable | Block(_) | Loop(_) | If(_) | Else | End | Br(_) | BrIf(_)
        | BrTable { .. } | Return => {
            unreachable!("control instruction in stack_effect")
        }
    }
}

/// Flatten (and, for `opt_level > 0`, optimize) one function body.
///
/// The flatten walk is fused with the width pass: a single traversal
/// resolves control flow *and* tracks operand widths (slot heights for
/// branch unwinding, v128-ness of `drop`/`select`), where earlier
/// engines walked every body twice (`widths::analyze` + flatten). The
/// standalone [`widths::analyze`] remains for the baseline tier.
pub fn compile(module: &Module, func: &Function, opt_level: u8) -> FlatFunc {
    let mut f = compile_ops(module, func, opt_level);
    f.finalize(module, func)
        .expect("freshly compiled flat IR must lower to register form");
    f
}

/// [`compile`] without the register-form lowering: produces only the
/// portable op stream. Used when the caller needs the serializable form
/// alone (the cache regenerating a discarded stream for
/// `store_artifact`) — skipping `finalize` halves that recompile cost.
pub fn compile_ops(module: &Module, func: &Function, opt_level: u8) -> FlatFunc {
    let fty = &module.types[func.type_idx as usize];
    let result_arity = fty.results.len() as u32;
    let result_slots = widths::slot_count(&fty.results);
    let local_wide: Vec<bool> = fty
        .params
        .iter()
        .chain(func.locals.iter())
        .map(|t| *t == ValType::V128)
        .collect();

    let mut ops: Vec<Op> = Vec::with_capacity(func.body.len());
    // Fused width state: operand widths plus the running height in slots.
    let mut w: Vec<bool> = Vec::with_capacity(32);
    let mut slots: u32 = 0;
    let mut ctrl: Vec<Ctrl> = vec![Ctrl {
        height: 0,
        br_arity: result_slots,
        loop_start: None,
        patches: Vec::new(),
        if_patch: None,
        else_jump: None,
        wbase: 0,
        wparams: Vec::new(),
        wresults: widths::widths_of(&fty.results),
    }];
    // When `Some(n)`, code is statically dead; n counts nested blocks opened
    // inside the dead region.
    let mut dead: Option<u32> = None;

    macro_rules! wpush {
        ($wide:expr) => {{
            let x: bool = $wide;
            w.push(x);
            slots += if x { 2 } else { 1 };
        }};
    }
    macro_rules! wpop {
        () => {{
            let x = w.pop().expect("validated: width stack underflow");
            slots -= if x { 2 } else { 1 };
            x
        }};
    }
    macro_rules! wreset {
        ($base:expr, $push:expr) => {{
            while w.len() > $base {
                wpop!();
            }
            for &x in $push {
                wpush!(x);
            }
        }};
    }

    for instr in func.body.iter() {
        if let Some(n) = dead {
            match instr {
                i if i.opens_block() => dead = Some(n + 1),
                Instr::End if n > 0 => dead = Some(n - 1),
                Instr::Else if n == 0 => {
                    dead = None;
                    // Process the Else normally below.
                }
                Instr::End if n == 0 => {
                    dead = None;
                    // Process the End normally below.
                }
                _ => continue,
            }
            if dead.is_some() {
                continue;
            }
        }
        match instr {
            Instr::Nop => {}
            Instr::Block(bt) | Instr::Loop(bt) => {
                let (wparams, wresults) = widths::block_widths(module, bt);
                for _ in 0..wparams.len() {
                    wpop!();
                }
                let wbase = w.len();
                // Branch heights exclude the block's params.
                let height = slots;
                for &x in &wparams {
                    wpush!(x);
                }
                let is_loop = matches!(instr, Instr::Loop(_));
                ctrl.push(Ctrl {
                    height,
                    br_arity: if is_loop { wslots(&wparams) } else { wslots(&wresults) },
                    loop_start: is_loop.then(|| ops.len() as u32),
                    patches: Vec::new(),
                    if_patch: None,
                    else_jump: None,
                    wbase,
                    wparams,
                    wresults,
                });
            }
            Instr::If(bt) => {
                wpop!(); // condition
                let (wparams, wresults) = widths::block_widths(module, bt);
                for _ in 0..wparams.len() {
                    wpop!();
                }
                let wbase = w.len();
                let height = slots;
                for &x in &wparams {
                    wpush!(x);
                }
                let if_patch = ops.len();
                ops.push(Op::JumpIfZero(u32::MAX));
                ctrl.push(Ctrl {
                    height,
                    br_arity: wslots(&wresults),
                    loop_start: None,
                    patches: Vec::new(),
                    if_patch: Some(if_patch),
                    else_jump: None,
                    wbase,
                    wparams,
                    wresults,
                });
            }
            Instr::Else => {
                let frame = ctrl.last_mut().expect("validated");
                let else_jump = ops.len();
                ops.push(Op::Jump(u32::MAX));
                if let Some(p) = frame.if_patch.take() {
                    ops[p] = Op::JumpIfZero(ops.len() as u32);
                }
                frame.else_jump = Some(else_jump);
                let (wbase, wparams) = (frame.wbase, frame.wparams.clone());
                wreset!(wbase, &wparams);
            }
            Instr::End => {
                let frame = ctrl.pop().expect("validated");
                let here = ops.len() as u32;
                if let Some(p) = frame.if_patch {
                    ops[p] = Op::JumpIfZero(here);
                }
                if let Some(p) = frame.else_jump {
                    ops[p] = Op::Jump(here);
                }
                for patch in frame.patches {
                    match patch {
                        Patch::Single(idx) => set_target(&mut ops[idx], here),
                        Patch::Table(idx, slot) => set_table_target(&mut ops[idx], slot, here),
                    }
                }
                wreset!(frame.wbase, &frame.wresults);
                if ctrl.is_empty() {
                    // Function-level end; nothing may follow.
                    ops.push(Op::Return);
                    break;
                }
            }
            Instr::Br(depth) => {
                emit_branch(&mut ops, &mut ctrl, *depth, false);
                dead = Some(0);
            }
            Instr::BrIf(depth) => {
                wpop!(); // condition
                emit_branch(&mut ops, &mut ctrl, *depth, true);
            }
            Instr::BrTable { targets, default } => {
                let op_idx = ops.len();
                let mut dests = Vec::with_capacity(targets.len());
                for (slot, t) in targets.iter().enumerate() {
                    dests.push(make_dest(&mut ctrl, *t, op_idx, slot));
                }
                let default_dest = make_dest(&mut ctrl, *default, op_idx, usize::MAX);
                ops.push(Op::BrTable { dests: dests.into_boxed_slice(), default: default_dest });
                dead = Some(0);
            }
            Instr::Return => {
                ops.push(Op::Return);
                dead = Some(0);
            }
            Instr::Unreachable => {
                ops.push(Op::Unreachable);
                dead = Some(0);
            }
            Instr::Drop => {
                let wide = wpop!();
                ops.push(if wide { Op::Drop2 } else { Op::Plain(Instr::Drop) });
            }
            Instr::Select => {
                wpop!(); // condition
                let a = wpop!();
                let _b = wpop!();
                wpush!(a);
                ops.push(if a { Op::Select2 } else { Op::Plain(Instr::Select) });
            }
            Instr::LocalGet(i) => {
                wpush!(local_wide[*i as usize]);
                ops.push(Op::Plain(instr.clone()));
            }
            Instr::LocalSet(_) | Instr::GlobalSet(_) => {
                wpop!();
                ops.push(Op::Plain(instr.clone()));
            }
            Instr::LocalTee(_) => {
                // Pops and re-pushes the same width.
                ops.push(Op::Plain(instr.clone()));
            }
            Instr::GlobalGet(_) => {
                wpush!(false);
                ops.push(Op::Plain(instr.clone()));
            }
            Instr::Call(f) => {
                let ty = module.func_type(*f).expect("validated");
                for _ in 0..ty.params.len() {
                    wpop!();
                }
                for r in &ty.results {
                    wpush!(*r == ValType::V128);
                }
                ops.push(Op::Plain(instr.clone()));
            }
            Instr::CallIndirect { type_idx, .. } => {
                wpop!(); // table index
                let ty = &module.types[*type_idx as usize];
                for _ in 0..ty.params.len() {
                    wpop!();
                }
                for r in &ty.results {
                    wpush!(*r == ValType::V128);
                }
                ops.push(Op::Plain(instr.clone()));
            }
            plain => {
                let (pops, pushes) = stack_effect(module, plain);
                for _ in 0..pops {
                    wpop!();
                }
                debug_assert!(pushes <= 1);
                for _ in 0..pushes {
                    wpush!(widths::pushes_wide(plain));
                }
                ops.push(Op::Plain(plain.clone()));
            }
        }
    }

    let mut f = FlatFunc {
        ops,
        reg: regalloc::RegFunc::default(),
        n_params: fty.params.len() as u32,
        locals: func.locals.clone(),
        result_arity,
    };
    if opt_level > 0 {
        optimize(&mut f, opt_level);
    }
    f
}

fn set_target(op: &mut Op, target: u32) {
    match op {
        Op::Br(d) | Op::BrIf(d) => d.target = target,
        Op::Jump(t) | Op::JumpIfZero(t) => *t = target,
        _ => unreachable!("patching non-branch op"),
    }
}

fn set_table_target(op: &mut Op, slot: usize, target: u32) {
    if let Op::BrTable { dests, default } = op {
        if slot == usize::MAX {
            default.target = target;
        } else {
            dests[slot].target = target;
        }
    } else {
        unreachable!("patching non-br_table op")
    }
}

fn emit_branch(ops: &mut Vec<Op>, ctrl: &mut [Ctrl], depth: u32, conditional: bool) {
    let idx = ctrl.len() - 1 - depth as usize;
    if idx == 0 {
        // Branch to the function frame == return. A conditional return
        // needs the jump form so fallthrough continues:
        // JumpIfZero(skip) ; Return ; skip:
        if conditional {
            let jz = ops.len();
            ops.push(Op::JumpIfZero(u32::MAX));
            ops.push(Op::Return);
            let here = ops.len() as u32;
            ops[jz] = Op::JumpIfZero(here);
        } else {
            ops.push(Op::Return);
        }
        return;
    }
    let frame = &ctrl[idx];
    let dest = Dest { target: u32::MAX, height: frame.height, arity: frame.br_arity };
    let op_idx = ops.len();
    if let Some(start) = frame.loop_start {
        let d = Dest { target: start, ..dest };
        ops.push(if conditional { Op::BrIf(d) } else { Op::Br(d) });
    } else {
        ops.push(if conditional { Op::BrIf(dest) } else { Op::Br(dest) });
        // ctrl is a slice; push patch onto the frame.
        let frame = &mut ctrl[idx];
        frame.patches.push(Patch::Single(op_idx));
    }
}

fn make_dest(ctrl: &mut [Ctrl], depth: u32, op_idx: usize, slot: usize) -> Dest {
    let idx = ctrl.len() - 1 - depth as usize;
    if idx == 0 {
        // Branch to the function frame: unwind to height 0 carrying the
        // function results, then fall into the trailing Return that the
        // function-level End appends (patched in by the frame's patch
        // list).
        let frame = &ctrl[0];
        let d = Dest { target: u32::MAX, height: 0, arity: frame.br_arity };
        let frame = &mut ctrl[0];
        frame.patches.push(Patch::Table(op_idx, slot));
        return d;
    }
    let frame = &ctrl[idx];
    let d = Dest {
        target: frame.loop_start.unwrap_or(u32::MAX),
        height: frame.height,
        arity: frame.br_arity,
    };
    if frame.loop_start.is_none() {
        let frame = &mut ctrl[idx];
        frame.patches.push(Patch::Table(op_idx, slot));
    }
    d
}

// --- optimization pipeline (Max tier) ---

fn optimize(f: &mut FlatFunc, opt_level: u8) {
    // Iterate the peephole passes to a fixpoint (bounded), the honest way
    // optimizers spend their compile-time budget. Nops are compacted after
    // every round so multi-stage fusions (e.g. shift → indexed address →
    // fused load) become adjacent again for the next round.
    let max_iters = 2 + opt_level as usize * 3;
    for _ in 0..max_iters {
        let targets = jump_targets(&f.ops);
        let a = fold_constants(&mut f.ops, &targets);
        let b = fuse_locals(&mut f.ops, &targets);
        compact_nops(f);
        if !a && !b {
            break;
        }
    }
}

/// Set of op indices that are jump targets; peephole windows must not span
/// them (except at the window start, where the Nop prefix keeps semantics).
fn jump_targets(ops: &[Op]) -> Vec<bool> {
    let mut t = vec![false; ops.len() + 1];
    let mut mark = |x: u32| {
        if (x as usize) < t.len() {
            t[x as usize] = true;
        }
    };
    for op in ops {
        match op {
            Op::Jump(x) | Op::JumpIfZero(x) => mark(*x),
            Op::Br(d) | Op::BrIf(d) | Op::BrIfEqz(d) => mark(d.target),
            Op::BrIfCmpLL { dest, .. } | Op::BrIfCmpLK { dest, .. } | Op::BrIfCmp { dest, .. } => {
                mark(dest.target)
            }
            Op::BrTable { dests, default } => {
                for d in dests.iter() {
                    mark(d.target);
                }
                mark(default.target);
            }
            _ => {}
        }
    }
    t
}

fn window_clear(targets: &[bool], start: usize, len: usize) -> bool {
    (start + 1..start + len).all(|i| !targets[i])
}

/// Fold `const ⊕ const` into a single constant. Returns true if changed.
fn fold_constants(ops: &mut [Op], targets: &[bool]) -> bool {
    use Instr::*;
    let mut changed = false;
    let mut i = 0;
    while i + 2 < ops.len() {
        if !window_clear(targets, i, 3) {
            i += 1;
            continue;
        }
        let folded = match (&ops[i], &ops[i + 1], &ops[i + 2]) {
            (Op::Plain(I32Const(a)), Op::Plain(I32Const(b)), Op::Plain(op)) => match op {
                I32Add => Some(I32Const(a.wrapping_add(*b))),
                I32Sub => Some(I32Const(a.wrapping_sub(*b))),
                I32Mul => Some(I32Const(a.wrapping_mul(*b))),
                I32And => Some(I32Const(a & b)),
                I32Or => Some(I32Const(a | b)),
                I32Xor => Some(I32Const(a ^ b)),
                I32Shl => Some(I32Const(a.wrapping_shl(*b as u32))),
                _ => None,
            },
            (Op::Plain(I64Const(a)), Op::Plain(I64Const(b)), Op::Plain(op)) => match op {
                I64Add => Some(I64Const(a.wrapping_add(*b))),
                I64Sub => Some(I64Const(a.wrapping_sub(*b))),
                I64Mul => Some(I64Const(a.wrapping_mul(*b))),
                _ => None,
            },
            (Op::Plain(F64Const(a)), Op::Plain(F64Const(b)), Op::Plain(op)) => match op {
                F64Add => Some(F64Const(a + b)),
                F64Sub => Some(F64Const(a - b)),
                F64Mul => Some(F64Const(a * b)),
                _ => None,
            },
            _ => None,
        };
        if let Some(c) = folded {
            ops[i] = Op::Nop;
            ops[i + 1] = Op::Nop;
            ops[i + 2] = Op::Plain(c);
            changed = true;
            i += 3;
        } else {
            i += 1;
        }
    }
    changed
}

fn as_local(op: &Op) -> Option<u16> {
    match op {
        Op::Plain(Instr::LocalGet(i)) if *i <= u16::MAX as u32 => Some(*i as u16),
        _ => None,
    }
}

/// True for ops that pop nothing and push exactly one i32-compatible slot;
/// safe to commute with a preceding `i32.const` across a commutative add.
fn is_pure_push(op: &Op) -> bool {
    matches!(
        op,
        Op::Plain(Instr::LocalGet(_) | Instr::GlobalGet(_) | Instr::MemorySize)
            | Op::I32ShlLK(..)
            | Op::I32AddLK(..)
            | Op::I32AddShlLL { .. }
            | Op::I32LoadL { .. }
            | Op::I32LoadLSh { .. }
            | Op::I32LoadShlK { .. }
    )
}

/// Fuse common local/load/store/compare-branch patterns into
/// superinstructions. Returns true if changed.
fn fuse_locals(ops: &mut [Op], targets: &[bool]) -> bool {
    use Instr::*;
    let mut changed = false;
    let mut i = 0;
    while i < ops.len() {
        // 4-wide: local.get a ; i32.const k ; i32.add ; local.set a  =>  inc
        if i + 3 < ops.len() && window_clear(targets, i, 4) {
            if let (Some(a), Op::Plain(I32Const(k)), Op::Plain(I32Add), Op::Plain(LocalSet(d))) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2], &ops[i + 3])
            {
                if *d == a as u32 {
                    let (k, a) = (*k, a);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::I32IncL(a, k);
                    changed = true;
                    i += 4;
                    continue;
                }
            }
            // local.get a ; local.get b ; i32.cmp ; br_if  =>  fused branch
            if let (Some(a), Some(b), Op::Plain(cmp_i), Op::BrIf(d)) =
                (as_local(&ops[i]), as_local(&ops[i + 1]), &ops[i + 2], &ops[i + 3])
            {
                if let Some(cmp) = cmp_of(cmp_i) {
                    let (dest, a, b) = (*d, a, b);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::BrIfCmpLL { cmp, a, b, dest };
                    changed = true;
                    i += 4;
                    continue;
                }
            }
            // local.get a ; i32.const k ; i32.cmp ; br_if  =>  fused branch
            if let (Some(a), Op::Plain(I32Const(k)), Op::Plain(cmp_i), Op::BrIf(d)) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2], &ops[i + 3])
            {
                if let Some(cmp) = cmp_of(cmp_i) {
                    let (dest, a, k) = (*d, a, *k);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::BrIfCmpLK { cmp, a, k, dest };
                    changed = true;
                    i += 4;
                    continue;
                }
            }
        }
        // 3-wide windows.
        if i + 2 < ops.len() && window_clear(targets, i, 3) {
            // local.get a ; local.get b ; binop / f64.store
            if let (Some(a), Some(b)) = (as_local(&ops[i]), as_local(&ops[i + 1])) {
                let fused = match &ops[i + 2] {
                    Op::Plain(I32Add) => Some(Op::I32AddLL(a, b)),
                    Op::Plain(I64Add) => Some(Op::I64AddLL(a, b)),
                    Op::Plain(F64Add) => Some(Op::F64AddLL(a, b)),
                    Op::Plain(F64Mul) => Some(Op::F64MulLL(a, b)),
                    Op::Plain(F64Sub) => Some(Op::F64SubLL(a, b)),
                    Op::Plain(F64Store(m)) => {
                        Some(Op::F64StoreLL { addr: a, val: b, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // local.get a ; i32.const k ; i32.add / i32.shl
            if let (Some(a), Op::Plain(I32Const(k))) = (as_local(&ops[i]), &ops[i + 1]) {
                let fused = match &ops[i + 2] {
                    Op::Plain(I32Add) => Some(Op::I32AddLK(a, *k)),
                    Op::Plain(I32Shl) => Some(Op::I32ShlLK(a, (*k & 31) as u8)),
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // local.get base ; (local.get idx << k) ; i32.add  =>  addr form
            if let (Some(base), Op::I32ShlLK(idx, shift), Op::Plain(I32Add)) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2])
            {
                let (idx, shift) = (*idx, *shift);
                ops[i] = Op::Nop;
                ops[i + 1] = Op::Nop;
                ops[i + 2] = Op::I32AddShlLL { base, idx, shift };
                changed = true;
                i += 3;
                continue;
            }
            // (idx << shift) ; (+wrap k) ; load  =>  biased scaled load
            // (the constant base of an indexed access; bias keeps the
            // guest's i32 wrap-around, the memarg offset stays separate).
            if let (Op::I32ShlLK(idx, shift), Op::I32AddK(k), load) =
                (&ops[i], &ops[i + 1], &ops[i + 2])
            {
                let (idx, shift, k) = (*idx, *shift, *k);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadShlK { idx, shift, bias: k, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadShlK { idx, shift, bias: k, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // i32.const k ; <pure push> ; i32.add  =>  <pure push> ; +k
            if let (Op::Plain(I32Const(k)), x, Op::Plain(I32Add)) =
                (&ops[i], &ops[i + 1], &ops[i + 2])
            {
                if is_pure_push(x) {
                    let k = *k;
                    ops[i] = Op::Nop;
                    ops.swap(i + 1, i + 2);
                    ops[i + 1] = std::mem::replace(&mut ops[i + 2], Op::I32AddK(k));
                    // (swap + replace keeps the pure push first)
                    changed = true;
                    i += 3;
                    continue;
                }
            }
        }
        // 2-wide windows.
        if i + 1 < ops.len() && window_clear(targets, i, 2) {
            if let Some(a) = as_local(&ops[i]) {
                let fused = match &ops[i + 1] {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadL { local: a, bias: 0, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadL { local: a, bias: 0, offset: m.offset })
                    }
                    Op::Plain(F64Mul) => Some(Op::F64MulL(a)),
                    Op::Plain(F64Add) => Some(Op::F64AddL(a)),
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // (base + (idx << shift)) ; load  =>  one fused indexed load
            if let (Op::I32AddShlLL { base, idx, shift }, load) = (&ops[i], &ops[i + 1]) {
                let (base, idx, shift) = (*base, *idx, *shift);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadLSh { base, idx, shift, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadLSh { base, idx, shift, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // (idx << shift) ; load  =>  scaled load
            if let (Op::I32ShlLK(idx, shift), load) = (&ops[i], &ops[i + 1]) {
                let (idx, shift) = (*idx, *shift);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadShlK { idx, shift, bias: 0, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadShlK { idx, shift, bias: 0, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // (local +wrap k) ; load  =>  biased load. The constant joins
            // the *dynamic* address with i32 wrap-around — exactly the
            // guest's own add — never the non-wrapping memarg offset.
            if let (Op::I32AddLK(a, k), load) = (&ops[i], &ops[i + 1]) {
                let (a, k) = (*a, *k);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadL { local: a, bias: k, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadL { local: a, bias: k, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // +k1 ; +k2  =>  +(k1+k2)
            if let (Op::I32AddK(k1), Op::I32AddK(k2)) = (&ops[i], &ops[i + 1]) {
                let k = k1.wrapping_add(*k2);
                ops[i] = Op::Nop;
                ops[i + 1] = Op::I32AddK(k);
                changed = true;
                i += 2;
                continue;
            }
            // f64.mul ; f64.add  =>  fused multiply-add (both roundings kept)
            if let (Op::Plain(F64Mul), Op::Plain(F64Add)) = (&ops[i], &ops[i + 1]) {
                ops[i] = Op::Nop;
                ops[i + 1] = Op::F64MulAdd;
                changed = true;
                i += 2;
                continue;
            }
            // i32.cmp ; br_if  =>  fused compare-branch
            if let (Op::Plain(cmp_i), Op::BrIf(d)) = (&ops[i], &ops[i + 1]) {
                if let Some(cmp) = cmp_of(cmp_i) {
                    let dest = *d;
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::BrIfCmp { cmp, dest };
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // i32.eqz ; br_if  =>  branch-if-zero
            if let (Op::Plain(I32Eqz), Op::BrIf(d)) = (&ops[i], &ops[i + 1]) {
                let dest = *d;
                ops[i] = Op::Nop;
                ops[i + 1] = Op::BrIfEqz(dest);
                changed = true;
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    changed
}

/// Remove Nops, remapping all jump targets (jump threading lite).
fn compact_nops(f: &mut FlatFunc) {
    let ops = &f.ops;
    // new_index[i] = index of op i after compaction; for a Nop it points at
    // the next surviving op (safe: a Nop's only semantics is falling
    // through).
    let mut new_index = vec![0u32; ops.len() + 1];
    let mut count = 0u32;
    for (i, op) in ops.iter().enumerate() {
        new_index[i] = count;
        if !matches!(op, Op::Nop) {
            count += 1;
        }
    }
    new_index[ops.len()] = count;

    let remap = |t: u32| new_index[t as usize];
    let mut out = Vec::with_capacity(count as usize);
    for op in ops {
        let rewritten = match op {
            Op::Nop => continue,
            Op::Jump(t) => Op::Jump(remap(*t)),
            Op::JumpIfZero(t) => Op::JumpIfZero(remap(*t)),
            Op::Br(d) => Op::Br(Dest { target: remap(d.target), ..*d }),
            Op::BrIf(d) => Op::BrIf(Dest { target: remap(d.target), ..*d }),
            Op::BrIfEqz(d) => Op::BrIfEqz(Dest { target: remap(d.target), ..*d }),
            Op::BrIfCmpLL { cmp, a, b, dest } => Op::BrIfCmpLL {
                cmp: *cmp,
                a: *a,
                b: *b,
                dest: Dest { target: remap(dest.target), ..*dest },
            },
            Op::BrIfCmpLK { cmp, a, k, dest } => Op::BrIfCmpLK {
                cmp: *cmp,
                a: *a,
                k: *k,
                dest: Dest { target: remap(dest.target), ..*dest },
            },
            Op::BrIfCmp { cmp, dest } => Op::BrIfCmp {
                cmp: *cmp,
                dest: Dest { target: remap(dest.target), ..*dest },
            },
            Op::BrTable { dests, default } => Op::BrTable {
                dests: dests
                    .iter()
                    .map(|d| Dest { target: remap(d.target), ..*d })
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                default: Dest { target: remap(default.target), ..*default },
            },
            other => other.clone(),
        };
        out.push(rewritten);
    }
    f.ops = out;
}

// --- execution ---

/// Execute flat-IR function `defined_idx` with `args` (already as slots),
/// through the register-form threaded-dispatch engine.
pub(crate) fn call(
    inst: &mut Instance,
    defined_idx: usize,
    args: &[Slot],
) -> Result<Vec<Slot>, Trap> {
    let mut stack = inst.take_stack();
    stack.extend_from_slice(args);
    let result = crate::dispatch::run(inst, &mut stack, defined_idx);
    let out = result.map(|result_slots| {
        let at = stack.len() - result_slots;
        stack.split_off(at)
    });
    inst.put_stack(stack);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_constants_rewrites_window() {
        let mut ops = vec![
            Op::Plain(Instr::I32Const(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Add),
        ];
        let targets = vec![false; 4];
        assert!(fold_constants(&mut ops, &targets));
        assert_eq!(ops[2], Op::Plain(Instr::I32Const(5)));
        assert_eq!(ops[0], Op::Nop);
    }

    #[test]
    fn fold_skips_jump_targets() {
        let mut ops = vec![
            Op::Plain(Instr::I32Const(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Add),
        ];
        let mut targets = vec![false; 4];
        targets[1] = true; // something jumps between the constants
        assert!(!fold_constants(&mut ops, &targets));
    }

    #[test]
    fn fuse_loop_counter_increment() {
        let mut ops = vec![
            Op::Plain(Instr::LocalGet(0)),
            Op::Plain(Instr::I32Const(1)),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::LocalSet(0)),
        ];
        let targets = vec![false; 5];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[3], Op::I32IncL(0, 1));
    }

    #[test]
    fn fuse_compare_and_branch() {
        let d = Dest { target: 7, height: 0, arity: 0 };
        // The for_range loop exit: local.get i ; local.get n ; ge_s ; br_if
        let mut ops = vec![
            Op::Plain(Instr::LocalGet(0)),
            Op::Plain(Instr::LocalGet(1)),
            Op::Plain(Instr::I32GeS),
            Op::BrIf(d),
        ];
        let targets = vec![false; 5];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[3], Op::BrIfCmpLL { cmp: Cmp::GeS, a: 0, b: 1, dest: d });

        // Stack-operand form: cmp ; br_if.
        let mut ops = vec![Op::Plain(Instr::I32LtS), Op::BrIf(d)];
        let targets = vec![false; 3];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[1], Op::BrIfCmp { cmp: Cmp::LtS, dest: d });

        // eqz ; br_if (the while-loop exit).
        let mut ops = vec![Op::Plain(Instr::I32Eqz), Op::BrIf(d)];
        let targets = vec![false; 3];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[1], Op::BrIfEqz(d));
    }

    #[test]
    fn fuse_indexed_load_chain() {
        use crate::instr::MemArg;
        // local.get a ; local.get i ; const 3 ; shl ; add ; f64.load —
        // the canonical vector-element address — fuses to one op.
        let ops = vec![
            Op::Plain(Instr::LocalGet(4)),
            Op::Plain(Instr::LocalGet(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Shl),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::F64Load(MemArg::offset(16))),
        ];
        let mut f = FlatFunc { ops, ..Default::default() };
        optimize(&mut f, 2);
        assert_eq!(f.ops, vec![Op::F64LoadLSh { base: 4, idx: 2, shift: 3, offset: 16 }]);
    }

    #[test]
    fn fuse_const_base_load() {
        use crate::instr::MemArg;
        // const 4096 ; local.get i ; const 3 ; shl ; add ; f64.load
        let ops = vec![
            Op::Plain(Instr::I32Const(4096)),
            Op::Plain(Instr::LocalGet(1)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Shl),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::F64Load(MemArg::offset(0))),
        ];
        let mut f = FlatFunc { ops, ..Default::default() };
        optimize(&mut f, 2);
        assert_eq!(
            f.ops,
            vec![Op::F64LoadShlK { idx: 1, shift: 3, bias: 4096, offset: 0 }]
        );
    }

    #[test]
    fn compact_nops_remaps_jumps() {
        let mut f = FlatFunc {
            ops: vec![
                Op::Nop,
                Op::Jump(3),
                Op::Nop,
                Op::Plain(Instr::I32Const(1)),
                Op::Return,
            ],
            ..Default::default()
        };
        f.result_arity = 1;
        compact_nops(&mut f);
        assert_eq!(f.ops.len(), 3);
        // Jump(3) pointed at the const; after compaction the const is at 1.
        assert_eq!(f.ops[0], Op::Jump(1));
    }

    #[test]
    fn compact_remaps_fused_branch_targets() {
        let d = Dest { target: 3, height: 0, arity: 0 };
        let mut f = FlatFunc {
            ops: vec![
                Op::BrIfCmpLL { cmp: Cmp::LtS, a: 0, b: 1, dest: d },
                Op::Nop,
                Op::Nop,
                Op::Return,
            ],
            ..Default::default()
        };
        compact_nops(&mut f);
        assert_eq!(
            f.ops[0],
            Op::BrIfCmpLL {
                cmp: Cmp::LtS,
                a: 0,
                b: 1,
                dest: Dest { target: 1, height: 0, arity: 0 }
            }
        );
    }

    #[test]
    fn addk_never_folds_into_pure_push_loads() {
        use crate::instr::MemArg;
        // Regression: `counts[b] = counts[b] + 1` lowers to
        //   [ShlLK b][AddK counts]  (store address, stays on the stack)
        //   [LoadShlK b counts][Const 1][Add][I32Store]
        // The AddK feeds the *store*, not the following load; folding it
        // into the LoadShlK offset both corrupted the loaded address and
        // dropped the base from the store address.
        let ops = vec![
            Op::I32ShlLK(6, 2),
            Op::I32AddK(1000),
            Op::I32LoadShlK { idx: 6, shift: 2, bias: 1000, offset: 0 },
            Op::Plain(Instr::I32Const(1)),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::I32Store(MemArg::offset(0))),
        ];
        let mut f = FlatFunc { ops: ops.clone(), ..Default::default() };
        optimize(&mut f, 2);
        assert!(
            f.ops.contains(&Op::I32AddK(1000)),
            "store-address AddK must survive: {:?}",
            f.ops
        );
        assert!(
            f.ops.contains(&Op::I32LoadShlK { idx: 6, shift: 2, bias: 1000, offset: 0 }),
            "load address must be unchanged: {:?}",
            f.ops
        );
    }

    #[test]
    fn cmp_byte_roundtrip() {
        for b in 0..=9u8 {
            assert_eq!(Cmp::from_byte(b).unwrap().to_byte(), b);
        }
        assert!(Cmp::from_byte(10).is_none());
        assert!(Cmp::LtS.eval(-1, 0));
        assert!(!Cmp::LtU.eval(-1, 0));
        assert!(Cmp::GeS.eval(3, 3));
    }
}

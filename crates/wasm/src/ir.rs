//! The optimizing tiers: flattening of structured Wasm bytecode into a
//! register-style flat IR with resolved jump targets, plus the optimization
//! pipeline run by [`crate::tier::Tier::Max`].
//!
//! Flattening resolves all structured control flow (`block`/`loop`/`if`)
//! into direct jumps with precomputed stack-unwind information, eliminating
//! the label-stack bookkeeping of the baseline interpreter — this is the
//! Cranelift analog. The Max tier then runs iterated peephole passes
//! (constant folding, local/load/store fusion into superinstructions, and
//! a final jump-threading + nop-compaction pass) — the LLVM analog.

use crate::error::Trap;
use crate::exec;
use crate::instr::Instr;
use crate::module::{Function, Module};
use crate::runtime::{Instance, Value};
use crate::tier::CompiledBody;
use crate::types::{BlockType, ValType};

/// A resolved branch destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dest {
    pub target: u32,
    /// Operand-stack height to unwind to (relative to the frame base).
    pub height: u32,
    /// Number of values carried over the unwind.
    pub arity: u32,
}

/// One flat-IR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A straight-line instruction with shared semantics.
    Plain(Instr),
    /// Unconditional jump (no stack adjustment; used for `else` skips).
    Jump(u32),
    /// Jump when the popped i32 is zero (used for `if`).
    JumpIfZero(u32),
    /// Resolved `br`.
    Br(Dest),
    /// Resolved `br_if` (jump taken when popped i32 is non-zero).
    BrIf(Dest),
    /// Resolved `br_table`.
    BrTable { dests: Box<[Dest]>, default: Dest },
    /// Return the function's results from the top of the stack.
    Return,
    /// Trap.
    Unreachable,
    /// No-op left behind by peephole rewrites (compacted away by the final
    /// Max-tier pass).
    Nop,

    // --- superinstructions produced by the Max tier ---
    /// `push locals[a] + locals[b]` (i32).
    I32AddLL(u16, u16),
    /// `push locals[a] + locals[b]` (i64).
    I64AddLL(u16, u16),
    /// `push locals[a] + locals[b]` (f64).
    F64AddLL(u16, u16),
    /// `push locals[a] * locals[b]` (f64).
    F64MulLL(u16, u16),
    /// `push locals[a] - locals[b]` (f64).
    F64SubLL(u16, u16),
    /// `push locals[a] + k` (i32).
    I32AddLK(u16, i32),
    /// `locals[a] = locals[a] + k` (i32), the classic loop-counter step.
    I32IncL(u16, i32),
    /// `push f64_load(locals[a] + offset)`.
    F64LoadL { local: u16, offset: u32 },
    /// `push i32_load(locals[a] + offset)`.
    I32LoadL { local: u16, offset: u32 },
    /// `f64_store(locals[addr] + offset, locals[val])`.
    F64StoreLL { addr: u16, val: u16, offset: u32 },
    /// `push popped * locals[b]` (f64) — fuses a loaded value with a factor.
    F64MulL(u16),
    /// `push popped + locals[b]` (f64).
    F64AddL(u16),
}

/// A fully compiled flat function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatFunc {
    pub ops: Vec<Op>,
    pub n_params: u32,
    pub locals: Vec<ValType>,
    pub result_arity: u32,
}

impl FlatFunc {
    /// Approximate in-memory size in bytes (ops dominate).
    pub fn size_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<Op>()
            + self.locals.len()
            + std::mem::size_of::<Self>()
    }
}

// --- compilation ---

struct Ctrl {
    height: u32,
    br_arity: u32,
    end_arity: u32,
    /// Start ip for loops (branch target).
    loop_start: Option<u32>,
    /// Forward-branch op indices to patch to this frame's end.
    patches: Vec<Patch>,
    /// `JumpIfZero` emitted at `if`, patched at `else`/`end`.
    if_patch: Option<usize>,
    /// `Jump` emitted at `else` (then-arm fallthrough), patched at `end`.
    else_jump: Option<usize>,
}

enum Patch {
    /// Patch `ops[idx]`'s single target.
    Single(usize),
    /// Patch `ops[idx]`'s br_table destination `slot` (usize::MAX = default).
    Table(usize, usize),
}

fn block_arities(module: &Module, bt: &BlockType) -> (u32, u32) {
    match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(_) => (0, 1),
        BlockType::Func(idx) => {
            let t = &module.types[*idx as usize];
            (t.params.len() as u32, t.results.len() as u32)
        }
    }
}

/// Net stack effect of a straight-line instruction: (pops, pushes).
fn stack_effect(module: &Module, i: &Instr) -> (u32, u32) {
    use Instr::*;
    match i {
        Drop => (1, 0),
        Select => (3, 1),
        LocalGet(_) | GlobalGet(_) => (0, 1),
        LocalSet(_) | GlobalSet(_) => (1, 0),
        LocalTee(_) => (1, 1),
        Call(f) => {
            let t = module.func_type(*f).expect("validated");
            (t.params.len() as u32, t.results.len() as u32)
        }
        CallIndirect { type_idx, .. } => {
            let t = &module.types[*type_idx as usize];
            (t.params.len() as u32 + 1, t.results.len() as u32)
        }
        I32Load(_) | I64Load(_) | F32Load(_) | F64Load(_) | I32Load8S(_) | I32Load8U(_)
        | I32Load16S(_) | I32Load16U(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_)
        | I64Load16U(_) | I64Load32S(_) | I64Load32U(_) | V128Load(_) => (1, 1),
        I32Store(_) | I64Store(_) | F32Store(_) | F64Store(_) | I32Store8(_) | I32Store16(_)
        | I64Store8(_) | I64Store16(_) | I64Store32(_) | V128Store(_) => (2, 0),
        MemorySize => (0, 1),
        MemoryGrow => (1, 1),
        MemoryCopy | MemoryFill => (3, 0),
        I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) | V128Const(_) => (0, 1),
        I32Eqz | I64Eqz => (1, 1),
        // Comparisons and binary arithmetic pop two.
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU
        | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
        | I64GeU | F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq | F64Ne | F64Lt
        | F64Gt | F64Le | F64Ge | I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS
        | I32RemU | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr
        | I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr | F32Add | F32Sub | F32Mul
        | F32Div | F32Min | F32Max | F32Copysign | F64Add | F64Sub | F64Mul | F64Div
        | F64Min | F64Max | F64Copysign | I32x4Add | I32x4Sub | I32x4Mul | F32x4Add
        | F32x4Sub | F32x4Mul | F32x4Div | F64x2Add | F64x2Sub | F64x2Mul | F64x2Div
        | F64x2Eq | F64x2Ne | F64x2Lt | F64x2Gt | F64x2Le | F64x2Ge | V128And | V128Or
        | V128Xor => (2, 1),
        F64x2ReplaceLane(_) => (2, 1),
        // Unary ops.
        I32Clz | I32Ctz | I32Popcnt | I64Clz | I64Ctz | I64Popcnt | F32Abs | F32Neg
        | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt | F64Abs | F64Neg | F64Ceil
        | F64Floor | F64Trunc | F64Nearest | F64Sqrt | I32WrapI64 | I32TruncF32S
        | I32TruncF32U | I32TruncF64S | I32TruncF64U | I64ExtendI32S | I64ExtendI32U
        | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U | F32ConvertI32S
        | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F32DemoteF64 | F64ConvertI32S
        | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U | F64PromoteF32
        | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64
        | I32Extend8S | I32Extend16S | I64Extend8S | I64Extend16S | I64Extend32S
        | I32x4Splat | I64x2Splat | F32x4Splat | F64x2Splat | I32x4ExtractLane(_)
        | F32x4ExtractLane(_) | F64x2ExtractLane(_) | V128Not | V128AnyTrue | I32x4AllTrue
        | I32x4Bitmask => (1, 1),
        Nop => (0, 0),
        Unreachable | Block(_) | Loop(_) | If(_) | Else | End | Br(_) | BrIf(_)
        | BrTable { .. } | Return => {
            unreachable!("control instruction in stack_effect")
        }
    }
}

/// Flatten (and, for `opt_level > 0`, optimize) one function body.
pub fn compile(module: &Module, func: &Function, opt_level: u8) -> FlatFunc {
    let fty = &module.types[func.type_idx as usize];
    let result_arity = fty.results.len() as u32;

    let mut ops: Vec<Op> = Vec::with_capacity(func.body.len());
    let mut ctrl: Vec<Ctrl> = vec![Ctrl {
        height: 0,
        br_arity: result_arity,
        end_arity: result_arity,
        loop_start: None,
        patches: Vec::new(),
        if_patch: None,
        else_jump: None,
    }];
    let mut height: u32 = 0;
    // When `Some(n)`, code is statically dead; n counts nested blocks opened
    // inside the dead region.
    let mut dead: Option<u32> = None;

    for instr in &func.body {
        if let Some(n) = dead {
            match instr {
                i if i.opens_block() => dead = Some(n + 1),
                Instr::End if n > 0 => dead = Some(n - 1),
                Instr::Else if n == 0 => {
                    dead = None;
                    // Process the Else normally below.
                }
                Instr::End if n == 0 => {
                    dead = None;
                    // Process the End normally below.
                }
                _ => continue,
            }
            if dead.is_some() {
                continue;
            }
        }
        match instr {
            Instr::Nop => {}
            Instr::Block(bt) => {
                let (_, results) = block_arities(module, bt);
                ctrl.push(Ctrl {
                    height,
                    br_arity: results,
                    end_arity: results,
                    loop_start: None,
                    patches: Vec::new(),
                    if_patch: None,
                    else_jump: None,
                });
            }
            Instr::Loop(bt) => {
                let (_, results) = block_arities(module, bt);
                ctrl.push(Ctrl {
                    height,
                    br_arity: 0,
                    end_arity: results,
                    loop_start: Some(ops.len() as u32),
                    patches: Vec::new(),
                    if_patch: None,
                    else_jump: None,
                });
            }
            Instr::If(bt) => {
                height -= 1; // condition
                let (_, results) = block_arities(module, bt);
                let if_patch = ops.len();
                ops.push(Op::JumpIfZero(u32::MAX));
                ctrl.push(Ctrl {
                    height,
                    br_arity: results,
                    end_arity: results,
                    loop_start: None,
                    patches: Vec::new(),
                    if_patch: Some(if_patch),
                    else_jump: None,
                });
            }
            Instr::Else => {
                let frame = ctrl.last_mut().expect("validated");
                let else_jump = ops.len();
                ops.push(Op::Jump(u32::MAX));
                if let Some(p) = frame.if_patch.take() {
                    ops[p] = Op::JumpIfZero(ops.len() as u32);
                }
                frame.else_jump = Some(else_jump);
                height = frame.height;
            }
            Instr::End => {
                let frame = ctrl.pop().expect("validated");
                let here = ops.len() as u32;
                if let Some(p) = frame.if_patch {
                    ops[p] = Op::JumpIfZero(here);
                }
                if let Some(p) = frame.else_jump {
                    ops[p] = Op::Jump(here);
                }
                for patch in frame.patches {
                    match patch {
                        Patch::Single(idx) => set_target(&mut ops[idx], here),
                        Patch::Table(idx, slot) => set_table_target(&mut ops[idx], slot, here),
                    }
                }
                if ctrl.is_empty() {
                    // Function-level end.
                    ops.push(Op::Return);
                } else {
                    height = frame.height + frame.end_arity;
                }
            }
            Instr::Br(depth) => {
                emit_branch(&mut ops, &mut ctrl, *depth, height, false);
                dead = Some(0);
            }
            Instr::BrIf(depth) => {
                height -= 1;
                emit_branch(&mut ops, &mut ctrl, *depth, height, true);
            }
            Instr::BrTable { targets, default } => {
                height -= 1;
                let op_idx = ops.len();
                let mut dests = Vec::with_capacity(targets.len());
                for (slot, t) in targets.iter().enumerate() {
                    dests.push(make_dest(&mut ctrl, *t, height, op_idx, slot));
                }
                let default_dest =
                    make_dest(&mut ctrl, *default, height, op_idx, usize::MAX);
                ops.push(Op::BrTable { dests: dests.into_boxed_slice(), default: default_dest });
                dead = Some(0);
            }
            Instr::Return => {
                ops.push(Op::Return);
                dead = Some(0);
            }
            Instr::Unreachable => {
                ops.push(Op::Unreachable);
                dead = Some(0);
            }
            plain => {
                let (pops, pushes) = stack_effect(module, plain);
                height = height - pops + pushes;
                ops.push(Op::Plain(plain.clone()));
            }
        }
    }

    let mut f = FlatFunc {
        ops,
        n_params: fty.params.len() as u32,
        locals: func.locals.clone(),
        result_arity,
    };
    if opt_level > 0 {
        optimize(&mut f, opt_level);
    }
    f
}

fn set_target(op: &mut Op, target: u32) {
    match op {
        Op::Br(d) | Op::BrIf(d) => d.target = target,
        Op::Jump(t) | Op::JumpIfZero(t) => *t = target,
        _ => unreachable!("patching non-branch op"),
    }
}

fn set_table_target(op: &mut Op, slot: usize, target: u32) {
    if let Op::BrTable { dests, default } = op {
        if slot == usize::MAX {
            default.target = target;
        } else {
            dests[slot].target = target;
        }
    } else {
        unreachable!("patching non-br_table op")
    }
}

fn emit_branch(ops: &mut Vec<Op>, ctrl: &mut [Ctrl], depth: u32, _height: u32, conditional: bool) {
    let idx = ctrl.len() - 1 - depth as usize;
    if idx == 0 {
        // Branch to the function frame == return. A conditional return
        // needs the jump form so fallthrough continues.
        if conditional {
            // `br_if` to function frame: pop cond (already accounted),
            // return if non-zero. Encode as BrIf to a Return landing pad:
            // simplest correct encoding is BrIf jumping over a Jump.
            // We instead emit: JumpIfZero(skip) ; Return ; skip:
            let jz = ops.len();
            ops.push(Op::JumpIfZero(u32::MAX));
            ops.push(Op::Return);
            let here = ops.len() as u32;
            ops[jz] = Op::JumpIfZero(here);
        } else {
            ops.push(Op::Return);
        }
        return;
    }
    let frame = &ctrl[idx];
    let dest = Dest { target: u32::MAX, height: frame.height, arity: frame.br_arity };
    let op_idx = ops.len();
    if let Some(start) = frame.loop_start {
        let d = Dest { target: start, ..dest };
        ops.push(if conditional { Op::BrIf(d) } else { Op::Br(d) });
    } else {
        ops.push(if conditional { Op::BrIf(dest) } else { Op::Br(dest) });
        // ctrl is a slice; push patch onto the frame.
        let frame = &mut ctrl[idx];
        frame.patches.push(Patch::Single(op_idx));
    }
}

fn make_dest(ctrl: &mut [Ctrl], depth: u32, height: u32, op_idx: usize, slot: usize) -> Dest {
    let idx = ctrl.len() - 1 - depth as usize;
    if idx == 0 {
        // Branch to the function frame: encode as a jump to a Return that
        // the finalization appends; use a special height/arity pair that
        // unwinds to the results. We reuse target u32::MAX - 1 and fix it
        // by pointing at the trailing Return emitted for the function end.
        // Simpler and always correct: unwind to height 0 carrying the
        // function results, then fall into Return at the patched target.
        let frame = &ctrl[0];
        // The function-level Return is appended at the very end of `ops`;
        // register a patch so this dest points at it.
        let d = Dest { target: u32::MAX, height: 0, arity: frame.br_arity };
        let frame = &mut ctrl[0];
        frame.patches.push(Patch::Table(op_idx, slot));
        return d;
    }
    let frame = &ctrl[idx];
    let d = Dest {
        target: frame.loop_start.unwrap_or(u32::MAX),
        height: frame.height,
        arity: frame.br_arity,
    };
    let _ = height;
    if frame.loop_start.is_none() {
        let frame = &mut ctrl[idx];
        frame.patches.push(Patch::Table(op_idx, slot));
    }
    d
}

// --- optimization pipeline (Max tier) ---

fn optimize(f: &mut FlatFunc, opt_level: u8) {
    // Iterate the peephole passes to a fixpoint (bounded), the honest way
    // optimizers spend their compile-time budget.
    let max_iters = 2 + opt_level as usize * 3;
    for _ in 0..max_iters {
        let targets = jump_targets(&f.ops);
        let a = fold_constants(&mut f.ops, &targets);
        let b = fuse_locals(&mut f.ops, &targets);
        if !a && !b {
            break;
        }
    }
    compact_nops(f);
}

/// Set of op indices that are jump targets; peephole windows must not span
/// them (except at the window start, where the Nop prefix keeps semantics).
fn jump_targets(ops: &[Op]) -> Vec<bool> {
    let mut t = vec![false; ops.len() + 1];
    let mut mark = |x: u32| {
        if (x as usize) < t.len() {
            t[x as usize] = true;
        }
    };
    for op in ops {
        match op {
            Op::Jump(x) | Op::JumpIfZero(x) => mark(*x),
            Op::Br(d) | Op::BrIf(d) => mark(d.target),
            Op::BrTable { dests, default } => {
                for d in dests.iter() {
                    mark(d.target);
                }
                mark(default.target);
            }
            _ => {}
        }
    }
    t
}

fn window_clear(targets: &[bool], start: usize, len: usize) -> bool {
    (start + 1..start + len).all(|i| !targets[i])
}

/// Fold `const ⊕ const` into a single constant. Returns true if changed.
fn fold_constants(ops: &mut [Op], targets: &[bool]) -> bool {
    use Instr::*;
    let mut changed = false;
    let mut i = 0;
    while i + 2 < ops.len() {
        if !window_clear(targets, i, 3) {
            i += 1;
            continue;
        }
        let folded = match (&ops[i], &ops[i + 1], &ops[i + 2]) {
            (Op::Plain(I32Const(a)), Op::Plain(I32Const(b)), Op::Plain(op)) => match op {
                I32Add => Some(I32Const(a.wrapping_add(*b))),
                I32Sub => Some(I32Const(a.wrapping_sub(*b))),
                I32Mul => Some(I32Const(a.wrapping_mul(*b))),
                I32And => Some(I32Const(a & b)),
                I32Or => Some(I32Const(a | b)),
                I32Xor => Some(I32Const(a ^ b)),
                I32Shl => Some(I32Const(a.wrapping_shl(*b as u32))),
                _ => None,
            },
            (Op::Plain(I64Const(a)), Op::Plain(I64Const(b)), Op::Plain(op)) => match op {
                I64Add => Some(I64Const(a.wrapping_add(*b))),
                I64Sub => Some(I64Const(a.wrapping_sub(*b))),
                I64Mul => Some(I64Const(a.wrapping_mul(*b))),
                _ => None,
            },
            (Op::Plain(F64Const(a)), Op::Plain(F64Const(b)), Op::Plain(op)) => match op {
                F64Add => Some(F64Const(a + b)),
                F64Sub => Some(F64Const(a - b)),
                F64Mul => Some(F64Const(a * b)),
                _ => None,
            },
            _ => None,
        };
        if let Some(c) = folded {
            ops[i] = Op::Nop;
            ops[i + 1] = Op::Nop;
            ops[i + 2] = Op::Plain(c);
            changed = true;
            i += 3;
        } else {
            i += 1;
        }
    }
    changed
}

fn as_local(op: &Op) -> Option<u16> {
    match op {
        Op::Plain(Instr::LocalGet(i)) if *i <= u16::MAX as u32 => Some(*i as u16),
        _ => None,
    }
}

/// Fuse common local/load/store patterns into superinstructions.
fn fuse_locals(ops: &mut [Op], targets: &[bool]) -> bool {
    use Instr::*;
    let mut changed = false;
    let mut i = 0;
    while i < ops.len() {
        // 4-wide: local.get a ; i32.const k ; i32.add ; local.set a  =>  inc
        if i + 3 < ops.len() && window_clear(targets, i, 4) {
            if let (Some(a), Op::Plain(I32Const(k)), Op::Plain(I32Add), Op::Plain(LocalSet(d))) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2], &ops[i + 3])
            {
                if *d == a as u32 {
                    let (k, a) = (*k, a);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::I32IncL(a, k);
                    changed = true;
                    i += 4;
                    continue;
                }
            }
        }
        // 3-wide: local.get a ; local.get b ; binop
        if i + 2 < ops.len() && window_clear(targets, i, 3) {
            if let (Some(a), Some(b)) = (as_local(&ops[i]), as_local(&ops[i + 1])) {
                let fused = match &ops[i + 2] {
                    Op::Plain(I32Add) => Some(Op::I32AddLL(a, b)),
                    Op::Plain(I64Add) => Some(Op::I64AddLL(a, b)),
                    Op::Plain(F64Add) => Some(Op::F64AddLL(a, b)),
                    Op::Plain(F64Mul) => Some(Op::F64MulLL(a, b)),
                    Op::Plain(F64Sub) => Some(Op::F64SubLL(a, b)),
                    Op::Plain(F64Store(m)) => {
                        Some(Op::F64StoreLL { addr: a, val: b, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // local.get a ; i32.const k ; i32.add
            if let (Some(a), Op::Plain(I32Const(k)), Op::Plain(I32Add)) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2])
            {
                let k = *k;
                ops[i] = Op::Nop;
                ops[i + 1] = Op::Nop;
                ops[i + 2] = Op::I32AddLK(a, k);
                changed = true;
                i += 3;
                continue;
            }
        }
        // 2-wide: local.get a ; load
        if i + 1 < ops.len() && window_clear(targets, i, 2) {
            if let Some(a) = as_local(&ops[i]) {
                let fused = match &ops[i + 1] {
                    Op::Plain(F64Load(m)) => Some(Op::F64LoadL { local: a, offset: m.offset }),
                    Op::Plain(I32Load(m)) => Some(Op::I32LoadL { local: a, offset: m.offset }),
                    Op::Plain(F64Mul) => Some(Op::F64MulL(a)),
                    Op::Plain(F64Add) => Some(Op::F64AddL(a)),
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    changed
}

/// Remove Nops, remapping all jump targets (jump threading lite).
fn compact_nops(f: &mut FlatFunc) {
    let ops = &f.ops;
    // new_index[i] = index of op i after compaction; for a Nop it points at
    // the next surviving op (safe: a Nop's only semantics is falling
    // through).
    let mut new_index = vec![0u32; ops.len() + 1];
    let mut count = 0u32;
    for (i, op) in ops.iter().enumerate() {
        new_index[i] = count;
        if !matches!(op, Op::Nop) {
            count += 1;
        }
    }
    new_index[ops.len()] = count;

    let remap = |t: u32| new_index[t as usize];
    let mut out = Vec::with_capacity(count as usize);
    for op in ops {
        let rewritten = match op {
            Op::Nop => continue,
            Op::Jump(t) => Op::Jump(remap(*t)),
            Op::JumpIfZero(t) => Op::JumpIfZero(remap(*t)),
            Op::Br(d) => Op::Br(Dest { target: remap(d.target), ..*d }),
            Op::BrIf(d) => Op::BrIf(Dest { target: remap(d.target), ..*d }),
            Op::BrTable { dests, default } => Op::BrTable {
                dests: dests
                    .iter()
                    .map(|d| Dest { target: remap(d.target), ..*d })
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                default: Dest { target: remap(default.target), ..*default },
            },
            other => other.clone(),
        };
        out.push(rewritten);
    }
    f.ops = out;
}

// --- execution ---

/// Execute flat-IR function `defined_idx` with `args`.
pub(crate) fn call(
    inst: &mut Instance,
    defined_idx: usize,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    let bodies = std::sync::Arc::clone(&inst.bodies);
    let f = match &bodies[defined_idx] {
        CompiledBody::Flat(f) => f,
        CompiledBody::Interp(_) => unreachable!("flat tier expected"),
    };

    let mut locals: Vec<Value> = Vec::with_capacity(args.len() + f.locals.len());
    locals.extend_from_slice(args);
    locals.extend(f.locals.iter().map(|&t| Value::zero(t)));

    let mut stack: Vec<Value> = Vec::with_capacity(32);
    let mut ip = 0usize;
    let ops = &f.ops;
    let result_arity = f.result_arity as usize;
    let mut limit_check = 0u32;

    loop {
        // Amortized stack-limit check: growth per op is O(1).
        limit_check += 1;
        if limit_check >= 1024 {
            limit_check = 0;
            if stack.len() > inst.limits.max_value_stack {
                return Err(Trap::StackExhausted);
            }
        }
        match &ops[ip] {
            Op::Plain(instr) => {
                exec::step(inst, &mut stack, &mut locals, instr)?;
                ip += 1;
            }
            Op::Nop => ip += 1,
            Op::Jump(t) => ip = *t as usize,
            Op::JumpIfZero(t) => {
                let c = match stack.pop() {
                    Some(Value::I32(v)) => v,
                    _ => unreachable!("validated"),
                };
                ip = if c == 0 { *t as usize } else { ip + 1 };
            }
            Op::Br(d) => {
                unwind(&mut stack, d);
                ip = d.target as usize;
            }
            Op::BrIf(d) => {
                let c = match stack.pop() {
                    Some(Value::I32(v)) => v,
                    _ => unreachable!("validated"),
                };
                if c != 0 {
                    unwind(&mut stack, d);
                    ip = d.target as usize;
                } else {
                    ip += 1;
                }
            }
            Op::BrTable { dests, default } => {
                let idx = exec::pop(&mut stack).as_i32().expect("validated") as usize;
                let d = dests.get(idx).unwrap_or(default);
                unwind(&mut stack, d);
                ip = d.target as usize;
            }
            Op::Return => {
                let at = stack.len() - result_arity;
                return Ok(stack.split_off(at));
            }
            Op::Unreachable => return Err(Trap::Unreachable),

            Op::I32AddLL(a, b) => {
                let (x, y) = (get_i32(&locals, *a), get_i32(&locals, *b));
                stack.push(Value::I32(x.wrapping_add(y)));
                ip += 1;
            }
            Op::I64AddLL(a, b) => {
                let (x, y) = (get_i64(&locals, *a), get_i64(&locals, *b));
                stack.push(Value::I64(x.wrapping_add(y)));
                ip += 1;
            }
            Op::F64AddLL(a, b) => {
                stack.push(Value::F64(get_f64(&locals, *a) + get_f64(&locals, *b)));
                ip += 1;
            }
            Op::F64MulLL(a, b) => {
                stack.push(Value::F64(get_f64(&locals, *a) * get_f64(&locals, *b)));
                ip += 1;
            }
            Op::F64SubLL(a, b) => {
                stack.push(Value::F64(get_f64(&locals, *a) - get_f64(&locals, *b)));
                ip += 1;
            }
            Op::I32AddLK(a, k) => {
                stack.push(Value::I32(get_i32(&locals, *a).wrapping_add(*k)));
                ip += 1;
            }
            Op::I32IncL(a, k) => {
                let v = get_i32(&locals, *a).wrapping_add(*k);
                locals[*a as usize] = Value::I32(v);
                ip += 1;
            }
            Op::F64LoadL { local, offset } => {
                let addr = get_i32(&locals, *local) as u32;
                let start = inst.memory.effective(addr, *offset, 8)?;
                stack.push(Value::F64(f64::from_le_bytes(inst.memory.load::<8>(start))));
                ip += 1;
            }
            Op::I32LoadL { local, offset } => {
                let addr = get_i32(&locals, *local) as u32;
                let start = inst.memory.effective(addr, *offset, 4)?;
                stack.push(Value::I32(i32::from_le_bytes(inst.memory.load::<4>(start))));
                ip += 1;
            }
            Op::F64StoreLL { addr, val, offset } => {
                let a = get_i32(&locals, *addr) as u32;
                let v = get_f64(&locals, *val);
                let start = inst.memory.effective(a, *offset, 8)?;
                inst.memory.store(start, &v.to_le_bytes());
                ip += 1;
            }
            Op::F64MulL(b) => {
                let a = exec::pop(&mut stack).as_f64().expect("validated");
                stack.push(Value::F64(a * get_f64(&locals, *b)));
                ip += 1;
            }
            Op::F64AddL(b) => {
                let a = exec::pop(&mut stack).as_f64().expect("validated");
                stack.push(Value::F64(a + get_f64(&locals, *b)));
                ip += 1;
            }
        }
    }
}

#[inline]
fn unwind(stack: &mut Vec<Value>, d: &Dest) {
    let height = d.height as usize;
    let arity = d.arity as usize;
    if arity == 0 {
        stack.truncate(height);
        return;
    }
    // Move the carried values down over the unwound region, in place.
    let from = stack.len() - arity;
    if from != height {
        for i in 0..arity {
            stack[height + i] = stack[from + i];
        }
    }
    stack.truncate(height + arity);
}

#[inline]
fn get_i32(locals: &[Value], i: u16) -> i32 {
    match locals[i as usize] {
        Value::I32(v) => v,
        _ => unreachable!("validated"),
    }
}

#[inline]
fn get_i64(locals: &[Value], i: u16) -> i64 {
    match locals[i as usize] {
        Value::I64(v) => v,
        _ => unreachable!("validated"),
    }
}

#[inline]
fn get_f64(locals: &[Value], i: u16) -> f64 {
    match locals[i as usize] {
        Value::F64(v) => v,
        _ => unreachable!("validated"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_constants_rewrites_window() {
        let mut ops = vec![
            Op::Plain(Instr::I32Const(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Add),
        ];
        let targets = vec![false; 4];
        assert!(fold_constants(&mut ops, &targets));
        assert_eq!(ops[2], Op::Plain(Instr::I32Const(5)));
        assert_eq!(ops[0], Op::Nop);
    }

    #[test]
    fn fold_skips_jump_targets() {
        let mut ops = vec![
            Op::Plain(Instr::I32Const(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Add),
        ];
        let mut targets = vec![false; 4];
        targets[1] = true; // something jumps between the constants
        assert!(!fold_constants(&mut ops, &targets));
    }

    #[test]
    fn fuse_loop_counter_increment() {
        let mut ops = vec![
            Op::Plain(Instr::LocalGet(0)),
            Op::Plain(Instr::I32Const(1)),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::LocalSet(0)),
        ];
        let targets = vec![false; 5];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[3], Op::I32IncL(0, 1));
    }

    #[test]
    fn compact_nops_remaps_jumps() {
        let mut f = FlatFunc {
            ops: vec![
                Op::Nop,
                Op::Jump(3),
                Op::Nop,
                Op::Plain(Instr::I32Const(1)),
                Op::Return,
            ],
            n_params: 0,
            locals: vec![],
            result_arity: 1,
        };
        compact_nops(&mut f);
        assert_eq!(f.ops.len(), 3);
        // Jump(3) pointed at the const; after compaction the const is at 1.
        assert_eq!(f.ops[0], Op::Jump(1));
    }
}

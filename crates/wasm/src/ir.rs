//! The optimizing tiers: flattening of structured Wasm bytecode into a
//! register-style flat IR with resolved jump targets, plus the
//! optimization pipeline run by [`crate::tier::Tier::Max`].
//!
//! Flattening resolves all structured control flow (`block`/`loop`/`if`)
//! into direct jumps with precomputed stack-unwind information (in slot
//! units), eliminating the label-stack bookkeeping of the baseline
//! interpreter — this is the Cranelift analog. The Max tier then runs
//! iterated peephole passes (constant folding, local/load/store/shift
//! fusion into superinstructions, compare-and-branch fusion, and a final
//! jump-threading + nop-compaction pass) — the LLVM analog.
//!
//! Two representations coexist:
//!
//! * [`Op`] — the serializable form stored in the module cache. Plain
//!   instructions are embedded [`Instr`]s; superinstructions reference
//!   locals by *index*.
//! * [`ExecOp`] — the dense executable form derived by [`FlatFunc::finalize`]:
//!   every straight-line instruction becomes its own flat variant with
//!   immediates resolved (local indices → slot offsets), so the dispatch
//!   loop is a single flat match with no nested `Instr` tag to re-decode
//!   and no `Value` type tags at run time. Operands and locals live in the
//!   per-instance slot arena; guest→guest calls push an activation frame
//!   whose locals are a window into the same buffer (zero per-call
//!   allocation).

use std::sync::Arc;

use crate::error::Trap;
use crate::exec;
use crate::instr::Instr;
use crate::module::{Function, Module};
use crate::runtime::{Instance, Slot};
use crate::tier::CompiledBody;
use crate::types::{BlockType, ValType};
use crate::widths;

/// A resolved branch destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dest {
    pub target: u32,
    /// Operand-stack height (in slots) to unwind to, relative to the
    /// frame's operand base.
    pub height: u32,
    /// Number of slots carried over the unwind.
    pub arity: u32,
}

/// An i32 comparison fused into a branch superinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Cmp {
    Eq = 0,
    Ne = 1,
    LtS = 2,
    LtU = 3,
    GtS = 4,
    GtU = 5,
    LeS = 6,
    LeU = 7,
    GeS = 8,
    GeU = 9,
}

impl Cmp {
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::LtS => a < b,
            Cmp::LtU => (a as u32) < (b as u32),
            Cmp::GtS => a > b,
            Cmp::GtU => (a as u32) > (b as u32),
            Cmp::LeS => a <= b,
            Cmp::LeU => (a as u32) <= (b as u32),
            Cmp::GeS => a >= b,
            Cmp::GeU => (a as u32) >= (b as u32),
        }
    }

    pub fn to_byte(self) -> u8 {
        self as u8
    }

    pub fn from_byte(b: u8) -> Option<Cmp> {
        Some(match b {
            0 => Cmp::Eq,
            1 => Cmp::Ne,
            2 => Cmp::LtS,
            3 => Cmp::LtU,
            4 => Cmp::GtS,
            5 => Cmp::GtU,
            6 => Cmp::LeS,
            7 => Cmp::LeU,
            8 => Cmp::GeS,
            9 => Cmp::GeU,
            _ => return None,
        })
    }
}

/// Map an i32 comparison instruction to its fusible [`Cmp`].
fn cmp_of(i: &Instr) -> Option<Cmp> {
    Some(match i {
        Instr::I32Eq => Cmp::Eq,
        Instr::I32Ne => Cmp::Ne,
        Instr::I32LtS => Cmp::LtS,
        Instr::I32LtU => Cmp::LtU,
        Instr::I32GtS => Cmp::GtS,
        Instr::I32GtU => Cmp::GtU,
        Instr::I32LeS => Cmp::LeS,
        Instr::I32LeU => Cmp::LeU,
        Instr::I32GeS => Cmp::GeS,
        Instr::I32GeU => Cmp::GeU,
        _ => return None,
    })
}

/// One flat-IR operation (the cache-serializable form).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A straight-line instruction with shared semantics.
    Plain(Instr),
    /// Unconditional jump (no stack adjustment; used for `else` skips).
    Jump(u32),
    /// Jump when the popped i32 is zero (used for `if`).
    JumpIfZero(u32),
    /// Resolved `br`.
    Br(Dest),
    /// Resolved `br_if` (jump taken when popped i32 is non-zero).
    BrIf(Dest),
    /// Resolved `br_table`.
    BrTable { dests: Box<[Dest]>, default: Dest },
    /// Return the function's results from the top of the stack.
    Return,
    /// Trap.
    Unreachable,
    /// No-op left behind by peephole rewrites (compacted away by the final
    /// Max-tier pass).
    Nop,
    /// `drop` of a two-slot (v128) operand.
    Drop2,
    /// `select` between two-slot (v128) operands.
    Select2,

    // --- superinstructions produced by the Max tier ---
    /// `push locals[a] + locals[b]` (i32).
    I32AddLL(u16, u16),
    /// `push locals[a] + locals[b]` (i64).
    I64AddLL(u16, u16),
    /// `push locals[a] + locals[b]` (f64).
    F64AddLL(u16, u16),
    /// `push locals[a] * locals[b]` (f64).
    F64MulLL(u16, u16),
    /// `push locals[a] - locals[b]` (f64).
    F64SubLL(u16, u16),
    /// `push locals[a] + k` (i32).
    I32AddLK(u16, i32),
    /// `locals[a] = locals[a] + k` (i32), the classic loop-counter step.
    I32IncL(u16, i32),
    /// `push f64_load((locals[a] +wrap bias) + offset)` — `bias` joins the
    /// dynamic address with i32 wrap-around (it fuses guest-level adds);
    /// `offset` is the non-wrapping memarg immediate.
    F64LoadL { local: u16, bias: i32, offset: u32 },
    /// `push i32_load((locals[a] +wrap bias) + offset)`.
    I32LoadL { local: u16, bias: i32, offset: u32 },
    /// `f64_store(locals[addr] + offset, locals[val])`.
    F64StoreLL { addr: u16, val: u16, offset: u32 },
    /// `push popped * locals[b]` (f64) — fuses a loaded value with a factor.
    F64MulL(u16),
    /// `push popped + locals[b]` (f64).
    F64AddL(u16),
    /// `push locals[a] << k` (i32), the indexed-address scale step.
    I32ShlLK(u16, u8),
    /// `push popped + k` (i32).
    I32AddK(i32),
    /// `push locals[base] + (locals[idx] << shift)` (i32 address form).
    I32AddShlLL { base: u16, idx: u16, shift: u8 },
    /// `push f64_load(locals[base] + (locals[idx] << shift) + offset)`.
    F64LoadLSh { base: u16, idx: u16, shift: u8, offset: u32 },
    /// `push i32_load(locals[base] + (locals[idx] << shift) + offset)`.
    I32LoadLSh { base: u16, idx: u16, shift: u8, offset: u32 },
    /// `push f64_load(((locals[idx] << shift) +wrap bias) + offset)` — a
    /// constant base fuses into `bias` with i32 wrap-around, matching the
    /// guest's own address arithmetic; `offset` is the memarg immediate.
    F64LoadShlK { idx: u16, shift: u8, bias: i32, offset: u32 },
    /// `push i32_load(((locals[idx] << shift) +wrap bias) + offset)`.
    I32LoadShlK { idx: u16, shift: u8, bias: i32, offset: u32 },
    /// `push c + a * b` (f64): fused multiply-then-add (no FMA
    /// contraction — both roundings are performed as in the unfused pair).
    F64MulAdd,
    /// Compare-and-branch: `if cmp(locals[a], locals[b]) branch dest`.
    BrIfCmpLL { cmp: Cmp, a: u16, b: u16, dest: Dest },
    /// Compare-and-branch against a constant.
    BrIfCmpLK { cmp: Cmp, a: u16, k: i32, dest: Dest },
    /// Compare-and-branch on the two topmost stack operands.
    BrIfCmp { cmp: Cmp, dest: Dest },
    /// `if popped == 0 branch dest` (fused `i32.eqz ; br_if`).
    BrIfEqz(Dest),
}

/// A fully compiled flat function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatFunc {
    /// Serializable ops (the cache artifact form).
    pub ops: Vec<Op>,
    /// Dense executable form derived from `ops` by [`FlatFunc::finalize`].
    pub code: Vec<ExecOp>,
    pub n_params: u32,
    pub locals: Vec<ValType>,
    /// Result count in values (kept for the cache format).
    pub result_arity: u32,
    /// Result count in slots.
    pub result_slots: u32,
    /// Parameter count in slots.
    pub param_slots: u32,
    /// Total local (params + declared) slot count.
    pub n_local_slots: u32,
    /// Per local index: `slot_offset << 1 | is_v128`.
    pub local_map: Vec<u32>,
}

impl FlatFunc {
    /// Approximate in-memory size in bytes (ops + code dominate).
    pub fn size_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<Op>()
            + self.code.len() * std::mem::size_of::<ExecOp>()
            + self.locals.len()
            + self.local_map.len() * 4
            + std::mem::size_of::<Self>()
    }

    /// Derive the executable form: slot layout plus the dense opcode
    /// stream. Must be called (by [`compile`] or the cache loader) before
    /// the function can run.
    pub fn finalize(&mut self, module: &Module, func: &Function) {
        let fty = &module.types[func.type_idx as usize];
        let (map, n_slots) = widths::local_map(&fty.params, &func.locals);
        self.param_slots = widths::slot_count(&fty.params);
        self.result_slots = widths::slot_count(&fty.results);
        self.n_local_slots = n_slots;
        self.code = self.ops.iter().map(|op| lower(op, &map)).collect();
        self.local_map = map;
    }
}

// --- compilation ---

struct Ctrl {
    /// Slot height of the frame (operand stack, frame-relative).
    height: u32,
    br_arity: u32,
    /// Start ip for loops (branch target).
    loop_start: Option<u32>,
    /// Forward-branch op indices to patch to this frame's end.
    patches: Vec<Patch>,
    /// `JumpIfZero` emitted at `if`, patched at `else`/`end`.
    if_patch: Option<usize>,
    /// `Jump` emitted at `else` (then-arm fallthrough), patched at `end`.
    else_jump: Option<usize>,
}

enum Patch {
    /// Patch `ops[idx]`'s single target.
    Single(usize),
    /// Patch `ops[idx]`'s br_table destination `slot` (usize::MAX = default).
    Table(usize, usize),
}

fn block_arities_slots(module: &Module, bt: &BlockType) -> (u32, u32) {
    match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(t) => (0, t.slot_width()),
        BlockType::Func(idx) => {
            let t = &module.types[*idx as usize];
            (widths::slot_count(&t.params), widths::slot_count(&t.results))
        }
    }
}

/// Net stack effect of a straight-line instruction in *values* (pops,
/// pushes). Slot-accurate accounting is done by [`crate::widths`], which
/// consumes these counts.
pub(crate) fn stack_effect(module: &Module, i: &Instr) -> (u32, u32) {
    use Instr::*;
    match i {
        Drop => (1, 0),
        Select => (3, 1),
        LocalGet(_) | GlobalGet(_) => (0, 1),
        LocalSet(_) | GlobalSet(_) => (1, 0),
        LocalTee(_) => (1, 1),
        Call(f) => {
            let t = module.func_type(*f).expect("validated");
            (t.params.len() as u32, t.results.len() as u32)
        }
        CallIndirect { type_idx, .. } => {
            let t = &module.types[*type_idx as usize];
            (t.params.len() as u32 + 1, t.results.len() as u32)
        }
        I32Load(_) | I64Load(_) | F32Load(_) | F64Load(_) | I32Load8S(_) | I32Load8U(_)
        | I32Load16S(_) | I32Load16U(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_)
        | I64Load16U(_) | I64Load32S(_) | I64Load32U(_) | V128Load(_) => (1, 1),
        I32Store(_) | I64Store(_) | F32Store(_) | F64Store(_) | I32Store8(_) | I32Store16(_)
        | I64Store8(_) | I64Store16(_) | I64Store32(_) | V128Store(_) => (2, 0),
        MemorySize => (0, 1),
        MemoryGrow => (1, 1),
        MemoryCopy | MemoryFill => (3, 0),
        I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) | V128Const(_) => (0, 1),
        I32Eqz | I64Eqz => (1, 1),
        // Comparisons and binary arithmetic pop two.
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU
        | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
        | I64GeU | F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq | F64Ne | F64Lt
        | F64Gt | F64Le | F64Ge | I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS
        | I32RemU | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr
        | I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr | F32Add | F32Sub | F32Mul
        | F32Div | F32Min | F32Max | F32Copysign | F64Add | F64Sub | F64Mul | F64Div
        | F64Min | F64Max | F64Copysign | I32x4Add | I32x4Sub | I32x4Mul | F32x4Add
        | F32x4Sub | F32x4Mul | F32x4Div | F64x2Add | F64x2Sub | F64x2Mul | F64x2Div
        | F64x2Eq | F64x2Ne | F64x2Lt | F64x2Gt | F64x2Le | F64x2Ge | V128And | V128Or
        | V128Xor => (2, 1),
        F64x2ReplaceLane(_) => (2, 1),
        // Unary ops.
        I32Clz | I32Ctz | I32Popcnt | I64Clz | I64Ctz | I64Popcnt | F32Abs | F32Neg
        | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt | F64Abs | F64Neg | F64Ceil
        | F64Floor | F64Trunc | F64Nearest | F64Sqrt | I32WrapI64 | I32TruncF32S
        | I32TruncF32U | I32TruncF64S | I32TruncF64U | I64ExtendI32S | I64ExtendI32U
        | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U | F32ConvertI32S
        | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F32DemoteF64 | F64ConvertI32S
        | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U | F64PromoteF32
        | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64
        | I32Extend8S | I32Extend16S | I64Extend8S | I64Extend16S | I64Extend32S
        | I32x4Splat | I64x2Splat | F32x4Splat | F64x2Splat | I32x4ExtractLane(_)
        | F32x4ExtractLane(_) | F64x2ExtractLane(_) | V128Not | V128AnyTrue | I32x4AllTrue
        | I32x4Bitmask => (1, 1),
        Nop => (0, 0),
        Unreachable | Block(_) | Loop(_) | If(_) | Else | End | Br(_) | BrIf(_)
        | BrTable { .. } | Return => {
            unreachable!("control instruction in stack_effect")
        }
    }
}

/// Flatten (and, for `opt_level > 0`, optimize) one function body.
pub fn compile(module: &Module, func: &Function, opt_level: u8) -> FlatFunc {
    let fty = &module.types[func.type_idx as usize];
    let result_arity = fty.results.len() as u32;
    let result_slots = widths::slot_count(&fty.results);
    let info = widths::analyze(module, func);

    let mut ops: Vec<Op> = Vec::with_capacity(func.body.len());
    let mut ctrl: Vec<Ctrl> = vec![Ctrl {
        height: 0,
        br_arity: result_slots,
        loop_start: None,
        patches: Vec::new(),
        if_patch: None,
        else_jump: None,
    }];
    // When `Some(n)`, code is statically dead; n counts nested blocks opened
    // inside the dead region.
    let mut dead: Option<u32> = None;

    for (pc, instr) in func.body.iter().enumerate() {
        if let Some(n) = dead {
            match instr {
                i if i.opens_block() => dead = Some(n + 1),
                Instr::End if n > 0 => dead = Some(n - 1),
                Instr::Else if n == 0 => {
                    dead = None;
                    // Process the Else normally below.
                }
                Instr::End if n == 0 => {
                    dead = None;
                    // Process the End normally below.
                }
                _ => continue,
            }
            if dead.is_some() {
                continue;
            }
        }
        match instr {
            Instr::Nop => {}
            Instr::Block(bt) => {
                let (_, results) = block_arities_slots(module, bt);
                ctrl.push(Ctrl {
                    height: info.height[pc],
                    br_arity: results,
                    loop_start: None,
                    patches: Vec::new(),
                    if_patch: None,
                    else_jump: None,
                });
            }
            Instr::Loop(bt) => {
                let (params, _results) = block_arities_slots(module, bt);
                ctrl.push(Ctrl {
                    height: info.height[pc],
                    br_arity: params,
                    loop_start: Some(ops.len() as u32),
                    patches: Vec::new(),
                    if_patch: None,
                    else_jump: None,
                });
            }
            Instr::If(bt) => {
                let (_, results) = block_arities_slots(module, bt);
                let if_patch = ops.len();
                ops.push(Op::JumpIfZero(u32::MAX));
                ctrl.push(Ctrl {
                    // analyze() records the height with the condition (and
                    // any params) already popped.
                    height: info.height[pc],
                    br_arity: results,
                    loop_start: None,
                    patches: Vec::new(),
                    if_patch: Some(if_patch),
                    else_jump: None,
                });
            }
            Instr::Else => {
                let frame = ctrl.last_mut().expect("validated");
                let else_jump = ops.len();
                ops.push(Op::Jump(u32::MAX));
                if let Some(p) = frame.if_patch.take() {
                    ops[p] = Op::JumpIfZero(ops.len() as u32);
                }
                frame.else_jump = Some(else_jump);
            }
            Instr::End => {
                let frame = ctrl.pop().expect("validated");
                let here = ops.len() as u32;
                if let Some(p) = frame.if_patch {
                    ops[p] = Op::JumpIfZero(here);
                }
                if let Some(p) = frame.else_jump {
                    ops[p] = Op::Jump(here);
                }
                for patch in frame.patches {
                    match patch {
                        Patch::Single(idx) => set_target(&mut ops[idx], here),
                        Patch::Table(idx, slot) => set_table_target(&mut ops[idx], slot, here),
                    }
                }
                if ctrl.is_empty() {
                    // Function-level end.
                    ops.push(Op::Return);
                }
            }
            Instr::Br(depth) => {
                emit_branch(&mut ops, &mut ctrl, *depth, false);
                dead = Some(0);
            }
            Instr::BrIf(depth) => {
                emit_branch(&mut ops, &mut ctrl, *depth, true);
            }
            Instr::BrTable { targets, default } => {
                let op_idx = ops.len();
                let mut dests = Vec::with_capacity(targets.len());
                for (slot, t) in targets.iter().enumerate() {
                    dests.push(make_dest(&mut ctrl, *t, op_idx, slot));
                }
                let default_dest = make_dest(&mut ctrl, *default, op_idx, usize::MAX);
                ops.push(Op::BrTable { dests: dests.into_boxed_slice(), default: default_dest });
                dead = Some(0);
            }
            Instr::Return => {
                ops.push(Op::Return);
                dead = Some(0);
            }
            Instr::Unreachable => {
                ops.push(Op::Unreachable);
                dead = Some(0);
            }
            Instr::Drop => {
                ops.push(if info.wide[pc] { Op::Drop2 } else { Op::Plain(Instr::Drop) });
            }
            Instr::Select => {
                ops.push(if info.wide[pc] { Op::Select2 } else { Op::Plain(Instr::Select) });
            }
            plain => {
                ops.push(Op::Plain(plain.clone()));
            }
        }
    }

    let mut f = FlatFunc {
        ops,
        code: Vec::new(),
        n_params: fty.params.len() as u32,
        locals: func.locals.clone(),
        result_arity,
        result_slots: 0,
        param_slots: 0,
        n_local_slots: 0,
        local_map: Vec::new(),
    };
    if opt_level > 0 {
        optimize(&mut f, opt_level);
    }
    f.finalize(module, func);
    f
}

fn set_target(op: &mut Op, target: u32) {
    match op {
        Op::Br(d) | Op::BrIf(d) => d.target = target,
        Op::Jump(t) | Op::JumpIfZero(t) => *t = target,
        _ => unreachable!("patching non-branch op"),
    }
}

fn set_table_target(op: &mut Op, slot: usize, target: u32) {
    if let Op::BrTable { dests, default } = op {
        if slot == usize::MAX {
            default.target = target;
        } else {
            dests[slot].target = target;
        }
    } else {
        unreachable!("patching non-br_table op")
    }
}

fn emit_branch(ops: &mut Vec<Op>, ctrl: &mut [Ctrl], depth: u32, conditional: bool) {
    let idx = ctrl.len() - 1 - depth as usize;
    if idx == 0 {
        // Branch to the function frame == return. A conditional return
        // needs the jump form so fallthrough continues:
        // JumpIfZero(skip) ; Return ; skip:
        if conditional {
            let jz = ops.len();
            ops.push(Op::JumpIfZero(u32::MAX));
            ops.push(Op::Return);
            let here = ops.len() as u32;
            ops[jz] = Op::JumpIfZero(here);
        } else {
            ops.push(Op::Return);
        }
        return;
    }
    let frame = &ctrl[idx];
    let dest = Dest { target: u32::MAX, height: frame.height, arity: frame.br_arity };
    let op_idx = ops.len();
    if let Some(start) = frame.loop_start {
        let d = Dest { target: start, ..dest };
        ops.push(if conditional { Op::BrIf(d) } else { Op::Br(d) });
    } else {
        ops.push(if conditional { Op::BrIf(dest) } else { Op::Br(dest) });
        // ctrl is a slice; push patch onto the frame.
        let frame = &mut ctrl[idx];
        frame.patches.push(Patch::Single(op_idx));
    }
}

fn make_dest(ctrl: &mut [Ctrl], depth: u32, op_idx: usize, slot: usize) -> Dest {
    let idx = ctrl.len() - 1 - depth as usize;
    if idx == 0 {
        // Branch to the function frame: unwind to height 0 carrying the
        // function results, then fall into the trailing Return that the
        // function-level End appends (patched in by the frame's patch
        // list).
        let frame = &ctrl[0];
        let d = Dest { target: u32::MAX, height: 0, arity: frame.br_arity };
        let frame = &mut ctrl[0];
        frame.patches.push(Patch::Table(op_idx, slot));
        return d;
    }
    let frame = &ctrl[idx];
    let d = Dest {
        target: frame.loop_start.unwrap_or(u32::MAX),
        height: frame.height,
        arity: frame.br_arity,
    };
    if frame.loop_start.is_none() {
        let frame = &mut ctrl[idx];
        frame.patches.push(Patch::Table(op_idx, slot));
    }
    d
}

// --- optimization pipeline (Max tier) ---

fn optimize(f: &mut FlatFunc, opt_level: u8) {
    // Iterate the peephole passes to a fixpoint (bounded), the honest way
    // optimizers spend their compile-time budget. Nops are compacted after
    // every round so multi-stage fusions (e.g. shift → indexed address →
    // fused load) become adjacent again for the next round.
    let max_iters = 2 + opt_level as usize * 3;
    for _ in 0..max_iters {
        let targets = jump_targets(&f.ops);
        let a = fold_constants(&mut f.ops, &targets);
        let b = fuse_locals(&mut f.ops, &targets);
        compact_nops(f);
        if !a && !b {
            break;
        }
    }
}

/// Set of op indices that are jump targets; peephole windows must not span
/// them (except at the window start, where the Nop prefix keeps semantics).
fn jump_targets(ops: &[Op]) -> Vec<bool> {
    let mut t = vec![false; ops.len() + 1];
    let mut mark = |x: u32| {
        if (x as usize) < t.len() {
            t[x as usize] = true;
        }
    };
    for op in ops {
        match op {
            Op::Jump(x) | Op::JumpIfZero(x) => mark(*x),
            Op::Br(d) | Op::BrIf(d) | Op::BrIfEqz(d) => mark(d.target),
            Op::BrIfCmpLL { dest, .. } | Op::BrIfCmpLK { dest, .. } | Op::BrIfCmp { dest, .. } => {
                mark(dest.target)
            }
            Op::BrTable { dests, default } => {
                for d in dests.iter() {
                    mark(d.target);
                }
                mark(default.target);
            }
            _ => {}
        }
    }
    t
}

fn window_clear(targets: &[bool], start: usize, len: usize) -> bool {
    (start + 1..start + len).all(|i| !targets[i])
}

/// Fold `const ⊕ const` into a single constant. Returns true if changed.
fn fold_constants(ops: &mut [Op], targets: &[bool]) -> bool {
    use Instr::*;
    let mut changed = false;
    let mut i = 0;
    while i + 2 < ops.len() {
        if !window_clear(targets, i, 3) {
            i += 1;
            continue;
        }
        let folded = match (&ops[i], &ops[i + 1], &ops[i + 2]) {
            (Op::Plain(I32Const(a)), Op::Plain(I32Const(b)), Op::Plain(op)) => match op {
                I32Add => Some(I32Const(a.wrapping_add(*b))),
                I32Sub => Some(I32Const(a.wrapping_sub(*b))),
                I32Mul => Some(I32Const(a.wrapping_mul(*b))),
                I32And => Some(I32Const(a & b)),
                I32Or => Some(I32Const(a | b)),
                I32Xor => Some(I32Const(a ^ b)),
                I32Shl => Some(I32Const(a.wrapping_shl(*b as u32))),
                _ => None,
            },
            (Op::Plain(I64Const(a)), Op::Plain(I64Const(b)), Op::Plain(op)) => match op {
                I64Add => Some(I64Const(a.wrapping_add(*b))),
                I64Sub => Some(I64Const(a.wrapping_sub(*b))),
                I64Mul => Some(I64Const(a.wrapping_mul(*b))),
                _ => None,
            },
            (Op::Plain(F64Const(a)), Op::Plain(F64Const(b)), Op::Plain(op)) => match op {
                F64Add => Some(F64Const(a + b)),
                F64Sub => Some(F64Const(a - b)),
                F64Mul => Some(F64Const(a * b)),
                _ => None,
            },
            _ => None,
        };
        if let Some(c) = folded {
            ops[i] = Op::Nop;
            ops[i + 1] = Op::Nop;
            ops[i + 2] = Op::Plain(c);
            changed = true;
            i += 3;
        } else {
            i += 1;
        }
    }
    changed
}

fn as_local(op: &Op) -> Option<u16> {
    match op {
        Op::Plain(Instr::LocalGet(i)) if *i <= u16::MAX as u32 => Some(*i as u16),
        _ => None,
    }
}

/// True for ops that pop nothing and push exactly one i32-compatible slot;
/// safe to commute with a preceding `i32.const` across a commutative add.
fn is_pure_push(op: &Op) -> bool {
    matches!(
        op,
        Op::Plain(Instr::LocalGet(_) | Instr::GlobalGet(_) | Instr::MemorySize)
            | Op::I32ShlLK(..)
            | Op::I32AddLK(..)
            | Op::I32AddShlLL { .. }
            | Op::I32LoadL { .. }
            | Op::I32LoadLSh { .. }
            | Op::I32LoadShlK { .. }
    )
}

/// Fuse common local/load/store/compare-branch patterns into
/// superinstructions. Returns true if changed.
fn fuse_locals(ops: &mut [Op], targets: &[bool]) -> bool {
    use Instr::*;
    let mut changed = false;
    let mut i = 0;
    while i < ops.len() {
        // 4-wide: local.get a ; i32.const k ; i32.add ; local.set a  =>  inc
        if i + 3 < ops.len() && window_clear(targets, i, 4) {
            if let (Some(a), Op::Plain(I32Const(k)), Op::Plain(I32Add), Op::Plain(LocalSet(d))) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2], &ops[i + 3])
            {
                if *d == a as u32 {
                    let (k, a) = (*k, a);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::I32IncL(a, k);
                    changed = true;
                    i += 4;
                    continue;
                }
            }
            // local.get a ; local.get b ; i32.cmp ; br_if  =>  fused branch
            if let (Some(a), Some(b), Op::Plain(cmp_i), Op::BrIf(d)) =
                (as_local(&ops[i]), as_local(&ops[i + 1]), &ops[i + 2], &ops[i + 3])
            {
                if let Some(cmp) = cmp_of(cmp_i) {
                    let (dest, a, b) = (*d, a, b);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::BrIfCmpLL { cmp, a, b, dest };
                    changed = true;
                    i += 4;
                    continue;
                }
            }
            // local.get a ; i32.const k ; i32.cmp ; br_if  =>  fused branch
            if let (Some(a), Op::Plain(I32Const(k)), Op::Plain(cmp_i), Op::BrIf(d)) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2], &ops[i + 3])
            {
                if let Some(cmp) = cmp_of(cmp_i) {
                    let (dest, a, k) = (*d, a, *k);
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = Op::Nop;
                    ops[i + 3] = Op::BrIfCmpLK { cmp, a, k, dest };
                    changed = true;
                    i += 4;
                    continue;
                }
            }
        }
        // 3-wide windows.
        if i + 2 < ops.len() && window_clear(targets, i, 3) {
            // local.get a ; local.get b ; binop / f64.store
            if let (Some(a), Some(b)) = (as_local(&ops[i]), as_local(&ops[i + 1])) {
                let fused = match &ops[i + 2] {
                    Op::Plain(I32Add) => Some(Op::I32AddLL(a, b)),
                    Op::Plain(I64Add) => Some(Op::I64AddLL(a, b)),
                    Op::Plain(F64Add) => Some(Op::F64AddLL(a, b)),
                    Op::Plain(F64Mul) => Some(Op::F64MulLL(a, b)),
                    Op::Plain(F64Sub) => Some(Op::F64SubLL(a, b)),
                    Op::Plain(F64Store(m)) => {
                        Some(Op::F64StoreLL { addr: a, val: b, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // local.get a ; i32.const k ; i32.add / i32.shl
            if let (Some(a), Op::Plain(I32Const(k))) = (as_local(&ops[i]), &ops[i + 1]) {
                let fused = match &ops[i + 2] {
                    Op::Plain(I32Add) => Some(Op::I32AddLK(a, *k)),
                    Op::Plain(I32Shl) => Some(Op::I32ShlLK(a, (*k & 31) as u8)),
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // local.get base ; (local.get idx << k) ; i32.add  =>  addr form
            if let (Some(base), Op::I32ShlLK(idx, shift), Op::Plain(I32Add)) =
                (as_local(&ops[i]), &ops[i + 1], &ops[i + 2])
            {
                let (idx, shift) = (*idx, *shift);
                ops[i] = Op::Nop;
                ops[i + 1] = Op::Nop;
                ops[i + 2] = Op::I32AddShlLL { base, idx, shift };
                changed = true;
                i += 3;
                continue;
            }
            // (idx << shift) ; (+wrap k) ; load  =>  biased scaled load
            // (the constant base of an indexed access; bias keeps the
            // guest's i32 wrap-around, the memarg offset stays separate).
            if let (Op::I32ShlLK(idx, shift), Op::I32AddK(k), load) =
                (&ops[i], &ops[i + 1], &ops[i + 2])
            {
                let (idx, shift, k) = (*idx, *shift, *k);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadShlK { idx, shift, bias: k, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadShlK { idx, shift, bias: k, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::Nop;
                    ops[i + 2] = op;
                    changed = true;
                    i += 3;
                    continue;
                }
            }
            // i32.const k ; <pure push> ; i32.add  =>  <pure push> ; +k
            if let (Op::Plain(I32Const(k)), x, Op::Plain(I32Add)) =
                (&ops[i], &ops[i + 1], &ops[i + 2])
            {
                if is_pure_push(x) {
                    let k = *k;
                    ops[i] = Op::Nop;
                    ops.swap(i + 1, i + 2);
                    ops[i + 1] = std::mem::replace(&mut ops[i + 2], Op::I32AddK(k));
                    // (swap + replace keeps the pure push first)
                    changed = true;
                    i += 3;
                    continue;
                }
            }
        }
        // 2-wide windows.
        if i + 1 < ops.len() && window_clear(targets, i, 2) {
            if let Some(a) = as_local(&ops[i]) {
                let fused = match &ops[i + 1] {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadL { local: a, bias: 0, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadL { local: a, bias: 0, offset: m.offset })
                    }
                    Op::Plain(F64Mul) => Some(Op::F64MulL(a)),
                    Op::Plain(F64Add) => Some(Op::F64AddL(a)),
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // (base + (idx << shift)) ; load  =>  one fused indexed load
            if let (Op::I32AddShlLL { base, idx, shift }, load) = (&ops[i], &ops[i + 1]) {
                let (base, idx, shift) = (*base, *idx, *shift);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadLSh { base, idx, shift, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadLSh { base, idx, shift, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // (idx << shift) ; load  =>  scaled load
            if let (Op::I32ShlLK(idx, shift), load) = (&ops[i], &ops[i + 1]) {
                let (idx, shift) = (*idx, *shift);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadShlK { idx, shift, bias: 0, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadShlK { idx, shift, bias: 0, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // (local +wrap k) ; load  =>  biased load. The constant joins
            // the *dynamic* address with i32 wrap-around — exactly the
            // guest's own add — never the non-wrapping memarg offset.
            if let (Op::I32AddLK(a, k), load) = (&ops[i], &ops[i + 1]) {
                let (a, k) = (*a, *k);
                let fused = match load {
                    Op::Plain(F64Load(m)) => {
                        Some(Op::F64LoadL { local: a, bias: k, offset: m.offset })
                    }
                    Op::Plain(I32Load(m)) => {
                        Some(Op::I32LoadL { local: a, bias: k, offset: m.offset })
                    }
                    _ => None,
                };
                if let Some(op) = fused {
                    ops[i] = Op::Nop;
                    ops[i + 1] = op;
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // +k1 ; +k2  =>  +(k1+k2)
            if let (Op::I32AddK(k1), Op::I32AddK(k2)) = (&ops[i], &ops[i + 1]) {
                let k = k1.wrapping_add(*k2);
                ops[i] = Op::Nop;
                ops[i + 1] = Op::I32AddK(k);
                changed = true;
                i += 2;
                continue;
            }
            // f64.mul ; f64.add  =>  fused multiply-add (both roundings kept)
            if let (Op::Plain(F64Mul), Op::Plain(F64Add)) = (&ops[i], &ops[i + 1]) {
                ops[i] = Op::Nop;
                ops[i + 1] = Op::F64MulAdd;
                changed = true;
                i += 2;
                continue;
            }
            // i32.cmp ; br_if  =>  fused compare-branch
            if let (Op::Plain(cmp_i), Op::BrIf(d)) = (&ops[i], &ops[i + 1]) {
                if let Some(cmp) = cmp_of(cmp_i) {
                    let dest = *d;
                    ops[i] = Op::Nop;
                    ops[i + 1] = Op::BrIfCmp { cmp, dest };
                    changed = true;
                    i += 2;
                    continue;
                }
            }
            // i32.eqz ; br_if  =>  branch-if-zero
            if let (Op::Plain(I32Eqz), Op::BrIf(d)) = (&ops[i], &ops[i + 1]) {
                let dest = *d;
                ops[i] = Op::Nop;
                ops[i + 1] = Op::BrIfEqz(dest);
                changed = true;
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    changed
}

/// Remove Nops, remapping all jump targets (jump threading lite).
fn compact_nops(f: &mut FlatFunc) {
    let ops = &f.ops;
    // new_index[i] = index of op i after compaction; for a Nop it points at
    // the next surviving op (safe: a Nop's only semantics is falling
    // through).
    let mut new_index = vec![0u32; ops.len() + 1];
    let mut count = 0u32;
    for (i, op) in ops.iter().enumerate() {
        new_index[i] = count;
        if !matches!(op, Op::Nop) {
            count += 1;
        }
    }
    new_index[ops.len()] = count;

    let remap = |t: u32| new_index[t as usize];
    let mut out = Vec::with_capacity(count as usize);
    for op in ops {
        let rewritten = match op {
            Op::Nop => continue,
            Op::Jump(t) => Op::Jump(remap(*t)),
            Op::JumpIfZero(t) => Op::JumpIfZero(remap(*t)),
            Op::Br(d) => Op::Br(Dest { target: remap(d.target), ..*d }),
            Op::BrIf(d) => Op::BrIf(Dest { target: remap(d.target), ..*d }),
            Op::BrIfEqz(d) => Op::BrIfEqz(Dest { target: remap(d.target), ..*d }),
            Op::BrIfCmpLL { cmp, a, b, dest } => Op::BrIfCmpLL {
                cmp: *cmp,
                a: *a,
                b: *b,
                dest: Dest { target: remap(dest.target), ..*dest },
            },
            Op::BrIfCmpLK { cmp, a, k, dest } => Op::BrIfCmpLK {
                cmp: *cmp,
                a: *a,
                k: *k,
                dest: Dest { target: remap(dest.target), ..*dest },
            },
            Op::BrIfCmp { cmp, dest } => Op::BrIfCmp {
                cmp: *cmp,
                dest: Dest { target: remap(dest.target), ..*dest },
            },
            Op::BrTable { dests, default } => Op::BrTable {
                dests: dests
                    .iter()
                    .map(|d| Dest { target: remap(d.target), ..*d })
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                default: Dest { target: remap(default.target), ..*default },
            },
            other => other.clone(),
        };
        out.push(rewritten);
    }
    f.ops = out;
}

// --- dense executable form ---

/// The dense executable opcode stream: one flat variant per operation,
/// immediates resolved (memory offsets inline, local indices replaced by
/// slot offsets), so the dispatch loop is a single flat match on the
/// discriminant. Derived from [`Op`] by [`FlatFunc::finalize`]; never
/// serialized.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOp {
    // Control.
    Jump(u32),
    JumpIfZero(u32),
    Br(Dest),
    BrIf(Dest),
    BrTable { dests: Box<[Dest]>, default: Dest },
    Return,
    Unreachable,
    Call(u32),
    CallIndirect { type_idx: u32 },

    // Parametric.
    Drop,
    Drop2,
    Select,
    Select2,

    // Variables (payload = slot offset).
    LocalGet(u32),
    LocalGet2(u32),
    LocalSet(u32),
    LocalSet2(u32),
    LocalTee(u32),
    LocalTee2(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    // Memory (payload = constant offset).
    I32Load(u32),
    I64Load(u32),
    F32Load(u32),
    F64Load(u32),
    I32Load8S(u32),
    I32Load8U(u32),
    I32Load16S(u32),
    I32Load16U(u32),
    I64Load8S(u32),
    I64Load8U(u32),
    I64Load16S(u32),
    I64Load16U(u32),
    I64Load32S(u32),
    I64Load32U(u32),
    V128Load(u32),
    I32Store(u32),
    I64Store(u32),
    F32Store(u32),
    F64Store(u32),
    I32Store8(u32),
    I32Store16(u32),
    I64Store8(u32),
    I64Store16(u32),
    I64Store32(u32),
    V128Store(u32),
    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,

    // Constants.
    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),
    V128Const(u128),

    // i32.
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    // i64.
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    // f32.
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    // f64.
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // Conversions.
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    Reinterpret, // all four reinterpretations are no-ops on raw slots
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,

    // SIMD.
    I32x4Splat,
    I64x2Splat,
    F32x4Splat,
    F64x2Splat,
    I32x4ExtractLane(u8),
    F32x4ExtractLane(u8),
    F64x2ExtractLane(u8),
    F64x2ReplaceLane(u8),
    I32x4Add,
    I32x4Sub,
    I32x4Mul,
    F32x4Add,
    F32x4Sub,
    F32x4Mul,
    F32x4Div,
    F64x2Add,
    F64x2Sub,
    F64x2Mul,
    F64x2Div,
    F64x2Eq,
    F64x2Ne,
    F64x2Lt,
    F64x2Gt,
    F64x2Le,
    F64x2Ge,
    V128And,
    V128Or,
    V128Xor,
    V128Not,
    V128AnyTrue,
    I32x4AllTrue,
    I32x4Bitmask,

    // Superinstructions (payloads = slot offsets).
    I32AddLL(u32, u32),
    I64AddLL(u32, u32),
    F64AddLL(u32, u32),
    F64MulLL(u32, u32),
    F64SubLL(u32, u32),
    I32AddLK(u32, i32),
    I32IncL(u32, i32),
    F64LoadL { local: u32, bias: i32, offset: u32 },
    I32LoadL { local: u32, bias: i32, offset: u32 },
    F64StoreLL { addr: u32, val: u32, offset: u32 },
    F64MulL(u32),
    F64AddL(u32),
    I32ShlLK(u32, u8),
    I32AddK(i32),
    I32AddShlLL { base: u32, idx: u32, shift: u8 },
    F64LoadLSh { base: u32, idx: u32, shift: u8, offset: u32 },
    I32LoadLSh { base: u32, idx: u32, shift: u8, offset: u32 },
    F64LoadShlK { idx: u32, shift: u8, bias: i32, offset: u32 },
    I32LoadShlK { idx: u32, shift: u8, bias: i32, offset: u32 },
    F64MulAdd,
    BrIfCmpLL { cmp: Cmp, a: u32, b: u32, dest: Dest },
    BrIfCmpLK { cmp: Cmp, a: u32, k: i32, dest: Dest },
    BrIfCmp { cmp: Cmp, dest: Dest },
    BrIfEqz(Dest),
}

#[inline]
fn slot_of(map: &[u32], i: u32) -> u32 {
    map[i as usize] >> 1
}

#[inline]
fn is_wide(map: &[u32], i: u32) -> bool {
    map[i as usize] & 1 != 0
}

/// Lower one serializable op to its dense executable form, resolving
/// local indices to slot offsets through `map`.
fn lower(op: &Op, map: &[u32]) -> ExecOp {
    use ExecOp as E;
    match op {
        Op::Plain(instr) => lower_plain(instr, map),
        Op::Jump(t) => E::Jump(*t),
        Op::JumpIfZero(t) => E::JumpIfZero(*t),
        Op::Br(d) => E::Br(*d),
        Op::BrIf(d) => E::BrIf(*d),
        Op::BrTable { dests, default } => {
            E::BrTable { dests: dests.clone(), default: *default }
        }
        Op::Return => E::Return,
        Op::Unreachable => E::Unreachable,
        // Never produced by compile() (compact_nops strips Nops) and
        // rejected by the cache loader, but lower defensively to a real
        // no-op rather than a trap.
        Op::Nop => E::Reinterpret,
        Op::Drop2 => E::Drop2,
        Op::Select2 => E::Select2,
        Op::I32AddLL(a, b) => E::I32AddLL(slot_of(map, *a as u32), slot_of(map, *b as u32)),
        Op::I64AddLL(a, b) => E::I64AddLL(slot_of(map, *a as u32), slot_of(map, *b as u32)),
        Op::F64AddLL(a, b) => E::F64AddLL(slot_of(map, *a as u32), slot_of(map, *b as u32)),
        Op::F64MulLL(a, b) => E::F64MulLL(slot_of(map, *a as u32), slot_of(map, *b as u32)),
        Op::F64SubLL(a, b) => E::F64SubLL(slot_of(map, *a as u32), slot_of(map, *b as u32)),
        Op::I32AddLK(a, k) => E::I32AddLK(slot_of(map, *a as u32), *k),
        Op::I32IncL(a, k) => E::I32IncL(slot_of(map, *a as u32), *k),
        Op::F64LoadL { local, bias, offset } => {
            E::F64LoadL { local: slot_of(map, *local as u32), bias: *bias, offset: *offset }
        }
        Op::I32LoadL { local, bias, offset } => {
            E::I32LoadL { local: slot_of(map, *local as u32), bias: *bias, offset: *offset }
        }
        Op::F64StoreLL { addr, val, offset } => E::F64StoreLL {
            addr: slot_of(map, *addr as u32),
            val: slot_of(map, *val as u32),
            offset: *offset,
        },
        Op::F64MulL(a) => E::F64MulL(slot_of(map, *a as u32)),
        Op::F64AddL(a) => E::F64AddL(slot_of(map, *a as u32)),
        Op::I32ShlLK(a, k) => E::I32ShlLK(slot_of(map, *a as u32), *k),
        Op::I32AddK(k) => E::I32AddK(*k),
        Op::I32AddShlLL { base, idx, shift } => E::I32AddShlLL {
            base: slot_of(map, *base as u32),
            idx: slot_of(map, *idx as u32),
            shift: *shift,
        },
        Op::F64LoadLSh { base, idx, shift, offset } => E::F64LoadLSh {
            base: slot_of(map, *base as u32),
            idx: slot_of(map, *idx as u32),
            shift: *shift,
            offset: *offset,
        },
        Op::I32LoadLSh { base, idx, shift, offset } => E::I32LoadLSh {
            base: slot_of(map, *base as u32),
            idx: slot_of(map, *idx as u32),
            shift: *shift,
            offset: *offset,
        },
        Op::F64LoadShlK { idx, shift, bias, offset } => E::F64LoadShlK {
            idx: slot_of(map, *idx as u32),
            shift: *shift,
            bias: *bias,
            offset: *offset,
        },
        Op::I32LoadShlK { idx, shift, bias, offset } => E::I32LoadShlK {
            idx: slot_of(map, *idx as u32),
            shift: *shift,
            bias: *bias,
            offset: *offset,
        },
        Op::F64MulAdd => E::F64MulAdd,
        Op::BrIfCmpLL { cmp, a, b, dest } => E::BrIfCmpLL {
            cmp: *cmp,
            a: slot_of(map, *a as u32),
            b: slot_of(map, *b as u32),
            dest: *dest,
        },
        Op::BrIfCmpLK { cmp, a, k, dest } => {
            E::BrIfCmpLK { cmp: *cmp, a: slot_of(map, *a as u32), k: *k, dest: *dest }
        }
        Op::BrIfCmp { cmp, dest } => E::BrIfCmp { cmp: *cmp, dest: *dest },
        Op::BrIfEqz(d) => E::BrIfEqz(*d),
    }
}

fn lower_plain(instr: &Instr, map: &[u32]) -> ExecOp {
    use ExecOp as E;
    use Instr as I;
    macro_rules! same {
        ($($n:ident),* $(,)?) => {
            match instr {
                $(I::$n => return E::$n,)*
                _ => {}
            }
        };
    }
    same!(
        MemorySize, MemoryGrow, MemoryCopy, MemoryFill, I32Eqz, I32Eq, I32Ne, I32LtS, I32LtU,
        I32GtS, I32GtU, I32LeS, I32LeU, I32GeS, I32GeU, I32Clz, I32Ctz, I32Popcnt, I32Add,
        I32Sub, I32Mul, I32DivS, I32DivU, I32RemS, I32RemU, I32And, I32Or, I32Xor, I32Shl,
        I32ShrS, I32ShrU, I32Rotl, I32Rotr, I64Eqz, I64Eq, I64Ne, I64LtS, I64LtU, I64GtS,
        I64GtU, I64LeS, I64LeU, I64GeS, I64GeU, I64Clz, I64Ctz, I64Popcnt, I64Add, I64Sub,
        I64Mul, I64DivS, I64DivU, I64RemS, I64RemU, I64And, I64Or, I64Xor, I64Shl, I64ShrS,
        I64ShrU, I64Rotl, I64Rotr, F32Eq, F32Ne, F32Lt, F32Gt, F32Le, F32Ge, F32Abs, F32Neg,
        F32Ceil, F32Floor, F32Trunc, F32Nearest, F32Sqrt, F32Add, F32Sub, F32Mul, F32Div,
        F32Min, F32Max, F32Copysign, F64Eq, F64Ne, F64Lt, F64Gt, F64Le, F64Ge, F64Abs,
        F64Neg, F64Ceil, F64Floor, F64Trunc, F64Nearest, F64Sqrt, F64Add, F64Sub, F64Mul,
        F64Div, F64Min, F64Max, F64Copysign, I32WrapI64, I32TruncF32S, I32TruncF32U,
        I32TruncF64S, I32TruncF64U, I64ExtendI32S, I64ExtendI32U, I64TruncF32S, I64TruncF32U,
        I64TruncF64S, I64TruncF64U, F32ConvertI32S, F32ConvertI32U, F32ConvertI64S,
        F32ConvertI64U, F32DemoteF64, F64ConvertI32S, F64ConvertI32U, F64ConvertI64S,
        F64ConvertI64U, F64PromoteF32, I32Extend8S, I32Extend16S, I64Extend8S, I64Extend16S,
        I64Extend32S, I32x4Splat, I64x2Splat, F32x4Splat, F64x2Splat, I32x4Add, I32x4Sub,
        I32x4Mul, F32x4Add, F32x4Sub, F32x4Mul, F32x4Div, F64x2Add, F64x2Sub, F64x2Mul,
        F64x2Div, F64x2Eq, F64x2Ne, F64x2Lt, F64x2Gt, F64x2Le, F64x2Ge, V128And, V128Or,
        V128Xor, V128Not, V128AnyTrue, I32x4AllTrue, I32x4Bitmask,
    );
    match instr {
        I::Drop => E::Drop,
        I::Select => E::Select,
        I::LocalGet(i) => {
            if is_wide(map, *i) {
                E::LocalGet2(slot_of(map, *i))
            } else {
                E::LocalGet(slot_of(map, *i))
            }
        }
        I::LocalSet(i) => {
            if is_wide(map, *i) {
                E::LocalSet2(slot_of(map, *i))
            } else {
                E::LocalSet(slot_of(map, *i))
            }
        }
        I::LocalTee(i) => {
            if is_wide(map, *i) {
                E::LocalTee2(slot_of(map, *i))
            } else {
                E::LocalTee(slot_of(map, *i))
            }
        }
        I::GlobalGet(i) => E::GlobalGet(*i),
        I::GlobalSet(i) => E::GlobalSet(*i),
        I::Call(f) => E::Call(*f),
        I::CallIndirect { type_idx, .. } => E::CallIndirect { type_idx: *type_idx },
        I::I32Load(m) => E::I32Load(m.offset),
        I::I64Load(m) => E::I64Load(m.offset),
        I::F32Load(m) => E::F32Load(m.offset),
        I::F64Load(m) => E::F64Load(m.offset),
        I::I32Load8S(m) => E::I32Load8S(m.offset),
        I::I32Load8U(m) => E::I32Load8U(m.offset),
        I::I32Load16S(m) => E::I32Load16S(m.offset),
        I::I32Load16U(m) => E::I32Load16U(m.offset),
        I::I64Load8S(m) => E::I64Load8S(m.offset),
        I::I64Load8U(m) => E::I64Load8U(m.offset),
        I::I64Load16S(m) => E::I64Load16S(m.offset),
        I::I64Load16U(m) => E::I64Load16U(m.offset),
        I::I64Load32S(m) => E::I64Load32S(m.offset),
        I::I64Load32U(m) => E::I64Load32U(m.offset),
        I::V128Load(m) => E::V128Load(m.offset),
        I::I32Store(m) => E::I32Store(m.offset),
        I::I64Store(m) => E::I64Store(m.offset),
        I::F32Store(m) => E::F32Store(m.offset),
        I::F64Store(m) => E::F64Store(m.offset),
        I::I32Store8(m) => E::I32Store8(m.offset),
        I::I32Store16(m) => E::I32Store16(m.offset),
        I::I64Store8(m) => E::I64Store8(m.offset),
        I::I64Store16(m) => E::I64Store16(m.offset),
        I::I64Store32(m) => E::I64Store32(m.offset),
        I::V128Store(m) => E::V128Store(m.offset),
        I::I32Const(v) => E::I32Const(*v),
        I::I64Const(v) => E::I64Const(*v),
        I::F32Const(v) => E::F32Const(*v),
        I::F64Const(v) => E::F64Const(*v),
        I::V128Const(b) => E::V128Const(u128::from_le_bytes(*b)),
        I::I32ReinterpretF32 | I::I64ReinterpretF64 | I::F32ReinterpretI32
        | I::F64ReinterpretI64 => E::Reinterpret,
        I::I32x4ExtractLane(l) => E::I32x4ExtractLane(*l),
        I::F32x4ExtractLane(l) => E::F32x4ExtractLane(*l),
        I::F64x2ExtractLane(l) => E::F64x2ExtractLane(*l),
        I::F64x2ReplaceLane(l) => E::F64x2ReplaceLane(*l),
        I::Nop => E::Reinterpret, // flatten never emits Plain(Nop); be safe
        other => unreachable!("control instruction {other:?} reached lowering"),
    }
}

// --- execution ---

/// A suspended caller activation in the flat-IR engine.
struct Frame {
    defined_idx: u32,
    /// ip to resume at (the op after the call).
    ret_ip: u32,
    locals_base: u32,
}

fn flat(bodies: &[CompiledBody], defined_idx: usize) -> &FlatFunc {
    match &bodies[defined_idx] {
        CompiledBody::Flat(f) => f,
        CompiledBody::Interp(_) => unreachable!("flat tier expected"),
    }
}

/// Execute flat-IR function `defined_idx` with `args` (already as slots).
pub(crate) fn call(
    inst: &mut Instance,
    defined_idx: usize,
    args: &[Slot],
) -> Result<Vec<Slot>, Trap> {
    let mut stack = inst.take_stack();
    stack.extend_from_slice(args);
    let result = run(inst, &mut stack, defined_idx);
    let out = result.map(|result_slots| {
        let at = stack.len() - result_slots;
        stack.split_off(at)
    });
    inst.put_stack(stack);
    out
}

#[inline]
fn unwind(stack: &mut Vec<Slot>, opbase: usize, d: &Dest) {
    let height = opbase + d.height as usize;
    let arity = d.arity as usize;
    if arity == 0 {
        stack.truncate(height);
        return;
    }
    // Move the carried slots down over the unwound region, in place.
    let from = stack.len() - arity;
    if from != height {
        stack.copy_within(from.., height);
    }
    stack.truncate(height + arity);
}

fn run(inst: &mut Instance, stack: &mut Vec<Slot>, defined_idx: usize) -> Result<usize, Trap> {
    let bodies = Arc::clone(&inst.bodies);
    let imported = inst.host_funcs.len() as u32;

    let mut frames: Vec<Frame> = Vec::new();
    let mut f = flat(&bodies, defined_idx);
    let mut cur_idx = defined_idx as u32;
    let mut locals_base = stack.len() - f.param_slots as usize;
    stack.resize(locals_base + f.n_local_slots as usize, Slot::ZERO);
    let mut opbase = locals_base + f.n_local_slots as usize;
    let mut ip = 0usize;
    let mut limit_check = 0u32;

    macro_rules! lg {
        ($slot:expr) => {
            stack[locals_base + $slot as usize]
        };
    }
    macro_rules! pop {
        () => {
            exec::pop(stack)
        };
    }
    macro_rules! push {
        ($v:expr) => {
            stack.push($v)
        };
    }
    macro_rules! top {
        () => {{
            let l = stack.len() - 1;
            &mut stack[l]
        }};
    }
    macro_rules! bin {
        ($read:ident, $wrap:path, $f:expr) => {{
            let b = pop!().$read();
            let a = pop!().$read();
            push!($wrap($f(a, b)));
            ip += 1;
        }};
    }
    macro_rules! un {
        ($read:ident, $wrap:path, $f:expr) => {{
            let v = pop!().$read();
            push!($wrap($f(v)));
            ip += 1;
        }};
    }
    macro_rules! vbin {
        ($f:expr) => {{
            let b = exec::pop_v128(stack);
            let a = exec::pop_v128(stack);
            exec::push_v128(stack, $f(a, b));
            ip += 1;
        }};
    }
    macro_rules! load {
        ($off:expr, $n:expr, $raw:ty, $conv:ty, $wrap:path) => {{
            let addr = pop!().u32();
            let start = inst.memory.effective(addr, $off, $n)?;
            let raw = <$raw>::from_le_bytes(inst.memory.load::<{ $n as usize }>(start));
            push!($wrap(raw as $conv));
            ip += 1;
        }};
    }
    macro_rules! store {
        ($off:expr, $n:expr, $read:ident, $cast:ty) => {{
            let val = pop!().$read();
            let addr = pop!().u32();
            let start = inst.memory.effective(addr, $off, $n)?;
            inst.memory.store(start, &((val as $cast).to_le_bytes()));
            ip += 1;
        }};
    }
    macro_rules! take_branch {
        ($d:expr) => {{
            let d = $d;
            unwind(stack, opbase, d);
            ip = d.target as usize;
        }};
    }
    macro_rules! do_return {
        () => {{
            let result_slots = f.result_slots as usize;
            let at = stack.len() - result_slots;
            stack.copy_within(at.., locals_base);
            stack.truncate(locals_base + result_slots);
            match frames.pop() {
                None => return Ok(result_slots),
                Some(fr) => {
                    cur_idx = fr.defined_idx;
                    f = flat(&bodies, fr.defined_idx as usize);
                    locals_base = fr.locals_base as usize;
                    opbase = locals_base + f.n_local_slots as usize;
                    ip = fr.ret_ip as usize;
                    continue;
                }
            }
        }};
    }
    macro_rules! do_call {
        ($func_idx:expr) => {{
            let func_idx: u32 = $func_idx;
            if frames.len() + inst.depth + 1 >= inst.limits.max_call_depth {
                return Err(Trap::StackExhausted);
            }
            if func_idx < imported {
                let n_args = inst.host_arg_slots[func_idx as usize] as usize;
                let at = stack.len() - n_args;
                let hf = Arc::clone(&inst.host_funcs[func_idx as usize]);
                inst.depth += 1;
                let results = hf(inst, &stack[at..]);
                inst.depth -= 1;
                let results = results?;
                stack.truncate(at);
                stack.extend_from_slice(&results);
                ip += 1;
            } else {
                let defined = (func_idx - imported) as usize;
                frames.push(Frame {
                    defined_idx: cur_idx,
                    ret_ip: ip as u32 + 1,
                    locals_base: locals_base as u32,
                });
                f = flat(&bodies, defined);
                cur_idx = defined as u32;
                locals_base = stack.len() - f.param_slots as usize;
                stack.resize(locals_base + f.n_local_slots as usize, Slot::ZERO);
                opbase = locals_base + f.n_local_slots as usize;
                ip = 0;
            }
        }};
    }

    loop {
        // Amortized stack-limit check: growth per op is O(1).
        limit_check += 1;
        if limit_check >= 1024 {
            limit_check = 0;
            if stack.len() > inst.limits.max_value_stack {
                return Err(Trap::StackExhausted);
            }
        }
        use ExecOp as E;
        match &f.code[ip] {
            E::Jump(t) => ip = *t as usize,
            E::JumpIfZero(t) => {
                let c = pop!().i32();
                ip = if c == 0 { *t as usize } else { ip + 1 };
            }
            E::Br(d) => take_branch!(d),
            E::BrIf(d) => {
                let c = pop!().i32();
                if c != 0 {
                    take_branch!(d);
                } else {
                    ip += 1;
                }
            }
            E::BrTable { dests, default } => {
                let idx = pop!().u32() as usize;
                let d = dests.get(idx).unwrap_or(default);
                take_branch!(d);
            }
            E::Return => do_return!(),
            E::Unreachable => return Err(Trap::Unreachable),
            E::Call(func_idx) => do_call!(*func_idx),
            E::CallIndirect { type_idx } => {
                let slot = pop!().u32();
                let func_idx = inst.resolve_indirect(slot, *type_idx)?;
                do_call!(func_idx)
            }

            E::Drop => {
                pop!();
                ip += 1;
            }
            E::Drop2 => {
                pop!();
                pop!();
                ip += 1;
            }
            E::Select => {
                let c = pop!().i32();
                let b = pop!();
                let a = pop!();
                push!(if c != 0 { a } else { b });
                ip += 1;
            }
            E::Select2 => {
                let c = pop!().i32();
                let b = exec::pop_v128(stack);
                let a = exec::pop_v128(stack);
                exec::push_v128(stack, if c != 0 { a } else { b });
                ip += 1;
            }

            E::LocalGet(s) => {
                let v = lg!(*s);
                push!(v);
                ip += 1;
            }
            E::LocalGet2(s) => {
                let lo = lg!(*s);
                let hi = lg!(*s + 1);
                push!(lo);
                push!(hi);
                ip += 1;
            }
            E::LocalSet(s) => {
                lg!(*s) = pop!();
                ip += 1;
            }
            E::LocalSet2(s) => {
                lg!(*s + 1) = pop!();
                lg!(*s) = pop!();
                ip += 1;
            }
            E::LocalTee(s) => {
                let l = stack.len() - 1;
                lg!(*s) = stack[l];
                ip += 1;
            }
            E::LocalTee2(s) => {
                let l = stack.len();
                lg!(*s) = stack[l - 2];
                lg!(*s + 1) = stack[l - 1];
                ip += 1;
            }
            E::GlobalGet(i) => {
                push!(inst.globals[*i as usize]);
                ip += 1;
            }
            E::GlobalSet(i) => {
                inst.globals[*i as usize] = pop!();
                ip += 1;
            }

            E::I32Load(o) => load!(*o, 4, u32, u32, Slot::from_u32),
            E::I64Load(o) => load!(*o, 8, u64, u64, Slot::from_u64),
            E::F32Load(o) => load!(*o, 4, u32, u32, Slot::from_u32),
            E::F64Load(o) => load!(*o, 8, u64, u64, Slot::from_u64),
            E::I32Load8S(o) => load!(*o, 1, i8, i32, Slot::from_i32),
            E::I32Load8U(o) => load!(*o, 1, u8, i32, Slot::from_i32),
            E::I32Load16S(o) => load!(*o, 2, i16, i32, Slot::from_i32),
            E::I32Load16U(o) => load!(*o, 2, u16, i32, Slot::from_i32),
            E::I64Load8S(o) => load!(*o, 1, i8, i64, Slot::from_i64),
            E::I64Load8U(o) => load!(*o, 1, u8, i64, Slot::from_i64),
            E::I64Load16S(o) => load!(*o, 2, i16, i64, Slot::from_i64),
            E::I64Load16U(o) => load!(*o, 2, u16, i64, Slot::from_i64),
            E::I64Load32S(o) => load!(*o, 4, i32, i64, Slot::from_i64),
            E::I64Load32U(o) => load!(*o, 4, u32, i64, Slot::from_i64),
            E::V128Load(o) => {
                let addr = pop!().u32();
                let start = inst.memory.effective(addr, *o, 16)?;
                exec::push_v128(stack, u128::from_le_bytes(inst.memory.load::<16>(start)));
                ip += 1;
            }
            E::I32Store(o) => store!(*o, 4, i32, u32),
            E::I64Store(o) => store!(*o, 8, i64, u64),
            E::F32Store(o) => store!(*o, 4, u32, u32),
            E::F64Store(o) => store!(*o, 8, u64, u64),
            E::I32Store8(o) => store!(*o, 1, i32, u8),
            E::I32Store16(o) => store!(*o, 2, i32, u16),
            E::I64Store8(o) => store!(*o, 1, i64, u8),
            E::I64Store16(o) => store!(*o, 2, i64, u16),
            E::I64Store32(o) => store!(*o, 4, i64, u32),
            E::V128Store(o) => {
                let val = exec::pop_v128(stack);
                let addr = pop!().u32();
                let start = inst.memory.effective(addr, *o, 16)?;
                inst.memory.store(start, &val.to_le_bytes());
                ip += 1;
            }
            E::MemorySize => {
                push!(Slot::from_i32(inst.memory.size_pages() as i32));
                ip += 1;
            }
            E::MemoryGrow => {
                let delta = pop!().i32();
                let r = if delta < 0 { -1 } else { inst.memory.grow(delta as u32) };
                push!(Slot::from_i32(r));
                ip += 1;
            }
            E::MemoryCopy => {
                let len = pop!().u32();
                let src = pop!().u32();
                let dst = pop!().u32();
                inst.memory.copy_within(dst, src, len)?;
                ip += 1;
            }
            E::MemoryFill => {
                let len = pop!().u32();
                let val = pop!().i32() as u8;
                let dst = pop!().u32();
                inst.memory.fill(dst, val, len)?;
                ip += 1;
            }

            E::I32Const(v) => {
                push!(Slot::from_i32(*v));
                ip += 1;
            }
            E::I64Const(v) => {
                push!(Slot::from_i64(*v));
                ip += 1;
            }
            E::F32Const(v) => {
                push!(Slot::from_f32(*v));
                ip += 1;
            }
            E::F64Const(v) => {
                push!(Slot::from_f64(*v));
                ip += 1;
            }
            E::V128Const(v) => {
                exec::push_v128(stack, *v);
                ip += 1;
            }

            E::I32Eqz => un!(i32, Slot::from_bool, |v| v == 0),
            E::I32Eq => bin!(i32, Slot::from_bool, |a, b| a == b),
            E::I32Ne => bin!(i32, Slot::from_bool, |a, b| a != b),
            E::I32LtS => bin!(i32, Slot::from_bool, |a, b| a < b),
            E::I32LtU => bin!(u32, Slot::from_bool, |a, b| a < b),
            E::I32GtS => bin!(i32, Slot::from_bool, |a, b| a > b),
            E::I32GtU => bin!(u32, Slot::from_bool, |a, b| a > b),
            E::I32LeS => bin!(i32, Slot::from_bool, |a, b| a <= b),
            E::I32LeU => bin!(u32, Slot::from_bool, |a, b| a <= b),
            E::I32GeS => bin!(i32, Slot::from_bool, |a, b| a >= b),
            E::I32GeU => bin!(u32, Slot::from_bool, |a, b| a >= b),
            E::I32Clz => un!(i32, Slot::from_i32, |v: i32| v.leading_zeros() as i32),
            E::I32Ctz => un!(i32, Slot::from_i32, |v: i32| v.trailing_zeros() as i32),
            E::I32Popcnt => un!(i32, Slot::from_i32, |v: i32| v.count_ones() as i32),
            E::I32Add => bin!(i32, Slot::from_i32, i32::wrapping_add),
            E::I32Sub => bin!(i32, Slot::from_i32, i32::wrapping_sub),
            E::I32Mul => bin!(i32, Slot::from_i32, i32::wrapping_mul),
            E::I32DivS => {
                let b = pop!().i32();
                let a = pop!().i32();
                push!(Slot::from_i32(exec::i32_div_s(a, b)?));
                ip += 1;
            }
            E::I32DivU => {
                let b = pop!().i32();
                let a = pop!().i32();
                push!(Slot::from_i32(exec::i32_div_u(a, b)?));
                ip += 1;
            }
            E::I32RemS => {
                let b = pop!().i32();
                let a = pop!().i32();
                push!(Slot::from_i32(exec::i32_rem_s(a, b)?));
                ip += 1;
            }
            E::I32RemU => {
                let b = pop!().i32();
                let a = pop!().i32();
                push!(Slot::from_i32(exec::i32_rem_u(a, b)?));
                ip += 1;
            }
            E::I32And => bin!(i32, Slot::from_i32, |a, b| a & b),
            E::I32Or => bin!(i32, Slot::from_i32, |a, b| a | b),
            E::I32Xor => bin!(i32, Slot::from_i32, |a, b| a ^ b),
            E::I32Shl => bin!(i32, Slot::from_i32, |a: i32, b| a.wrapping_shl(b as u32)),
            E::I32ShrS => bin!(i32, Slot::from_i32, |a: i32, b| a.wrapping_shr(b as u32)),
            E::I32ShrU => {
                bin!(i32, Slot::from_i32, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32)
            }
            E::I32Rotl => bin!(i32, Slot::from_i32, |a: i32, b| a.rotate_left((b as u32) & 31)),
            E::I32Rotr => bin!(i32, Slot::from_i32, |a: i32, b| a.rotate_right((b as u32) & 31)),

            E::I64Eqz => un!(i64, Slot::from_bool, |v| v == 0),
            E::I64Eq => bin!(i64, Slot::from_bool, |a, b| a == b),
            E::I64Ne => bin!(i64, Slot::from_bool, |a, b| a != b),
            E::I64LtS => bin!(i64, Slot::from_bool, |a, b| a < b),
            E::I64LtU => bin!(u64, Slot::from_bool, |a, b| a < b),
            E::I64GtS => bin!(i64, Slot::from_bool, |a, b| a > b),
            E::I64GtU => bin!(u64, Slot::from_bool, |a, b| a > b),
            E::I64LeS => bin!(i64, Slot::from_bool, |a, b| a <= b),
            E::I64LeU => bin!(u64, Slot::from_bool, |a, b| a <= b),
            E::I64GeS => bin!(i64, Slot::from_bool, |a, b| a >= b),
            E::I64GeU => bin!(u64, Slot::from_bool, |a, b| a >= b),
            E::I64Clz => un!(i64, Slot::from_i64, |v: i64| v.leading_zeros() as i64),
            E::I64Ctz => un!(i64, Slot::from_i64, |v: i64| v.trailing_zeros() as i64),
            E::I64Popcnt => un!(i64, Slot::from_i64, |v: i64| v.count_ones() as i64),
            E::I64Add => bin!(i64, Slot::from_i64, i64::wrapping_add),
            E::I64Sub => bin!(i64, Slot::from_i64, i64::wrapping_sub),
            E::I64Mul => bin!(i64, Slot::from_i64, i64::wrapping_mul),
            E::I64DivS => {
                let b = pop!().i64();
                let a = pop!().i64();
                push!(Slot::from_i64(exec::i64_div_s(a, b)?));
                ip += 1;
            }
            E::I64DivU => {
                let b = pop!().i64();
                let a = pop!().i64();
                push!(Slot::from_i64(exec::i64_div_u(a, b)?));
                ip += 1;
            }
            E::I64RemS => {
                let b = pop!().i64();
                let a = pop!().i64();
                push!(Slot::from_i64(exec::i64_rem_s(a, b)?));
                ip += 1;
            }
            E::I64RemU => {
                let b = pop!().i64();
                let a = pop!().i64();
                push!(Slot::from_i64(exec::i64_rem_u(a, b)?));
                ip += 1;
            }
            E::I64And => bin!(i64, Slot::from_i64, |a, b| a & b),
            E::I64Or => bin!(i64, Slot::from_i64, |a, b| a | b),
            E::I64Xor => bin!(i64, Slot::from_i64, |a, b| a ^ b),
            E::I64Shl => bin!(i64, Slot::from_i64, |a: i64, b| a.wrapping_shl(b as u32)),
            E::I64ShrS => bin!(i64, Slot::from_i64, |a: i64, b| a.wrapping_shr(b as u32)),
            E::I64ShrU => {
                bin!(i64, Slot::from_i64, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64)
            }
            E::I64Rotl => {
                bin!(i64, Slot::from_i64, |a: i64, b| a.rotate_left((b as u64 & 63) as u32))
            }
            E::I64Rotr => {
                bin!(i64, Slot::from_i64, |a: i64, b| a.rotate_right((b as u64 & 63) as u32))
            }

            E::F32Eq => bin!(f32, Slot::from_bool, |a, b| a == b),
            E::F32Ne => bin!(f32, Slot::from_bool, |a, b| a != b),
            E::F32Lt => bin!(f32, Slot::from_bool, |a, b| a < b),
            E::F32Gt => bin!(f32, Slot::from_bool, |a, b| a > b),
            E::F32Le => bin!(f32, Slot::from_bool, |a, b| a <= b),
            E::F32Ge => bin!(f32, Slot::from_bool, |a, b| a >= b),
            E::F32Abs => un!(f32, Slot::from_f32, f32::abs),
            E::F32Neg => un!(f32, Slot::from_f32, |v: f32| -v),
            E::F32Ceil => un!(f32, Slot::from_f32, f32::ceil),
            E::F32Floor => un!(f32, Slot::from_f32, f32::floor),
            E::F32Trunc => un!(f32, Slot::from_f32, f32::trunc),
            E::F32Nearest => un!(f32, Slot::from_f32, exec::nearest32),
            E::F32Sqrt => un!(f32, Slot::from_f32, f32::sqrt),
            E::F32Add => bin!(f32, Slot::from_f32, |a, b| a + b),
            E::F32Sub => bin!(f32, Slot::from_f32, |a, b| a - b),
            E::F32Mul => bin!(f32, Slot::from_f32, |a, b| a * b),
            E::F32Div => bin!(f32, Slot::from_f32, |a, b| a / b),
            E::F32Min => bin!(f32, Slot::from_f32, exec::fmin32),
            E::F32Max => bin!(f32, Slot::from_f32, exec::fmax32),
            E::F32Copysign => bin!(f32, Slot::from_f32, f32::copysign),

            E::F64Eq => bin!(f64, Slot::from_bool, |a, b| a == b),
            E::F64Ne => bin!(f64, Slot::from_bool, |a, b| a != b),
            E::F64Lt => bin!(f64, Slot::from_bool, |a, b| a < b),
            E::F64Gt => bin!(f64, Slot::from_bool, |a, b| a > b),
            E::F64Le => bin!(f64, Slot::from_bool, |a, b| a <= b),
            E::F64Ge => bin!(f64, Slot::from_bool, |a, b| a >= b),
            E::F64Abs => un!(f64, Slot::from_f64, f64::abs),
            E::F64Neg => un!(f64, Slot::from_f64, |v: f64| -v),
            E::F64Ceil => un!(f64, Slot::from_f64, f64::ceil),
            E::F64Floor => un!(f64, Slot::from_f64, f64::floor),
            E::F64Trunc => un!(f64, Slot::from_f64, f64::trunc),
            E::F64Nearest => un!(f64, Slot::from_f64, exec::nearest64),
            E::F64Sqrt => un!(f64, Slot::from_f64, f64::sqrt),
            E::F64Add => bin!(f64, Slot::from_f64, |a, b| a + b),
            E::F64Sub => bin!(f64, Slot::from_f64, |a, b| a - b),
            E::F64Mul => bin!(f64, Slot::from_f64, |a, b| a * b),
            E::F64Div => bin!(f64, Slot::from_f64, |a, b| a / b),
            E::F64Min => bin!(f64, Slot::from_f64, exec::fmin64),
            E::F64Max => bin!(f64, Slot::from_f64, exec::fmax64),
            E::F64Copysign => bin!(f64, Slot::from_f64, f64::copysign),

            E::I32WrapI64 => un!(i64, Slot::from_i32, |v| v as i32),
            E::I32TruncF32S => {
                let v = pop!().f32();
                push!(Slot::from_i32(exec::trunc_f64_to_i32(v as f64)?));
                ip += 1;
            }
            E::I32TruncF32U => {
                let v = pop!().f32();
                push!(Slot::from_i32(exec::trunc_f64_to_u32(v as f64)? as i32));
                ip += 1;
            }
            E::I32TruncF64S => {
                let v = pop!().f64();
                push!(Slot::from_i32(exec::trunc_f64_to_i32(v)?));
                ip += 1;
            }
            E::I32TruncF64U => {
                let v = pop!().f64();
                push!(Slot::from_i32(exec::trunc_f64_to_u32(v)? as i32));
                ip += 1;
            }
            E::I64ExtendI32S => un!(i32, Slot::from_i64, |v| v as i64),
            E::I64ExtendI32U => un!(i32, Slot::from_i64, |v| v as u32 as i64),
            E::I64TruncF32S => {
                let v = pop!().f32();
                push!(Slot::from_i64(exec::trunc_f64_to_i64(v as f64)?));
                ip += 1;
            }
            E::I64TruncF32U => {
                let v = pop!().f32();
                push!(Slot::from_i64(exec::trunc_f64_to_u64(v as f64)? as i64));
                ip += 1;
            }
            E::I64TruncF64S => {
                let v = pop!().f64();
                push!(Slot::from_i64(exec::trunc_f64_to_i64(v)?));
                ip += 1;
            }
            E::I64TruncF64U => {
                let v = pop!().f64();
                push!(Slot::from_i64(exec::trunc_f64_to_u64(v)? as i64));
                ip += 1;
            }
            E::F32ConvertI32S => un!(i32, Slot::from_f32, |v| v as f32),
            E::F32ConvertI32U => un!(i32, Slot::from_f32, |v| v as u32 as f32),
            E::F32ConvertI64S => un!(i64, Slot::from_f32, |v| v as f32),
            E::F32ConvertI64U => un!(i64, Slot::from_f32, |v| v as u64 as f32),
            E::F32DemoteF64 => un!(f64, Slot::from_f32, |v| v as f32),
            E::F64ConvertI32S => un!(i32, Slot::from_f64, |v| v as f64),
            E::F64ConvertI32U => un!(i32, Slot::from_f64, |v| v as u32 as f64),
            E::F64ConvertI64S => un!(i64, Slot::from_f64, |v| v as f64),
            E::F64ConvertI64U => un!(i64, Slot::from_f64, |v| v as u64 as f64),
            E::F64PromoteF32 => un!(f32, Slot::from_f64, |v| v as f64),
            E::Reinterpret => ip += 1,
            E::I32Extend8S => un!(i32, Slot::from_i32, |v| v as i8 as i32),
            E::I32Extend16S => un!(i32, Slot::from_i32, |v| v as i16 as i32),
            E::I64Extend8S => un!(i64, Slot::from_i64, |v| v as i8 as i64),
            E::I64Extend16S => un!(i64, Slot::from_i64, |v| v as i16 as i64),
            E::I64Extend32S => un!(i64, Slot::from_i64, |v| v as i32 as i64),

            E::I32x4Splat => {
                let v = pop!().i32();
                exec::push_v128(stack, exec::i32x4_to_v([v; 4]));
                ip += 1;
            }
            E::I64x2Splat => {
                let v = pop!().u64();
                exec::push_v128(stack, (v as u128) | ((v as u128) << 64));
                ip += 1;
            }
            E::F32x4Splat => {
                let v = pop!().f32();
                exec::push_v128(stack, exec::f32x4_to_v([v; 4]));
                ip += 1;
            }
            E::F64x2Splat => {
                let v = pop!().f64();
                exec::push_v128(stack, exec::f64x2_to_v([v; 2]));
                ip += 1;
            }
            E::I32x4ExtractLane(l) => {
                let v = exec::pop_v128(stack);
                push!(Slot::from_i32(exec::v_to_i32x4(v)[*l as usize]));
                ip += 1;
            }
            E::F32x4ExtractLane(l) => {
                let v = exec::pop_v128(stack);
                push!(Slot::from_f32(exec::v_to_f32x4(v)[*l as usize]));
                ip += 1;
            }
            E::F64x2ExtractLane(l) => {
                let v = exec::pop_v128(stack);
                push!(Slot::from_f64(exec::v_to_f64x2(v)[*l as usize]));
                ip += 1;
            }
            E::F64x2ReplaceLane(l) => {
                let x = pop!().f64();
                let v = exec::pop_v128(stack);
                let mut lanes = exec::v_to_f64x2(v);
                lanes[*l as usize] = x;
                exec::push_v128(stack, exec::f64x2_to_v(lanes));
                ip += 1;
            }
            E::I32x4Add => vbin!(|a, b| exec::i32x4_bin(a, b, i32::wrapping_add)),
            E::I32x4Sub => vbin!(|a, b| exec::i32x4_bin(a, b, i32::wrapping_sub)),
            E::I32x4Mul => vbin!(|a, b| exec::i32x4_bin(a, b, i32::wrapping_mul)),
            E::F32x4Add => vbin!(|a, b| exec::f32x4_bin(a, b, |x, y| x + y)),
            E::F32x4Sub => vbin!(|a, b| exec::f32x4_bin(a, b, |x, y| x - y)),
            E::F32x4Mul => vbin!(|a, b| exec::f32x4_bin(a, b, |x, y| x * y)),
            E::F32x4Div => vbin!(|a, b| exec::f32x4_bin(a, b, |x, y| x / y)),
            E::F64x2Add => vbin!(|a, b| exec::f64x2_bin(a, b, |x, y| x + y)),
            E::F64x2Sub => vbin!(|a, b| exec::f64x2_bin(a, b, |x, y| x - y)),
            E::F64x2Mul => vbin!(|a, b| exec::f64x2_bin(a, b, |x, y| x * y)),
            E::F64x2Div => vbin!(|a, b| exec::f64x2_bin(a, b, |x, y| x / y)),
            E::F64x2Eq => vbin!(|a, b| exec::f64x2_cmp(a, b, |x, y| x == y)),
            E::F64x2Ne => vbin!(|a, b| exec::f64x2_cmp(a, b, |x, y| x != y)),
            E::F64x2Lt => vbin!(|a, b| exec::f64x2_cmp(a, b, |x, y| x < y)),
            E::F64x2Gt => vbin!(|a, b| exec::f64x2_cmp(a, b, |x, y| x > y)),
            E::F64x2Le => vbin!(|a, b| exec::f64x2_cmp(a, b, |x, y| x <= y)),
            E::F64x2Ge => vbin!(|a, b| exec::f64x2_cmp(a, b, |x, y| x >= y)),
            E::V128And => vbin!(|a, b| a & b),
            E::V128Or => vbin!(|a, b| a | b),
            E::V128Xor => vbin!(|a, b| a ^ b),
            E::V128Not => {
                let a = exec::pop_v128(stack);
                exec::push_v128(stack, !a);
                ip += 1;
            }
            E::V128AnyTrue => {
                let a = exec::pop_v128(stack);
                push!(Slot::from_bool(a != 0));
                ip += 1;
            }
            E::I32x4AllTrue => {
                let a = exec::v_to_i32x4(exec::pop_v128(stack));
                push!(Slot::from_bool(a.iter().all(|&l| l != 0)));
                ip += 1;
            }
            E::I32x4Bitmask => {
                let a = exec::v_to_i32x4(exec::pop_v128(stack));
                let mut m = 0;
                for (i, l) in a.iter().enumerate() {
                    if *l < 0 {
                        m |= 1 << i;
                    }
                }
                push!(Slot::from_i32(m));
                ip += 1;
            }

            // --- superinstructions ---
            E::I32AddLL(a, b) => {
                let r = lg!(*a).i32().wrapping_add(lg!(*b).i32());
                push!(Slot::from_i32(r));
                ip += 1;
            }
            E::I64AddLL(a, b) => {
                let r = lg!(*a).i64().wrapping_add(lg!(*b).i64());
                push!(Slot::from_i64(r));
                ip += 1;
            }
            E::F64AddLL(a, b) => {
                push!(Slot::from_f64(lg!(*a).f64() + lg!(*b).f64()));
                ip += 1;
            }
            E::F64MulLL(a, b) => {
                push!(Slot::from_f64(lg!(*a).f64() * lg!(*b).f64()));
                ip += 1;
            }
            E::F64SubLL(a, b) => {
                push!(Slot::from_f64(lg!(*a).f64() - lg!(*b).f64()));
                ip += 1;
            }
            E::I32AddLK(a, k) => {
                push!(Slot::from_i32(lg!(*a).i32().wrapping_add(*k)));
                ip += 1;
            }
            E::I32IncL(a, k) => {
                let v = lg!(*a).i32().wrapping_add(*k);
                lg!(*a) = Slot::from_i32(v);
                ip += 1;
            }
            E::F64LoadL { local, bias, offset } => {
                let addr = lg!(*local).i32().wrapping_add(*bias) as u32;
                let start = inst.memory.effective(addr, *offset, 8)?;
                push!(Slot::from_u64(u64::from_le_bytes(inst.memory.load::<8>(start))));
                ip += 1;
            }
            E::I32LoadL { local, bias, offset } => {
                let addr = lg!(*local).i32().wrapping_add(*bias) as u32;
                let start = inst.memory.effective(addr, *offset, 4)?;
                push!(Slot::from_u32(u32::from_le_bytes(inst.memory.load::<4>(start))));
                ip += 1;
            }
            E::F64StoreLL { addr, val, offset } => {
                let a = lg!(*addr).u32();
                let v = lg!(*val).f64();
                let start = inst.memory.effective(a, *offset, 8)?;
                inst.memory.store(start, &v.to_le_bytes());
                ip += 1;
            }
            E::F64MulL(b) => {
                let m = lg!(*b).f64();
                let t = top!();
                *t = Slot::from_f64(t.f64() * m);
                ip += 1;
            }
            E::F64AddL(b) => {
                let m = lg!(*b).f64();
                let t = top!();
                *t = Slot::from_f64(t.f64() + m);
                ip += 1;
            }
            E::I32ShlLK(a, k) => {
                push!(Slot::from_i32(lg!(*a).i32().wrapping_shl(*k as u32)));
                ip += 1;
            }
            E::I32AddK(k) => {
                let t = top!();
                *t = Slot::from_i32(t.i32().wrapping_add(*k));
                ip += 1;
            }
            E::I32AddShlLL { base, idx, shift } => {
                let r = lg!(*base)
                    .i32()
                    .wrapping_add(lg!(*idx).i32().wrapping_shl(*shift as u32));
                push!(Slot::from_i32(r));
                ip += 1;
            }
            E::F64LoadLSh { base, idx, shift, offset } => {
                let addr = lg!(*base)
                    .i32()
                    .wrapping_add(lg!(*idx).i32().wrapping_shl(*shift as u32))
                    as u32;
                let start = inst.memory.effective(addr, *offset, 8)?;
                push!(Slot::from_u64(u64::from_le_bytes(inst.memory.load::<8>(start))));
                ip += 1;
            }
            E::I32LoadLSh { base, idx, shift, offset } => {
                let addr = lg!(*base)
                    .i32()
                    .wrapping_add(lg!(*idx).i32().wrapping_shl(*shift as u32))
                    as u32;
                let start = inst.memory.effective(addr, *offset, 4)?;
                push!(Slot::from_u32(u32::from_le_bytes(inst.memory.load::<4>(start))));
                ip += 1;
            }
            E::F64LoadShlK { idx, shift, bias, offset } => {
                let addr =
                    lg!(*idx).i32().wrapping_shl(*shift as u32).wrapping_add(*bias) as u32;
                let start = inst.memory.effective(addr, *offset, 8)?;
                push!(Slot::from_u64(u64::from_le_bytes(inst.memory.load::<8>(start))));
                ip += 1;
            }
            E::I32LoadShlK { idx, shift, bias, offset } => {
                let addr =
                    lg!(*idx).i32().wrapping_shl(*shift as u32).wrapping_add(*bias) as u32;
                let start = inst.memory.effective(addr, *offset, 4)?;
                push!(Slot::from_u32(u32::from_le_bytes(inst.memory.load::<4>(start))));
                ip += 1;
            }
            E::F64MulAdd => {
                let b = pop!().f64();
                let a = pop!().f64();
                let t = top!();
                *t = Slot::from_f64(t.f64() + a * b);
                ip += 1;
            }
            E::BrIfCmpLL { cmp, a, b, dest } => {
                if cmp.eval(lg!(*a).i32(), lg!(*b).i32()) {
                    take_branch!(dest);
                } else {
                    ip += 1;
                }
            }
            E::BrIfCmpLK { cmp, a, k, dest } => {
                if cmp.eval(lg!(*a).i32(), *k) {
                    take_branch!(dest);
                } else {
                    ip += 1;
                }
            }
            E::BrIfCmp { cmp, dest } => {
                let b = pop!().i32();
                let a = pop!().i32();
                if cmp.eval(a, b) {
                    take_branch!(dest);
                } else {
                    ip += 1;
                }
            }
            E::BrIfEqz(dest) => {
                let v = pop!().i32();
                if v == 0 {
                    take_branch!(dest);
                } else {
                    ip += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_constants_rewrites_window() {
        let mut ops = vec![
            Op::Plain(Instr::I32Const(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Add),
        ];
        let targets = vec![false; 4];
        assert!(fold_constants(&mut ops, &targets));
        assert_eq!(ops[2], Op::Plain(Instr::I32Const(5)));
        assert_eq!(ops[0], Op::Nop);
    }

    #[test]
    fn fold_skips_jump_targets() {
        let mut ops = vec![
            Op::Plain(Instr::I32Const(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Add),
        ];
        let mut targets = vec![false; 4];
        targets[1] = true; // something jumps between the constants
        assert!(!fold_constants(&mut ops, &targets));
    }

    #[test]
    fn fuse_loop_counter_increment() {
        let mut ops = vec![
            Op::Plain(Instr::LocalGet(0)),
            Op::Plain(Instr::I32Const(1)),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::LocalSet(0)),
        ];
        let targets = vec![false; 5];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[3], Op::I32IncL(0, 1));
    }

    #[test]
    fn fuse_compare_and_branch() {
        let d = Dest { target: 7, height: 0, arity: 0 };
        // The for_range loop exit: local.get i ; local.get n ; ge_s ; br_if
        let mut ops = vec![
            Op::Plain(Instr::LocalGet(0)),
            Op::Plain(Instr::LocalGet(1)),
            Op::Plain(Instr::I32GeS),
            Op::BrIf(d),
        ];
        let targets = vec![false; 5];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[3], Op::BrIfCmpLL { cmp: Cmp::GeS, a: 0, b: 1, dest: d });

        // Stack-operand form: cmp ; br_if.
        let mut ops = vec![Op::Plain(Instr::I32LtS), Op::BrIf(d)];
        let targets = vec![false; 3];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[1], Op::BrIfCmp { cmp: Cmp::LtS, dest: d });

        // eqz ; br_if (the while-loop exit).
        let mut ops = vec![Op::Plain(Instr::I32Eqz), Op::BrIf(d)];
        let targets = vec![false; 3];
        assert!(fuse_locals(&mut ops, &targets));
        assert_eq!(ops[1], Op::BrIfEqz(d));
    }

    #[test]
    fn fuse_indexed_load_chain() {
        use crate::instr::MemArg;
        // local.get a ; local.get i ; const 3 ; shl ; add ; f64.load —
        // the canonical vector-element address — fuses to one op.
        let ops = vec![
            Op::Plain(Instr::LocalGet(4)),
            Op::Plain(Instr::LocalGet(2)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Shl),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::F64Load(MemArg::offset(16))),
        ];
        let mut f = FlatFunc { ops, ..Default::default() };
        optimize(&mut f, 2);
        assert_eq!(f.ops, vec![Op::F64LoadLSh { base: 4, idx: 2, shift: 3, offset: 16 }]);
    }

    #[test]
    fn fuse_const_base_load() {
        use crate::instr::MemArg;
        // const 4096 ; local.get i ; const 3 ; shl ; add ; f64.load
        let ops = vec![
            Op::Plain(Instr::I32Const(4096)),
            Op::Plain(Instr::LocalGet(1)),
            Op::Plain(Instr::I32Const(3)),
            Op::Plain(Instr::I32Shl),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::F64Load(MemArg::offset(0))),
        ];
        let mut f = FlatFunc { ops, ..Default::default() };
        optimize(&mut f, 2);
        assert_eq!(
            f.ops,
            vec![Op::F64LoadShlK { idx: 1, shift: 3, bias: 4096, offset: 0 }]
        );
    }

    #[test]
    fn compact_nops_remaps_jumps() {
        let mut f = FlatFunc {
            ops: vec![
                Op::Nop,
                Op::Jump(3),
                Op::Nop,
                Op::Plain(Instr::I32Const(1)),
                Op::Return,
            ],
            ..Default::default()
        };
        f.result_arity = 1;
        compact_nops(&mut f);
        assert_eq!(f.ops.len(), 3);
        // Jump(3) pointed at the const; after compaction the const is at 1.
        assert_eq!(f.ops[0], Op::Jump(1));
    }

    #[test]
    fn compact_remaps_fused_branch_targets() {
        let d = Dest { target: 3, height: 0, arity: 0 };
        let mut f = FlatFunc {
            ops: vec![
                Op::BrIfCmpLL { cmp: Cmp::LtS, a: 0, b: 1, dest: d },
                Op::Nop,
                Op::Nop,
                Op::Return,
            ],
            ..Default::default()
        };
        compact_nops(&mut f);
        assert_eq!(
            f.ops[0],
            Op::BrIfCmpLL {
                cmp: Cmp::LtS,
                a: 0,
                b: 1,
                dest: Dest { target: 1, height: 0, arity: 0 }
            }
        );
    }

    #[test]
    fn addk_never_folds_into_pure_push_loads() {
        use crate::instr::MemArg;
        // Regression: `counts[b] = counts[b] + 1` lowers to
        //   [ShlLK b][AddK counts]  (store address, stays on the stack)
        //   [LoadShlK b counts][Const 1][Add][I32Store]
        // The AddK feeds the *store*, not the following load; folding it
        // into the LoadShlK offset both corrupted the loaded address and
        // dropped the base from the store address.
        let ops = vec![
            Op::I32ShlLK(6, 2),
            Op::I32AddK(1000),
            Op::I32LoadShlK { idx: 6, shift: 2, bias: 1000, offset: 0 },
            Op::Plain(Instr::I32Const(1)),
            Op::Plain(Instr::I32Add),
            Op::Plain(Instr::I32Store(MemArg::offset(0))),
        ];
        let mut f = FlatFunc { ops: ops.clone(), ..Default::default() };
        optimize(&mut f, 2);
        assert!(
            f.ops.contains(&Op::I32AddK(1000)),
            "store-address AddK must survive: {:?}",
            f.ops
        );
        assert!(
            f.ops.contains(&Op::I32LoadShlK { idx: 6, shift: 2, bias: 1000, offset: 0 }),
            "load address must be unchanged: {:?}",
            f.ops
        );
    }

    #[test]
    fn cmp_byte_roundtrip() {
        for b in 0..=9u8 {
            assert_eq!(Cmp::from_byte(b).unwrap().to_byte(), b);
        }
        assert!(Cmp::from_byte(10).is_none());
        assert!(Cmp::LtS.eval(-1, 0));
        assert!(!Cmp::LtU.eval(-1, 0));
        assert!(Cmp::GeS.eval(3, 3));
    }
}

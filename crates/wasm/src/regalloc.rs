//! Register allocation over the flat IR: the load-time lowering from the
//! serializable [`Op`](crate::ir::Op) stream into the stackless
//! three-address [`RegOp`] form executed by [`crate::dispatch`].
//!
//! # The register model
//!
//! Validation proves that the operand stack height at every instruction is
//! a static quantity. This pass exploits that: each stack temporary at
//! height `h` is assigned the fixed frame slot `n_local_slots + h`, so
//! locals and stack temporaries share one flat **register space** — a
//! register number is simply an offset into the activation frame, which is
//! a statically-sized window (`frame_size` slots) of the per-instance slot
//! arena. The hot loop performs no push/pop traffic at all: every operand
//! read and result write is `frame[imm]`.
//!
//! Collapsing the spaces also collapses the superinstruction set: the
//! stack form `i32.add` and the fused `I32AddLL(a, b)` both lower to the
//! same [`Rc::Add32`] `{a, b, c}` — only the register fields differ
//! (stack temps for the former, local slots for the latter). The
//! remaining specialized opcodes are the addressing forms (scaled /
//! biased loads and stores) and the fused compare-and-branches.
//!
//! # Invariants established here and relied on by the executor
//!
//! * **Frame layout**: registers `0..param_slots` are the parameters
//!   (written by the caller in place), `param_slots..n_local_slots` the
//!   declared locals (zeroed at call entry), `n_local_slots..frame_size`
//!   the stack temporaries (no init — validation guarantees every read is
//!   preceded by a write on every path).
//! * **Liveness**: a stack temporary is dead once execution moves below
//!   its height; branch unwinding copies the `arity` carried slots from
//!   their static source offset to the target height's offset, so merge
//!   points always find operands at the registers the target expects.
//! * **Bounds**: [`verify`] (always run by [`lower`]) proves every
//!   register operand `< frame_size`, every branch target in range and
//!   every pool reference valid, which makes the executor's unchecked
//!   frame accesses sound even for hand-corrupted cache artifacts —
//!   `lower` returns `Err` (and the cache recompiles) rather than
//!   executing out-of-model code.
//!
//! The pass is a single forward walk (heights propagate to branch targets
//! before the targets are visited — flat code from structured Wasm always
//! reaches a label's height before the label), followed by a register
//! peephole for the addressing forms the serializable IR cannot express
//! (scaled stores with value-computation windows, i64/f32 scaled loads)
//! and a nop compaction that keeps the dispatched stream dense.

use crate::instr::Instr;
use crate::ir::{Cmp, Dest, Op};
use crate::module::{Function, Module};
use crate::widths;

/// One executable register-form operation. 24 bytes, fixed layout; the
/// meaning of `a`/`b`/`c`/`aux`/`imm` depends on [`Rc`] (documented
/// per-family on the enum). By convention `a`/`b` are source registers and
/// `c` is the destination register; branch targets live in `c`, constants
/// and packed unwind info in `imm`, and small immediates (shift counts,
/// comparison codes, lane indices) in `aux`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegOp {
    pub imm: u64,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub code: Rc,
    pub aux: u8,
}

/// Register-form opcodes. Families share operand conventions:
///
/// * compute ops: `frame[c] = frame[a] ⊕ frame[b]` (binary) or
///   `frame[c] = ⊕ frame[a]` (unary); `Cmp*` carry the comparison in
///   `aux` ([`Cmp`] codes for integers, 0..=5 `eq ne lt gt le ge` for
///   floats).
/// * loads: address `= wrap(frame[a].i32 + bias) + offset` with
///   `imm = offset | bias << 32`; result to `c`. Scaled forms add
///   `frame[b]` (base register, `*Shl`) or use a constant base folded
///   into `bias` (`*ShlK`), scaling `frame[a] << aux`.
/// * stores: address register `a`, value register `b`, `imm = offset`
///   (scaled stores move the value to `b`, index to `a`, base to `c`
///   or bias into `imm` high half).
/// * branches: target in `c`, packed unwind copy in `imm`
///   ([`pack_unwind`]), operands in `a`/`b` (`BrIfCmp32K` compares
///   `frame[a]` with the constant in `b`).
/// * calls: `b` = frame-relative offset where the argument slots start
///   (the callee's frame base); `a` = defined-function index
///   (`CallGuest`), host-function index (`CallHost`) or type index
///   (`CallIndirect`, table-index register in `c`).
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rc {
    // -- control --
    Nop = 0,
    Jump,
    Br,
    BrIf,
    /// Branch when `frame[a] == 0` (fused `eqz`/`if` polarity).
    BrIfZ,
    BrIfCmp32,
    BrIfCmp32K,
    BrTable,
    Return,
    Unreachable,
    CallGuest,
    CallHost,
    CallIndirect,
    // -- moves / parametric --
    Copy,
    Copy2,
    /// `frame[a] = cond(frame[c]) ? frame[a] : frame[b]` (dst == a).
    Select,
    Select2,
    GlobalGet,
    GlobalSet,
    // -- constants --
    Const,
    V128Const,
    // -- memory --
    Load32,
    Load64,
    Load8S32,
    Load8U32,
    Load16S32,
    Load16U32,
    Load8S64,
    Load8U64,
    Load16S64,
    Load16U64,
    Load32S64,
    Load32U64,
    V128Load,
    Store8,
    Store16,
    Store32,
    Store64,
    V128Store,
    Load32Shl,
    Load64Shl,
    Load32ShlK,
    Load64ShlK,
    Store32Shl,
    Store64Shl,
    Store32ShlK,
    Store64ShlK,
    MemSize,
    MemGrow,
    MemCopy,
    MemFill,
    // -- i32 --
    Eqz32,
    Cmp32,
    Clz32,
    Ctz32,
    Popcnt32,
    Add32,
    Sub32,
    Mul32,
    DivS32,
    DivU32,
    RemS32,
    RemU32,
    And32,
    Or32,
    Xor32,
    Shl32,
    ShrS32,
    ShrU32,
    Rotl32,
    Rotr32,
    /// `frame[c] = frame[a] +wrap (b as i32)` — covers `I32AddK`,
    /// `I32AddLK` and (with `c == a` a local) `I32IncL`.
    AddK32,
    ShlK32,
    /// `frame[c] = frame[b] +wrap (frame[a] << aux)` (address form).
    AddShl32,
    // -- i64 --
    Eqz64,
    Cmp64,
    Clz64,
    Ctz64,
    Popcnt64,
    Add64,
    Sub64,
    Mul64,
    DivS64,
    DivU64,
    RemS64,
    RemU64,
    And64,
    Or64,
    Xor64,
    Shl64,
    ShrS64,
    ShrU64,
    Rotl64,
    Rotr64,
    // -- f32 --
    CmpF32,
    AbsF32,
    NegF32,
    CeilF32,
    FloorF32,
    TruncF32,
    NearestF32,
    SqrtF32,
    AddF32,
    SubF32,
    MulF32,
    DivF32,
    MinF32,
    MaxF32,
    CopysignF32,
    // -- f64 --
    CmpF64,
    AbsF64,
    NegF64,
    CeilF64,
    FloorF64,
    TruncF64,
    NearestF64,
    SqrtF64,
    AddF64,
    SubF64,
    MulF64,
    DivF64,
    MinF64,
    MaxF64,
    CopysignF64,
    /// `frame[c] = frame[c] + frame[a] * frame[b]` (both roundings kept).
    Fma64,
    // -- conversions --
    Wrap64,
    TruncF32S32,
    TruncF32U32,
    TruncF64S32,
    TruncF64U32,
    ExtS3264,
    ExtU3264,
    TruncF32S64,
    TruncF32U64,
    TruncF64S64,
    TruncF64U64,
    ConvS32F32,
    ConvU32F32,
    ConvS64F32,
    ConvU64F32,
    Demote,
    ConvS32F64,
    ConvU32F64,
    ConvS64F64,
    ConvU64F64,
    Promote,
    Ext8S32,
    Ext16S32,
    Ext8S64,
    Ext16S64,
    Ext32S64,
    // -- simd (wide registers occupy two slots, low half first) --
    Splat32,
    Splat64,
    Extract32,
    Extract64,
    Replace64,
    AddI32x4,
    SubI32x4,
    MulI32x4,
    AddF32x4,
    SubF32x4,
    MulF32x4,
    DivF32x4,
    AddF64x2,
    SubF64x2,
    MulF64x2,
    DivF64x2,
    CmpF64x2,
    VAnd,
    VOr,
    VXor,
    VNot,
    VAnyTrue,
    AllTrueI32x4,
    BitmaskI32x4,
    /// `frame[c] = cmp(frame[a], b as i32)` — formed by constant
    /// forwarding (no serializable counterpart).
    Cmp32K,
    /// `frame[c] = frame[a] +wrap (imm as i64)` — formed by constant
    /// forwarding (no serializable counterpart). The constant lives in
    /// `imm` because `b` is only 32 bits wide.
    AddK64,
    /// `frame[c] = cmp64(frame[a], imm as i64)` with the comparison code
    /// in `aux` — formed by constant forwarding (no serializable
    /// counterpart).
    Cmp64K,
}

/// One `br_table` destination in the side pool: resolved target plus the
/// packed unwind copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrDest {
    pub target: u32,
    pub unwind: u64,
}

/// A function lowered to register form: the executable artifact derived
/// from the portable [`Op`] stream at load time (never serialized).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegFunc {
    pub code: Vec<RegOp>,
    /// `br_table` destinations; an op references `[b, b + c]` (the entry
    /// at `b + c` is the default).
    pub dest_pool: Vec<BrDest>,
    /// v128 constants (too wide for `imm`).
    pub v128_pool: Vec<u128>,
    /// Total frame slots: locals plus the maximum operand-stack height.
    pub frame_size: u32,
    pub n_local_slots: u32,
    pub param_slots: u32,
    pub result_slots: u32,
}

impl RegFunc {
    pub fn size_bytes(&self) -> usize {
        self.code.len() * std::mem::size_of::<RegOp>()
            + self.dest_pool.len() * std::mem::size_of::<BrDest>()
            + self.v128_pool.len() * 16
    }
}

/// Registers and unwind offsets must fit the packed branch encoding.
const MAX_REG: u32 = (1 << 24) - 1;

/// Pack a branch's unwind copy: move `arity` slots from frame offset
/// `src` down to `dst`. `0` means "no copy needed" (encoded when the
/// slots are already in place).
pub fn pack_unwind(src: u32, dst: u32, arity: u32) -> Result<u64, String> {
    if arity == 0 || src == dst {
        return Ok(0);
    }
    if arity > 0xffff || src > MAX_REG || dst > MAX_REG {
        return Err("branch unwind exceeds encodable range".into());
    }
    Ok(arity as u64 | (src as u64) << 16 | (dst as u64) << 40)
}

/// Unpack [`pack_unwind`]: `(src, dst, arity)`.
#[inline(always)]
pub fn unwind_parts(imm: u64) -> (usize, usize, usize) {
    (
        ((imm >> 16) & 0xff_ffff) as usize,
        (imm >> 40) as usize,
        (imm & 0xffff) as usize,
    )
}

#[inline]
fn rop(code: Rc, a: u32, b: u32, c: u32, aux: u8, imm: u64) -> RegOp {
    RegOp { imm, a, b, c, code, aux }
}

/// Float comparison codes shared by `CmpF32`/`CmpF64`/`CmpF64x2`.
pub const FEQ: u8 = 0;
pub const FNE: u8 = 1;
pub const FLT: u8 = 2;
pub const FGT: u8 = 3;
pub const FLE: u8 = 4;
pub const FGE: u8 = 5;

#[inline(always)]
pub fn feval<T: PartialOrd>(code: u8, a: T, b: T) -> bool {
    match code {
        FEQ => a == b,
        FNE => a != b,
        FLT => a < b,
        FGT => a > b,
        FLE => a <= b,
        _ => a >= b,
    }
}

/// Successor shape of one lowered op, driving height propagation.
enum Next {
    Fall(u32),
    Jump { target: u32, th: u32 },
    CondFall { fall: u32, target: u32, th: u32 },
    Stop,
}

/// Lower one function's flat ops to register form. Runs the full
/// pipeline: heights + translation, register peephole, nop compaction,
/// verification. Returns `Err` on malformed input (corrupt cache
/// artifacts) — the caller falls back to recompilation.
pub(crate) fn lower(module: &Module, func: &Function, ops: &[Op]) -> Result<RegFunc, String> {
    let fty = &module.types[func.type_idx as usize];
    let (local_map, n_local_slots) = widths::local_map(&fty.params, &func.locals);
    let param_slots = widths::slot_count(&fty.params);
    let result_slots = widths::slot_count(&fty.results);
    let imported = module.num_imported_funcs() as u32;

    let mut code: Vec<RegOp> = Vec::with_capacity(ops.len());
    let mut dest_pool: Vec<BrDest> = Vec::new();
    let mut v128_pool: Vec<u128> = Vec::new();
    let mut heights: Vec<Option<u32>> = vec![None; ops.len()];
    if !ops.is_empty() {
        heights[0] = Some(0);
    }
    let mut max_h: u32 = 0;

    // Shared height-setting with merge check.
    fn set_h(
        heights: &mut [Option<u32>],
        max_h: &mut u32,
        at: usize,
        h: u32,
    ) -> Result<(), String> {
        if at >= heights.len() {
            return Err(format!("branch target {at} out of range"));
        }
        match heights[at] {
            None => heights[at] = Some(h),
            Some(prev) if prev == h => {}
            Some(prev) => {
                return Err(format!("height mismatch at op {at}: {prev} vs {h}"));
            }
        }
        *max_h = (*max_h).max(h);
        Ok(())
    }

    let slot = |i: u32| -> Result<u32, String> {
        local_map
            .get(i as usize)
            .map(|m| m >> 1)
            .ok_or_else(|| format!("local index {i} out of range"))
    };
    let wide = |i: u32| -> bool { local_map.get(i as usize).map_or(false, |m| m & 1 != 0) };

    for (i, op) in ops.iter().enumerate() {
        let Some(h) = heights[i] else {
            // Statically unreachable op (possible only in corrupt or
            // hand-built streams); keep indices 1:1 with a trap.
            code.push(rop(Rc::Unreachable, 0, 0, 0, 0, 0));
            continue;
        };
        max_h = max_h.max(h);
        let base = n_local_slots;
        // Register of the stack temp at height `x`.
        let r = |x: u32| base + x;
        macro_rules! need {
            ($n:expr) => {
                if h < $n {
                    return Err(format!("operand stack underflow at op {i}"));
                }
            };
        }
        // Unwind for a branch evaluated at (post-pop) height `ph`.
        macro_rules! unwind_to {
            ($d:expr, $ph:expr) => {{
                let d: &Dest = $d;
                let ph: u32 = $ph;
                if d.arity > ph || d.height + d.arity > ph {
                    return Err(format!("branch unwind out of range at op {i}"));
                }
                pack_unwind(r(ph - d.arity), r(d.height), d.arity)?
            }};
        }

        let (regop, next) = match op {
            Op::Nop => (rop(Rc::Nop, 0, 0, 0, 0, 0), Next::Fall(h)),
            Op::Jump(t) => (rop(Rc::Jump, 0, 0, *t, 0, 0), Next::Jump { target: *t, th: h }),
            Op::JumpIfZero(t) => {
                need!(1);
                (
                    rop(Rc::BrIfZ, r(h - 1), 0, *t, 0, 0),
                    Next::CondFall { fall: h - 1, target: *t, th: h - 1 },
                )
            }
            Op::Br(d) => {
                let u = unwind_to!(d, h);
                (
                    rop(Rc::Br, 0, 0, d.target, 0, u),
                    Next::Jump { target: d.target, th: d.height + d.arity },
                )
            }
            Op::BrIf(d) => {
                need!(1);
                let u = unwind_to!(d, h - 1);
                (
                    rop(Rc::BrIf, r(h - 1), 0, d.target, 0, u),
                    Next::CondFall { fall: h - 1, target: d.target, th: d.height + d.arity },
                )
            }
            Op::BrIfEqz(d) => {
                need!(1);
                let u = unwind_to!(d, h - 1);
                (
                    rop(Rc::BrIfZ, r(h - 1), 0, d.target, 0, u),
                    Next::CondFall { fall: h - 1, target: d.target, th: d.height + d.arity },
                )
            }
            Op::BrIfCmp { cmp, dest } => {
                need!(2);
                let u = unwind_to!(dest, h - 2);
                (
                    rop(Rc::BrIfCmp32, r(h - 2), r(h - 1), dest.target, cmp.to_byte(), u),
                    Next::CondFall {
                        fall: h - 2,
                        target: dest.target,
                        th: dest.height + dest.arity,
                    },
                )
            }
            Op::BrIfCmpLL { cmp, a, b, dest } => {
                let u = unwind_to!(dest, h);
                (
                    rop(
                        Rc::BrIfCmp32,
                        slot(*a as u32)?,
                        slot(*b as u32)?,
                        dest.target,
                        cmp.to_byte(),
                        u,
                    ),
                    Next::CondFall { fall: h, target: dest.target, th: dest.height + dest.arity },
                )
            }
            Op::BrIfCmpLK { cmp, a, k, dest } => {
                let u = unwind_to!(dest, h);
                (
                    rop(
                        Rc::BrIfCmp32K,
                        slot(*a as u32)?,
                        *k as u32,
                        dest.target,
                        cmp.to_byte(),
                        u,
                    ),
                    Next::CondFall { fall: h, target: dest.target, th: dest.height + dest.arity },
                )
            }
            Op::BrTable { dests, default } => {
                need!(1);
                let ph = h - 1;
                let start = dest_pool.len() as u32;
                for d in dests.iter().chain(std::iter::once(default)) {
                    let u = unwind_to!(d, ph);
                    set_h(&mut heights, &mut max_h, d.target as usize, d.height + d.arity)?;
                    dest_pool.push(BrDest { target: d.target, unwind: u });
                }
                (
                    rop(Rc::BrTable, r(h - 1), start, dests.len() as u32, 0, 0),
                    Next::Stop,
                )
            }
            Op::Return => {
                need!(result_slots);
                (rop(Rc::Return, r(h - result_slots), 0, 0, 0, 0), Next::Stop)
            }
            Op::Unreachable => (rop(Rc::Unreachable, 0, 0, 0, 0, 0), Next::Stop),
            Op::Drop2 => {
                need!(2);
                (rop(Rc::Nop, 0, 0, 0, 0, 0), Next::Fall(h - 2))
            }
            Op::Select2 => {
                need!(5);
                (
                    rop(Rc::Select2, r(h - 5), r(h - 3), r(h - 1), 0, 0),
                    Next::Fall(h - 3),
                )
            }

            // --- superinstructions: register fields point at locals ---
            Op::I32AddLL(a, b) => (
                rop(Rc::Add32, slot(*a as u32)?, slot(*b as u32)?, r(h), 0, 0),
                Next::Fall(h + 1),
            ),
            Op::I64AddLL(a, b) => (
                rop(Rc::Add64, slot(*a as u32)?, slot(*b as u32)?, r(h), 0, 0),
                Next::Fall(h + 1),
            ),
            Op::F64AddLL(a, b) => (
                rop(Rc::AddF64, slot(*a as u32)?, slot(*b as u32)?, r(h), 0, 0),
                Next::Fall(h + 1),
            ),
            Op::F64MulLL(a, b) => (
                rop(Rc::MulF64, slot(*a as u32)?, slot(*b as u32)?, r(h), 0, 0),
                Next::Fall(h + 1),
            ),
            Op::F64SubLL(a, b) => (
                rop(Rc::SubF64, slot(*a as u32)?, slot(*b as u32)?, r(h), 0, 0),
                Next::Fall(h + 1),
            ),
            Op::I32AddLK(a, k) => (
                rop(Rc::AddK32, slot(*a as u32)?, *k as u32, r(h), 0, 0),
                Next::Fall(h + 1),
            ),
            Op::I32IncL(a, k) => {
                let s = slot(*a as u32)?;
                (rop(Rc::AddK32, s, *k as u32, s, 0, 0), Next::Fall(h))
            }
            Op::I32AddK(k) => {
                need!(1);
                (rop(Rc::AddK32, r(h - 1), *k as u32, r(h - 1), 0, 0), Next::Fall(h))
            }
            Op::I32ShlLK(a, k) => (
                rop(Rc::ShlK32, slot(*a as u32)?, 0, r(h), *k & 31, 0),
                Next::Fall(h + 1),
            ),
            Op::I32AddShlLL { base: bl, idx, shift } => (
                rop(
                    Rc::AddShl32,
                    slot(*idx as u32)?,
                    slot(*bl as u32)?,
                    r(h),
                    *shift,
                    0,
                ),
                Next::Fall(h + 1),
            ),
            Op::F64LoadL { local, bias, offset } => (
                rop(
                    Rc::Load64,
                    slot(*local as u32)?,
                    0,
                    r(h),
                    0,
                    *offset as u64 | (*bias as u32 as u64) << 32,
                ),
                Next::Fall(h + 1),
            ),
            Op::I32LoadL { local, bias, offset } => (
                rop(
                    Rc::Load32,
                    slot(*local as u32)?,
                    0,
                    r(h),
                    0,
                    *offset as u64 | (*bias as u32 as u64) << 32,
                ),
                Next::Fall(h + 1),
            ),
            Op::F64StoreLL { addr, val, offset } => (
                rop(
                    Rc::Store64,
                    slot(*addr as u32)?,
                    slot(*val as u32)?,
                    0,
                    0,
                    *offset as u64,
                ),
                Next::Fall(h),
            ),
            Op::F64MulL(b) => {
                need!(1);
                (
                    rop(Rc::MulF64, r(h - 1), slot(*b as u32)?, r(h - 1), 0, 0),
                    Next::Fall(h),
                )
            }
            Op::F64AddL(b) => {
                need!(1);
                (
                    rop(Rc::AddF64, r(h - 1), slot(*b as u32)?, r(h - 1), 0, 0),
                    Next::Fall(h),
                )
            }
            Op::F64LoadLSh { base: bl, idx, shift, offset } => (
                rop(
                    Rc::Load64Shl,
                    slot(*idx as u32)?,
                    slot(*bl as u32)?,
                    r(h),
                    *shift,
                    *offset as u64,
                ),
                Next::Fall(h + 1),
            ),
            Op::I32LoadLSh { base: bl, idx, shift, offset } => (
                rop(
                    Rc::Load32Shl,
                    slot(*idx as u32)?,
                    slot(*bl as u32)?,
                    r(h),
                    *shift,
                    *offset as u64,
                ),
                Next::Fall(h + 1),
            ),
            Op::F64LoadShlK { idx, shift, bias, offset } => (
                rop(
                    Rc::Load64ShlK,
                    slot(*idx as u32)?,
                    0,
                    r(h),
                    *shift,
                    *offset as u64 | (*bias as u32 as u64) << 32,
                ),
                Next::Fall(h + 1),
            ),
            Op::I32LoadShlK { idx, shift, bias, offset } => (
                rop(
                    Rc::Load32ShlK,
                    slot(*idx as u32)?,
                    0,
                    r(h),
                    *shift,
                    *offset as u64 | (*bias as u32 as u64) << 32,
                ),
                Next::Fall(h + 1),
            ),
            Op::F64MulAdd => {
                need!(3);
                (
                    rop(Rc::Fma64, r(h - 2), r(h - 1), r(h - 3), 0, 0),
                    Next::Fall(h - 2),
                )
            }

            Op::Plain(instr) => lower_plain(
                instr, module, i, h, base, imported, &slot, &wide, &mut v128_pool,
            )?,
        };
        code.push(regop);
        match next {
            Next::Fall(nh) => set_h(&mut heights, &mut max_h, i + 1, nh)?,
            Next::Jump { target, th } => {
                set_h(&mut heights, &mut max_h, target as usize, th)?
            }
            Next::CondFall { fall, target, th } => {
                set_h(&mut heights, &mut max_h, i + 1, fall)?;
                set_h(&mut heights, &mut max_h, target as usize, th)?;
            }
            Next::Stop => {}
        }
    }

    if code.is_empty() {
        return Err("empty op stream".into());
    }
    let frame_size = n_local_slots
        .checked_add(max_h)
        .filter(|&f| f <= MAX_REG)
        .ok_or("frame size exceeds encodable range")?;

    let mut rf = RegFunc {
        code,
        dest_pool,
        v128_pool,
        frame_size,
        n_local_slots,
        param_slots,
        result_slots,
    };
    // Entry heights per op, kept index-aligned with `rf.code` through
    // every pass (compaction remaps them alongside the targets). They are
    // the liveness oracle: at an op with entry height `h`, every register
    // `>= n_local_slots + h` is dead.
    let mut hs: Vec<u32> = heights
        .iter()
        .map(|h| h.unwrap_or(u32::MAX))
        .collect();
    compact(&mut rf, &mut hs);
    // Iterate forwarding / dead-code / addressing fusion to a bounded
    // fixpoint: each pass exposes opportunities for the others (a
    // forwarded constant turns Mul32 into ShlK32, which the addressing
    // pass folds into a scaled load, which leaves the Copy dead...).
    for _ in 0..3 {
        let a = forward(&mut rf);
        let b = eliminate(&mut rf, &hs);
        let c = peephole(&mut rf, &mut hs);
        if !(a || b || c) {
            break;
        }
        compact(&mut rf, &mut hs);
    }
    verify(&rf, module)?;
    Ok(rf)
}

/// Lower one straight-line instruction at entry height `h`. Returns the
/// register op and the successor shape (always `Fall`).
#[allow(clippy::too_many_arguments)]
fn lower_plain(
    instr: &Instr,
    module: &Module,
    i: usize,
    h: u32,
    base: u32,
    imported: u32,
    slot: &dyn Fn(u32) -> Result<u32, String>,
    wide: &dyn Fn(u32) -> bool,
    v128_pool: &mut Vec<u128>,
) -> Result<(RegOp, Next), String> {
    use Instr as I;
    let r = |x: u32| base + x;
    macro_rules! need {
        ($n:expr) => {
            if h < $n {
                return Err(format!("operand stack underflow at op {i}"));
            }
        };
    }
    // Shape helpers. Each returns (RegOp, Next).
    macro_rules! bin {
        ($rc:expr) => {{
            need!(2);
            (rop($rc, r(h - 2), r(h - 1), r(h - 2), 0, 0), Next::Fall(h - 1))
        }};
    }
    macro_rules! cmp {
        ($rc:expr, $code:expr) => {{
            need!(2);
            (rop($rc, r(h - 2), r(h - 1), r(h - 2), $code, 0), Next::Fall(h - 1))
        }};
    }
    macro_rules! un {
        ($rc:expr) => {{
            need!(1);
            (rop($rc, r(h - 1), 0, r(h - 1), 0, 0), Next::Fall(h))
        }};
    }
    macro_rules! ld {
        ($rc:expr, $m:expr) => {{
            need!(1);
            (
                rop($rc, r(h - 1), 0, r(h - 1), 0, $m.offset as u64),
                Next::Fall(h),
            )
        }};
    }
    macro_rules! st {
        ($rc:expr, $m:expr) => {{
            need!(2);
            (
                rop($rc, r(h - 2), r(h - 1), 0, 0, $m.offset as u64),
                Next::Fall(h - 2),
            )
        }};
    }
    macro_rules! cst {
        ($bits:expr) => {{
            (rop(Rc::Const, 0, 0, r(h), 0, $bits), Next::Fall(h + 1))
        }};
    }
    macro_rules! vbin {
        ($rc:expr) => {{
            need!(4);
            (rop($rc, r(h - 4), r(h - 2), r(h - 4), 0, 0), Next::Fall(h - 2))
        }};
    }

    Ok(match instr {
        I::Nop => (rop(Rc::Nop, 0, 0, 0, 0, 0), Next::Fall(h)),
        I::Drop => {
            need!(1);
            (rop(Rc::Nop, 0, 0, 0, 0, 0), Next::Fall(h - 1))
        }
        I::Select => {
            need!(3);
            (
                rop(Rc::Select, r(h - 3), r(h - 2), r(h - 1), 0, 0),
                Next::Fall(h - 2),
            )
        }
        I::LocalGet(x) => {
            let s = slot(*x)?;
            if wide(*x) {
                (rop(Rc::Copy2, s, 0, r(h), 0, 0), Next::Fall(h + 2))
            } else {
                (rop(Rc::Copy, s, 0, r(h), 0, 0), Next::Fall(h + 1))
            }
        }
        I::LocalSet(x) => {
            let s = slot(*x)?;
            if wide(*x) {
                need!(2);
                (rop(Rc::Copy2, r(h - 2), 0, s, 0, 0), Next::Fall(h - 2))
            } else {
                need!(1);
                (rop(Rc::Copy, r(h - 1), 0, s, 0, 0), Next::Fall(h - 1))
            }
        }
        I::LocalTee(x) => {
            let s = slot(*x)?;
            if wide(*x) {
                need!(2);
                (rop(Rc::Copy2, r(h - 2), 0, s, 0, 0), Next::Fall(h))
            } else {
                need!(1);
                (rop(Rc::Copy, r(h - 1), 0, s, 0, 0), Next::Fall(h))
            }
        }
        I::GlobalGet(g) => (rop(Rc::GlobalGet, *g, 0, r(h), 0, 0), Next::Fall(h + 1)),
        I::GlobalSet(g) => {
            need!(1);
            (rop(Rc::GlobalSet, *g, r(h - 1), 0, 0, 0), Next::Fall(h - 1))
        }
        I::Call(f) => {
            let ty = module
                .func_type(*f)
                .ok_or_else(|| format!("call target {f} out of range"))?;
            let p = widths::slot_count(&ty.params);
            let res = widths::slot_count(&ty.results);
            need!(p);
            let arg_base = r(h - p);
            let op = if *f < imported {
                rop(Rc::CallHost, *f, arg_base, 0, 0, 0)
            } else {
                rop(Rc::CallGuest, *f - imported, arg_base, 0, 0, 0)
            };
            (op, Next::Fall(h - p + res))
        }
        I::CallIndirect { type_idx, .. } => {
            let ty = module
                .types
                .get(*type_idx as usize)
                .ok_or_else(|| format!("call_indirect type {type_idx} out of range"))?;
            let p = widths::slot_count(&ty.params);
            let res = widths::slot_count(&ty.results);
            need!(p + 1);
            (
                rop(Rc::CallIndirect, *type_idx, r(h - 1 - p), r(h - 1), 0, 0),
                Next::Fall(h - 1 - p + res),
            )
        }

        // Memory.
        I::I32Load(m) | I::F32Load(m) => ld!(Rc::Load32, m),
        I::I64Load(m) | I::F64Load(m) => ld!(Rc::Load64, m),
        I::I32Load8S(m) => ld!(Rc::Load8S32, m),
        I::I32Load8U(m) => ld!(Rc::Load8U32, m),
        I::I32Load16S(m) => ld!(Rc::Load16S32, m),
        I::I32Load16U(m) => ld!(Rc::Load16U32, m),
        I::I64Load8S(m) => ld!(Rc::Load8S64, m),
        I::I64Load8U(m) => ld!(Rc::Load8U64, m),
        I::I64Load16S(m) => ld!(Rc::Load16S64, m),
        I::I64Load16U(m) => ld!(Rc::Load16U64, m),
        I::I64Load32S(m) => ld!(Rc::Load32S64, m),
        I::I64Load32U(m) => ld!(Rc::Load32U64, m),
        I::V128Load(m) => {
            need!(1);
            (
                rop(Rc::V128Load, r(h - 1), 0, r(h - 1), 0, m.offset as u64),
                Next::Fall(h + 1),
            )
        }
        I::I32Store(m) | I::F32Store(m) | I::I64Store32(m) => st!(Rc::Store32, m),
        I::I64Store(m) | I::F64Store(m) => st!(Rc::Store64, m),
        I::I32Store8(m) | I::I64Store8(m) => st!(Rc::Store8, m),
        I::I32Store16(m) | I::I64Store16(m) => st!(Rc::Store16, m),
        I::V128Store(m) => {
            need!(3);
            (
                rop(Rc::V128Store, r(h - 3), r(h - 2), 0, 0, m.offset as u64),
                Next::Fall(h - 3),
            )
        }
        I::MemorySize => (rop(Rc::MemSize, 0, 0, r(h), 0, 0), Next::Fall(h + 1)),
        I::MemoryGrow => un!(Rc::MemGrow),
        I::MemoryCopy => {
            need!(3);
            (
                rop(Rc::MemCopy, r(h - 3), r(h - 2), r(h - 1), 0, 0),
                Next::Fall(h - 3),
            )
        }
        I::MemoryFill => {
            need!(3);
            (
                rop(Rc::MemFill, r(h - 3), r(h - 2), r(h - 1), 0, 0),
                Next::Fall(h - 3),
            )
        }

        // Constants.
        I::I32Const(v) => cst!(*v as u32 as u64),
        I::I64Const(v) => cst!(*v as u64),
        I::F32Const(v) => cst!(v.to_bits() as u64),
        I::F64Const(v) => cst!(v.to_bits()),
        I::V128Const(bytes) => {
            let idx = v128_pool.len() as u32;
            v128_pool.push(u128::from_le_bytes(*bytes));
            (rop(Rc::V128Const, idx, 0, r(h), 0, 0), Next::Fall(h + 2))
        }

        // i32.
        I::I32Eqz => un!(Rc::Eqz32),
        I::I32Eq => cmp!(Rc::Cmp32, Cmp::Eq.to_byte()),
        I::I32Ne => cmp!(Rc::Cmp32, Cmp::Ne.to_byte()),
        I::I32LtS => cmp!(Rc::Cmp32, Cmp::LtS.to_byte()),
        I::I32LtU => cmp!(Rc::Cmp32, Cmp::LtU.to_byte()),
        I::I32GtS => cmp!(Rc::Cmp32, Cmp::GtS.to_byte()),
        I::I32GtU => cmp!(Rc::Cmp32, Cmp::GtU.to_byte()),
        I::I32LeS => cmp!(Rc::Cmp32, Cmp::LeS.to_byte()),
        I::I32LeU => cmp!(Rc::Cmp32, Cmp::LeU.to_byte()),
        I::I32GeS => cmp!(Rc::Cmp32, Cmp::GeS.to_byte()),
        I::I32GeU => cmp!(Rc::Cmp32, Cmp::GeU.to_byte()),
        I::I32Clz => un!(Rc::Clz32),
        I::I32Ctz => un!(Rc::Ctz32),
        I::I32Popcnt => un!(Rc::Popcnt32),
        I::I32Add => bin!(Rc::Add32),
        I::I32Sub => bin!(Rc::Sub32),
        I::I32Mul => bin!(Rc::Mul32),
        I::I32DivS => bin!(Rc::DivS32),
        I::I32DivU => bin!(Rc::DivU32),
        I::I32RemS => bin!(Rc::RemS32),
        I::I32RemU => bin!(Rc::RemU32),
        I::I32And => bin!(Rc::And32),
        I::I32Or => bin!(Rc::Or32),
        I::I32Xor => bin!(Rc::Xor32),
        I::I32Shl => bin!(Rc::Shl32),
        I::I32ShrS => bin!(Rc::ShrS32),
        I::I32ShrU => bin!(Rc::ShrU32),
        I::I32Rotl => bin!(Rc::Rotl32),
        I::I32Rotr => bin!(Rc::Rotr32),

        // i64.
        I::I64Eqz => un!(Rc::Eqz64),
        I::I64Eq => cmp!(Rc::Cmp64, Cmp::Eq.to_byte()),
        I::I64Ne => cmp!(Rc::Cmp64, Cmp::Ne.to_byte()),
        I::I64LtS => cmp!(Rc::Cmp64, Cmp::LtS.to_byte()),
        I::I64LtU => cmp!(Rc::Cmp64, Cmp::LtU.to_byte()),
        I::I64GtS => cmp!(Rc::Cmp64, Cmp::GtS.to_byte()),
        I::I64GtU => cmp!(Rc::Cmp64, Cmp::GtU.to_byte()),
        I::I64LeS => cmp!(Rc::Cmp64, Cmp::LeS.to_byte()),
        I::I64LeU => cmp!(Rc::Cmp64, Cmp::LeU.to_byte()),
        I::I64GeS => cmp!(Rc::Cmp64, Cmp::GeS.to_byte()),
        I::I64GeU => cmp!(Rc::Cmp64, Cmp::GeU.to_byte()),
        I::I64Clz => un!(Rc::Clz64),
        I::I64Ctz => un!(Rc::Ctz64),
        I::I64Popcnt => un!(Rc::Popcnt64),
        I::I64Add => bin!(Rc::Add64),
        I::I64Sub => bin!(Rc::Sub64),
        I::I64Mul => bin!(Rc::Mul64),
        I::I64DivS => bin!(Rc::DivS64),
        I::I64DivU => bin!(Rc::DivU64),
        I::I64RemS => bin!(Rc::RemS64),
        I::I64RemU => bin!(Rc::RemU64),
        I::I64And => bin!(Rc::And64),
        I::I64Or => bin!(Rc::Or64),
        I::I64Xor => bin!(Rc::Xor64),
        I::I64Shl => bin!(Rc::Shl64),
        I::I64ShrS => bin!(Rc::ShrS64),
        I::I64ShrU => bin!(Rc::ShrU64),
        I::I64Rotl => bin!(Rc::Rotl64),
        I::I64Rotr => bin!(Rc::Rotr64),

        // f32.
        I::F32Eq => cmp!(Rc::CmpF32, FEQ),
        I::F32Ne => cmp!(Rc::CmpF32, FNE),
        I::F32Lt => cmp!(Rc::CmpF32, FLT),
        I::F32Gt => cmp!(Rc::CmpF32, FGT),
        I::F32Le => cmp!(Rc::CmpF32, FLE),
        I::F32Ge => cmp!(Rc::CmpF32, FGE),
        I::F32Abs => un!(Rc::AbsF32),
        I::F32Neg => un!(Rc::NegF32),
        I::F32Ceil => un!(Rc::CeilF32),
        I::F32Floor => un!(Rc::FloorF32),
        I::F32Trunc => un!(Rc::TruncF32),
        I::F32Nearest => un!(Rc::NearestF32),
        I::F32Sqrt => un!(Rc::SqrtF32),
        I::F32Add => bin!(Rc::AddF32),
        I::F32Sub => bin!(Rc::SubF32),
        I::F32Mul => bin!(Rc::MulF32),
        I::F32Div => bin!(Rc::DivF32),
        I::F32Min => bin!(Rc::MinF32),
        I::F32Max => bin!(Rc::MaxF32),
        I::F32Copysign => bin!(Rc::CopysignF32),

        // f64.
        I::F64Eq => cmp!(Rc::CmpF64, FEQ),
        I::F64Ne => cmp!(Rc::CmpF64, FNE),
        I::F64Lt => cmp!(Rc::CmpF64, FLT),
        I::F64Gt => cmp!(Rc::CmpF64, FGT),
        I::F64Le => cmp!(Rc::CmpF64, FLE),
        I::F64Ge => cmp!(Rc::CmpF64, FGE),
        I::F64Abs => un!(Rc::AbsF64),
        I::F64Neg => un!(Rc::NegF64),
        I::F64Ceil => un!(Rc::CeilF64),
        I::F64Floor => un!(Rc::FloorF64),
        I::F64Trunc => un!(Rc::TruncF64),
        I::F64Nearest => un!(Rc::NearestF64),
        I::F64Sqrt => un!(Rc::SqrtF64),
        I::F64Add => bin!(Rc::AddF64),
        I::F64Sub => bin!(Rc::SubF64),
        I::F64Mul => bin!(Rc::MulF64),
        I::F64Div => bin!(Rc::DivF64),
        I::F64Min => bin!(Rc::MinF64),
        I::F64Max => bin!(Rc::MaxF64),
        I::F64Copysign => bin!(Rc::CopysignF64),

        // Conversions. The four reinterpretations are no-ops on raw slots.
        I::I32WrapI64 => un!(Rc::Wrap64),
        I::I32TruncF32S => un!(Rc::TruncF32S32),
        I::I32TruncF32U => un!(Rc::TruncF32U32),
        I::I32TruncF64S => un!(Rc::TruncF64S32),
        I::I32TruncF64U => un!(Rc::TruncF64U32),
        I::I64ExtendI32S => un!(Rc::ExtS3264),
        I::I64ExtendI32U => un!(Rc::ExtU3264),
        I::I64TruncF32S => un!(Rc::TruncF32S64),
        I::I64TruncF32U => un!(Rc::TruncF32U64),
        I::I64TruncF64S => un!(Rc::TruncF64S64),
        I::I64TruncF64U => un!(Rc::TruncF64U64),
        I::F32ConvertI32S => un!(Rc::ConvS32F32),
        I::F32ConvertI32U => un!(Rc::ConvU32F32),
        I::F32ConvertI64S => un!(Rc::ConvS64F32),
        I::F32ConvertI64U => un!(Rc::ConvU64F32),
        I::F32DemoteF64 => un!(Rc::Demote),
        I::F64ConvertI32S => un!(Rc::ConvS32F64),
        I::F64ConvertI32U => un!(Rc::ConvU32F64),
        I::F64ConvertI64S => un!(Rc::ConvS64F64),
        I::F64ConvertI64U => un!(Rc::ConvU64F64),
        I::F64PromoteF32 => un!(Rc::Promote),
        I::I32ReinterpretF32 | I::I64ReinterpretF64 | I::F32ReinterpretI32
        | I::F64ReinterpretI64 => {
            need!(1);
            (rop(Rc::Nop, 0, 0, 0, 0, 0), Next::Fall(h))
        }
        I::I32Extend8S => un!(Rc::Ext8S32),
        I::I32Extend16S => un!(Rc::Ext16S32),
        I::I64Extend8S => un!(Rc::Ext8S64),
        I::I64Extend16S => un!(Rc::Ext16S64),
        I::I64Extend32S => un!(Rc::Ext32S64),

        // SIMD. i32x4/f32x4 splats broadcast the same low 32 bits, and
        // i64x2/f64x2 the same 64 bits, so each pair shares an opcode
        // (same for the 32-bit lane extracts).
        I::I32x4Splat | I::F32x4Splat => {
            need!(1);
            (rop(Rc::Splat32, r(h - 1), 0, r(h - 1), 0, 0), Next::Fall(h + 1))
        }
        I::I64x2Splat | I::F64x2Splat => {
            need!(1);
            (rop(Rc::Splat64, r(h - 1), 0, r(h - 1), 0, 0), Next::Fall(h + 1))
        }
        I::I32x4ExtractLane(l) | I::F32x4ExtractLane(l) => {
            need!(2);
            (
                rop(Rc::Extract32, r(h - 2), 0, r(h - 2), *l & 3, 0),
                Next::Fall(h - 1),
            )
        }
        I::F64x2ExtractLane(l) => {
            need!(2);
            (
                rop(Rc::Extract64, r(h - 2), 0, r(h - 2), *l & 1, 0),
                Next::Fall(h - 1),
            )
        }
        I::F64x2ReplaceLane(l) => {
            need!(3);
            (
                rop(Rc::Replace64, r(h - 3), r(h - 1), r(h - 3), *l & 1, 0),
                Next::Fall(h - 1),
            )
        }
        I::I32x4Add => vbin!(Rc::AddI32x4),
        I::I32x4Sub => vbin!(Rc::SubI32x4),
        I::I32x4Mul => vbin!(Rc::MulI32x4),
        I::F32x4Add => vbin!(Rc::AddF32x4),
        I::F32x4Sub => vbin!(Rc::SubF32x4),
        I::F32x4Mul => vbin!(Rc::MulF32x4),
        I::F32x4Div => vbin!(Rc::DivF32x4),
        I::F64x2Add => vbin!(Rc::AddF64x2),
        I::F64x2Sub => vbin!(Rc::SubF64x2),
        I::F64x2Mul => vbin!(Rc::MulF64x2),
        I::F64x2Div => vbin!(Rc::DivF64x2),
        I::F64x2Eq => {
            need!(4);
            (rop(Rc::CmpF64x2, r(h - 4), r(h - 2), r(h - 4), FEQ, 0), Next::Fall(h - 2))
        }
        I::F64x2Ne => {
            need!(4);
            (rop(Rc::CmpF64x2, r(h - 4), r(h - 2), r(h - 4), FNE, 0), Next::Fall(h - 2))
        }
        I::F64x2Lt => {
            need!(4);
            (rop(Rc::CmpF64x2, r(h - 4), r(h - 2), r(h - 4), FLT, 0), Next::Fall(h - 2))
        }
        I::F64x2Gt => {
            need!(4);
            (rop(Rc::CmpF64x2, r(h - 4), r(h - 2), r(h - 4), FGT, 0), Next::Fall(h - 2))
        }
        I::F64x2Le => {
            need!(4);
            (rop(Rc::CmpF64x2, r(h - 4), r(h - 2), r(h - 4), FLE, 0), Next::Fall(h - 2))
        }
        I::F64x2Ge => {
            need!(4);
            (rop(Rc::CmpF64x2, r(h - 4), r(h - 2), r(h - 4), FGE, 0), Next::Fall(h - 2))
        }
        I::V128And => vbin!(Rc::VAnd),
        I::V128Or => vbin!(Rc::VOr),
        I::V128Xor => vbin!(Rc::VXor),
        I::V128Not => {
            need!(2);
            (rop(Rc::VNot, r(h - 2), 0, r(h - 2), 0, 0), Next::Fall(h))
        }
        I::V128AnyTrue => {
            need!(2);
            (rop(Rc::VAnyTrue, r(h - 2), 0, r(h - 2), 0, 0), Next::Fall(h - 1))
        }
        I::I32x4AllTrue => {
            need!(2);
            (rop(Rc::AllTrueI32x4, r(h - 2), 0, r(h - 2), 0, 0), Next::Fall(h - 1))
        }
        I::I32x4Bitmask => {
            need!(2);
            (rop(Rc::BitmaskI32x4, r(h - 2), 0, r(h - 2), 0, 0), Next::Fall(h - 1))
        }

        other => {
            return Err(format!("control instruction {other:?} in straight-line position"));
        }
    })
}

// --- register peephole ---

/// Destination registers an op writes, for the store-window safety scan.
/// `None` = writes nothing; `Some((start, width))` = contiguous slots.
/// Ops outside the scan's allowlist are rejected before this is consulted.
fn writes(op: &RegOp) -> Option<(u32, u32)> {
    use Rc::*;
    match op.code {
        Nop | Store8 | Store16 | Store32 | Store64 | V128Store | Store32Shl | Store64Shl
        | Store32ShlK | Store64ShlK | GlobalSet | MemCopy | MemFill => None,
        Copy | GlobalGet | Const | MemSize | MemGrow | Eqz32 | Cmp32 | Clz32 | Ctz32
        | Popcnt32 | Add32 | Sub32 | Mul32 | DivS32 | DivU32 | RemS32 | RemU32 | And32
        | Or32 | Xor32 | Shl32 | ShrS32 | ShrU32 | Rotl32 | Rotr32 | AddK32 | ShlK32
        | AddShl32 | Eqz64 | Cmp64 | Clz64 | Ctz64 | Popcnt64 | Add64 | Sub64 | Mul64
        | DivS64 | DivU64 | RemS64 | RemU64 | And64 | Or64 | Xor64 | Shl64 | ShrS64
        | ShrU64 | Rotl64 | Rotr64 | CmpF32 | AbsF32 | NegF32 | CeilF32 | FloorF32
        | TruncF32 | NearestF32 | SqrtF32 | AddF32 | SubF32 | MulF32 | DivF32 | MinF32
        | MaxF32 | CopysignF32 | CmpF64 | AbsF64 | NegF64 | CeilF64 | FloorF64 | TruncF64
        | NearestF64 | SqrtF64 | AddF64 | SubF64 | MulF64 | DivF64 | MinF64 | MaxF64
        | CopysignF64 | Fma64 | Wrap64 | TruncF32S32 | TruncF32U32 | TruncF64S32
        | TruncF64U32 | ExtS3264 | ExtU3264 | TruncF32S64 | TruncF32U64 | TruncF64S64
        | TruncF64U64 | ConvS32F32 | ConvU32F32 | ConvS64F32 | ConvU64F32 | Demote
        | ConvS32F64 | ConvU32F64 | ConvS64F64 | ConvU64F64 | Promote | Ext8S32 | Ext16S32
        | Ext8S64 | Ext16S64 | Ext32S64 | Extract32 | Extract64 | VAnyTrue | AllTrueI32x4
        | BitmaskI32x4 | Cmp32K | AddK64 | Cmp64K | Load32 | Load64 | Load8S32 | Load8U32 | Load16S32
        | Load16U32 | Load8S64 | Load8U64 | Load16S64 | Load16U64 | Load32S64 | Load32U64
        | Load32Shl | Load64Shl | Load32ShlK | Load64ShlK => Some((op.c, 1)),
        Copy2 | V128Const | V128Load | Splat32 | Splat64 | Replace64 | AddI32x4 | SubI32x4
        | MulI32x4 | AddF32x4 | SubF32x4 | MulF32x4 | DivF32x4 | AddF64x2 | SubF64x2
        | MulF64x2 | DivF64x2 | CmpF64x2 | VAnd | VOr | VXor | VNot => Some((op.c, 2)),
        Select => Some((op.a, 1)),
        Select2 => Some((op.a, 2)),
        // Control / calls never appear inside a scan window.
        Jump | Br | BrIf | BrIfZ | BrIfCmp32 | BrIfCmp32K | BrTable | Return | Unreachable
        | CallGuest | CallHost | CallIndirect => None,
    }
}

/// True if the op is safe to sit inside a store-fusion window: pure
/// straight-line data flow (no control transfer, no calls — calls can
/// re-enter the guest and observe memory ordering). The superblock tier
/// reuses this as its "plain fallthrough step" predicate: exactly these
/// ops can run inside a compiled chain without touching the frame stack
/// or the instruction pointer.
pub(crate) fn window_safe(op: &RegOp) -> bool {
    use Rc::*;
    !matches!(
        op.code,
        Jump | Br
            | BrIf
            | BrIfZ
            | BrIfCmp32
            | BrIfCmp32K
            | BrTable
            | Return
            | Unreachable
            | CallGuest
            | CallHost
            | CallIndirect
    )
}

/// True if the op can be discarded when its result is dead: no traps, no
/// memory or global writes, no control effects. (Float arithmetic never
/// traps in Wasm; integer div/rem and float→int truncation do.)
fn is_pure(code: Rc) -> bool {
    use Rc::*;
    matches!(
        code,
        Copy | Copy2
            | Const
            | V128Const
            | GlobalGet
            | MemSize
            | Eqz32
            | Cmp32
            | Cmp32K
            | Clz32
            | Ctz32
            | Popcnt32
            | Add32
            | Sub32
            | Mul32
            | And32
            | Or32
            | Xor32
            | Shl32
            | ShrS32
            | ShrU32
            | Rotl32
            | Rotr32
            | AddK32
            | ShlK32
            | AddShl32
            | AddK64
            | Cmp64K
            | Eqz64
            | Cmp64
            | Clz64
            | Ctz64
            | Popcnt64
            | Add64
            | Sub64
            | Mul64
            | And64
            | Or64
            | Xor64
            | Shl64
            | ShrS64
            | ShrU64
            | Rotl64
            | Rotr64
            | CmpF32
            | AbsF32
            | NegF32
            | CeilF32
            | FloorF32
            | TruncF32
            | NearestF32
            | SqrtF32
            | AddF32
            | SubF32
            | MulF32
            | DivF32
            | MinF32
            | MaxF32
            | CopysignF32
            | CmpF64
            | AbsF64
            | NegF64
            | CeilF64
            | FloorF64
            | TruncF64
            | NearestF64
            | SqrtF64
            | AddF64
            | SubF64
            | MulF64
            | DivF64
            | MinF64
            | MaxF64
            | CopysignF64
            | Fma64
            | Wrap64
            | ExtS3264
            | ExtU3264
            | ConvS32F32
            | ConvU32F32
            | ConvS64F32
            | ConvU64F32
            | Demote
            | ConvS32F64
            | ConvU32F64
            | ConvS64F64
            | ConvU64F64
            | Promote
            | Ext8S32
            | Ext16S32
            | Ext8S64
            | Ext16S64
            | Ext32S64
    )
}

/// True if executing `op` reads register `t` (exact, per opcode family —
/// including branch unwind source ranges, return result ranges, and a
/// conservative open range for call arguments).
fn reads_reg(op: &RegOp, f: &RegFunc, t: u32) -> bool {
    use Rc::*;
    let r1 = |r: u32| r == t;
    let r2 = |r: u32| r == t || r + 1 == t;
    let range = |s: u32, n: u32| s <= t && t < s.saturating_add(n);
    let unwind_reads = |imm: u64| {
        let (src, _, arity) = unwind_parts(imm);
        range(src as u32, arity as u32)
    };
    match op.code {
        Nop | Unreachable | Jump | Const | MemSize | GlobalGet | V128Const => false,
        Br => unwind_reads(op.imm),
        BrIf | BrIfZ => r1(op.a) || unwind_reads(op.imm),
        BrIfCmp32 => r1(op.a) || r1(op.b) || unwind_reads(op.imm),
        BrIfCmp32K => r1(op.a) || unwind_reads(op.imm),
        BrTable => {
            if r1(op.a) {
                return true;
            }
            let start = op.b as usize;
            let end = (start + op.c as usize + 1).min(f.dest_pool.len());
            f.dest_pool[start.min(end)..end]
                .iter()
                .any(|d| unwind_reads(d.unwind))
        }
        Return => range(op.a, f.result_slots),
        // Calls consume their argument window; its width depends on the
        // callee, so treat everything at or above the window as read.
        CallGuest | CallHost => t >= op.b,
        CallIndirect => r1(op.c) || t >= op.b,
        Copy => r1(op.a),
        Copy2 => r2(op.a),
        Select => r1(op.a) || r1(op.b) || r1(op.c),
        Select2 => r2(op.a) || r2(op.b) || r1(op.c),
        GlobalSet => r1(op.b),
        Load32 | Load64 | Load8S32 | Load8U32 | Load16S32 | Load16U32 | Load8S64 | Load8U64
        | Load16S64 | Load16U64 | Load32S64 | Load32U64 | V128Load => r1(op.a),
        Store8 | Store16 | Store32 | Store64 => r1(op.a) || r1(op.b),
        V128Store => r1(op.a) || r2(op.b),
        Load32Shl | Load64Shl => r1(op.a) || r1(op.b),
        Load32ShlK | Load64ShlK => r1(op.a),
        Store32Shl | Store64Shl => r1(op.a) || r1(op.b) || r1(op.c),
        Store32ShlK | Store64ShlK => r1(op.a) || r1(op.b),
        MemGrow => r1(op.a),
        MemCopy | MemFill => r1(op.a) || r1(op.b) || r1(op.c),
        Eqz32 | Clz32 | Ctz32 | Popcnt32 | Eqz64 | Clz64 | Ctz64 | Popcnt64 | AbsF32
        | NegF32 | CeilF32 | FloorF32 | TruncF32 | NearestF32 | SqrtF32 | AbsF64 | NegF64
        | CeilF64 | FloorF64 | TruncF64 | NearestF64 | SqrtF64 | Wrap64 | TruncF32S32
        | TruncF32U32 | TruncF64S32 | TruncF64U32 | ExtS3264 | ExtU3264 | TruncF32S64
        | TruncF32U64 | TruncF64S64 | TruncF64U64 | ConvS32F32 | ConvU32F32 | ConvS64F32
        | ConvU64F32 | Demote | ConvS32F64 | ConvU32F64 | ConvS64F64 | ConvU64F64
        | Promote | Ext8S32 | Ext16S32 | Ext8S64 | Ext16S64 | Ext32S64 | AddK32 | ShlK32
        | Cmp32K | AddK64 | Cmp64K | Splat32 | Splat64 => r1(op.a),
        Cmp32 | Cmp64 | CmpF32 | CmpF64 | Add32 | Sub32 | Mul32 | DivS32 | DivU32 | RemS32
        | RemU32 | And32 | Or32 | Xor32 | Shl32 | ShrS32 | ShrU32 | Rotl32 | Rotr32
        | Add64 | Sub64 | Mul64 | DivS64 | DivU64 | RemS64 | RemU64 | And64 | Or64
        | Xor64 | Shl64 | ShrS64 | ShrU64 | Rotl64 | Rotr64 | AddF32 | SubF32 | MulF32
        | DivF32 | MinF32 | MaxF32 | CopysignF32 | AddF64 | SubF64 | MulF64 | DivF64
        | MinF64 | MaxF64 | CopysignF64 | AddShl32 => r1(op.a) || r1(op.b),
        Fma64 => r1(op.a) || r1(op.b) || r1(op.c),
        Extract32 | Extract64 | VAnyTrue | AllTrueI32x4 | BitmaskI32x4 | VNot => r2(op.a),
        Replace64 => r2(op.a) || r1(op.b),
        AddI32x4 | SubI32x4 | MulI32x4 | AddF32x4 | SubF32x4 | MulF32x4 | DivF32x4
        | AddF64x2 | SubF64x2 | MulF64x2 | DivF64x2 | CmpF64x2 | VAnd | VOr | VXor => {
            r2(op.a) || r2(op.b)
        }
    }
}

/// True if `op` unconditionally overwrites register `t` (kills the value
/// that was there). `Select`/`Select2` write conditionally and so never
/// count.
fn definitely_writes(op: &RegOp, t: u32) -> bool {
    if matches!(op.code, Rc::Select | Rc::Select2) {
        return false;
    }
    writes(op).is_some_and(|(s, w)| s <= t && t < s + w)
}

/// Is the value written to register `t` at op `def` possibly read later?
/// Uses the static heights as the liveness oracle: at an op whose entry
/// height is `h`, every register `>= n_local_slots + h` is dead (the
/// operand stack has popped below it; any later value at that offset is a
/// fresh definition). Conservative on calls, unknown heights and bounded
/// scan length.
fn value_live(f: &RegFunc, hs: &[u32], def: usize, t: u32) -> bool {
    use Rc::*;
    let h0 = f.n_local_slots;
    if t < h0 {
        return true; // locals are always live (the heights oracle only covers temps)
    }
    // Whether the value is (possibly) live when control enters op `j`.
    let live_at = |j: u32| -> bool {
        match hs.get(j as usize) {
            Some(&h) if h != u32::MAX => t < h0 + h,
            _ => true, // unknown height: conservative
        }
    };
    let mut j = def + 1;
    for _ in 0..64 {
        if j >= f.code.len() {
            return true; // fell off the end: conservative (corrupt input)
        }
        // Check the op's own reads before the height oracle: peephole
        // fusion can relocate a read below the height its operand was
        // born at (the fused op's entry height is patched, but a stale
        // caller-cached `hs` must still never hide a direct read).
        let op = &f.code[j];
        if reads_reg(op, f, t) {
            return true;
        }
        if !live_at(j as u32) {
            return false;
        }
        if definitely_writes(op, t) {
            return false;
        }
        match op.code {
            Jump | Br => return live_at(op.c),
            BrIf | BrIfZ | BrIfCmp32 | BrIfCmp32K => {
                if live_at(op.c) {
                    return true; // maybe live on the taken path
                }
                j += 1; // dead if taken; keep scanning the fallthrough
            }
            BrTable => {
                let start = op.b as usize;
                let end = (start + op.c as usize + 1).min(f.dest_pool.len());
                return f.dest_pool[start.min(end)..end].iter().any(|d| live_at(d.target));
            }
            Return | Unreachable => return false,
            _ => j += 1,
        }
    }
    true // scan budget exhausted: conservative
}

/// Copy/constant forwarding over straight-line regions: rewrites source
/// registers to read through trivial copies (`local.get` residue) and
/// folds known constants into immediate forms (`AddK32`, `ShlK32`,
/// `Cmp32K`, `BrIfCmp32K`, multiply-by-power-of-two into shifts). State
/// resets at jump targets and across calls. Returns true if changed.
fn forward(f: &mut RegFunc) -> bool {
    use Rc::*;
    let targets = jump_targets(f);
    #[derive(Clone, Copy, PartialEq)]
    enum Val {
        Opaque,
        /// Holds the same value as register `.0` (valid while the source
        /// generation matches).
        CopyOf(u32, u32),
        Const(u64),
    }
    let n = f.frame_size as usize;
    let mut avail: Vec<Val> = vec![Val::Opaque; n];
    let mut gen: Vec<u32> = vec![0; n];
    let mut changed = false;

    for i in 0..f.code.len() {
        if targets[i] {
            avail.iter_mut().for_each(|v| *v = Val::Opaque);
        }
        let op = &mut f.code[i];
        // 1. Forward one-slot source registers through known copies.
        let fwd = |r: &mut u32, avail: &[Val], gen: &[u32], changed: &mut bool| {
            if let Some(Val::CopyOf(x, g)) = avail.get(*r as usize).copied() {
                if gen[x as usize] == g && *r != x {
                    *r = x;
                    *changed = true;
                }
            }
        };
        let kconst = |r: u32, avail: &[Val]| match avail.get(r as usize) {
            Some(Val::Const(k)) => Some(*k),
            _ => None,
        };
        match op.code {
            // One-slot sources in `a`.
            Copy | GlobalSet | Load32 | Load64 | Load8S32 | Load8U32 | Load16S32
            | Load16U32 | Load8S64 | Load8U64 | Load16S64 | Load16U64 | Load32S64
            | Load32U64 | V128Load | MemGrow | Eqz32 | Clz32 | Ctz32 | Popcnt32 | Eqz64
            | Clz64 | Ctz64 | Popcnt64 | AbsF32 | NegF32 | CeilF32 | FloorF32 | TruncF32
            | NearestF32 | SqrtF32 | AbsF64 | NegF64 | CeilF64 | FloorF64 | TruncF64
            | NearestF64 | SqrtF64 | Wrap64 | TruncF32S32 | TruncF32U32 | TruncF64S32
            | TruncF64U32 | ExtS3264 | ExtU3264 | TruncF32S64 | TruncF32U64 | TruncF64S64
            | TruncF64U64 | ConvS32F32 | ConvU32F32 | ConvS64F32 | ConvU64F32 | Demote
            | ConvS32F64 | ConvU32F64 | ConvS64F64 | ConvU64F64 | Promote | Ext8S32
            | Ext16S32 | Ext8S64 | Ext16S64 | Ext32S64 | AddK32 | ShlK32 | Cmp32K
            | AddK64 | Cmp64K | Splat32 | Splat64 | BrIf | BrIfZ | BrIfCmp32K | BrTable => {
                fwd(&mut op.a, &avail, &gen, &mut changed);
            }
            // Two one-slot sources in `a`, `b`.
            Cmp32 | Cmp64 | CmpF32 | CmpF64 | Add32 | Sub32 | Mul32 | DivS32 | DivU32
            | RemS32 | RemU32 | And32 | Or32 | Xor32 | Shl32 | ShrS32 | ShrU32 | Rotl32
            | Rotr32 | Add64 | Sub64 | Mul64 | DivS64 | DivU64 | RemS64 | RemU64 | And64
            | Or64 | Xor64 | Shl64 | ShrS64 | ShrU64 | Rotl64 | Rotr64 | AddF32 | SubF32
            | MulF32 | DivF32 | MinF32 | MaxF32 | CopysignF32 | AddF64 | SubF64 | MulF64
            | DivF64 | MinF64 | MaxF64 | CopysignF64 | AddShl32 | Store8 | Store16
            | Store32 | Store64 | Load32Shl | Load64Shl | BrIfCmp32 => {
                fwd(&mut op.a, &avail, &gen, &mut changed);
                fwd(&mut op.b, &avail, &gen, &mut changed);
            }
            Fma64 => {
                fwd(&mut op.a, &avail, &gen, &mut changed);
                fwd(&mut op.b, &avail, &gen, &mut changed);
            }
            Select => {
                fwd(&mut op.b, &avail, &gen, &mut changed);
                fwd(&mut op.c, &avail, &gen, &mut changed);
            }
            Store32Shl | Store64Shl => {
                fwd(&mut op.a, &avail, &gen, &mut changed);
                fwd(&mut op.b, &avail, &gen, &mut changed);
                fwd(&mut op.c, &avail, &gen, &mut changed);
            }
            Store32ShlK | Store64ShlK => {
                fwd(&mut op.a, &avail, &gen, &mut changed);
                fwd(&mut op.b, &avail, &gen, &mut changed);
            }
            MemCopy | MemFill => {
                fwd(&mut op.a, &avail, &gen, &mut changed);
                fwd(&mut op.b, &avail, &gen, &mut changed);
                fwd(&mut op.c, &avail, &gen, &mut changed);
            }
            CallIndirect => fwd(&mut op.c, &avail, &gen, &mut changed),
            _ => {}
        }
        // 2. Fold known constants into immediate forms.
        match op.code {
            Copy => {
                if let Some(k) = kconst(op.a, &avail) {
                    *op = rop(Const, 0, 0, op.c, 0, k);
                    changed = true;
                } else if op.a == op.c {
                    // Self-copy (a `local.set x; local.get x` round-trip
                    // whose set was forwarded): pure no-op.
                    *op = rop(Nop, 0, 0, 0, 0, 0);
                    changed = true;
                }
            }
            Add32 => {
                if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(AddK32, op.a, k as u32, op.c, 0, 0);
                    changed = true;
                } else if let Some(k) = kconst(op.a, &avail) {
                    *op = rop(AddK32, op.b, k as u32, op.c, 0, 0);
                    changed = true;
                }
            }
            Sub32 => {
                if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(AddK32, op.a, (k as i32).wrapping_neg() as u32, op.c, 0, 0);
                    changed = true;
                }
            }
            Shl32 => {
                if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(ShlK32, op.a, 0, op.c, (k as u32 & 31) as u8, 0);
                    changed = true;
                }
            }
            Mul32 => {
                let shift_of = |k: u64| {
                    let k = k as u32;
                    (k.is_power_of_two()).then(|| k.trailing_zeros() as u8)
                };
                if let Some(s) = kconst(op.b, &avail).and_then(shift_of) {
                    *op = rop(ShlK32, op.a, 0, op.c, s, 0);
                    changed = true;
                } else if let Some(s) = kconst(op.a, &avail).and_then(shift_of) {
                    *op = rop(ShlK32, op.b, 0, op.c, s, 0);
                    changed = true;
                }
            }
            Cmp32 => {
                if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(Cmp32K, op.a, k as u32, op.c, op.aux, 0);
                    changed = true;
                }
            }
            Add64 => {
                if let (Some(ka), Some(kb)) = (kconst(op.a, &avail), kconst(op.b, &avail)) {
                    *op = rop(Const, 0, 0, op.c, 0, ka.wrapping_add(kb));
                    changed = true;
                } else if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(AddK64, op.a, 0, op.c, 0, k);
                    changed = true;
                } else if let Some(k) = kconst(op.a, &avail) {
                    *op = rop(AddK64, op.b, 0, op.c, 0, k);
                    changed = true;
                }
            }
            Sub64 => {
                if let (Some(ka), Some(kb)) = (kconst(op.a, &avail), kconst(op.b, &avail)) {
                    *op = rop(Const, 0, 0, op.c, 0, ka.wrapping_sub(kb));
                    changed = true;
                } else if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(AddK64, op.a, 0, op.c, 0, (k as i64).wrapping_neg() as u64);
                    changed = true;
                }
            }
            Cmp64 => {
                if let Some(k) = kconst(op.b, &avail) {
                    *op = rop(Cmp64K, op.a, 0, op.c, op.aux, k);
                    changed = true;
                }
            }
            // Float const-const arithmetic folds at compile time. This is
            // bit-exact versus runtime evaluation: both run the same IEEE
            // op on the same host, so even NaN payload propagation agrees.
            AddF32 | SubF32 | MulF32 | DivF32 => {
                if let (Some(ka), Some(kb)) = (kconst(op.a, &avail), kconst(op.b, &avail)) {
                    let (x, y) = (f32::from_bits(ka as u32), f32::from_bits(kb as u32));
                    let r = match op.code {
                        AddF32 => x + y,
                        SubF32 => x - y,
                        MulF32 => x * y,
                        _ => x / y,
                    };
                    *op = rop(Const, 0, 0, op.c, 0, r.to_bits() as u64);
                    changed = true;
                }
            }
            AddF64 | SubF64 | MulF64 | DivF64 => {
                if let (Some(ka), Some(kb)) = (kconst(op.a, &avail), kconst(op.b, &avail)) {
                    let (x, y) = (f64::from_bits(ka), f64::from_bits(kb));
                    let r = match op.code {
                        AddF64 => x + y,
                        SubF64 => x - y,
                        MulF64 => x * y,
                        _ => x / y,
                    };
                    *op = rop(Const, 0, 0, op.c, 0, r.to_bits());
                    changed = true;
                }
            }
            BrIfCmp32 => {
                if let Some(k) = kconst(op.b, &avail) {
                    op.code = BrIfCmp32K;
                    op.b = k as u32;
                    changed = true;
                }
            }
            _ => {}
        }
        // 3. Update the value table for this op's writes.
        let op = f.code[i];
        let clobber = |r: u32, avail: &mut [Val], gen: &mut [u32]| {
            if let Some(g) = gen.get_mut(r as usize) {
                *g += 1;
                avail[r as usize] = Val::Opaque;
            }
        };
        match op.code {
            Copy => {
                clobber(op.c, &mut avail, &mut gen);
                // Record the aliasing only for LOCAL sources: forwarding a
                // read to a stack temporary could create reads above the
                // abstract stack height, which would break the
                // heights-as-liveness oracle every later pass relies on.
                // Locals are always live, so reads of them are always
                // safe to introduce.
                if op.a < f.n_local_slots && (op.a as usize) < n {
                    avail[op.c as usize] = Val::CopyOf(op.a, gen[op.a as usize]);
                }
            }
            Const => {
                clobber(op.c, &mut avail, &mut gen);
                avail[op.c as usize] = Val::Const(op.imm);
            }
            // Calls write an unknown-width result window; drop everything.
            CallGuest | CallHost | CallIndirect => {
                avail.iter_mut().for_each(|v| *v = Val::Opaque);
            }
            _ => {
                if let Some((s, w)) = writes(&op) {
                    for r in s..s + w {
                        clobber(r, &mut avail, &mut gen);
                    }
                }
            }
        }
    }
    changed
}

/// Remove pure ops whose (one-slot, stack-temporary) result is dead per
/// [`value_live`]. Returns true if changed.
fn eliminate(f: &mut RegFunc, hs: &[u32]) -> bool {
    let h0 = f.n_local_slots;
    let mut changed = false;
    for i in 0..f.code.len() {
        let op = f.code[i];
        if op.code == Rc::Nop || !is_pure(op.code) {
            continue;
        }
        let Some((t, w)) = writes(&op) else { continue };
        if t < h0 || w != 1 {
            continue;
        }
        if !value_live(f, hs, i, t) {
            f.code[i] = rop(Rc::Nop, 0, 0, 0, 0, 0);
            changed = true;
        }
    }
    changed
}

/// Fuse addressing patterns the serializable IR cannot express:
///
/// * `[ShlK32 → t][Add32 base + t → d]` → `AddShl32` (the scaled-index
///   address form, reconstructed after constant forwarding turned the
///   guest's multiply into a shift).
/// * `[AddShl32 → t][load addr=t]` → scaled load — covers the i64/f32
///   scaled-index loads the Op-level peephole has no form for (all
///   widths share `Load32Shl`/`Load64Shl`).
/// * `[ShlK32 → t][load addr=t]` → constant-base scaled load.
/// * `[AddShl32 → t] …value ops… [store addr=t]` → scaled store: the
///   classic `a[i] = expr` window where the value computation separates
///   the address from the store.
/// * `[ShlK32 → t][AddK32 t → u] …value ops… [store addr=u]` →
///   constant-base scaled store (`counts[k[i]] += 1` in NPB IS).
///
/// Replaced ops become `Nop` (removed by [`compact`]). Returns true if
/// changed.
///
/// Fusion moves reads *downward*: the fused op at position `k` reads
/// registers the original stream consumed at position `i < k`, where the
/// recorded entry height may be higher. The heights oracle would then
/// wrongly report those source registers dead at `k` and a later
/// [`eliminate`] pass would delete their defining ops. Every fusion
/// therefore raises `hs` over `(i, k]` to the fusion head's entry height
/// (`u32::MAX` propagates as "unknown" via `max`), keeping the oracle
/// sound.
fn peephole(f: &mut RegFunc, hs: &mut [u32]) -> bool {
    use Rc::*;
    let targets = jump_targets(f);
    let max_gap = 12usize;
    let mut changed = false;
    for i in 0..f.code.len() {
        // Sink a one-slot result straight into the register the following
        // Copy moves it to: `[op → t][Copy t → x]` becomes `[op → x]`
        // when the temp dies there — every `local.set` of a computed
        // value. (`Select` writes `a`, `Fma64` reads its destination;
        // both are excluded.)
        if i + 1 < f.code.len() && !targets[i + 1] {
            let nx = f.code[i + 1];
            if nx.code == Copy
                && nx.a != nx.c
                && nx.a >= f.n_local_slots
                && f.code[i].c == nx.a
                && writes(&f.code[i]) == Some((nx.a, 1))
                && !matches!(f.code[i].code, Select | Fma64 | Nop)
                && !value_live(f, hs, i + 1, nx.a)
            {
                f.code[i].c = nx.c;
                f.code[i + 1] = rop(Nop, 0, 0, 0, 0, 0);
                changed = true;
            }
        }
        let (t, fused_addr) = match f.code[i].code {
            AddShl32 => (f.code[i].c, true),
            ShlK32 => (f.code[i].c, false),
            _ => continue,
        };
        if t < f.n_local_slots {
            continue;
        }
        let addr = f.code[i];
        if i + 1 < f.code.len() && !targets[i + 1] {
            let nx = f.code[i + 1];
            // ShlK feeding a plain add of a register base → AddShl32,
            // provided the scaled temp dies with the add.
            if !fused_addr && nx.code == Add32 && (nx.a == t) != (nx.b == t) {
                let base = if nx.a == t { nx.b } else { nx.a };
                if base != t && !value_live(f, hs, i + 1, t) {
                    f.code[i] = rop(Nop, 0, 0, 0, 0, 0);
                    f.code[i + 1] = rop(AddShl32, addr.a, base, nx.c, addr.aux, 0);
                    hs[i + 1] = hs[i + 1].max(hs[i]);
                    changed = true;
                    continue;
                }
            }
            // Adjacent load: address produced then immediately consumed.
            let (is_load, wide_bias) = match nx.code {
                Load32 | Load64 => (true, (nx.imm >> 32) as u32),
                _ => (false, 0),
            };
            if is_load && nx.a == t && (nx.c == t || !value_live(f, hs, i + 1, t)) {
                let offset = nx.imm as u32 as u64;
                let fused = if fused_addr {
                    if wide_bias != 0 {
                        continue; // bias not representable in the Shl form
                    }
                    rop(
                        if nx.code == Load64 { Load64Shl } else { Load32Shl },
                        addr.a,
                        addr.b,
                        nx.c,
                        addr.aux,
                        offset,
                    )
                } else {
                    rop(
                        if nx.code == Load64 { Load64ShlK } else { Load32ShlK },
                        addr.a,
                        0,
                        nx.c,
                        addr.aux,
                        offset | (wide_bias as u64) << 32,
                    )
                };
                f.code[i] = rop(Nop, 0, 0, 0, 0, 0);
                f.code[i + 1] = fused;
                hs[i + 1] = hs[i + 1].max(hs[i]);
                changed = true;
                continue;
            }
        }
        // Store window: [addr → t] (+ AddK for the ShlK form) then value
        // computation, then a store addressing t. Every op in the gap
        // must be pure straight-line flow not touching the address regs.
        let mut j = i + 1;
        let mut bias = 0u32;
        let mut store_addr = t;
        if !fused_addr {
            // ShlK needs the following AddK folding the constant base.
            if j >= f.code.len() || targets[j] || f.code[j].code != AddK32 || f.code[j].a != t
            {
                continue;
            }
            bias = f.code[j].b;
            store_addr = f.code[j].c;
            if store_addr < f.n_local_slots || (store_addr != t && value_live(f, hs, j, t)) {
                continue;
            }
            j += 1;
        }
        // The gap may freely *read* the address source registers (the
        // value computation usually does); it must not write them, and it
        // must not touch the address temporaries at all (their only
        // consumer is the store).
        let srcs_arr = [addr.a, addr.b];
        let addr_srcs: &[u32] = if fused_addr { &srcs_arr } else { &srcs_arr[..1] };
        let temps_arr = [t, store_addr];
        let temps: &[u32] =
            if store_addr != t { &temps_arr } else { &temps_arr[..1] };
        let window_end = (j + max_gap).min(f.code.len());
        let mut found = None;
        while j < window_end {
            if targets[j] || !window_safe(&f.code[j]) {
                break;
            }
            let op = f.code[j];
            if matches!(op.code, Store32 | Store64) && op.a == store_addr {
                found = Some(j);
                break;
            }
            let writes_hit = |g: u32| writes(&op).is_some_and(|(s, w)| s <= g && g < s + w);
            if addr_srcs.iter().any(|&g| writes_hit(g))
                || temps.iter().any(|&g| writes_hit(g) || reads_reg(&op, f, g))
            {
                break;
            }
            j += 1;
        }
        let Some(sj) = found else { continue };
        let st = f.code[sj];
        // The address temp must die at the store.
        if value_live(f, hs, sj, store_addr) {
            continue;
        }
        let offset = st.imm as u32 as u64;
        let fused = if fused_addr {
            rop(
                if st.code == Store64 { Store64Shl } else { Store32Shl },
                addr.a,
                st.b,
                addr.b,
                addr.aux,
                offset,
            )
        } else {
            rop(
                if st.code == Store64 { Store64ShlK } else { Store32ShlK },
                addr.a,
                st.b,
                0,
                addr.aux,
                offset | (bias as u64) << 32,
            )
        };
        f.code[i] = rop(Nop, 0, 0, 0, 0, 0);
        if !fused_addr {
            f.code[i + 1] = rop(Nop, 0, 0, 0, 0, 0);
        }
        f.code[sj] = fused;
        let hs_i = hs[i];
        for h in &mut hs[i + 1..=sj] {
            *h = (*h).max(hs_i);
        }
        changed = true;
    }
    changed
}

/// Op indices that are jump targets (fusion windows must not span them).
fn jump_targets(f: &RegFunc) -> Vec<bool> {
    use Rc::*;
    let mut t = vec![false; f.code.len() + 1];
    let mut mark = |x: u32| {
        if (x as usize) < t.len() {
            t[x as usize] = true;
        }
    };
    for op in &f.code {
        match op.code {
            Jump | Br | BrIf | BrIfZ | BrIfCmp32 | BrIfCmp32K => mark(op.c),
            BrTable => {
                let start = op.b as usize;
                let end = start + op.c as usize + 1;
                for d in f.dest_pool.get(start..end).unwrap_or(&[]) {
                    mark(d.target);
                }
            }
            _ => {}
        }
    }
    t
}

/// Remove `Nop`s, remapping branch targets (including the dest pool) and
/// keeping the per-op entry-height array index-aligned.
fn compact(f: &mut RegFunc, hs: &mut Vec<u32>) {
    use Rc::*;
    if !f.code.iter().any(|op| op.code == Nop) {
        return;
    }
    let mut new_index = vec![0u32; f.code.len() + 1];
    let mut count = 0u32;
    for (i, op) in f.code.iter().enumerate() {
        new_index[i] = count;
        if op.code != Nop {
            count += 1;
        }
    }
    new_index[f.code.len()] = count;
    let remap = |t: u32| new_index.get(t as usize).copied().unwrap_or(count);
    let mut out = Vec::with_capacity(count as usize);
    let mut out_h = Vec::with_capacity(count as usize);
    for (i, op) in f.code.iter().enumerate() {
        let mut op = *op;
        match op.code {
            Nop => continue,
            Jump | Br | BrIf | BrIfZ | BrIfCmp32 | BrIfCmp32K => op.c = remap(op.c),
            _ => {}
        }
        out.push(op);
        out_h.push(hs.get(i).copied().unwrap_or(u32::MAX));
    }
    for d in &mut f.dest_pool {
        d.target = remap(d.target);
    }
    f.code = out;
    *hs = out_h;
}

/// Prove the register stream safe for the executor's unchecked frame
/// accesses: every register operand within `frame_size`, every branch
/// target and pool reference in range, every unwind copy in-frame. Calls
/// and globals are checked against the module's static tables; the
/// remaining dynamic quantities (memory bounds, table contents) are
/// checked by the handlers at run time.
pub(crate) fn verify(f: &RegFunc, module: &Module) -> Result<(), String> {
    use Rc::*;
    let fs = f.frame_size;
    let len = f.code.len() as u32;
    let err = |i: usize, what: &str| Err(format!("regalloc verify: op {i}: {what}"));
    if f.n_local_slots > fs || f.param_slots > f.n_local_slots {
        return Err("regalloc verify: inconsistent frame layout".into());
    }
    let imported = module.num_imported_funcs() as u32;
    for (i, op) in f.code.iter().enumerate() {
        // Register-width demands per field for this opcode: (reg, slots).
        let mut regs: [(u32, u32); 3] = [(0, 0); 3];
        let mut target: Option<u32> = None;
        let mut unwind = 0u64;
        match op.code {
            Nop | Unreachable | Jump => {
                if op.code == Jump {
                    target = Some(op.c);
                }
            }
            Br => {
                target = Some(op.c);
                unwind = op.imm;
            }
            BrIf | BrIfZ => {
                regs[0] = (op.a, 1);
                target = Some(op.c);
                unwind = op.imm;
            }
            BrIfCmp32 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                target = Some(op.c);
                unwind = op.imm;
            }
            BrIfCmp32K => {
                regs[0] = (op.a, 1);
                target = Some(op.c);
                unwind = op.imm;
            }
            BrTable => {
                regs[0] = (op.a, 1);
                let start = op.b as usize;
                let end = start
                    .checked_add(op.c as usize)
                    .and_then(|e| e.checked_add(1))
                    .ok_or("regalloc verify: dest pool overflow")?;
                let pool = f
                    .dest_pool
                    .get(start..end)
                    .ok_or("regalloc verify: dest pool range out of bounds")?;
                for d in pool {
                    if d.target >= len {
                        return err(i, "br_table target out of range");
                    }
                    let (src, dst, arity) = unwind_parts(d.unwind);
                    if src + arity > fs as usize || dst + arity > fs as usize {
                        return err(i, "br_table unwind out of frame");
                    }
                }
            }
            Return => {
                if op.a + f.result_slots > fs {
                    return err(i, "return source out of frame");
                }
            }
            CallGuest => {
                if op.a as usize >= module.functions.len() {
                    return err(i, "call target out of range");
                }
                if op.b > fs {
                    return err(i, "call arg base out of frame");
                }
            }
            CallHost => {
                if op.a >= imported {
                    return err(i, "host call target out of range");
                }
                if op.b > fs {
                    return err(i, "call arg base out of frame");
                }
            }
            CallIndirect => {
                if op.a as usize >= module.types.len() {
                    return err(i, "call_indirect type out of range");
                }
                if op.b > fs {
                    return err(i, "call arg base out of frame");
                }
                regs[0] = (op.c, 1);
            }
            Copy => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 1);
            }
            Copy2 => {
                regs[0] = (op.a, 2);
                regs[1] = (op.c, 2);
            }
            Select => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 1);
            }
            Select2 => {
                regs[0] = (op.a, 2);
                regs[1] = (op.b, 2);
                regs[2] = (op.c, 1);
            }
            GlobalGet | GlobalSet => {
                if op.a as usize >= module.globals.len() {
                    return err(i, "global index out of range");
                }
                regs[0] = if op.code == GlobalGet { (op.c, 1) } else { (op.b, 1) };
            }
            Const => regs[0] = (op.c, 1),
            V128Const => {
                if op.a as usize >= f.v128_pool.len() {
                    return err(i, "v128 pool index out of range");
                }
                regs[0] = (op.c, 2);
            }
            Load32 | Load64 | Load8S32 | Load8U32 | Load16S32 | Load16U32 | Load8S64
            | Load8U64 | Load16S64 | Load16U64 | Load32S64 | Load32U64 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 1);
            }
            V128Load => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 2);
            }
            Store8 | Store16 | Store32 | Store64 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
            }
            V128Store => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 2);
            }
            Load32Shl | Load64Shl => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 1);
            }
            Load32ShlK | Load64ShlK => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 1);
            }
            Store32Shl | Store64Shl => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 1);
            }
            Store32ShlK | Store64ShlK => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
            }
            MemSize => regs[0] = (op.c, 1),
            MemGrow => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 1);
            }
            MemCopy | MemFill => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 1);
            }
            AddK32 | ShlK32 | Cmp32K | AddK64 | Cmp64K => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 1);
            }
            AddShl32 | Fma64 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 1);
            }
            // Unary compute: a → c.
            Eqz32 | Clz32 | Ctz32 | Popcnt32 | Eqz64 | Clz64 | Ctz64 | Popcnt64 | AbsF32
            | NegF32 | CeilF32 | FloorF32 | TruncF32 | NearestF32 | SqrtF32 | AbsF64
            | NegF64 | CeilF64 | FloorF64 | TruncF64 | NearestF64 | SqrtF64 | Wrap64
            | TruncF32S32 | TruncF32U32 | TruncF64S32 | TruncF64U32 | ExtS3264 | ExtU3264
            | TruncF32S64 | TruncF32U64 | TruncF64S64 | TruncF64U64 | ConvS32F32
            | ConvU32F32 | ConvS64F32 | ConvU64F32 | Demote | ConvS32F64 | ConvU32F64
            | ConvS64F64 | ConvU64F64 | Promote | Ext8S32 | Ext16S32 | Ext8S64 | Ext16S64
            | Ext32S64 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 1);
            }
            // Binary compute: a, b → c.
            Cmp32 | Cmp64 | CmpF32 | CmpF64 | Add32 | Sub32 | Mul32 | DivS32 | DivU32
            | RemS32 | RemU32 | And32 | Or32 | Xor32 | Shl32 | ShrS32 | ShrU32 | Rotl32
            | Rotr32 | Add64 | Sub64 | Mul64 | DivS64 | DivU64 | RemS64 | RemU64 | And64
            | Or64 | Xor64 | Shl64 | ShrS64 | ShrU64 | Rotl64 | Rotr64 | AddF32 | SubF32
            | MulF32 | DivF32 | MinF32 | MaxF32 | CopysignF32 | AddF64 | SubF64 | MulF64
            | DivF64 | MinF64 | MaxF64 | CopysignF64 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 1);
            }
            Splat32 | Splat64 => {
                regs[0] = (op.a, 1);
                regs[1] = (op.c, 2);
            }
            Extract32 | Extract64 | VAnyTrue | AllTrueI32x4 | BitmaskI32x4 => {
                regs[0] = (op.a, 2);
                regs[1] = (op.c, 1);
            }
            Replace64 => {
                regs[0] = (op.a, 2);
                regs[1] = (op.b, 1);
                regs[2] = (op.c, 2);
            }
            AddI32x4 | SubI32x4 | MulI32x4 | AddF32x4 | SubF32x4 | MulF32x4 | DivF32x4
            | AddF64x2 | SubF64x2 | MulF64x2 | DivF64x2 | CmpF64x2 | VAnd | VOr | VXor => {
                regs[0] = (op.a, 2);
                regs[1] = (op.b, 2);
                regs[2] = (op.c, 2);
            }
            VNot => {
                regs[0] = (op.a, 2);
                regs[1] = (op.c, 2);
            }
        }
        for &(reg, width) in &regs {
            if width != 0 && reg + width > fs {
                return err(i, "register out of frame");
            }
        }
        if let Some(t) = target {
            if t >= len {
                return err(i, "branch target out of range");
            }
        }
        if unwind != 0 {
            let (src, dst, arity) = unwind_parts(unwind);
            if src + arity > fs as usize || dst + arity > fs as usize {
                return err(i, "unwind copy out of frame");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::MemArg;
    use crate::tier::{CompiledBody, Tier};
    use crate::types::ValType;

    /// Compile one body at the given tier and return its register form.
    fn reg_of(build: impl Fn(&mut crate::builder::FunctionBuilder), tier: Tier) -> RegFunc {
        reg_of_t(vec![ValType::I32, ValType::I32], build, tier)
    }

    /// Like [`reg_of`], with explicit parameter types.
    fn reg_of_t(
        params: Vec<ValType>,
        build: impl Fn(&mut crate::builder::FunctionBuilder),
        tier: Tier,
    ) -> RegFunc {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("f", params, vec![], build);
        let module = b.finish();
        crate::validate::validate_module(&module).unwrap();
        let compiled =
            crate::runtime::CompiledModule::compile(module, tier).unwrap();
        match &compiled.bodies()[0] {
            CompiledBody::Flat(f) => f.reg.clone(),
            CompiledBody::Interp(_) => panic!("flat tier expected"),
        }
    }

    fn count(rf: &RegFunc, code: Rc) -> usize {
        rf.code.iter().filter(|op| op.code == code).count()
    }

    #[test]
    fn regop_is_compact() {
        assert_eq!(std::mem::size_of::<RegOp>(), 24);
    }

    #[test]
    fn i64_scaled_load_fuses_at_register_level() {
        // base + (idx << 3) ; i64.load — the Op-level peephole has no i64
        // form; the register peephole must produce Load64Shl.
        use crate::instr::Instr as I;
        let rf = reg_of(
            |f| {
                f.emit_all([
                    I::LocalGet(0),
                    I::LocalGet(1),
                    I::I32Const(3),
                    I::I32Shl,
                    I::I32Add,
                    I::I64Load(MemArg::offset(16)),
                    I::Drop,
                ]);
            },
            Tier::Max,
        );
        assert_eq!(count(&rf, Rc::Load64Shl), 1, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Load64), 0);
    }

    #[test]
    fn f32_scaled_load_fuses_at_register_level() {
        use crate::instr::Instr as I;
        let rf = reg_of(
            |f| {
                f.emit_all([
                    I::LocalGet(0),
                    I::LocalGet(1),
                    I::I32Const(2),
                    I::I32Shl,
                    I::I32Add,
                    I::F32Load(MemArg::offset(0)),
                    I::Drop,
                ]);
            },
            Tier::Max,
        );
        assert_eq!(count(&rf, Rc::Load32Shl), 1, "{:?}", rf.code);
    }

    #[test]
    fn store_with_value_window_fuses() {
        // a[i] = f64(load(b)) — address first, value computation between
        // it and the store: the "value window" the Op-level peephole
        // cannot match, fused here into Store64Shl.
        use crate::instr::Instr as I;
        let rf = reg_of(
            |f| {
                f.emit_all([
                    I::LocalGet(0),
                    I::LocalGet(1),
                    I::I32Const(3),
                    I::I32Shl,
                    I::I32Add,
                    I::LocalGet(1),
                    I::F64Load(MemArg::offset(64)),
                    I::F64Sqrt,
                    I::F64Store(MemArg::offset(8)),
                ]);
            },
            Tier::Max,
        );
        assert_eq!(count(&rf, Rc::Store64Shl), 1, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Store64), 0);
    }

    #[test]
    fn const_base_store_window_fuses() {
        // counts[x<<2 + K] = value — the NPB IS histogram update.
        use crate::instr::Instr as I;
        let rf = reg_of(
            |f| {
                f.emit_all([
                    I::LocalGet(0),
                    I::I32Const(2),
                    I::I32Shl,
                    I::I32Const(4096),
                    I::I32Add,
                    I::LocalGet(1),
                    I::I32Const(1),
                    I::I32Add,
                    I::I32Store(MemArg::offset(0)),
                ]);
            },
            Tier::Max,
        );
        assert_eq!(count(&rf, Rc::Store32ShlK), 1, "{:?}", rf.code);
    }

    #[test]
    fn forwarding_eliminates_copy_and_const_traffic() {
        // x*8 via the generic optimizing tier (no Op-level fusion at
        // opt 0): forwarding must fold the const multiply into a shift
        // and leave no Copy of the local behind.
        use crate::instr::Instr as I;
        let rf = reg_of(
            |f| {
                f.emit_all([
                    I::LocalGet(0),
                    I::I32Const(8),
                    I::I32Mul,
                    I::LocalSet(1),
                ]);
            },
            Tier::Optimizing,
        );
        assert_eq!(count(&rf, Rc::ShlK32), 1, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Mul32), 0, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Copy), 0, "copies should forward: {:?}", rf.code);
    }

    #[test]
    fn i64_const_forwarding_forms_addk64_and_cmp64k() {
        // x + 5 (i64) and x < 100 (i64) must fold their Const operands
        // into the immediate forms, leaving no Const+Add64/Cmp64 pairs.
        use crate::instr::Instr as I;
        let rf = reg_of_t(
            vec![ValType::I64, ValType::I64, ValType::I32],
            |f| {
                f.emit_all([
                    I::LocalGet(0),
                    I::I64Const(5),
                    I::I64Add,
                    I::LocalSet(1),
                    I::LocalGet(0),
                    I::I64Const(100),
                    I::I64LtS,
                    I::LocalSet(2),
                ]);
            },
            Tier::Optimizing,
        );
        assert_eq!(count(&rf, Rc::AddK64), 1, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Add64), 0, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Cmp64K), 1, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Cmp64), 0, "{:?}", rf.code);
        let addk = rf.code.iter().find(|op| op.code == Rc::AddK64).unwrap();
        assert_eq!(addk.imm, 5);
    }

    #[test]
    fn i64_sub_const_negates_into_addk64() {
        use crate::instr::Instr as I;
        let rf = reg_of_t(
            vec![ValType::I64, ValType::I64],
            |f| {
                f.emit_all([I::LocalGet(0), I::I64Const(7), I::I64Sub, I::LocalSet(1)]);
            },
            Tier::Optimizing,
        );
        assert_eq!(count(&rf, Rc::AddK64), 1, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::Sub64), 0, "{:?}", rf.code);
        let addk = rf.code.iter().find(|op| op.code == Rc::AddK64).unwrap();
        assert_eq!(addk.imm as i64, -7);
    }

    #[test]
    fn float_const_const_folds_to_const() {
        // 2.5 * 4.0 (f64) and 1.5 + 0.25 (f32) fold at compile time.
        use crate::instr::Instr as I;
        let rf = reg_of_t(
            vec![ValType::F64, ValType::F32],
            |f| {
                f.emit_all([
                    I::F64Const(2.5),
                    I::F64Const(4.0),
                    I::F64Mul,
                    I::LocalSet(0),
                    I::F32Const(1.5),
                    I::F32Const(0.25),
                    I::F32Add,
                    I::LocalSet(1),
                ]);
            },
            Tier::Optimizing,
        );
        assert_eq!(count(&rf, Rc::MulF64), 0, "{:?}", rf.code);
        assert_eq!(count(&rf, Rc::AddF32), 0, "{:?}", rf.code);
        assert!(
            rf.code
                .iter()
                .any(|op| op.code == Rc::Const && op.imm == 10.0f64.to_bits()),
            "{:?}",
            rf.code
        );
        assert!(
            rf.code
                .iter()
                .any(|op| op.code == Rc::Const && op.imm == 1.75f32.to_bits() as u64),
            "{:?}",
            rf.code
        );
    }

    #[test]
    fn unwind_roundtrip() {
        let u = pack_unwind(100, 7, 3).unwrap();
        assert_eq!(unwind_parts(u), (100, 7, 3));
        // In-place carries encode as "no copy".
        assert_eq!(pack_unwind(5, 5, 2).unwrap(), 0);
        assert_eq!(pack_unwind(9, 4, 0).unwrap(), 0);
        assert!(pack_unwind(1 << 24, 0, 1).is_err());
    }

    #[test]
    fn feval_codes() {
        assert!(feval(FEQ, 1.0, 1.0));
        assert!(feval(FNE, 1.0, 2.0));
        assert!(feval(FLT, 1.0, 2.0));
        assert!(feval(FGT, 2.0, 1.0));
        assert!(feval(FLE, 1.0, 1.0));
        assert!(feval(FGE, 1.0, 1.0));
        assert!(!feval(FEQ, f64::NAN, f64::NAN));
    }
}

//! Threaded dispatch for the register-form flat tiers: a fn-pointer
//! handler table indexed by [`Rc`] opcode, replacing the single giant
//! `match` the previous engine dispatched through.
//!
//! # Handler contract
//!
//! Every handler has the shape `fn(&mut Ctx, ip) -> Result<usize, Trap>`
//! and returns the **next** instruction pointer (or [`DONE`] when the
//! outermost frame returns). The central loop is deliberately tiny —
//! fetch opcode byte, indirect call — so the compiler keeps `ip`, the
//! code pointer and the frame base in registers across the call; handlers
//! keep their tails tight (compute, one write, return `ip + 1`) for the
//! same reason. Trapping paths return `Err` and unwind the Rust way.
//!
//! # Frame arena
//!
//! Frames are statically sized (`RegFunc::frame_size`) windows of the
//! per-instance slot arena. A guest call places the callee frame at the
//! caller's argument registers (`base + arg_base`), so the caller's
//! outgoing arguments *are* the callee's parameter registers — no copy,
//! no allocation. The arena only grows during an invocation; the stack
//! limit is enforced per call (`base + frame_size` against
//! `max_value_stack`), which replaces the old per-1024-ops counter —
//! straight-line code cannot grow a frame at run time in register form.
//!
//! Register accesses are unchecked in release builds: the
//! [`crate::regalloc`] verifier proved every operand `< frame_size`, and
//! the call/entry paths maintain `base + frame_size <= stack.len()`.

use std::sync::Arc;

use crate::error::Trap;
use crate::exec;
use crate::regalloc::{feval, unwind_parts, Rc, RegFunc};
use crate::runtime::{Instance, Slot};
use crate::tier::CompiledBody;

/// Sentinel "next ip" meaning the outermost activation returned.
const DONE: usize = usize::MAX;

/// A suspended caller activation.
struct Frame {
    defined_idx: u32,
    ret_ip: u32,
    base: u32,
}

/// Execution context threaded through every handler. Fields are crate
/// visible so the superblock closure tier ([`crate::closures`]) can reuse
/// the same register/memory access paths as the handlers.
pub(crate) struct Ctx<'a> {
    pub(crate) inst: &'a mut Instance,
    pub(crate) stack: &'a mut Vec<Slot>,
    bodies: &'a [CompiledBody],
    frames: Vec<Frame>,
    func: &'a RegFunc,
    code: &'a [crate::regalloc::RegOp],
    /// Absolute arena offset of the current frame's register 0.
    pub(crate) base: usize,
    imported: u32,
    cur_idx: u32,
}

#[inline]
fn flat(bodies: &[CompiledBody], idx: usize) -> &RegFunc {
    match &bodies[idx] {
        CompiledBody::Flat(f) => &f.reg,
        CompiledBody::Interp(_) => unreachable!("flat tier expected"),
    }
}

/// Read register `r` of the current frame.
#[inline(always)]
pub(crate) fn rg(ctx: &Ctx<'_>, r: u32) -> Slot {
    let i = ctx.base + r as usize;
    debug_assert!(i < ctx.stack.len(), "register read out of arena");
    unsafe { *ctx.stack.get_unchecked(i) }
}

/// Write register `r` of the current frame.
#[inline(always)]
pub(crate) fn wr(ctx: &mut Ctx<'_>, r: u32, v: Slot) {
    let i = ctx.base + r as usize;
    debug_assert!(i < ctx.stack.len(), "register write out of arena");
    unsafe { *ctx.stack.get_unchecked_mut(i) = v }
}

/// Read a wide (v128) register: two slots, low half first.
#[inline(always)]
pub(crate) fn rg2(ctx: &Ctx<'_>, r: u32) -> u128 {
    rg(ctx, r).0 as u128 | (rg(ctx, r + 1).0 as u128) << 64
}

#[inline(always)]
pub(crate) fn wr2(ctx: &mut Ctx<'_>, r: u32, v: u128) {
    wr(ctx, r, Slot(v as u64));
    wr(ctx, r + 1, Slot((v >> 64) as u64));
}

/// Take a branch: perform the packed unwind copy, return the target.
#[inline(always)]
fn take(ctx: &mut Ctx<'_>, target: u32, unwind: u64) -> usize {
    if unwind != 0 {
        let (src, dst, arity) = unwind_parts(unwind);
        let b = ctx.base;
        ctx.stack.copy_within(b + src..b + src + arity, b + dst);
    }
    target as usize
}

/// Total i32 comparison eval over [`crate::ir::Cmp`] byte codes.
#[inline(always)]
pub(crate) fn ieval32(c: u8, a: i32, b: i32) -> bool {
    match c {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => (a as u32) < (b as u32),
        4 => a > b,
        5 => (a as u32) > (b as u32),
        6 => a <= b,
        7 => (a as u32) <= (b as u32),
        8 => a >= b,
        _ => (a as u32) >= (b as u32),
    }
}

#[inline(always)]
pub(crate) fn ieval64(c: u8, a: i64, b: i64) -> bool {
    match c {
        0 => a == b,
        1 => a != b,
        2 => a < b,
        3 => (a as u64) < (b as u64),
        4 => a > b,
        5 => (a as u64) > (b as u64),
        6 => a <= b,
        7 => (a as u64) <= (b as u64),
        8 => a >= b,
        _ => (a as u64) >= (b as u64),
    }
}

pub(crate) type Handler = for<'a> fn(&mut Ctx<'a>, usize) -> Result<usize, Trap>;

/// The interpreter handler for one opcode — the closure tier's generic
/// fallback step for ops it does not monomorphize.
pub(crate) fn handler(code: Rc) -> Handler {
    HANDLERS[code as usize]
}

/// Fallthrough-op handler: body runs, then `ip + 1`.
macro_rules! h {
    ($name:ident, |$ctx:ident, $op:ident| $body:expr) => {
        fn $name<'a>($ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
            let $op = $ctx.code[ip];
            $body;
            Ok(ip + 1)
        }
    };
}

macro_rules! bin {
    ($name:ident, $read:ident, $wrap:path, $f:expr) => {
        h!($name, |ctx, op| {
            let a = rg(ctx, op.a).$read();
            let b = rg(ctx, op.b).$read();
            wr(ctx, op.c, $wrap($f(a, b)));
        });
    };
}

macro_rules! un {
    ($name:ident, $read:ident, $wrap:path, $f:expr) => {
        h!($name, |ctx, op| {
            let v = rg(ctx, op.a).$read();
            wr(ctx, op.c, $wrap($f(v)));
        });
    };
}

macro_rules! trapbin {
    ($name:ident, $read:ident, $wrap:path, $f:path) => {
        h!($name, |ctx, op| {
            let a = rg(ctx, op.a).$read();
            let b = rg(ctx, op.b).$read();
            wr(ctx, op.c, $wrap($f(a, b)?));
        });
    };
}

macro_rules! ld {
    ($name:ident, $n:expr, $raw:ty, $conv:ty, $wrap:path) => {
        h!($name, |ctx, op| {
            let addr = rg(ctx, op.a).i32().wrapping_add((op.imm >> 32) as i32) as u32;
            let start = ctx.inst.memory.effective(addr, op.imm as u32, $n)?;
            let raw = <$raw>::from_le_bytes(ctx.inst.memory.load::<{ $n as usize }>(start));
            wr(ctx, op.c, $wrap(raw as $conv));
        });
    };
}

macro_rules! ldshl {
    ($name:ident, $n:expr, $raw:ty, $wrap:path) => {
        h!($name, |ctx, op| {
            let addr = rg(ctx, op.b)
                .i32()
                .wrapping_add(rg(ctx, op.a).i32().wrapping_shl(op.aux as u32))
                as u32;
            let start = ctx.inst.memory.effective(addr, op.imm as u32, $n)?;
            let raw = <$raw>::from_le_bytes(ctx.inst.memory.load::<{ $n as usize }>(start));
            wr(ctx, op.c, $wrap(raw));
        });
    };
}

macro_rules! ldshlk {
    ($name:ident, $n:expr, $raw:ty, $wrap:path) => {
        h!($name, |ctx, op| {
            let addr = rg(ctx, op.a)
                .i32()
                .wrapping_shl(op.aux as u32)
                .wrapping_add((op.imm >> 32) as i32) as u32;
            let start = ctx.inst.memory.effective(addr, op.imm as u32, $n)?;
            let raw = <$raw>::from_le_bytes(ctx.inst.memory.load::<{ $n as usize }>(start));
            wr(ctx, op.c, $wrap(raw));
        });
    };
}

macro_rules! st {
    ($name:ident, $n:expr, $cast:ty) => {
        h!($name, |ctx, op| {
            let addr = rg(ctx, op.a).u32();
            let val = rg(ctx, op.b).u64();
            let start = ctx.inst.memory.effective(addr, op.imm as u32, $n)?;
            ctx.inst.memory.store(start, &((val as $cast).to_le_bytes()));
        });
    };
}

macro_rules! stshl {
    ($name:ident, $n:expr, $cast:ty) => {
        h!($name, |ctx, op| {
            let addr = rg(ctx, op.c)
                .i32()
                .wrapping_add(rg(ctx, op.a).i32().wrapping_shl(op.aux as u32))
                as u32;
            let val = rg(ctx, op.b).u64();
            let start = ctx.inst.memory.effective(addr, op.imm as u32, $n)?;
            ctx.inst.memory.store(start, &((val as $cast).to_le_bytes()));
        });
    };
}

macro_rules! stshlk {
    ($name:ident, $n:expr, $cast:ty) => {
        h!($name, |ctx, op| {
            let addr = rg(ctx, op.a)
                .i32()
                .wrapping_shl(op.aux as u32)
                .wrapping_add((op.imm >> 32) as i32) as u32;
            let val = rg(ctx, op.b).u64();
            let start = ctx.inst.memory.effective(addr, op.imm as u32, $n)?;
            ctx.inst.memory.store(start, &((val as $cast).to_le_bytes()));
        });
    };
}

macro_rules! vbin {
    ($name:ident, $f:expr) => {
        h!($name, |ctx, op| {
            let a = rg2(ctx, op.a);
            let b = rg2(ctx, op.b);
            wr2(ctx, op.c, $f(a, b));
        });
    };
}

// --- control ---

fn h_bad<'a>(_: &mut Ctx<'a>, _: usize) -> Result<usize, Trap> {
    Err(Trap::host("invalid register opcode"))
}

fn h_nop<'a>(_: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    Ok(ip + 1)
}

fn h_unreachable<'a>(_: &mut Ctx<'a>, _: usize) -> Result<usize, Trap> {
    Err(Trap::Unreachable)
}

fn h_jump<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    Ok(ctx.code[ip].c as usize)
}

fn h_br<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    Ok(take(ctx, op.c, op.imm))
}

fn h_br_if<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    if rg(ctx, op.a).i32() != 0 {
        Ok(take(ctx, op.c, op.imm))
    } else {
        Ok(ip + 1)
    }
}

fn h_br_if_z<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    if rg(ctx, op.a).i32() == 0 {
        Ok(take(ctx, op.c, op.imm))
    } else {
        Ok(ip + 1)
    }
}

fn h_br_if_cmp32<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    if ieval32(op.aux, rg(ctx, op.a).i32(), rg(ctx, op.b).i32()) {
        Ok(take(ctx, op.c, op.imm))
    } else {
        Ok(ip + 1)
    }
}

fn h_br_if_cmp32k<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    if ieval32(op.aux, rg(ctx, op.a).i32(), op.b as i32) {
        Ok(take(ctx, op.c, op.imm))
    } else {
        Ok(ip + 1)
    }
}

fn h_br_table<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    let idx = rg(ctx, op.a).u32().min(op.c);
    let d = ctx.func.dest_pool[op.b as usize + idx as usize];
    Ok(take(ctx, d.target, d.unwind))
}

fn h_return<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    let n = ctx.func.result_slots as usize;
    if n != 0 && op.a != 0 {
        let b = ctx.base;
        let src = b + op.a as usize;
        ctx.stack.copy_within(src..src + n, b);
    }
    match ctx.frames.pop() {
        None => Ok(DONE),
        Some(fr) => {
            ctx.cur_idx = fr.defined_idx;
            let f = flat(ctx.bodies, fr.defined_idx as usize);
            ctx.func = f;
            ctx.code = &f.code;
            ctx.base = fr.base as usize;
            Ok(fr.ret_ip as usize)
        }
    }
}

#[inline(always)]
fn call_guest<'a>(
    ctx: &mut Ctx<'a>,
    defined: u32,
    arg_base: u32,
    ret_ip: usize,
) -> Result<usize, Trap> {
    if ctx.frames.len() + ctx.inst.depth + 1 >= ctx.inst.limits.max_call_depth {
        return Err(Trap::StackExhausted);
    }
    let f = flat(ctx.bodies, defined as usize);
    let new_base = ctx.base + arg_base as usize;
    let need = new_base + f.frame_size as usize;
    if need > ctx.inst.limits.max_value_stack {
        return Err(Trap::StackExhausted);
    }
    if ctx.stack.len() < need {
        ctx.stack.resize(need, Slot::ZERO);
    }
    // The arena below `need` may hold stale slots from deeper earlier
    // calls; declared locals must start zeroed. Stack-temp registers need
    // no init (validation proves write-before-read).
    let (p, l) = (f.param_slots as usize, f.n_local_slots as usize);
    ctx.stack[new_base + p..new_base + l].fill(Slot::ZERO);
    ctx.frames.push(Frame {
        defined_idx: ctx.cur_idx,
        ret_ip: ret_ip as u32,
        base: ctx.base as u32,
    });
    ctx.cur_idx = defined;
    ctx.func = f;
    ctx.code = &f.code;
    ctx.base = new_base;
    Ok(0)
}

fn call_host(ctx: &mut Ctx<'_>, idx: u32, arg_base: u32) -> Result<(), Trap> {
    if ctx.frames.len() + ctx.inst.depth + 1 >= ctx.inst.limits.max_call_depth {
        return Err(Trap::StackExhausted);
    }
    let n = ctx.inst.host_arg_slots[idx as usize] as usize;
    let at = ctx.base + arg_base as usize;
    let args = ctx
        .stack
        .get(at..at + n)
        .ok_or_else(|| Trap::host("host call arguments out of frame"))?;
    let hf = Arc::clone(&ctx.inst.host_funcs[idx as usize]);
    ctx.inst.depth += 1;
    let results = hf(ctx.inst, args);
    ctx.inst.depth -= 1;
    let results = results?;
    ctx.stack
        .get_mut(at..at + results.len())
        .ok_or_else(|| Trap::host("host call results out of frame"))?
        .copy_from_slice(&results);
    Ok(())
}

fn h_call_guest<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    call_guest(ctx, op.a, op.b, ip + 1)
}

fn h_call_host<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    call_host(ctx, op.a, op.b)?;
    Ok(ip + 1)
}

fn h_call_indirect<'a>(ctx: &mut Ctx<'a>, ip: usize) -> Result<usize, Trap> {
    let op = ctx.code[ip];
    let slot_idx = rg(ctx, op.c).u32();
    let func_idx = ctx.inst.resolve_indirect(slot_idx, op.a)?;
    if func_idx < ctx.imported {
        call_host(ctx, func_idx, op.b)?;
        Ok(ip + 1)
    } else {
        call_guest(ctx, func_idx - ctx.imported, op.b, ip + 1)
    }
}

// --- moves / parametric ---

h!(h_copy, |ctx, op| {
    let v = rg(ctx, op.a);
    wr(ctx, op.c, v);
});
h!(h_copy2, |ctx, op| {
    let lo = rg(ctx, op.a);
    let hi = rg(ctx, op.a + 1);
    wr(ctx, op.c, lo);
    wr(ctx, op.c + 1, hi);
});
h!(h_select, |ctx, op| {
    if rg(ctx, op.c).i32() == 0 {
        let v = rg(ctx, op.b);
        wr(ctx, op.a, v);
    }
});
h!(h_select2, |ctx, op| {
    if rg(ctx, op.c).i32() == 0 {
        let v = rg2(ctx, op.b);
        wr2(ctx, op.a, v);
    }
});
h!(h_global_get, |ctx, op| {
    let v = ctx.inst.globals[op.a as usize];
    wr(ctx, op.c, v);
});
h!(h_global_set, |ctx, op| {
    ctx.inst.globals[op.a as usize] = rg(ctx, op.b);
});

// --- constants ---

h!(h_const, |ctx, op| wr(ctx, op.c, Slot(op.imm)));
h!(h_v128_const, |ctx, op| {
    let v = ctx.func.v128_pool[op.a as usize];
    wr2(ctx, op.c, v);
});

// --- memory ---

ld!(h_load32, 4, u32, u32, Slot::from_u32);
ld!(h_load64, 8, u64, u64, Slot::from_u64);
ld!(h_load8s32, 1, i8, i32, Slot::from_i32);
ld!(h_load8u32, 1, u8, i32, Slot::from_i32);
ld!(h_load16s32, 2, i16, i32, Slot::from_i32);
ld!(h_load16u32, 2, u16, i32, Slot::from_i32);
ld!(h_load8s64, 1, i8, i64, Slot::from_i64);
ld!(h_load8u64, 1, u8, i64, Slot::from_i64);
ld!(h_load16s64, 2, i16, i64, Slot::from_i64);
ld!(h_load16u64, 2, u16, i64, Slot::from_i64);
ld!(h_load32s64, 4, i32, i64, Slot::from_i64);
ld!(h_load32u64, 4, u32, i64, Slot::from_i64);
h!(h_v128_load, |ctx, op| {
    let addr = rg(ctx, op.a).u32();
    let start = ctx.inst.memory.effective(addr, op.imm as u32, 16)?;
    let v = u128::from_le_bytes(ctx.inst.memory.load::<16>(start));
    wr2(ctx, op.c, v);
});
st!(h_store8, 1, u8);
st!(h_store16, 2, u16);
st!(h_store32, 4, u32);
st!(h_store64, 8, u64);
h!(h_v128_store, |ctx, op| {
    let addr = rg(ctx, op.a).u32();
    let val = rg2(ctx, op.b);
    let start = ctx.inst.memory.effective(addr, op.imm as u32, 16)?;
    ctx.inst.memory.store(start, &val.to_le_bytes());
});
ldshl!(h_load32_shl, 4, u32, Slot::from_u32);
ldshl!(h_load64_shl, 8, u64, Slot::from_u64);
ldshlk!(h_load32_shlk, 4, u32, Slot::from_u32);
ldshlk!(h_load64_shlk, 8, u64, Slot::from_u64);
stshl!(h_store32_shl, 4, u32);
stshl!(h_store64_shl, 8, u64);
stshlk!(h_store32_shlk, 4, u32);
stshlk!(h_store64_shlk, 8, u64);
h!(h_mem_size, |ctx, op| {
    let v = Slot::from_i32(ctx.inst.memory.size_pages() as i32);
    wr(ctx, op.c, v);
});
h!(h_mem_grow, |ctx, op| {
    let delta = rg(ctx, op.a).i32();
    let r = if delta < 0 { -1 } else { ctx.inst.memory.grow(delta as u32) };
    wr(ctx, op.c, Slot::from_i32(r));
});
h!(h_mem_copy, |ctx, op| {
    let dst = rg(ctx, op.a).u32();
    let src = rg(ctx, op.b).u32();
    let len = rg(ctx, op.c).u32();
    ctx.inst.memory.copy_within(dst, src, len)?;
});
h!(h_mem_fill, |ctx, op| {
    let dst = rg(ctx, op.a).u32();
    let val = rg(ctx, op.b).i32() as u8;
    let len = rg(ctx, op.c).u32();
    ctx.inst.memory.fill(dst, val, len)?;
});

// --- i32 ---

un!(h_eqz32, i32, Slot::from_bool, |v| v == 0);
h!(h_cmp32, |ctx, op| {
    let r = ieval32(op.aux, rg(ctx, op.a).i32(), rg(ctx, op.b).i32());
    wr(ctx, op.c, Slot::from_bool(r));
});
un!(h_clz32, i32, Slot::from_i32, |v: i32| v.leading_zeros() as i32);
un!(h_ctz32, i32, Slot::from_i32, |v: i32| v.trailing_zeros() as i32);
un!(h_popcnt32, i32, Slot::from_i32, |v: i32| v.count_ones() as i32);
bin!(h_add32, i32, Slot::from_i32, i32::wrapping_add);
bin!(h_sub32, i32, Slot::from_i32, i32::wrapping_sub);
bin!(h_mul32, i32, Slot::from_i32, i32::wrapping_mul);
trapbin!(h_divs32, i32, Slot::from_i32, exec::i32_div_s);
trapbin!(h_divu32, i32, Slot::from_i32, exec::i32_div_u);
trapbin!(h_rems32, i32, Slot::from_i32, exec::i32_rem_s);
trapbin!(h_remu32, i32, Slot::from_i32, exec::i32_rem_u);
bin!(h_and32, i32, Slot::from_i32, |a, b| a & b);
bin!(h_or32, i32, Slot::from_i32, |a, b| a | b);
bin!(h_xor32, i32, Slot::from_i32, |a, b| a ^ b);
bin!(h_shl32, i32, Slot::from_i32, |a: i32, b| a.wrapping_shl(b as u32));
bin!(h_shrs32, i32, Slot::from_i32, |a: i32, b| a.wrapping_shr(b as u32));
bin!(h_shru32, i32, Slot::from_i32, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32);
bin!(h_rotl32, i32, Slot::from_i32, |a: i32, b| a.rotate_left((b as u32) & 31));
bin!(h_rotr32, i32, Slot::from_i32, |a: i32, b| a.rotate_right((b as u32) & 31));
h!(h_cmp32k, |ctx, op| {
    let r = ieval32(op.aux, rg(ctx, op.a).i32(), op.b as i32);
    wr(ctx, op.c, Slot::from_bool(r));
});
h!(h_addk32, |ctx, op| {
    let r = rg(ctx, op.a).i32().wrapping_add(op.b as i32);
    wr(ctx, op.c, Slot::from_i32(r));
});
h!(h_cmp64k, |ctx, op| {
    let r = ieval64(op.aux, rg(ctx, op.a).i64(), op.imm as i64);
    wr(ctx, op.c, Slot::from_bool(r));
});
h!(h_addk64, |ctx, op| {
    let r = rg(ctx, op.a).i64().wrapping_add(op.imm as i64);
    wr(ctx, op.c, Slot::from_i64(r));
});
h!(h_shlk32, |ctx, op| {
    let r = rg(ctx, op.a).i32().wrapping_shl(op.aux as u32);
    wr(ctx, op.c, Slot::from_i32(r));
});
h!(h_addshl32, |ctx, op| {
    let r = rg(ctx, op.b)
        .i32()
        .wrapping_add(rg(ctx, op.a).i32().wrapping_shl(op.aux as u32));
    wr(ctx, op.c, Slot::from_i32(r));
});

// --- i64 ---

un!(h_eqz64, i64, Slot::from_bool, |v| v == 0);
h!(h_cmp64, |ctx, op| {
    let r = ieval64(op.aux, rg(ctx, op.a).i64(), rg(ctx, op.b).i64());
    wr(ctx, op.c, Slot::from_bool(r));
});
un!(h_clz64, i64, Slot::from_i64, |v: i64| v.leading_zeros() as i64);
un!(h_ctz64, i64, Slot::from_i64, |v: i64| v.trailing_zeros() as i64);
un!(h_popcnt64, i64, Slot::from_i64, |v: i64| v.count_ones() as i64);
bin!(h_add64, i64, Slot::from_i64, i64::wrapping_add);
bin!(h_sub64, i64, Slot::from_i64, i64::wrapping_sub);
bin!(h_mul64, i64, Slot::from_i64, i64::wrapping_mul);
trapbin!(h_divs64, i64, Slot::from_i64, exec::i64_div_s);
trapbin!(h_divu64, i64, Slot::from_i64, exec::i64_div_u);
trapbin!(h_rems64, i64, Slot::from_i64, exec::i64_rem_s);
trapbin!(h_remu64, i64, Slot::from_i64, exec::i64_rem_u);
bin!(h_and64, i64, Slot::from_i64, |a, b| a & b);
bin!(h_or64, i64, Slot::from_i64, |a, b| a | b);
bin!(h_xor64, i64, Slot::from_i64, |a, b| a ^ b);
bin!(h_shl64, i64, Slot::from_i64, |a: i64, b| a.wrapping_shl(b as u32));
bin!(h_shrs64, i64, Slot::from_i64, |a: i64, b| a.wrapping_shr(b as u32));
bin!(h_shru64, i64, Slot::from_i64, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64);
bin!(h_rotl64, i64, Slot::from_i64, |a: i64, b| a.rotate_left((b as u64 & 63) as u32));
bin!(h_rotr64, i64, Slot::from_i64, |a: i64, b| a.rotate_right((b as u64 & 63) as u32));

// --- f32 ---

h!(h_cmpf32, |ctx, op| {
    let r = feval(op.aux, rg(ctx, op.a).f32(), rg(ctx, op.b).f32());
    wr(ctx, op.c, Slot::from_bool(r));
});
un!(h_absf32, f32, Slot::from_f32, f32::abs);
un!(h_negf32, f32, Slot::from_f32, |v: f32| -v);
un!(h_ceilf32, f32, Slot::from_f32, f32::ceil);
un!(h_floorf32, f32, Slot::from_f32, f32::floor);
un!(h_truncf32, f32, Slot::from_f32, f32::trunc);
un!(h_nearestf32, f32, Slot::from_f32, exec::nearest32);
un!(h_sqrtf32, f32, Slot::from_f32, f32::sqrt);
bin!(h_addf32, f32, Slot::from_f32, |a, b| a + b);
bin!(h_subf32, f32, Slot::from_f32, |a, b| a - b);
bin!(h_mulf32, f32, Slot::from_f32, |a, b| a * b);
bin!(h_divf32, f32, Slot::from_f32, |a, b| a / b);
bin!(h_minf32, f32, Slot::from_f32, exec::fmin32);
bin!(h_maxf32, f32, Slot::from_f32, exec::fmax32);
bin!(h_copysignf32, f32, Slot::from_f32, f32::copysign);

// --- f64 ---

h!(h_cmpf64, |ctx, op| {
    let r = feval(op.aux, rg(ctx, op.a).f64(), rg(ctx, op.b).f64());
    wr(ctx, op.c, Slot::from_bool(r));
});
un!(h_absf64, f64, Slot::from_f64, f64::abs);
un!(h_negf64, f64, Slot::from_f64, |v: f64| -v);
un!(h_ceilf64, f64, Slot::from_f64, f64::ceil);
un!(h_floorf64, f64, Slot::from_f64, f64::floor);
un!(h_truncf64, f64, Slot::from_f64, f64::trunc);
un!(h_nearestf64, f64, Slot::from_f64, exec::nearest64);
un!(h_sqrtf64, f64, Slot::from_f64, f64::sqrt);
bin!(h_addf64, f64, Slot::from_f64, |a, b| a + b);
bin!(h_subf64, f64, Slot::from_f64, |a, b| a - b);
bin!(h_mulf64, f64, Slot::from_f64, |a, b| a * b);
bin!(h_divf64, f64, Slot::from_f64, |a, b| a / b);
bin!(h_minf64, f64, Slot::from_f64, exec::fmin64);
bin!(h_maxf64, f64, Slot::from_f64, exec::fmax64);
bin!(h_copysignf64, f64, Slot::from_f64, f64::copysign);
h!(h_fma64, |ctx, op| {
    let a = rg(ctx, op.a).f64();
    let b = rg(ctx, op.b).f64();
    let c = rg(ctx, op.c).f64();
    // No FMA contraction: both roundings performed, as the unfused pair.
    wr(ctx, op.c, Slot::from_f64(c + a * b));
});

// --- conversions ---

un!(h_wrap64, i64, Slot::from_i32, |v| v as i32);
h!(h_truncf32s32, |ctx, op| {
    let v = rg(ctx, op.a).f32();
    wr(ctx, op.c, Slot::from_i32(exec::trunc_f64_to_i32(v as f64)?));
});
h!(h_truncf32u32, |ctx, op| {
    let v = rg(ctx, op.a).f32();
    wr(ctx, op.c, Slot::from_i32(exec::trunc_f64_to_u32(v as f64)? as i32));
});
h!(h_truncf64s32, |ctx, op| {
    let v = rg(ctx, op.a).f64();
    wr(ctx, op.c, Slot::from_i32(exec::trunc_f64_to_i32(v)?));
});
h!(h_truncf64u32, |ctx, op| {
    let v = rg(ctx, op.a).f64();
    wr(ctx, op.c, Slot::from_i32(exec::trunc_f64_to_u32(v)? as i32));
});
un!(h_exts3264, i32, Slot::from_i64, |v| v as i64);
un!(h_extu3264, i32, Slot::from_i64, |v| v as u32 as i64);
h!(h_truncf32s64, |ctx, op| {
    let v = rg(ctx, op.a).f32();
    wr(ctx, op.c, Slot::from_i64(exec::trunc_f64_to_i64(v as f64)?));
});
h!(h_truncf32u64, |ctx, op| {
    let v = rg(ctx, op.a).f32();
    wr(ctx, op.c, Slot::from_i64(exec::trunc_f64_to_u64(v as f64)? as i64));
});
h!(h_truncf64s64, |ctx, op| {
    let v = rg(ctx, op.a).f64();
    wr(ctx, op.c, Slot::from_i64(exec::trunc_f64_to_i64(v)?));
});
h!(h_truncf64u64, |ctx, op| {
    let v = rg(ctx, op.a).f64();
    wr(ctx, op.c, Slot::from_i64(exec::trunc_f64_to_u64(v)? as i64));
});
un!(h_convs32f32, i32, Slot::from_f32, |v| v as f32);
un!(h_convu32f32, i32, Slot::from_f32, |v| v as u32 as f32);
un!(h_convs64f32, i64, Slot::from_f32, |v| v as f32);
un!(h_convu64f32, i64, Slot::from_f32, |v| v as u64 as f32);
un!(h_demote, f64, Slot::from_f32, |v| v as f32);
un!(h_convs32f64, i32, Slot::from_f64, |v| v as f64);
un!(h_convu32f64, i32, Slot::from_f64, |v| v as u32 as f64);
un!(h_convs64f64, i64, Slot::from_f64, |v| v as f64);
un!(h_convu64f64, i64, Slot::from_f64, |v| v as u64 as f64);
un!(h_promote, f32, Slot::from_f64, |v| v as f64);
un!(h_ext8s32, i32, Slot::from_i32, |v| v as i8 as i32);
un!(h_ext16s32, i32, Slot::from_i32, |v| v as i16 as i32);
un!(h_ext8s64, i64, Slot::from_i64, |v| v as i8 as i64);
un!(h_ext16s64, i64, Slot::from_i64, |v| v as i16 as i64);
un!(h_ext32s64, i64, Slot::from_i64, |v| v as i32 as i64);

// --- simd ---

h!(h_splat32, |ctx, op| {
    let v = rg(ctx, op.a).u32();
    let lane = v as u128;
    wr2(ctx, op.c, lane | lane << 32 | lane << 64 | lane << 96);
});
h!(h_splat64, |ctx, op| {
    let v = rg(ctx, op.a).u64();
    wr2(ctx, op.c, v as u128 | (v as u128) << 64);
});
h!(h_extract32, |ctx, op| {
    let v = rg2(ctx, op.a);
    let lane = (v >> (32 * op.aux as u32)) as u32;
    wr(ctx, op.c, Slot::from_u32(lane));
});
h!(h_extract64, |ctx, op| {
    let v = rg2(ctx, op.a);
    let lane = (v >> (64 * op.aux as u32)) as u64;
    wr(ctx, op.c, Slot::from_u64(lane));
});
h!(h_replace64, |ctx, op| {
    let x = rg(ctx, op.b).f64();
    let v = rg2(ctx, op.a);
    let mut lanes = exec::v_to_f64x2(v);
    lanes[op.aux as usize & 1] = x;
    wr2(ctx, op.c, exec::f64x2_to_v(lanes));
});
vbin!(h_addi32x4, |a, b| exec::i32x4_bin(a, b, i32::wrapping_add));
vbin!(h_subi32x4, |a, b| exec::i32x4_bin(a, b, i32::wrapping_sub));
vbin!(h_muli32x4, |a, b| exec::i32x4_bin(a, b, i32::wrapping_mul));
vbin!(h_addf32x4, |a, b| exec::f32x4_bin(a, b, |x, y| x + y));
vbin!(h_subf32x4, |a, b| exec::f32x4_bin(a, b, |x, y| x - y));
vbin!(h_mulf32x4, |a, b| exec::f32x4_bin(a, b, |x, y| x * y));
vbin!(h_divf32x4, |a, b| exec::f32x4_bin(a, b, |x, y| x / y));
vbin!(h_addf64x2, |a, b| exec::f64x2_bin(a, b, |x, y| x + y));
vbin!(h_subf64x2, |a, b| exec::f64x2_bin(a, b, |x, y| x - y));
vbin!(h_mulf64x2, |a, b| exec::f64x2_bin(a, b, |x, y| x * y));
vbin!(h_divf64x2, |a, b| exec::f64x2_bin(a, b, |x, y| x / y));
h!(h_cmpf64x2, |ctx, op| {
    let a = rg2(ctx, op.a);
    let b = rg2(ctx, op.b);
    let code = op.aux;
    let r = exec::f64x2_cmp(a, b, |x, y| feval(code, x, y));
    wr2(ctx, op.c, r);
});
vbin!(h_vand, |a, b| a & b);
vbin!(h_vor, |a, b| a | b);
vbin!(h_vxor, |a, b| a ^ b);
h!(h_vnot, |ctx, op| {
    let a = rg2(ctx, op.a);
    wr2(ctx, op.c, !a);
});
h!(h_vanytrue, |ctx, op| {
    let a = rg2(ctx, op.a);
    wr(ctx, op.c, Slot::from_bool(a != 0));
});
h!(h_alltruei32x4, |ctx, op| {
    let a = exec::v_to_i32x4(rg2(ctx, op.a));
    wr(ctx, op.c, Slot::from_bool(a.iter().all(|&l| l != 0)));
});
h!(h_bitmaski32x4, |ctx, op| {
    let a = exec::v_to_i32x4(rg2(ctx, op.a));
    let mut m = 0;
    for (i, l) in a.iter().enumerate() {
        if *l < 0 {
            m |= 1 << i;
        }
    }
    wr(ctx, op.c, Slot::from_i32(m));
});

/// The dispatch table: one handler per [`Rc`] discriminant. Unassigned
/// slots hold [`h_bad`], which only fires on memory corruption (the
/// verifier never emits opcodes outside the enum).
static HANDLERS: [Handler; 256] = {
    let mut t: [Handler; 256] = [h_bad; 256];
    t[Rc::Nop as usize] = h_nop;
    t[Rc::Jump as usize] = h_jump;
    t[Rc::Br as usize] = h_br;
    t[Rc::BrIf as usize] = h_br_if;
    t[Rc::BrIfZ as usize] = h_br_if_z;
    t[Rc::BrIfCmp32 as usize] = h_br_if_cmp32;
    t[Rc::BrIfCmp32K as usize] = h_br_if_cmp32k;
    t[Rc::BrTable as usize] = h_br_table;
    t[Rc::Return as usize] = h_return;
    t[Rc::Unreachable as usize] = h_unreachable;
    t[Rc::CallGuest as usize] = h_call_guest;
    t[Rc::CallHost as usize] = h_call_host;
    t[Rc::CallIndirect as usize] = h_call_indirect;
    t[Rc::Copy as usize] = h_copy;
    t[Rc::Copy2 as usize] = h_copy2;
    t[Rc::Select as usize] = h_select;
    t[Rc::Select2 as usize] = h_select2;
    t[Rc::GlobalGet as usize] = h_global_get;
    t[Rc::GlobalSet as usize] = h_global_set;
    t[Rc::Const as usize] = h_const;
    t[Rc::V128Const as usize] = h_v128_const;
    t[Rc::Load32 as usize] = h_load32;
    t[Rc::Load64 as usize] = h_load64;
    t[Rc::Load8S32 as usize] = h_load8s32;
    t[Rc::Load8U32 as usize] = h_load8u32;
    t[Rc::Load16S32 as usize] = h_load16s32;
    t[Rc::Load16U32 as usize] = h_load16u32;
    t[Rc::Load8S64 as usize] = h_load8s64;
    t[Rc::Load8U64 as usize] = h_load8u64;
    t[Rc::Load16S64 as usize] = h_load16s64;
    t[Rc::Load16U64 as usize] = h_load16u64;
    t[Rc::Load32S64 as usize] = h_load32s64;
    t[Rc::Load32U64 as usize] = h_load32u64;
    t[Rc::V128Load as usize] = h_v128_load;
    t[Rc::Store8 as usize] = h_store8;
    t[Rc::Store16 as usize] = h_store16;
    t[Rc::Store32 as usize] = h_store32;
    t[Rc::Store64 as usize] = h_store64;
    t[Rc::V128Store as usize] = h_v128_store;
    t[Rc::Load32Shl as usize] = h_load32_shl;
    t[Rc::Load64Shl as usize] = h_load64_shl;
    t[Rc::Load32ShlK as usize] = h_load32_shlk;
    t[Rc::Load64ShlK as usize] = h_load64_shlk;
    t[Rc::Store32Shl as usize] = h_store32_shl;
    t[Rc::Store64Shl as usize] = h_store64_shl;
    t[Rc::Store32ShlK as usize] = h_store32_shlk;
    t[Rc::Store64ShlK as usize] = h_store64_shlk;
    t[Rc::MemSize as usize] = h_mem_size;
    t[Rc::MemGrow as usize] = h_mem_grow;
    t[Rc::MemCopy as usize] = h_mem_copy;
    t[Rc::MemFill as usize] = h_mem_fill;
    t[Rc::Eqz32 as usize] = h_eqz32;
    t[Rc::Cmp32 as usize] = h_cmp32;
    t[Rc::Clz32 as usize] = h_clz32;
    t[Rc::Ctz32 as usize] = h_ctz32;
    t[Rc::Popcnt32 as usize] = h_popcnt32;
    t[Rc::Add32 as usize] = h_add32;
    t[Rc::Sub32 as usize] = h_sub32;
    t[Rc::Mul32 as usize] = h_mul32;
    t[Rc::DivS32 as usize] = h_divs32;
    t[Rc::DivU32 as usize] = h_divu32;
    t[Rc::RemS32 as usize] = h_rems32;
    t[Rc::RemU32 as usize] = h_remu32;
    t[Rc::And32 as usize] = h_and32;
    t[Rc::Or32 as usize] = h_or32;
    t[Rc::Xor32 as usize] = h_xor32;
    t[Rc::Shl32 as usize] = h_shl32;
    t[Rc::ShrS32 as usize] = h_shrs32;
    t[Rc::ShrU32 as usize] = h_shru32;
    t[Rc::Rotl32 as usize] = h_rotl32;
    t[Rc::Rotr32 as usize] = h_rotr32;
    t[Rc::AddK32 as usize] = h_addk32;
    t[Rc::ShlK32 as usize] = h_shlk32;
    t[Rc::AddShl32 as usize] = h_addshl32;
    t[Rc::Eqz64 as usize] = h_eqz64;
    t[Rc::Cmp64 as usize] = h_cmp64;
    t[Rc::Clz64 as usize] = h_clz64;
    t[Rc::Ctz64 as usize] = h_ctz64;
    t[Rc::Popcnt64 as usize] = h_popcnt64;
    t[Rc::Add64 as usize] = h_add64;
    t[Rc::Sub64 as usize] = h_sub64;
    t[Rc::Mul64 as usize] = h_mul64;
    t[Rc::DivS64 as usize] = h_divs64;
    t[Rc::DivU64 as usize] = h_divu64;
    t[Rc::RemS64 as usize] = h_rems64;
    t[Rc::RemU64 as usize] = h_remu64;
    t[Rc::And64 as usize] = h_and64;
    t[Rc::Or64 as usize] = h_or64;
    t[Rc::Xor64 as usize] = h_xor64;
    t[Rc::Shl64 as usize] = h_shl64;
    t[Rc::ShrS64 as usize] = h_shrs64;
    t[Rc::ShrU64 as usize] = h_shru64;
    t[Rc::Rotl64 as usize] = h_rotl64;
    t[Rc::Rotr64 as usize] = h_rotr64;
    t[Rc::CmpF32 as usize] = h_cmpf32;
    t[Rc::AbsF32 as usize] = h_absf32;
    t[Rc::NegF32 as usize] = h_negf32;
    t[Rc::CeilF32 as usize] = h_ceilf32;
    t[Rc::FloorF32 as usize] = h_floorf32;
    t[Rc::TruncF32 as usize] = h_truncf32;
    t[Rc::NearestF32 as usize] = h_nearestf32;
    t[Rc::SqrtF32 as usize] = h_sqrtf32;
    t[Rc::AddF32 as usize] = h_addf32;
    t[Rc::SubF32 as usize] = h_subf32;
    t[Rc::MulF32 as usize] = h_mulf32;
    t[Rc::DivF32 as usize] = h_divf32;
    t[Rc::MinF32 as usize] = h_minf32;
    t[Rc::MaxF32 as usize] = h_maxf32;
    t[Rc::CopysignF32 as usize] = h_copysignf32;
    t[Rc::CmpF64 as usize] = h_cmpf64;
    t[Rc::AbsF64 as usize] = h_absf64;
    t[Rc::NegF64 as usize] = h_negf64;
    t[Rc::CeilF64 as usize] = h_ceilf64;
    t[Rc::FloorF64 as usize] = h_floorf64;
    t[Rc::TruncF64 as usize] = h_truncf64;
    t[Rc::NearestF64 as usize] = h_nearestf64;
    t[Rc::SqrtF64 as usize] = h_sqrtf64;
    t[Rc::AddF64 as usize] = h_addf64;
    t[Rc::SubF64 as usize] = h_subf64;
    t[Rc::MulF64 as usize] = h_mulf64;
    t[Rc::DivF64 as usize] = h_divf64;
    t[Rc::MinF64 as usize] = h_minf64;
    t[Rc::MaxF64 as usize] = h_maxf64;
    t[Rc::CopysignF64 as usize] = h_copysignf64;
    t[Rc::Fma64 as usize] = h_fma64;
    t[Rc::Wrap64 as usize] = h_wrap64;
    t[Rc::TruncF32S32 as usize] = h_truncf32s32;
    t[Rc::TruncF32U32 as usize] = h_truncf32u32;
    t[Rc::TruncF64S32 as usize] = h_truncf64s32;
    t[Rc::TruncF64U32 as usize] = h_truncf64u32;
    t[Rc::ExtS3264 as usize] = h_exts3264;
    t[Rc::ExtU3264 as usize] = h_extu3264;
    t[Rc::TruncF32S64 as usize] = h_truncf32s64;
    t[Rc::TruncF32U64 as usize] = h_truncf32u64;
    t[Rc::TruncF64S64 as usize] = h_truncf64s64;
    t[Rc::TruncF64U64 as usize] = h_truncf64u64;
    t[Rc::ConvS32F32 as usize] = h_convs32f32;
    t[Rc::ConvU32F32 as usize] = h_convu32f32;
    t[Rc::ConvS64F32 as usize] = h_convs64f32;
    t[Rc::ConvU64F32 as usize] = h_convu64f32;
    t[Rc::Demote as usize] = h_demote;
    t[Rc::ConvS32F64 as usize] = h_convs32f64;
    t[Rc::ConvU32F64 as usize] = h_convu32f64;
    t[Rc::ConvS64F64 as usize] = h_convs64f64;
    t[Rc::ConvU64F64 as usize] = h_convu64f64;
    t[Rc::Promote as usize] = h_promote;
    t[Rc::Ext8S32 as usize] = h_ext8s32;
    t[Rc::Ext16S32 as usize] = h_ext16s32;
    t[Rc::Ext8S64 as usize] = h_ext8s64;
    t[Rc::Ext16S64 as usize] = h_ext16s64;
    t[Rc::Ext32S64 as usize] = h_ext32s64;
    t[Rc::Splat32 as usize] = h_splat32;
    t[Rc::Splat64 as usize] = h_splat64;
    t[Rc::Extract32 as usize] = h_extract32;
    t[Rc::Extract64 as usize] = h_extract64;
    t[Rc::Replace64 as usize] = h_replace64;
    t[Rc::AddI32x4 as usize] = h_addi32x4;
    t[Rc::SubI32x4 as usize] = h_subi32x4;
    t[Rc::MulI32x4 as usize] = h_muli32x4;
    t[Rc::AddF32x4 as usize] = h_addf32x4;
    t[Rc::SubF32x4 as usize] = h_subf32x4;
    t[Rc::MulF32x4 as usize] = h_mulf32x4;
    t[Rc::DivF32x4 as usize] = h_divf32x4;
    t[Rc::AddF64x2 as usize] = h_addf64x2;
    t[Rc::SubF64x2 as usize] = h_subf64x2;
    t[Rc::MulF64x2 as usize] = h_mulf64x2;
    t[Rc::DivF64x2 as usize] = h_divf64x2;
    t[Rc::CmpF64x2 as usize] = h_cmpf64x2;
    t[Rc::VAnd as usize] = h_vand;
    t[Rc::VOr as usize] = h_vor;
    t[Rc::VXor as usize] = h_vxor;
    t[Rc::VNot as usize] = h_vnot;
    t[Rc::VAnyTrue as usize] = h_vanytrue;
    t[Rc::AllTrueI32x4 as usize] = h_alltruei32x4;
    t[Rc::BitmaskI32x4 as usize] = h_bitmaski32x4;
    t[Rc::Cmp32K as usize] = h_cmp32k;
    t[Rc::AddK64 as usize] = h_addk64;
    t[Rc::Cmp64K as usize] = h_cmp64k;
    t
};

/// Run register-form function `defined_idx`; its arguments are the top
/// `param_slots` entries of `stack`. On success the stack is truncated to
/// frame base + results and the result slot count returned.
pub(crate) fn run(
    inst: &mut Instance,
    stack: &mut Vec<Slot>,
    defined_idx: usize,
) -> Result<usize, Trap> {
    if let Some(jit) = inst.jit.clone() {
        return run_jit(inst, stack, defined_idx, &jit);
    }
    let bodies = Arc::clone(&inst.bodies);
    let bodies: &[CompiledBody] = &bodies;
    let f = flat(bodies, defined_idx);
    let base = stack.len() - f.param_slots as usize;
    let need = base + f.frame_size as usize;
    if need > inst.limits.max_value_stack {
        return Err(Trap::StackExhausted);
    }
    // Zero-fills the declared locals (they sit right after the args).
    stack.resize(need, Slot::ZERO);
    let imported = inst.host_funcs.len() as u32;
    let mut ctx = Ctx {
        inst,
        stack,
        bodies,
        frames: Vec::new(),
        func: f,
        code: &f.code,
        base,
        imported,
        cur_idx: defined_idx as u32,
    };
    // Meteredness is resolved once per entry: the unmetered loop is the
    // exact pre-limits dispatch loop (no per-op comparison at all).
    if ctx.inst.metered() {
        dispatch_loop::<true>(&mut ctx)?;
    } else {
        dispatch_loop::<false>(&mut ctx)?;
    }
    let result_slots = ctx.func.result_slots as usize;
    let base = ctx.base;
    stack.truncate(base + result_slots);
    Ok(result_slots)
}

/// The flat-tier dispatch loop. When `METERED`, backward control
/// transfers (loop iterations and calls, whose entry ip is 0) are the
/// fuel guard points; charging in batches of 1024 keeps the metered
/// loop's added cost to one comparison per op, and the unmetered
/// monomorphization compiles it out entirely.
#[inline(always)]
fn dispatch_loop<const METERED: bool>(ctx: &mut Ctx<'_>) -> Result<(), Trap> {
    let mut ip = 0usize;
    let mut guard_epoch = 0u32;
    loop {
        let opcode = ctx.code[ip].code as usize;
        let next = HANDLERS[opcode](ctx, ip)?;
        if next == DONE {
            return Ok(());
        }
        if METERED && next <= ip {
            guard_epoch += 1;
            if guard_epoch & 1023 == 0 {
                ctx.inst.fuel_step(1024)?;
            }
        }
        ip = next;
    }
}

/// The [`run`] loop variant for [`crate::tier::Tier::MaxJit`]: identical
/// dispatch, plus
///
/// * hotness accounting — one event per function entry/resume and one per
///   backward control transfer (loop iteration), so both hot call targets
///   and hot loops inside rarely-called functions promote;
/// * superblock chain entry — once a function is promoted, every ip that
///   heads a compiled superblock executes the whole chain in one call and
///   the loop resumes interpretation at whatever ip the chain bails or
///   runs off at.
///
/// Chains never call or return (superblock discovery stops at calls and
/// `Return`), so the current-function tracking only changes across
/// interpreted ops.
fn run_jit(
    inst: &mut Instance,
    stack: &mut Vec<Slot>,
    defined_idx: usize,
    jit: &crate::superblock::JitState,
) -> Result<usize, Trap> {
    let bodies = Arc::clone(&inst.bodies);
    let bodies: &[CompiledBody] = &bodies;
    let f = flat(bodies, defined_idx);
    let base = stack.len() - f.param_slots as usize;
    let need = base + f.frame_size as usize;
    if need > inst.limits.max_value_stack {
        return Err(Trap::StackExhausted);
    }
    stack.resize(need, Slot::ZERO);
    let imported = inst.host_funcs.len() as u32;
    let mut ctx = Ctx {
        inst,
        stack,
        bodies,
        frames: Vec::new(),
        func: f,
        code: &f.code,
        base,
        imported,
        cur_idx: defined_idx as u32,
    };
    let mut cur = ctx.cur_idx;
    let mut chains = jit.bump(cur, ctx.func);
    let mut ip = 0usize;
    // Profiling resolved once per call: the hot loop pays one extra
    // branch per chain entry, and locals flush to the shared atomics only
    // on the way out.
    let profiling = jit.profiling();
    let mut tally = crate::closures::ChainTally::default();
    let mut chains_entered = 0u64;
    // Chain re-entries and interpreted backward transfers are the fuel
    // guard points of this tier (in-chain loop backedges charge inside
    // `Chain::run` itself). Meteredness is resolved once per entry and
    // rides branches the loop already takes, so unlimited runs pay one
    // predictable test per backward transfer and nothing per op.
    let metered = ctx.inst.metered();
    let mut guard_epoch = 0u32;
    loop {
        if ctx.cur_idx != cur {
            // Interpreted call or return switched functions.
            cur = ctx.cur_idx;
            chains = jit.bump(cur, ctx.func);
        }
        if let Some(ch) = &chains {
            if let Some(chain) = ch.lookup(ip) {
                if metered {
                    guard_epoch += 1;
                    if guard_epoch & 1023 == 0 {
                        ctx.inst.fuel_step(1024)?;
                    }
                }
                ip = if profiling {
                    chains_entered += 1;
                    chain.run_counted(&mut ctx, &mut tally)?
                } else {
                    chain.run(&mut ctx)?
                };
                continue;
            }
        }
        let opcode = ctx.code[ip].code as usize;
        let next = HANDLERS[opcode](&mut ctx, ip)?;
        if next == DONE {
            break;
        }
        if next <= ip {
            if metered {
                guard_epoch += 1;
                if guard_epoch & 1023 == 0 {
                    ctx.inst.fuel_step(1024)?;
                }
            }
            if chains.is_none() && ctx.cur_idx == cur {
                chains = jit.bump(cur, ctx.func);
            }
        }
        ip = next;
    }
    if profiling {
        jit.flush(chains_entered, &tally);
    }
    let result_slots = ctx.func.result_slots as usize;
    let base = ctx.base;
    stack.truncate(base + result_slots);
    Ok(result_slots)
}

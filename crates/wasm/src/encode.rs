//! Encoding of a [`Module`] back to the Wasm binary format.
//!
//! Together with [`crate::decode`] this forms a lossless round-trip for
//! every construct the engine supports; the module builder and DSL emit
//! through this path, so generated guest binaries are real Wasm binaries.

use crate::instr::{Instr, MemArg};
use crate::leb128::{write_i32, write_i64, write_name, write_u32};
use crate::module::{Export, ExportKind, Function, Global, Import, Module};
use crate::types::{BlockType, ExternKind, FuncType, GlobalType, Limits, Mutability, ValType};
use crate::{WASM_MAGIC, WASM_VERSION};

/// Encode a module to binary bytes.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&WASM_MAGIC);
    out.extend_from_slice(&WASM_VERSION);

    if !module.types.is_empty() {
        write_section(&mut out, 1, |buf| {
            write_u32(buf, module.types.len() as u32);
            for t in &module.types {
                encode_functype(buf, t);
            }
        });
    }
    if !module.imports.is_empty() {
        write_section(&mut out, 2, |buf| {
            write_u32(buf, module.imports.len() as u32);
            for imp in &module.imports {
                encode_import(buf, imp);
            }
        });
    }
    if !module.functions.is_empty() {
        write_section(&mut out, 3, |buf| {
            write_u32(buf, module.functions.len() as u32);
            for f in &module.functions {
                write_u32(buf, f.type_idx);
            }
        });
    }
    if !module.tables.is_empty() {
        write_section(&mut out, 4, |buf| {
            write_u32(buf, module.tables.len() as u32);
            for limits in &module.tables {
                buf.push(0x70);
                encode_limits(buf, limits);
            }
        });
    }
    if !module.memories.is_empty() {
        write_section(&mut out, 5, |buf| {
            write_u32(buf, module.memories.len() as u32);
            for limits in &module.memories {
                encode_limits(buf, limits);
            }
        });
    }
    if !module.globals.is_empty() {
        write_section(&mut out, 6, |buf| {
            write_u32(buf, module.globals.len() as u32);
            for g in &module.globals {
                encode_global(buf, g);
            }
        });
    }
    if !module.exports.is_empty() {
        write_section(&mut out, 7, |buf| {
            write_u32(buf, module.exports.len() as u32);
            for e in &module.exports {
                encode_export(buf, e);
            }
        });
    }
    if let Some(start) = module.start {
        write_section(&mut out, 8, |buf| write_u32(buf, start));
    }
    if !module.elements.is_empty() {
        write_section(&mut out, 9, |buf| {
            write_u32(buf, module.elements.len() as u32);
            for seg in &module.elements {
                write_u32(buf, 0); // flags: active, table 0
                encode_const_i32(buf, seg.offset);
                write_u32(buf, seg.funcs.len() as u32);
                for &f in &seg.funcs {
                    write_u32(buf, f);
                }
            }
        });
    }
    if !module.functions.is_empty() {
        write_section(&mut out, 10, |buf| {
            write_u32(buf, module.functions.len() as u32);
            for f in &module.functions {
                encode_code(buf, f);
            }
        });
    }
    if !module.data.is_empty() {
        write_section(&mut out, 11, |buf| {
            write_u32(buf, module.data.len() as u32);
            for seg in &module.data {
                write_u32(buf, 0); // flags: active, memory 0
                encode_const_i32(buf, seg.offset);
                write_u32(buf, seg.bytes.len() as u32);
                buf.extend_from_slice(&seg.bytes);
            }
        });
    }
    if let Some(name) = &module.name {
        write_section(&mut out, 0, |buf| {
            write_name(buf, "name");
            let mut sub = Vec::new();
            write_name(&mut sub, name);
            buf.push(0);
            write_u32(buf, sub.len() as u32);
            buf.extend_from_slice(&sub);
        });
    }
    out
}

fn write_section(out: &mut Vec<u8>, id: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    let mut payload = Vec::new();
    fill(&mut payload);
    out.push(id);
    write_u32(out, payload.len() as u32);
    out.extend_from_slice(&payload);
}

fn encode_functype(out: &mut Vec<u8>, t: &FuncType) {
    out.push(0x60);
    write_u32(out, t.params.len() as u32);
    for p in &t.params {
        out.push(p.to_byte());
    }
    write_u32(out, t.results.len() as u32);
    for r in &t.results {
        out.push(r.to_byte());
    }
}

fn encode_limits(out: &mut Vec<u8>, l: &Limits) {
    match l.max {
        None => {
            out.push(0x00);
            write_u32(out, l.min);
        }
        Some(max) => {
            out.push(0x01);
            write_u32(out, l.min);
            write_u32(out, max);
        }
    }
}

fn encode_global_type(out: &mut Vec<u8>, g: &GlobalType) {
    out.push(g.val_type.to_byte());
    out.push(match g.mutability {
        Mutability::Const => 0x00,
        Mutability::Var => 0x01,
    });
}

fn encode_import(out: &mut Vec<u8>, imp: &Import) {
    write_name(out, &imp.module);
    write_name(out, &imp.name);
    match &imp.kind {
        ExternKind::Func(type_idx) => {
            out.push(0x00);
            write_u32(out, *type_idx);
        }
        ExternKind::Table(limits) => {
            out.push(0x01);
            out.push(0x70);
            encode_limits(out, limits);
        }
        ExternKind::Memory(limits) => {
            out.push(0x02);
            encode_limits(out, limits);
        }
        ExternKind::Global(g) => {
            out.push(0x03);
            encode_global_type(out, g);
        }
    }
}

fn encode_global(out: &mut Vec<u8>, g: &Global) {
    encode_global_type(out, &g.ty);
    encode_instr(out, &g.init);
    out.push(0x0b);
}

fn encode_export(out: &mut Vec<u8>, e: &Export) {
    write_name(out, &e.name);
    out.push(match e.kind {
        ExportKind::Func => 0x00,
        ExportKind::Table => 0x01,
        ExportKind::Memory => 0x02,
        ExportKind::Global => 0x03,
    });
    write_u32(out, e.index);
}

fn encode_const_i32(out: &mut Vec<u8>, v: i32) {
    out.push(0x41);
    write_i32(out, v);
    out.push(0x0b);
}

fn encode_code(out: &mut Vec<u8>, f: &Function) {
    let mut body = Vec::new();
    // Run-length encode locals.
    let mut groups: Vec<(u32, ValType)> = Vec::new();
    for &l in &f.locals {
        match groups.last_mut() {
            Some((count, ty)) if *ty == l => *count += 1,
            _ => groups.push((1, l)),
        }
    }
    write_u32(&mut body, groups.len() as u32);
    for (count, ty) in groups {
        write_u32(&mut body, count);
        body.push(ty.to_byte());
    }
    for instr in &f.body {
        encode_instr(&mut body, instr);
    }
    write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

fn encode_block_type(out: &mut Vec<u8>, bt: &BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.to_byte()),
        BlockType::Func(idx) => write_i64(out, *idx as i64),
    }
}

fn encode_memarg(out: &mut Vec<u8>, m: &MemArg) {
    write_u32(out, m.align);
    write_u32(out, m.offset);
}

fn simd(out: &mut Vec<u8>, sub: u32) {
    out.push(0xfd);
    write_u32(out, sub);
}

/// Encode a single instruction.
pub fn encode_instr(out: &mut Vec<u8>, instr: &Instr) {
    use Instr::*;
    match instr {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt) => {
            out.push(0x02);
            encode_block_type(out, bt);
        }
        Loop(bt) => {
            out.push(0x03);
            encode_block_type(out, bt);
        }
        If(bt) => {
            out.push(0x04);
            encode_block_type(out, bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0b),
        Br(d) => {
            out.push(0x0c);
            write_u32(out, *d);
        }
        BrIf(d) => {
            out.push(0x0d);
            write_u32(out, *d);
        }
        BrTable { targets, default } => {
            out.push(0x0e);
            write_u32(out, targets.len() as u32);
            for t in targets {
                write_u32(out, *t);
            }
            write_u32(out, *default);
        }
        Return => out.push(0x0f),
        Call(f) => {
            out.push(0x10);
            write_u32(out, *f);
        }
        CallIndirect { type_idx, table } => {
            out.push(0x11);
            write_u32(out, *type_idx);
            write_u32(out, *table);
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(i) => {
            out.push(0x20);
            write_u32(out, *i);
        }
        LocalSet(i) => {
            out.push(0x21);
            write_u32(out, *i);
        }
        LocalTee(i) => {
            out.push(0x22);
            write_u32(out, *i);
        }
        GlobalGet(i) => {
            out.push(0x23);
            write_u32(out, *i);
        }
        GlobalSet(i) => {
            out.push(0x24);
            write_u32(out, *i);
        }
        I32Load(m) => {
            out.push(0x28);
            encode_memarg(out, m);
        }
        I64Load(m) => {
            out.push(0x29);
            encode_memarg(out, m);
        }
        F32Load(m) => {
            out.push(0x2a);
            encode_memarg(out, m);
        }
        F64Load(m) => {
            out.push(0x2b);
            encode_memarg(out, m);
        }
        I32Load8S(m) => {
            out.push(0x2c);
            encode_memarg(out, m);
        }
        I32Load8U(m) => {
            out.push(0x2d);
            encode_memarg(out, m);
        }
        I32Load16S(m) => {
            out.push(0x2e);
            encode_memarg(out, m);
        }
        I32Load16U(m) => {
            out.push(0x2f);
            encode_memarg(out, m);
        }
        I64Load8S(m) => {
            out.push(0x30);
            encode_memarg(out, m);
        }
        I64Load8U(m) => {
            out.push(0x31);
            encode_memarg(out, m);
        }
        I64Load16S(m) => {
            out.push(0x32);
            encode_memarg(out, m);
        }
        I64Load16U(m) => {
            out.push(0x33);
            encode_memarg(out, m);
        }
        I64Load32S(m) => {
            out.push(0x34);
            encode_memarg(out, m);
        }
        I64Load32U(m) => {
            out.push(0x35);
            encode_memarg(out, m);
        }
        I32Store(m) => {
            out.push(0x36);
            encode_memarg(out, m);
        }
        I64Store(m) => {
            out.push(0x37);
            encode_memarg(out, m);
        }
        F32Store(m) => {
            out.push(0x38);
            encode_memarg(out, m);
        }
        F64Store(m) => {
            out.push(0x39);
            encode_memarg(out, m);
        }
        I32Store8(m) => {
            out.push(0x3a);
            encode_memarg(out, m);
        }
        I32Store16(m) => {
            out.push(0x3b);
            encode_memarg(out, m);
        }
        I64Store8(m) => {
            out.push(0x3c);
            encode_memarg(out, m);
        }
        I64Store16(m) => {
            out.push(0x3d);
            encode_memarg(out, m);
        }
        I64Store32(m) => {
            out.push(0x3e);
            encode_memarg(out, m);
        }
        MemorySize => out.extend_from_slice(&[0x3f, 0x00]),
        MemoryGrow => out.extend_from_slice(&[0x40, 0x00]),
        MemoryCopy => {
            out.push(0xfc);
            write_u32(out, 10);
            out.extend_from_slice(&[0x00, 0x00]);
        }
        MemoryFill => {
            out.push(0xfc);
            write_u32(out, 11);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        I32Eqz => out.push(0x45),
        I32Eq => out.push(0x46),
        I32Ne => out.push(0x47),
        I32LtS => out.push(0x48),
        I32LtU => out.push(0x49),
        I32GtS => out.push(0x4a),
        I32GtU => out.push(0x4b),
        I32LeS => out.push(0x4c),
        I32LeU => out.push(0x4d),
        I32GeS => out.push(0x4e),
        I32GeU => out.push(0x4f),
        I64Eqz => out.push(0x50),
        I64Eq => out.push(0x51),
        I64Ne => out.push(0x52),
        I64LtS => out.push(0x53),
        I64LtU => out.push(0x54),
        I64GtS => out.push(0x55),
        I64GtU => out.push(0x56),
        I64LeS => out.push(0x57),
        I64LeU => out.push(0x58),
        I64GeS => out.push(0x59),
        I64GeU => out.push(0x5a),
        F32Eq => out.push(0x5b),
        F32Ne => out.push(0x5c),
        F32Lt => out.push(0x5d),
        F32Gt => out.push(0x5e),
        F32Le => out.push(0x5f),
        F32Ge => out.push(0x60),
        F64Eq => out.push(0x61),
        F64Ne => out.push(0x62),
        F64Lt => out.push(0x63),
        F64Gt => out.push(0x64),
        F64Le => out.push(0x65),
        F64Ge => out.push(0x66),
        I32Clz => out.push(0x67),
        I32Ctz => out.push(0x68),
        I32Popcnt => out.push(0x69),
        I32Add => out.push(0x6a),
        I32Sub => out.push(0x6b),
        I32Mul => out.push(0x6c),
        I32DivS => out.push(0x6d),
        I32DivU => out.push(0x6e),
        I32RemS => out.push(0x6f),
        I32RemU => out.push(0x70),
        I32And => out.push(0x71),
        I32Or => out.push(0x72),
        I32Xor => out.push(0x73),
        I32Shl => out.push(0x74),
        I32ShrS => out.push(0x75),
        I32ShrU => out.push(0x76),
        I32Rotl => out.push(0x77),
        I32Rotr => out.push(0x78),
        I64Clz => out.push(0x79),
        I64Ctz => out.push(0x7a),
        I64Popcnt => out.push(0x7b),
        I64Add => out.push(0x7c),
        I64Sub => out.push(0x7d),
        I64Mul => out.push(0x7e),
        I64DivS => out.push(0x7f),
        I64DivU => out.push(0x80),
        I64RemS => out.push(0x81),
        I64RemU => out.push(0x82),
        I64And => out.push(0x83),
        I64Or => out.push(0x84),
        I64Xor => out.push(0x85),
        I64Shl => out.push(0x86),
        I64ShrS => out.push(0x87),
        I64ShrU => out.push(0x88),
        I64Rotl => out.push(0x89),
        I64Rotr => out.push(0x8a),
        F32Abs => out.push(0x8b),
        F32Neg => out.push(0x8c),
        F32Ceil => out.push(0x8d),
        F32Floor => out.push(0x8e),
        F32Trunc => out.push(0x8f),
        F32Nearest => out.push(0x90),
        F32Sqrt => out.push(0x91),
        F32Add => out.push(0x92),
        F32Sub => out.push(0x93),
        F32Mul => out.push(0x94),
        F32Div => out.push(0x95),
        F32Min => out.push(0x96),
        F32Max => out.push(0x97),
        F32Copysign => out.push(0x98),
        F64Abs => out.push(0x99),
        F64Neg => out.push(0x9a),
        F64Ceil => out.push(0x9b),
        F64Floor => out.push(0x9c),
        F64Trunc => out.push(0x9d),
        F64Nearest => out.push(0x9e),
        F64Sqrt => out.push(0x9f),
        F64Add => out.push(0xa0),
        F64Sub => out.push(0xa1),
        F64Mul => out.push(0xa2),
        F64Div => out.push(0xa3),
        F64Min => out.push(0xa4),
        F64Max => out.push(0xa5),
        F64Copysign => out.push(0xa6),
        I32WrapI64 => out.push(0xa7),
        I32TruncF32S => out.push(0xa8),
        I32TruncF32U => out.push(0xa9),
        I32TruncF64S => out.push(0xaa),
        I32TruncF64U => out.push(0xab),
        I64ExtendI32S => out.push(0xac),
        I64ExtendI32U => out.push(0xad),
        I64TruncF32S => out.push(0xae),
        I64TruncF32U => out.push(0xaf),
        I64TruncF64S => out.push(0xb0),
        I64TruncF64U => out.push(0xb1),
        F32ConvertI32S => out.push(0xb2),
        F32ConvertI32U => out.push(0xb3),
        F32ConvertI64S => out.push(0xb4),
        F32ConvertI64U => out.push(0xb5),
        F32DemoteF64 => out.push(0xb6),
        F64ConvertI32S => out.push(0xb7),
        F64ConvertI32U => out.push(0xb8),
        F64ConvertI64S => out.push(0xb9),
        F64ConvertI64U => out.push(0xba),
        F64PromoteF32 => out.push(0xbb),
        I32ReinterpretF32 => out.push(0xbc),
        I64ReinterpretF64 => out.push(0xbd),
        F32ReinterpretI32 => out.push(0xbe),
        F64ReinterpretI64 => out.push(0xbf),
        I32Extend8S => out.push(0xc0),
        I32Extend16S => out.push(0xc1),
        I64Extend8S => out.push(0xc2),
        I64Extend16S => out.push(0xc3),
        I64Extend32S => out.push(0xc4),
        V128Load(m) => {
            simd(out, 0);
            encode_memarg(out, m);
        }
        V128Store(m) => {
            simd(out, 11);
            encode_memarg(out, m);
        }
        V128Const(bytes) => {
            simd(out, 12);
            out.extend_from_slice(bytes);
        }
        I32x4Splat => simd(out, 17),
        I64x2Splat => simd(out, 18),
        F32x4Splat => simd(out, 19),
        F64x2Splat => simd(out, 20),
        I32x4ExtractLane(l) => {
            simd(out, 27);
            out.push(*l);
        }
        F32x4ExtractLane(l) => {
            simd(out, 31);
            out.push(*l);
        }
        F64x2ExtractLane(l) => {
            simd(out, 33);
            out.push(*l);
        }
        F64x2ReplaceLane(l) => {
            simd(out, 34);
            out.push(*l);
        }
        F64x2Eq => simd(out, 71),
        F64x2Ne => simd(out, 72),
        F64x2Lt => simd(out, 73),
        F64x2Gt => simd(out, 74),
        F64x2Le => simd(out, 75),
        F64x2Ge => simd(out, 76),
        V128Not => simd(out, 77),
        V128And => simd(out, 78),
        V128Or => simd(out, 80),
        V128Xor => simd(out, 81),
        V128AnyTrue => simd(out, 83),
        I32x4AllTrue => simd(out, 163),
        I32x4Bitmask => simd(out, 164),
        I32x4Add => simd(out, 174),
        I32x4Sub => simd(out, 177),
        I32x4Mul => simd(out, 181),
        F32x4Add => simd(out, 228),
        F32x4Sub => simd(out, 229),
        F32x4Mul => simd(out, 230),
        F32x4Div => simd(out, 231),
        F64x2Add => simd(out, 240),
        F64x2Sub => simd(out, 241),
        F64x2Mul => simd(out, 242),
        F64x2Div => simd(out, 243),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_module;
    use crate::module::{DataSegment, ElementSegment};

    fn sample_module() -> Module {
        let mut m = Module::default();
        m.types.push(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]));
        m.types.push(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "env".into(),
            name: "MPI_Init".into(),
            kind: ExternKind::Func(1),
        });
        m.memories.push(Limits::new(1, Some(16)));
        m.tables.push(Limits::new(2, None));
        m.globals.push(Global {
            ty: GlobalType { val_type: ValType::I32, mutability: Mutability::Var },
            init: Instr::I32Const(42),
        });
        m.functions.push(Function {
            type_idx: 0,
            locals: vec![ValType::I64, ValType::I64, ValType::F64],
            body: vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32Add,
                Instr::End,
            ],
        });
        m.functions.push(Function {
            type_idx: 1,
            locals: vec![],
            body: vec![
                Instr::Block(BlockType::Empty),
                Instr::I32Const(1),
                Instr::BrIf(0),
                Instr::End,
                Instr::End,
            ],
        });
        m.exports.push(Export { name: "add".into(), kind: ExportKind::Func, index: 1 });
        m.exports.push(Export { name: "memory".into(), kind: ExportKind::Memory, index: 0 });
        m.elements.push(ElementSegment { table: 0, offset: 0, funcs: vec![1, 2] });
        m.data.push(DataSegment { memory: 0, offset: 64, bytes: vec![1, 2, 3, 4] });
        m.name = Some("sample".into());
        m
    }

    #[test]
    fn roundtrip_sample_module() {
        let m = sample_module();
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn roundtrip_every_simple_instr() {
        use Instr::*;
        let instrs = vec![
            Unreachable, Nop, Drop, Select, Return, MemorySize, MemoryGrow, MemoryCopy,
            MemoryFill, I32Eqz, I32Add, I64Mul, F32Sqrt, F64Div, I32WrapI64, I64ExtendI32U,
            F64PromoteF32, I32ReinterpretF32, I32Extend8S, I64Extend32S, I32x4Splat,
            F64x2Add, F64x2Lt, F64x2Gt, F64x2Ge, V128Not, V128AnyTrue, I32x4Bitmask,
            I32Const(-5), I64Const(i64::MIN), F32Const(1.5), F64Const(-0.25),
            LocalGet(3), GlobalSet(1), Br(2), BrIf(0), Call(9),
            CallIndirect { type_idx: 4, table: 0 },
            BrTable { targets: vec![0, 1, 2], default: 3 },
            I32Load(MemArg { align: 2, offset: 16 }),
            F64Store(MemArg { align: 3, offset: 1024 }),
            V128Load(MemArg { align: 4, offset: 0 }),
            V128Const([7; 16]),
            I32x4ExtractLane(2), F64x2ExtractLane(1), F64x2ReplaceLane(0),
        ];
        for instr in instrs {
            let mut buf = Vec::new();
            encode_instr(&mut buf, &instr);
            // Wrap in a valid function body for the expression decoder.
            buf.push(0x0b);
            let mut r = crate::leb128::Reader::new(&buf);
            let decoded = crate::decode::decode_expr(&mut r).unwrap();
            assert_eq!(decoded[0], instr, "instruction failed to round-trip");
        }
    }

    #[test]
    fn locals_run_length_encoding_roundtrips() {
        let mut m = Module::default();
        m.types.push(FuncType::new(vec![], vec![]));
        m.functions.push(Function {
            type_idx: 0,
            locals: vec![
                ValType::I32,
                ValType::I32,
                ValType::F64,
                ValType::I32,
                ValType::I32,
                ValType::I32,
            ],
            body: vec![Instr::End],
        });
        let decoded = decode_module(&encode_module(&m)).unwrap();
        assert_eq!(decoded.functions[0].locals, m.functions[0].locals);
    }

    #[test]
    fn empty_module_is_8_bytes() {
        let m = Module::default();
        assert_eq!(encode_module(&m).len(), 8);
    }
}

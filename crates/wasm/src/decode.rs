//! Decoding of the Wasm binary format into a [`Module`].
//!
//! Implements the MVP sections, the sign-extension operators, the
//! `memory.copy`/`memory.fill` bulk-memory instructions, and the SIMD
//! subset listed in [`crate::instr`]. Unknown constructs are rejected with
//! a positioned [`DecodeError`] — the embedder never executes anything the
//! decoder did not fully understand.

use crate::error::DecodeError;
use crate::instr::{Instr, MemArg};
use crate::leb128::Reader;
use crate::module::{
    DataSegment, ElementSegment, Export, ExportKind, Function, Global, Import, Module,
};
use crate::types::{BlockType, ExternKind, FuncType, GlobalType, Limits, Mutability, ValType};
use crate::{WASM_MAGIC, WASM_VERSION};

/// Hard limit on items in any single vector; guards against hostile
/// length prefixes allocating unbounded memory before the data is read.
const MAX_ITEMS: u32 = 10_000_000;

/// Decode a complete binary module.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    let magic = r.read_bytes(4)?;
    if magic != WASM_MAGIC {
        return Err(DecodeError::new(0, "bad magic: not a Wasm binary"));
    }
    let version = r.read_bytes(4)?;
    if version != WASM_VERSION {
        return Err(DecodeError::new(4, "unsupported Wasm binary version"));
    }

    let mut module = Module::default();
    // Function section type indices, joined with code section bodies below.
    let mut func_type_indices: Vec<u32> = Vec::new();
    let mut last_section_id: i32 = -1;

    while !r.is_empty() {
        let sec_offset = r.pos();
        let id = r.read_u8()?;
        let size = r.read_u32()? as usize;
        let mut body = r.sub_reader(size)?;
        if id != 0 {
            if (id as i32) <= last_section_id {
                return Err(DecodeError::new(sec_offset, "sections out of order or duplicated"));
            }
            last_section_id = id as i32;
        }
        match id {
            0 => decode_custom_section(&mut body, &mut module)?,
            1 => module.types = decode_type_section(&mut body)?,
            2 => module.imports = decode_import_section(&mut body)?,
            3 => func_type_indices = decode_vec_u32(&mut body)?,
            4 => module.tables = decode_table_section(&mut body)?,
            5 => module.memories = decode_memory_section(&mut body)?,
            6 => module.globals = decode_global_section(&mut body)?,
            7 => module.exports = decode_export_section(&mut body)?,
            8 => module.start = Some(body.read_u32()?),
            9 => module.elements = decode_element_section(&mut body)?,
            10 => module.functions = decode_code_section(&mut body, &func_type_indices)?,
            11 => module.data = decode_data_section(&mut body)?,
            other => {
                return Err(DecodeError::new(sec_offset, format!("unknown section id {other}")))
            }
        }
        if !body.is_empty() {
            return Err(DecodeError::new(
                sec_offset,
                format!("section {id} has {} trailing bytes", body.remaining()),
            ));
        }
    }

    if module.functions.len() != func_type_indices.len() {
        return Err(DecodeError::new(
            bytes.len(),
            "function and code section lengths disagree",
        ));
    }
    Ok(module)
}

fn checked_count(r: &mut Reader<'_>) -> Result<u32, DecodeError> {
    let pos = r.pos();
    let n = r.read_u32()?;
    if n > MAX_ITEMS {
        return Err(DecodeError::new(pos, format!("vector length {n} exceeds engine limit")));
    }
    Ok(n)
}

fn decode_custom_section(r: &mut Reader<'_>, module: &mut Module) -> Result<(), DecodeError> {
    let name = r.read_name()?;
    if name == "name" {
        // Only the module-name subsection (id 0) is interpreted.
        while !r.is_empty() {
            let sub_id = r.read_u8()?;
            let sub_len = r.read_u32()? as usize;
            let mut sub = r.sub_reader(sub_len)?;
            if sub_id == 0 {
                module.name = Some(sub.read_name()?);
            }
        }
    } else {
        // Skip unknown custom sections entirely.
        let n = r.remaining();
        r.read_bytes(n)?;
    }
    Ok(())
}

fn decode_type_section(r: &mut Reader<'_>) -> Result<Vec<FuncType>, DecodeError> {
    let count = checked_count(r)?;
    let mut types = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let pos = r.pos();
        let form = r.read_u8()?;
        if form != 0x60 {
            return Err(DecodeError::new(pos, format!("expected functype (0x60), got {form:#x}")));
        }
        let params = decode_valtype_vec(r)?;
        let results = decode_valtype_vec(r)?;
        types.push(FuncType::new(params, results));
    }
    Ok(types)
}

fn decode_valtype_vec(r: &mut Reader<'_>) -> Result<Vec<ValType>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count.min(64) as usize);
    for _ in 0..count {
        let pos = r.pos();
        out.push(ValType::from_byte(r.read_u8()?, pos)?);
    }
    Ok(out)
}

fn decode_limits(r: &mut Reader<'_>) -> Result<Limits, DecodeError> {
    let pos = r.pos();
    match r.read_u8()? {
        0x00 => Ok(Limits::new(r.read_u32()?, None)),
        0x01 => {
            let min = r.read_u32()?;
            let max = r.read_u32()?;
            Ok(Limits::new(min, Some(max)))
        }
        flag => Err(DecodeError::new(pos, format!("bad limits flag {flag:#x}"))),
    }
}

fn decode_import_section(r: &mut Reader<'_>) -> Result<Vec<Import>, DecodeError> {
    let count = checked_count(r)?;
    let mut imports = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let module = r.read_name()?;
        let name = r.read_name()?;
        let pos = r.pos();
        let kind = match r.read_u8()? {
            0x00 => ExternKind::Func(r.read_u32()?),
            0x01 => {
                expect_funcref(r)?;
                ExternKind::Table(decode_limits(r)?)
            }
            0x02 => ExternKind::Memory(decode_limits(r)?),
            0x03 => ExternKind::Global(decode_global_type(r)?),
            b => return Err(DecodeError::new(pos, format!("bad import kind {b:#x}"))),
        };
        imports.push(Import { module, name, kind });
    }
    Ok(imports)
}

fn expect_funcref(r: &mut Reader<'_>) -> Result<(), DecodeError> {
    let pos = r.pos();
    let b = r.read_u8()?;
    if b != 0x70 {
        return Err(DecodeError::new(pos, format!("expected funcref (0x70), got {b:#x}")));
    }
    Ok(())
}

fn decode_global_type(r: &mut Reader<'_>) -> Result<GlobalType, DecodeError> {
    let pos = r.pos();
    let val_type = ValType::from_byte(r.read_u8()?, pos)?;
    let pos = r.pos();
    let mutability = match r.read_u8()? {
        0x00 => Mutability::Const,
        0x01 => Mutability::Var,
        b => return Err(DecodeError::new(pos, format!("bad mutability {b:#x}"))),
    };
    Ok(GlobalType { val_type, mutability })
}

fn decode_vec_u32(r: &mut Reader<'_>) -> Result<Vec<u32>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count.min(4096) as usize);
    for _ in 0..count {
        out.push(r.read_u32()?);
    }
    Ok(out)
}

fn decode_table_section(r: &mut Reader<'_>) -> Result<Vec<Limits>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        expect_funcref(r)?;
        out.push(decode_limits(r)?);
    }
    Ok(out)
}

fn decode_memory_section(r: &mut Reader<'_>) -> Result<Vec<Limits>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(decode_limits(r)?);
    }
    Ok(out)
}

/// A constant initializer expression: exactly one const instruction + `end`.
fn decode_const_expr(r: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    let pos = r.pos();
    let instr = match r.read_u8()? {
        0x41 => Instr::I32Const(r.read_i32()?),
        0x42 => Instr::I64Const(r.read_i64()?),
        0x43 => Instr::F32Const(r.read_f32()?),
        0x44 => Instr::F64Const(r.read_f64()?),
        b => return Err(DecodeError::new(pos, format!("unsupported const expr opcode {b:#x}"))),
    };
    let pos = r.pos();
    if r.read_u8()? != 0x0b {
        return Err(DecodeError::new(pos, "const expr missing end"));
    }
    Ok(instr)
}

fn decode_const_i32(r: &mut Reader<'_>) -> Result<i32, DecodeError> {
    let pos = r.pos();
    match decode_const_expr(r)? {
        Instr::I32Const(v) => Ok(v),
        _ => Err(DecodeError::new(pos, "expected i32.const offset expression")),
    }
}

fn decode_global_section(r: &mut Reader<'_>) -> Result<Vec<Global>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let ty = decode_global_type(r)?;
        let init = decode_const_expr(r)?;
        out.push(Global { ty, init });
    }
    Ok(out)
}

fn decode_export_section(r: &mut Reader<'_>) -> Result<Vec<Export>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let name = r.read_name()?;
        let pos = r.pos();
        let kind = match r.read_u8()? {
            0x00 => ExportKind::Func,
            0x01 => ExportKind::Table,
            0x02 => ExportKind::Memory,
            0x03 => ExportKind::Global,
            b => return Err(DecodeError::new(pos, format!("bad export kind {b:#x}"))),
        };
        let index = r.read_u32()?;
        out.push(Export { name, kind, index });
    }
    Ok(out)
}

fn decode_element_section(r: &mut Reader<'_>) -> Result<Vec<ElementSegment>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let pos = r.pos();
        let flags = r.read_u32()?;
        if flags != 0 {
            return Err(DecodeError::new(pos, "only active funcref element segments supported"));
        }
        let offset = decode_const_i32(r)?;
        let funcs = decode_vec_u32(r)?;
        out.push(ElementSegment { table: 0, offset, funcs });
    }
    Ok(out)
}

fn decode_data_section(r: &mut Reader<'_>) -> Result<Vec<DataSegment>, DecodeError> {
    let count = checked_count(r)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let pos = r.pos();
        let flags = r.read_u32()?;
        if flags != 0 {
            return Err(DecodeError::new(pos, "only active data segments supported"));
        }
        let offset = decode_const_i32(r)?;
        let len = checked_count(r)? as usize;
        let bytes = r.read_bytes(len)?.to_vec();
        out.push(DataSegment { memory: 0, offset, bytes });
    }
    Ok(out)
}

fn decode_code_section(
    r: &mut Reader<'_>,
    func_types: &[u32],
) -> Result<Vec<Function>, DecodeError> {
    let count = checked_count(r)?;
    if count as usize != func_types.len() {
        return Err(DecodeError::new(
            r.pos(),
            format!("code section has {count} bodies but function section declared {}", func_types.len()),
        ));
    }
    let mut out = Vec::with_capacity(count.min(4096) as usize);
    for (i, &type_idx) in func_types.iter().enumerate() {
        let size = r.read_u32()? as usize;
        let mut body = r.sub_reader(size)?;
        let locals = decode_locals(&mut body)?;
        let instrs = decode_expr(&mut body)?;
        if !body.is_empty() {
            return Err(DecodeError::new(
                body.pos(),
                format!("function body {i} has trailing bytes"),
            ));
        }
        out.push(Function { type_idx, locals, body: instrs });
    }
    Ok(out)
}

fn decode_locals(r: &mut Reader<'_>) -> Result<Vec<ValType>, DecodeError> {
    let groups = checked_count(r)?;
    let mut locals = Vec::new();
    for _ in 0..groups {
        let n = checked_count(r)?;
        let pos = r.pos();
        let ty = ValType::from_byte(r.read_u8()?, pos)?;
        if locals.len() as u64 + n as u64 > 1_000_000 {
            return Err(DecodeError::new(pos, "too many locals"));
        }
        locals.extend(std::iter::repeat(ty).take(n as usize));
    }
    Ok(locals)
}

fn decode_block_type(r: &mut Reader<'_>) -> Result<BlockType, DecodeError> {
    // Peek: 0x40 is empty, a valtype byte is a single result, otherwise a
    // positive s33 type-section index.
    let pos = r.pos();
    match r.peek_u8() {
        Some(0x40) => {
            r.read_u8()?;
            Ok(BlockType::Empty)
        }
        Some(b) if matches!(b, 0x7f | 0x7e | 0x7d | 0x7c | 0x7b) => {
            r.read_u8()?;
            Ok(BlockType::Value(ValType::from_byte(b, pos)?))
        }
        Some(_) => {
            let idx = r.read_s33()?;
            if idx < 0 {
                return Err(DecodeError::new(pos, "negative block type index"));
            }
            Ok(BlockType::Func(idx as u32))
        }
        None => Err(DecodeError::new(pos, "unexpected end in block type")),
    }
}

fn decode_memarg(r: &mut Reader<'_>) -> Result<MemArg, DecodeError> {
    let align = r.read_u32()?;
    let offset = r.read_u32()?;
    Ok(MemArg { align, offset })
}

/// Decode an expression (the body of a function): a flat instruction list
/// terminated by the matching function-level `end`, which is kept as the
/// final [`Instr::End`].
pub fn decode_expr(r: &mut Reader<'_>) -> Result<Vec<Instr>, DecodeError> {
    let mut instrs = Vec::new();
    // Depth of open blocks; the function body itself counts as one frame.
    let mut depth = 1u32;
    loop {
        let instr = decode_instr(r)?;
        match &instr {
            i if i.opens_block() => depth += 1,
            Instr::End => {
                depth -= 1;
                if depth == 0 {
                    instrs.push(instr);
                    return Ok(instrs);
                }
            }
            _ => {}
        }
        instrs.push(instr);
    }
}

fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    let pos = r.pos();
    let op = r.read_u8()?;
    Ok(match op {
        0x00 => Instr::Unreachable,
        0x01 => Instr::Nop,
        0x02 => Instr::Block(decode_block_type(r)?),
        0x03 => Instr::Loop(decode_block_type(r)?),
        0x04 => Instr::If(decode_block_type(r)?),
        0x05 => Instr::Else,
        0x0b => Instr::End,
        0x0c => Instr::Br(r.read_u32()?),
        0x0d => Instr::BrIf(r.read_u32()?),
        0x0e => {
            let targets = decode_vec_u32(r)?;
            let default = r.read_u32()?;
            Instr::BrTable { targets, default }
        }
        0x0f => Instr::Return,
        0x10 => Instr::Call(r.read_u32()?),
        0x11 => {
            let type_idx = r.read_u32()?;
            let table = r.read_u32()?;
            Instr::CallIndirect { type_idx, table }
        }
        0x1a => Instr::Drop,
        0x1b => Instr::Select,
        0x20 => Instr::LocalGet(r.read_u32()?),
        0x21 => Instr::LocalSet(r.read_u32()?),
        0x22 => Instr::LocalTee(r.read_u32()?),
        0x23 => Instr::GlobalGet(r.read_u32()?),
        0x24 => Instr::GlobalSet(r.read_u32()?),
        0x28 => Instr::I32Load(decode_memarg(r)?),
        0x29 => Instr::I64Load(decode_memarg(r)?),
        0x2a => Instr::F32Load(decode_memarg(r)?),
        0x2b => Instr::F64Load(decode_memarg(r)?),
        0x2c => Instr::I32Load8S(decode_memarg(r)?),
        0x2d => Instr::I32Load8U(decode_memarg(r)?),
        0x2e => Instr::I32Load16S(decode_memarg(r)?),
        0x2f => Instr::I32Load16U(decode_memarg(r)?),
        0x30 => Instr::I64Load8S(decode_memarg(r)?),
        0x31 => Instr::I64Load8U(decode_memarg(r)?),
        0x32 => Instr::I64Load16S(decode_memarg(r)?),
        0x33 => Instr::I64Load16U(decode_memarg(r)?),
        0x34 => Instr::I64Load32S(decode_memarg(r)?),
        0x35 => Instr::I64Load32U(decode_memarg(r)?),
        0x36 => Instr::I32Store(decode_memarg(r)?),
        0x37 => Instr::I64Store(decode_memarg(r)?),
        0x38 => Instr::F32Store(decode_memarg(r)?),
        0x39 => Instr::F64Store(decode_memarg(r)?),
        0x3a => Instr::I32Store8(decode_memarg(r)?),
        0x3b => Instr::I32Store16(decode_memarg(r)?),
        0x3c => Instr::I64Store8(decode_memarg(r)?),
        0x3d => Instr::I64Store16(decode_memarg(r)?),
        0x3e => Instr::I64Store32(decode_memarg(r)?),
        0x3f => {
            expect_zero_byte(r)?;
            Instr::MemorySize
        }
        0x40 => {
            expect_zero_byte(r)?;
            Instr::MemoryGrow
        }
        0x41 => Instr::I32Const(r.read_i32()?),
        0x42 => Instr::I64Const(r.read_i64()?),
        0x43 => Instr::F32Const(r.read_f32()?),
        0x44 => Instr::F64Const(r.read_f64()?),
        0x45 => Instr::I32Eqz,
        0x46 => Instr::I32Eq,
        0x47 => Instr::I32Ne,
        0x48 => Instr::I32LtS,
        0x49 => Instr::I32LtU,
        0x4a => Instr::I32GtS,
        0x4b => Instr::I32GtU,
        0x4c => Instr::I32LeS,
        0x4d => Instr::I32LeU,
        0x4e => Instr::I32GeS,
        0x4f => Instr::I32GeU,
        0x50 => Instr::I64Eqz,
        0x51 => Instr::I64Eq,
        0x52 => Instr::I64Ne,
        0x53 => Instr::I64LtS,
        0x54 => Instr::I64LtU,
        0x55 => Instr::I64GtS,
        0x56 => Instr::I64GtU,
        0x57 => Instr::I64LeS,
        0x58 => Instr::I64LeU,
        0x59 => Instr::I64GeS,
        0x5a => Instr::I64GeU,
        0x5b => Instr::F32Eq,
        0x5c => Instr::F32Ne,
        0x5d => Instr::F32Lt,
        0x5e => Instr::F32Gt,
        0x5f => Instr::F32Le,
        0x60 => Instr::F32Ge,
        0x61 => Instr::F64Eq,
        0x62 => Instr::F64Ne,
        0x63 => Instr::F64Lt,
        0x64 => Instr::F64Gt,
        0x65 => Instr::F64Le,
        0x66 => Instr::F64Ge,
        0x67 => Instr::I32Clz,
        0x68 => Instr::I32Ctz,
        0x69 => Instr::I32Popcnt,
        0x6a => Instr::I32Add,
        0x6b => Instr::I32Sub,
        0x6c => Instr::I32Mul,
        0x6d => Instr::I32DivS,
        0x6e => Instr::I32DivU,
        0x6f => Instr::I32RemS,
        0x70 => Instr::I32RemU,
        0x71 => Instr::I32And,
        0x72 => Instr::I32Or,
        0x73 => Instr::I32Xor,
        0x74 => Instr::I32Shl,
        0x75 => Instr::I32ShrS,
        0x76 => Instr::I32ShrU,
        0x77 => Instr::I32Rotl,
        0x78 => Instr::I32Rotr,
        0x79 => Instr::I64Clz,
        0x7a => Instr::I64Ctz,
        0x7b => Instr::I64Popcnt,
        0x7c => Instr::I64Add,
        0x7d => Instr::I64Sub,
        0x7e => Instr::I64Mul,
        0x7f => Instr::I64DivS,
        0x80 => Instr::I64DivU,
        0x81 => Instr::I64RemS,
        0x82 => Instr::I64RemU,
        0x83 => Instr::I64And,
        0x84 => Instr::I64Or,
        0x85 => Instr::I64Xor,
        0x86 => Instr::I64Shl,
        0x87 => Instr::I64ShrS,
        0x88 => Instr::I64ShrU,
        0x89 => Instr::I64Rotl,
        0x8a => Instr::I64Rotr,
        0x8b => Instr::F32Abs,
        0x8c => Instr::F32Neg,
        0x8d => Instr::F32Ceil,
        0x8e => Instr::F32Floor,
        0x8f => Instr::F32Trunc,
        0x90 => Instr::F32Nearest,
        0x91 => Instr::F32Sqrt,
        0x92 => Instr::F32Add,
        0x93 => Instr::F32Sub,
        0x94 => Instr::F32Mul,
        0x95 => Instr::F32Div,
        0x96 => Instr::F32Min,
        0x97 => Instr::F32Max,
        0x98 => Instr::F32Copysign,
        0x99 => Instr::F64Abs,
        0x9a => Instr::F64Neg,
        0x9b => Instr::F64Ceil,
        0x9c => Instr::F64Floor,
        0x9d => Instr::F64Trunc,
        0x9e => Instr::F64Nearest,
        0x9f => Instr::F64Sqrt,
        0xa0 => Instr::F64Add,
        0xa1 => Instr::F64Sub,
        0xa2 => Instr::F64Mul,
        0xa3 => Instr::F64Div,
        0xa4 => Instr::F64Min,
        0xa5 => Instr::F64Max,
        0xa6 => Instr::F64Copysign,
        0xa7 => Instr::I32WrapI64,
        0xa8 => Instr::I32TruncF32S,
        0xa9 => Instr::I32TruncF32U,
        0xaa => Instr::I32TruncF64S,
        0xab => Instr::I32TruncF64U,
        0xac => Instr::I64ExtendI32S,
        0xad => Instr::I64ExtendI32U,
        0xae => Instr::I64TruncF32S,
        0xaf => Instr::I64TruncF32U,
        0xb0 => Instr::I64TruncF64S,
        0xb1 => Instr::I64TruncF64U,
        0xb2 => Instr::F32ConvertI32S,
        0xb3 => Instr::F32ConvertI32U,
        0xb4 => Instr::F32ConvertI64S,
        0xb5 => Instr::F32ConvertI64U,
        0xb6 => Instr::F32DemoteF64,
        0xb7 => Instr::F64ConvertI32S,
        0xb8 => Instr::F64ConvertI32U,
        0xb9 => Instr::F64ConvertI64S,
        0xba => Instr::F64ConvertI64U,
        0xbb => Instr::F64PromoteF32,
        0xbc => Instr::I32ReinterpretF32,
        0xbd => Instr::I64ReinterpretF64,
        0xbe => Instr::F32ReinterpretI32,
        0xbf => Instr::F64ReinterpretI64,
        0xc0 => Instr::I32Extend8S,
        0xc1 => Instr::I32Extend16S,
        0xc2 => Instr::I64Extend8S,
        0xc3 => Instr::I64Extend16S,
        0xc4 => Instr::I64Extend32S,
        0xfc => decode_misc_instr(r, pos)?,
        0xfd => decode_simd_instr(r, pos)?,
        b => return Err(DecodeError::new(pos, format!("unknown opcode {b:#x}"))),
    })
}

fn expect_zero_byte(r: &mut Reader<'_>) -> Result<(), DecodeError> {
    let pos = r.pos();
    if r.read_u8()? != 0 {
        return Err(DecodeError::new(pos, "expected zero byte (memory index)"));
    }
    Ok(())
}

fn decode_misc_instr(r: &mut Reader<'_>, pos: usize) -> Result<Instr, DecodeError> {
    match r.read_u32()? {
        10 => {
            expect_zero_byte(r)?;
            expect_zero_byte(r)?;
            Ok(Instr::MemoryCopy)
        }
        11 => {
            expect_zero_byte(r)?;
            Ok(Instr::MemoryFill)
        }
        sub => Err(DecodeError::new(pos, format!("unsupported 0xfc sub-opcode {sub}"))),
    }
}

fn decode_simd_instr(r: &mut Reader<'_>, pos: usize) -> Result<Instr, DecodeError> {
    let sub = r.read_u32()?;
    Ok(match sub {
        0 => Instr::V128Load(decode_memarg(r)?),
        11 => Instr::V128Store(decode_memarg(r)?),
        12 => {
            let bytes = r.read_bytes(16)?;
            let mut arr = [0u8; 16];
            arr.copy_from_slice(bytes);
            Instr::V128Const(arr)
        }
        17 => Instr::I32x4Splat,
        18 => Instr::I64x2Splat,
        19 => Instr::F32x4Splat,
        20 => Instr::F64x2Splat,
        27 => Instr::I32x4ExtractLane(r.read_u8()?),
        31 => Instr::F32x4ExtractLane(r.read_u8()?),
        33 => Instr::F64x2ExtractLane(r.read_u8()?),
        34 => Instr::F64x2ReplaceLane(r.read_u8()?),
        71 => Instr::F64x2Eq,
        72 => Instr::F64x2Ne,
        73 => Instr::F64x2Lt,
        74 => Instr::F64x2Gt,
        75 => Instr::F64x2Le,
        76 => Instr::F64x2Ge,
        77 => Instr::V128Not,
        78 => Instr::V128And,
        80 => Instr::V128Or,
        81 => Instr::V128Xor,
        83 => Instr::V128AnyTrue,
        163 => Instr::I32x4AllTrue,
        164 => Instr::I32x4Bitmask,
        174 => Instr::I32x4Add,
        177 => Instr::I32x4Sub,
        181 => Instr::I32x4Mul,
        228 => Instr::F32x4Add,
        229 => Instr::F32x4Sub,
        230 => Instr::F32x4Mul,
        231 => Instr::F32x4Div,
        240 => Instr::F64x2Add,
        241 => Instr::F64x2Sub,
        242 => Instr::F64x2Mul,
        243 => Instr::F64x2Div,
        other => return Err(DecodeError::new(pos, format!("unsupported SIMD sub-opcode {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_magic() {
        let err = decode_module(b"\x01asm\x01\x00\x00\x00").unwrap_err();
        assert!(err.message.contains("magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let err = decode_module(b"\x00asm\x02\x00\x00\x00").unwrap_err();
        assert!(err.message.contains("version"));
    }

    #[test]
    fn decodes_empty_module() {
        let m = decode_module(b"\x00asm\x01\x00\x00\x00").unwrap();
        assert!(m.types.is_empty());
        assert!(m.functions.is_empty());
    }

    #[test]
    fn rejects_truncated_section() {
        // Section id 1, declared size 10, no payload.
        let err = decode_module(b"\x00asm\x01\x00\x00\x00\x01\x0a").unwrap_err();
        assert!(err.message.contains("bytes"));
    }

    #[test]
    fn rejects_out_of_order_sections() {
        // Memory section (5) followed by type section (1).
        let mut bytes = b"\x00asm\x01\x00\x00\x00".to_vec();
        bytes.extend_from_slice(&[5, 1, 0]); // empty memory section
        bytes.extend_from_slice(&[1, 1, 0]); // empty type section
        let err = decode_module(&bytes).unwrap_err();
        assert!(err.message.contains("out of order"));
    }

    #[test]
    fn rejects_hostile_vector_length() {
        // Type section claiming u32::MAX entries.
        let mut bytes = b"\x00asm\x01\x00\x00\x00".to_vec();
        bytes.extend_from_slice(&[1, 5, 0xff, 0xff, 0xff, 0xff, 0x0f]);
        let err = decode_module(&bytes).unwrap_err();
        assert!(err.message.contains("limit"), "{err}");
    }

    #[test]
    fn decodes_minimal_function_module() {
        // (module (func (result i32) i32.const 7))
        let mut bytes = b"\x00asm\x01\x00\x00\x00".to_vec();
        bytes.extend_from_slice(&[1, 5, 1, 0x60, 0, 1, 0x7f]); // type section
        bytes.extend_from_slice(&[3, 2, 1, 0]); // function section
        bytes.extend_from_slice(&[10, 6, 1, 4, 0, 0x41, 7, 0x0b]); // code section
        let m = decode_module(&bytes).unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(
            m.functions[0].body,
            vec![Instr::I32Const(7), Instr::End]
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = b"\x00asm\x01\x00\x00\x00".to_vec();
        bytes.extend_from_slice(&[1, 4, 1, 0x60, 0, 0]); // type ()->()
        bytes.extend_from_slice(&[3, 2, 1, 0]);
        bytes.extend_from_slice(&[10, 5, 1, 3, 0, 0xf5, 0x0b]); // 0xf5 invalid
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn custom_section_name_parsed_and_unknown_skipped() {
        let mut bytes = b"\x00asm\x01\x00\x00\x00".to_vec();
        // custom "name" section with module-name subsection "hi".
        let mut payload = Vec::new();
        crate::leb128::write_name(&mut payload, "name");
        payload.push(0); // subsection id 0
        let mut sub = Vec::new();
        crate::leb128::write_name(&mut sub, "hi");
        crate::leb128::write_u32(&mut payload, sub.len() as u32);
        payload.extend_from_slice(&sub);
        bytes.push(0);
        crate::leb128::write_u32(&mut bytes, payload.len() as u32);
        bytes.extend_from_slice(&payload);
        // unknown custom section
        let mut payload2 = Vec::new();
        crate::leb128::write_name(&mut payload2, "weird");
        payload2.extend_from_slice(&[1, 2, 3]);
        bytes.push(0);
        crate::leb128::write_u32(&mut bytes, payload2.len() as u32);
        bytes.extend_from_slice(&payload2);

        let m = decode_module(&bytes).unwrap();
        assert_eq!(m.name.as_deref(), Some("hi"));
    }
}

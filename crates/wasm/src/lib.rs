//! A from-scratch WebAssembly engine for the MPIWasm reproduction.
//!
//! This crate implements the complete substrate the paper's embedder runs on:
//!
//! * the Wasm **binary format**: [`decode`] and [`encode`] round-trip the
//!   MVP binary format plus the sign-extension and a 128-bit SIMD subset,
//! * a structural [`validate`] pass (type-checking of function bodies,
//!   import/export well-formedness, memory/table limits),
//! * a sandboxed [`runtime`] with a 32-bit bounds-checked linear memory,
//!   host function imports, exports, and reentrant host→guest calls,
//! * four execution tiers ([`tier::Tier`]): three mirroring Wasmer's
//!   Singlepass / Cranelift / LLVM backends by compile-time vs run-time
//!   trade-off, plus a profile-guided superblock top tier
//!   ([`tier::Tier::MaxJit`]) that recompiles hot functions at run time
//!   into chains of pre-decoded micro-ops with native SIMD,
//! * a programmatic [`builder`] and a structured-AST [`dsl`] compiler used
//!   to author the guest benchmarks (the stand-in for the paper's
//!   WASI-SDK + custom `mpi.h` toolchain), and
//! * a [`wat`] printer for debugging module contents.
//!
//! The engine deliberately supports the slice of WebAssembly exercised by
//! MPI-style HPC applications: integer/float arithmetic, full control flow,
//! linear memory with all load/store widths, `call_indirect`, globals, and
//! 128-bit SIMD lane arithmetic (`-msimd128` analog).

pub mod builder;
pub mod decode;
pub(crate) mod closures;
pub(crate) mod dispatch;
pub(crate) mod exec;
pub mod interp;
pub mod dsl;
pub mod encode;
pub mod error;
pub mod instr;
pub mod ir;
pub mod leb128;
pub mod module;
pub mod regalloc;
pub mod runtime;
pub(crate) mod superblock;
pub mod tier;
pub mod types;
pub mod validate;
pub mod wat;
pub(crate) mod widths;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use decode::decode_module;
pub use encode::encode_module;
pub use error::{DecodeError, Trap, ValidateError};
pub use instr::Instr;
pub use module::Module;
pub use runtime::{Caller, HostFn, Instance, Linker, Memory, Slot, Value};
pub use superblock::JitSnapshot;
pub use tier::Tier;
pub use types::{FuncType, ValType};
pub use validate::validate_module;

/// Magic bytes at the start of every Wasm binary: `\0asm`.
pub const WASM_MAGIC: [u8; 4] = [0x00, 0x61, 0x73, 0x6d];
/// Binary format version implemented by this engine.
pub const WASM_VERSION: [u8; 4] = [0x01, 0x00, 0x00, 0x00];
/// Size of one linear memory page (64 KiB), fixed by the specification.
pub const PAGE_SIZE: usize = 65536;
/// Maximum number of pages addressable with 32-bit offsets (4 GiB).
pub const MAX_PAGES: u32 = 65536;

//! Wasm type grammar: value types, function types, limits, and the
//! import/export descriptors built from them.

use crate::error::DecodeError;
use std::fmt;

/// A value type. The MVP types plus `v128` from the SIMD proposal
/// (the paper compiles guests with `-msimd128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    I32,
    I64,
    F32,
    F64,
    V128,
}

impl ValType {
    /// Number of 64-bit stack slots a value of this type occupies in the
    /// untyped execution engine (`v128` spans two slots, low half first).
    #[inline]
    pub fn slot_width(self) -> u32 {
        match self {
            ValType::V128 => 2,
            _ => 1,
        }
    }

    /// Binary encoding byte for this type.
    pub fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
            ValType::V128 => 0x7b,
        }
    }

    pub fn from_byte(byte: u8, offset: usize) -> Result<Self, DecodeError> {
        match byte {
            0x7f => Ok(ValType::I32),
            0x7e => Ok(ValType::I64),
            0x7d => Ok(ValType::F32),
            0x7c => Ok(ValType::F64),
            0x7b => Ok(ValType::V128),
            b => Err(DecodeError::new(offset, format!("unknown value type {b:#x}"))),
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
            ValType::V128 => "v128",
        };
        f.write_str(s)
    }
}

/// A function signature: parameter and result types.
///
/// The MVP allows at most one result; we keep the general form because the
/// validator and the host-call bridge are simpler with a slice.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    pub params: Vec<ValType>,
    pub results: Vec<ValType>,
}

impl FuncType {
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> Self {
        Self { params, results }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for memories and tables, in pages / elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    pub min: u32,
    pub max: Option<u32>,
}

impl Limits {
    pub fn new(min: u32, max: Option<u32>) -> Self {
        Self { min, max }
    }

    /// Whether `other` fits within these limits (import matching rule).
    pub fn subsumes(&self, other: &Limits) -> bool {
        other.min >= self.min
            && match (self.max, other.max) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => b <= a,
            }
    }
}

/// Mutability flag of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutability {
    Const,
    Var,
}

/// Type of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalType {
    pub val_type: ValType,
    pub mutability: Mutability,
}

/// Block type of a structured control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// `[] -> []`
    Empty,
    /// `[] -> [t]`
    Value(ValType),
    /// Reference to a function type in the type section (multi-value form;
    /// accepted by the decoder/validator so typed blocks can be expressed).
    Func(u32),
}

/// What an import provides / an export exposes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExternKind {
    /// Index into the type section.
    Func(u32),
    Table(Limits),
    Memory(Limits),
    Global(GlobalType),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64, ValType::V128] {
            assert_eq!(ValType::from_byte(t.to_byte(), 0).unwrap(), t);
        }
        assert!(ValType::from_byte(0x00, 0).is_err());
    }

    #[test]
    fn functype_display() {
        let t = FuncType::new(vec![ValType::I32, ValType::F64], vec![ValType::I32]);
        assert_eq!(t.to_string(), "(i32 f64) -> (i32)");
    }

    #[test]
    fn limits_subsumption() {
        let unbounded = Limits::new(1, None);
        assert!(unbounded.subsumes(&Limits::new(1, None)));
        assert!(unbounded.subsumes(&Limits::new(5, Some(10))));
        assert!(!unbounded.subsumes(&Limits::new(0, None)));

        let bounded = Limits::new(1, Some(4));
        assert!(bounded.subsumes(&Limits::new(2, Some(3))));
        assert!(!bounded.subsumes(&Limits::new(2, None)));
        assert!(!bounded.subsumes(&Limits::new(2, Some(8))));
    }
}

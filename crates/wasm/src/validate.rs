//! Module validation: structural checks plus full type-checking of every
//! function body using the standard value-stack / control-stack algorithm.
//!
//! The embedder refuses to instantiate modules that do not validate, which
//! is one of the pillars of the Wasm sandboxing story the paper relies on
//! (§2.2): control flow integrity follows from the structured control
//! checks performed here.

use crate::error::ValidateError;
use crate::instr::Instr;
use crate::module::{ExportKind, Module};
use crate::types::{BlockType, ExternKind, FuncType, Mutability, ValType};
use crate::MAX_PAGES;

/// Validate a module. Returns `Ok(())` when every function body type-checks
/// and all cross-section references are in range.
pub fn validate_module(module: &Module) -> Result<(), ValidateError> {
    validate_structure(module)?;
    let imported = module.num_imported_funcs() as u32;
    for (i, func) in module.functions.iter().enumerate() {
        let func_idx = imported + i as u32;
        let ty = module
            .types
            .get(func.type_idx as usize)
            .ok_or_else(|| ValidateError::in_func(func_idx, "type index out of range"))?;
        let mut v = FuncValidator::new(module, ty, &func.locals, func_idx);
        v.run(&func.body)?;
    }
    Ok(())
}

fn validate_structure(module: &Module) -> Result<(), ValidateError> {
    // Imports reference valid types.
    for imp in &module.imports {
        if let ExternKind::Func(t) = imp.kind {
            if t as usize >= module.types.len() {
                return Err(ValidateError::module(format!(
                    "import {}.{} references unknown type {t}",
                    imp.module, imp.name
                )));
            }
        }
    }

    // MVP: at most one memory and one table (imports + definitions).
    let imported_mems =
        module.imports.iter().filter(|i| matches!(i.kind, ExternKind::Memory(_))).count();
    let imported_tables =
        module.imports.iter().filter(|i| matches!(i.kind, ExternKind::Table(_))).count();
    if imported_mems + module.memories.len() > 1 {
        return Err(ValidateError::module("multiple memories are not supported"));
    }
    if imported_tables + module.tables.len() > 1 {
        return Err(ValidateError::module("multiple tables are not supported"));
    }
    for mem in &module.memories {
        if mem.min > MAX_PAGES || mem.max.map_or(false, |m| m > MAX_PAGES || m < mem.min) {
            return Err(ValidateError::module("memory limits out of range"));
        }
    }
    if let Some(t) = module.tables.first() {
        if t.max.map_or(false, |m| m < t.min) {
            return Err(ValidateError::module("table max below min"));
        }
    }

    // Globals: initializer type must match declared type.
    for (i, g) in module.globals.iter().enumerate() {
        let init_ty = match g.init {
            Instr::I32Const(_) => ValType::I32,
            Instr::I64Const(_) => ValType::I64,
            Instr::F32Const(_) => ValType::F32,
            Instr::F64Const(_) => ValType::F64,
            _ => return Err(ValidateError::module(format!("global {i} has non-const init"))),
        };
        if init_ty != g.ty.val_type {
            return Err(ValidateError::module(format!(
                "global {i} init type {init_ty} != declared {}",
                g.ty.val_type
            )));
        }
    }

    // Exports: indices in range, names unique.
    let num_funcs = module.num_funcs() as u32;
    let mut seen = std::collections::HashSet::new();
    for e in &module.exports {
        if !seen.insert(e.name.as_str()) {
            return Err(ValidateError::module(format!("duplicate export name {:?}", e.name)));
        }
        let in_range = match e.kind {
            ExportKind::Func => e.index < num_funcs,
            ExportKind::Memory => (e.index as usize) < imported_mems + module.memories.len(),
            ExportKind::Table => (e.index as usize) < imported_tables + module.tables.len(),
            ExportKind::Global => {
                let imported_globals = module
                    .imports
                    .iter()
                    .filter(|i| matches!(i.kind, ExternKind::Global(_)))
                    .count();
                (e.index as usize) < imported_globals + module.globals.len()
            }
        };
        if !in_range {
            return Err(ValidateError::module(format!(
                "export {:?} index {} out of range",
                e.name, e.index
            )));
        }
    }

    // Start function must exist and have type [] -> [].
    if let Some(start) = module.start {
        let ty = module
            .func_type(start)
            .ok_or_else(|| ValidateError::module("start function index out of range"))?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::module("start function must have type () -> ()"));
        }
    }

    // Element segments reference valid functions.
    for seg in &module.elements {
        if module.tables.is_empty() && imported_tables == 0 {
            return Err(ValidateError::module("element segment without a table"));
        }
        for &f in &seg.funcs {
            if f >= num_funcs {
                return Err(ValidateError::module(format!(
                    "element segment references unknown function {f}"
                )));
            }
        }
    }

    // Data segments require a memory.
    if !module.data.is_empty() && module.memories.is_empty() && imported_mems == 0 {
        return Err(ValidateError::module("data segment without a memory"));
    }
    Ok(())
}

/// Value on the type-checking stack: a concrete type, or unknown (pushed
/// while dead code after an unconditional branch is being checked).
type StackType = Option<ValType>;

struct ControlFrame {
    /// Types the branch target expects (loop: params; block/if: results).
    label_types: Vec<ValType>,
    /// Types the block leaves on the stack at its `end`.
    end_types: Vec<ValType>,
    /// Stack height when the frame was entered.
    height: usize,
    /// Set once an unconditional transfer has occurred in this frame.
    unreachable: bool,
    kind: FrameKind,
}

#[derive(PartialEq, Clone, Copy)]
enum FrameKind {
    Block,
    Loop,
    If,
    Else,
    Func,
}

struct FuncValidator<'m> {
    module: &'m Module,
    locals: Vec<ValType>,
    stack: Vec<StackType>,
    control: Vec<ControlFrame>,
    func_idx: u32,
}

impl<'m> FuncValidator<'m> {
    fn new(module: &'m Module, ty: &FuncType, extra_locals: &[ValType], func_idx: u32) -> Self {
        let mut locals = ty.params.clone();
        locals.extend_from_slice(extra_locals);
        let frame = ControlFrame {
            label_types: ty.results.clone(),
            end_types: ty.results.clone(),
            height: 0,
            unreachable: false,
            kind: FrameKind::Func,
        };
        Self { module, locals, stack: Vec::new(), control: vec![frame], func_idx }
    }

    fn err(&self, msg: impl Into<String>) -> ValidateError {
        ValidateError::in_func(self.func_idx, msg)
    }

    fn push(&mut self, ty: ValType) {
        self.stack.push(Some(ty));
    }

    fn push_unknown(&mut self) {
        self.stack.push(None);
    }

    fn pop_any(&mut self) -> Result<StackType, ValidateError> {
        let frame = self.control.last().ok_or_else(|| self.err("control stack empty"))?;
        if self.stack.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(self.err("value stack underflow"));
        }
        Ok(self.stack.pop().unwrap())
    }

    fn pop_expect(&mut self, want: ValType) -> Result<(), ValidateError> {
        match self.pop_any()? {
            Some(got) if got != want => {
                Err(self.err(format!("type mismatch: expected {want}, found {got}")))
            }
            _ => Ok(()),
        }
    }

    fn pop_many(&mut self, types: &[ValType]) -> Result<(), ValidateError> {
        for ty in types.iter().rev() {
            self.pop_expect(*ty)?;
        }
        Ok(())
    }

    fn push_many(&mut self, types: &[ValType]) {
        for ty in types {
            self.push(*ty);
        }
    }

    fn block_types(&self, bt: &BlockType) -> Result<(Vec<ValType>, Vec<ValType>), ValidateError> {
        match bt {
            BlockType::Empty => Ok((vec![], vec![])),
            BlockType::Value(t) => Ok((vec![], vec![*t])),
            BlockType::Func(idx) => {
                let ty = self
                    .module
                    .types
                    .get(*idx as usize)
                    .ok_or_else(|| self.err("block type index out of range"))?;
                Ok((ty.params.clone(), ty.results.clone()))
            }
        }
    }

    fn push_frame(&mut self, kind: FrameKind, params: Vec<ValType>, results: Vec<ValType>) {
        let label_types = if kind == FrameKind::Loop { params.clone() } else { results.clone() };
        let height = self.stack.len();
        self.control.push(ControlFrame {
            label_types,
            end_types: results,
            height,
            unreachable: false,
            kind,
        });
        self.push_many(&params);
    }

    fn label(&self, depth: u32) -> Result<&ControlFrame, ValidateError> {
        let idx = self
            .control
            .len()
            .checked_sub(1 + depth as usize)
            .ok_or_else(|| self.err(format!("branch depth {depth} exceeds nesting")))?;
        Ok(&self.control[idx])
    }

    fn mark_unreachable(&mut self) -> Result<(), ValidateError> {
        if self.control.is_empty() {
            return Err(self.err("control stack empty"));
        }
        let frame = self.control.last_mut().unwrap();
        frame.unreachable = true;
        let height = frame.height;
        self.stack.truncate(height);
        Ok(())
    }

    fn local_type(&self, idx: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or_else(|| self.err(format!("local {idx} out of range")))
    }

    fn global_type(&self, idx: u32) -> Result<(ValType, Mutability), ValidateError> {
        let mut i = 0u32;
        for imp in &self.module.imports {
            if let ExternKind::Global(g) = imp.kind {
                if i == idx {
                    return Ok((g.val_type, g.mutability));
                }
                i += 1;
            }
        }
        let g = self
            .module
            .globals
            .get((idx - i) as usize)
            .ok_or_else(|| self.err(format!("global {idx} out of range")))?;
        Ok((g.ty.val_type, g.ty.mutability))
    }

    fn check_memory_exists(&self) -> Result<(), ValidateError> {
        let has = !self.module.memories.is_empty()
            || self.module.imports.iter().any(|i| matches!(i.kind, ExternKind::Memory(_)));
        if has {
            Ok(())
        } else {
            Err(self.err("memory instruction without a memory"))
        }
    }

    fn run(&mut self, body: &[Instr]) -> Result<(), ValidateError> {
        use Instr::*;
        for instr in body {
            match instr {
                Unreachable => self.mark_unreachable()?,
                Nop => {}
                Block(bt) => {
                    let (params, results) = self.block_types(bt)?;
                    self.pop_many(&params)?;
                    self.push_frame(FrameKind::Block, params, results);
                }
                Loop(bt) => {
                    let (params, results) = self.block_types(bt)?;
                    self.pop_many(&params)?;
                    self.push_frame(FrameKind::Loop, params, results);
                }
                If(bt) => {
                    self.pop_expect(ValType::I32)?;
                    let (params, results) = self.block_types(bt)?;
                    self.pop_many(&params)?;
                    self.push_frame(FrameKind::If, params, results);
                }
                Else => {
                    let frame = self.control.pop().ok_or_else(|| self.err("else without if"))?;
                    if frame.kind != FrameKind::If {
                        return Err(self.err("else without matching if"));
                    }
                    if !frame.unreachable {
                        let results = frame.end_types.clone();
                        self.pop_results_to(&frame, &results)?;
                    } else {
                        self.stack.truncate(frame.height);
                    }
                    // Re-enter with the same signature for the else arm.
                    // Parameters of the if-block are not re-pushed here
                    // because we only support MVP block params via typed
                    // blocks, whose params were consumed at `if`.
                    let height = self.stack.len();
                    self.control.push(ControlFrame {
                        label_types: frame.label_types,
                        end_types: frame.end_types,
                        height,
                        unreachable: false,
                        kind: FrameKind::Else,
                    });
                }
                End => {
                    let frame = self.control.pop().ok_or_else(|| self.err("end without block"))?;
                    if frame.kind == FrameKind::If && !frame.end_types.is_empty() {
                        return Err(self.err("if with results must have an else arm"));
                    }
                    if !frame.unreachable {
                        let results = frame.end_types.clone();
                        self.pop_results_to(&frame, &results)?;
                    } else {
                        self.stack.truncate(frame.height);
                    }
                    self.push_many(&frame.end_types);
                    if self.control.is_empty() {
                        // This was the function-level end; nothing may follow.
                        return Ok(());
                    }
                }
                Br(depth) => {
                    let types = self.label(*depth)?.label_types.clone();
                    self.pop_many(&types)?;
                    self.mark_unreachable()?;
                }
                BrIf(depth) => {
                    self.pop_expect(ValType::I32)?;
                    let types = self.label(*depth)?.label_types.clone();
                    self.pop_many(&types)?;
                    self.push_many(&types);
                }
                BrTable { targets, default } => {
                    self.pop_expect(ValType::I32)?;
                    let default_types = self.label(*default)?.label_types.clone();
                    for t in targets {
                        let types = self.label(*t)?.label_types.clone();
                        if types != default_types {
                            return Err(self.err("br_table targets have mismatched types"));
                        }
                    }
                    self.pop_many(&default_types)?;
                    self.mark_unreachable()?;
                }
                Return => {
                    let types = self.control[0].end_types.clone();
                    self.pop_many(&types)?;
                    self.mark_unreachable()?;
                }
                Call(f) => {
                    let ty = self
                        .module
                        .func_type(*f)
                        .ok_or_else(|| self.err(format!("call to unknown function {f}")))?
                        .clone();
                    self.pop_many(&ty.params)?;
                    self.push_many(&ty.results);
                }
                CallIndirect { type_idx, table } => {
                    if *table != 0 {
                        return Err(self.err("only table 0 is supported"));
                    }
                    let has_table = !self.module.tables.is_empty()
                        || self
                            .module
                            .imports
                            .iter()
                            .any(|i| matches!(i.kind, ExternKind::Table(_)));
                    if !has_table {
                        return Err(self.err("call_indirect without a table"));
                    }
                    let ty = self
                        .module
                        .types
                        .get(*type_idx as usize)
                        .ok_or_else(|| self.err("call_indirect type out of range"))?
                        .clone();
                    self.pop_expect(ValType::I32)?;
                    self.pop_many(&ty.params)?;
                    self.push_many(&ty.results);
                }
                Drop => {
                    self.pop_any()?;
                }
                Select => {
                    self.pop_expect(ValType::I32)?;
                    let a = self.pop_any()?;
                    let b = self.pop_any()?;
                    match (a, b) {
                        (Some(x), Some(y)) if x != y => {
                            return Err(self.err("select operand types differ"))
                        }
                        (Some(x), _) => self.push(x),
                        (None, Some(y)) => self.push(y),
                        (None, None) => self.push_unknown(),
                    }
                }
                LocalGet(i) => {
                    let ty = self.local_type(*i)?;
                    self.push(ty);
                }
                LocalSet(i) => {
                    let ty = self.local_type(*i)?;
                    self.pop_expect(ty)?;
                }
                LocalTee(i) => {
                    let ty = self.local_type(*i)?;
                    self.pop_expect(ty)?;
                    self.push(ty);
                }
                GlobalGet(i) => {
                    let (ty, _) = self.global_type(*i)?;
                    self.push(ty);
                }
                GlobalSet(i) => {
                    let (ty, m) = self.global_type(*i)?;
                    if m == Mutability::Const {
                        return Err(self.err(format!("global {i} is immutable")));
                    }
                    self.pop_expect(ty)?;
                }
                I32Load(_) | I32Load8S(_) | I32Load8U(_) | I32Load16S(_) | I32Load16U(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.push(ValType::I32);
                }
                I64Load(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_) | I64Load16U(_)
                | I64Load32S(_) | I64Load32U(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.push(ValType::I64);
                }
                F32Load(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.push(ValType::F32);
                }
                F64Load(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.push(ValType::F64);
                }
                V128Load(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.push(ValType::V128);
                }
                I32Store(_) | I32Store8(_) | I32Store16(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.pop_expect(ValType::I32)?;
                }
                I64Store(_) | I64Store8(_) | I64Store16(_) | I64Store32(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I64)?;
                    self.pop_expect(ValType::I32)?;
                }
                F32Store(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::F32)?;
                    self.pop_expect(ValType::I32)?;
                }
                F64Store(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::F64)?;
                    self.pop_expect(ValType::I32)?;
                }
                V128Store(_) => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::V128)?;
                    self.pop_expect(ValType::I32)?;
                }
                MemorySize => {
                    self.check_memory_exists()?;
                    self.push(ValType::I32);
                }
                MemoryGrow => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.push(ValType::I32);
                }
                MemoryCopy | MemoryFill => {
                    self.check_memory_exists()?;
                    self.pop_expect(ValType::I32)?;
                    self.pop_expect(ValType::I32)?;
                    self.pop_expect(ValType::I32)?;
                }
                I32Const(_) => self.push(ValType::I32),
                I64Const(_) => self.push(ValType::I64),
                F32Const(_) => self.push(ValType::F32),
                F64Const(_) => self.push(ValType::F64),
                V128Const(_) => self.push(ValType::V128),

                I32Eqz => self.unop(ValType::I32, ValType::I32)?,
                I64Eqz => self.unop(ValType::I64, ValType::I32)?,
                I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
                | I32GeU => self.binop(ValType::I32, ValType::I32)?,
                I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
                | I64GeU => self.binop(ValType::I64, ValType::I32)?,
                F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => {
                    self.binop(ValType::F32, ValType::I32)?
                }
                F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => {
                    self.binop(ValType::F64, ValType::I32)?
                }
                I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => {
                    self.unop(ValType::I32, ValType::I32)?
                }
                I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And
                | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => {
                    self.binop(ValType::I32, ValType::I32)?
                }
                I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => {
                    self.unop(ValType::I64, ValType::I64)?
                }
                I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And
                | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => {
                    self.binop(ValType::I64, ValType::I64)?
                }
                F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
                    self.unop(ValType::F32, ValType::F32)?
                }
                F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
                    self.binop(ValType::F32, ValType::F32)?
                }
                F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
                    self.unop(ValType::F64, ValType::F64)?
                }
                F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                    self.binop(ValType::F64, ValType::F64)?
                }
                I32WrapI64 => self.unop(ValType::I64, ValType::I32)?,
                I32TruncF32S | I32TruncF32U => self.unop(ValType::F32, ValType::I32)?,
                I32TruncF64S | I32TruncF64U => self.unop(ValType::F64, ValType::I32)?,
                I64ExtendI32S | I64ExtendI32U => self.unop(ValType::I32, ValType::I64)?,
                I64TruncF32S | I64TruncF32U => self.unop(ValType::F32, ValType::I64)?,
                I64TruncF64S | I64TruncF64U => self.unop(ValType::F64, ValType::I64)?,
                F32ConvertI32S | F32ConvertI32U => self.unop(ValType::I32, ValType::F32)?,
                F32ConvertI64S | F32ConvertI64U => self.unop(ValType::I64, ValType::F32)?,
                F32DemoteF64 => self.unop(ValType::F64, ValType::F32)?,
                F64ConvertI32S | F64ConvertI32U => self.unop(ValType::I32, ValType::F64)?,
                F64ConvertI64S | F64ConvertI64U => self.unop(ValType::I64, ValType::F64)?,
                F64PromoteF32 => self.unop(ValType::F32, ValType::F64)?,
                I32ReinterpretF32 => self.unop(ValType::F32, ValType::I32)?,
                I64ReinterpretF64 => self.unop(ValType::F64, ValType::I64)?,
                F32ReinterpretI32 => self.unop(ValType::I32, ValType::F32)?,
                F64ReinterpretI64 => self.unop(ValType::I64, ValType::F64)?,

                I32x4Splat => self.unop(ValType::I32, ValType::V128)?,
                I64x2Splat => self.unop(ValType::I64, ValType::V128)?,
                F32x4Splat => self.unop(ValType::F32, ValType::V128)?,
                F64x2Splat => self.unop(ValType::F64, ValType::V128)?,
                I32x4ExtractLane(l) => {
                    self.check_lane(*l, 4)?;
                    self.unop(ValType::V128, ValType::I32)?
                }
                F32x4ExtractLane(l) => {
                    self.check_lane(*l, 4)?;
                    self.unop(ValType::V128, ValType::F32)?
                }
                F64x2ExtractLane(l) => {
                    self.check_lane(*l, 2)?;
                    self.unop(ValType::V128, ValType::F64)?
                }
                F64x2ReplaceLane(l) => {
                    self.check_lane(*l, 2)?;
                    self.pop_expect(ValType::F64)?;
                    self.pop_expect(ValType::V128)?;
                    self.push(ValType::V128);
                }
                I32x4Add | I32x4Sub | I32x4Mul | F32x4Add | F32x4Sub | F32x4Mul | F32x4Div
                | F64x2Add | F64x2Sub | F64x2Mul | F64x2Div | F64x2Eq | F64x2Ne | F64x2Lt
                | F64x2Gt | F64x2Le | F64x2Ge | V128And | V128Or | V128Xor => {
                    self.binop(ValType::V128, ValType::V128)?
                }
                V128Not => self.unop(ValType::V128, ValType::V128)?,
                V128AnyTrue | I32x4AllTrue | I32x4Bitmask => {
                    self.unop(ValType::V128, ValType::I32)?
                }
            }
        }
        // Instruction stream must have been terminated by the function-level
        // `End` (the loop returns from inside the End arm).
        Err(self.err("function body missing final end"))
    }

    fn check_lane(&self, lane: u8, max: u8) -> Result<(), ValidateError> {
        if lane >= max {
            return Err(self.err(format!("lane index {lane} out of range (max {max})")));
        }
        Ok(())
    }

    fn pop_results_to(
        &mut self,
        frame: &ControlFrame,
        results: &[ValType],
    ) -> Result<(), ValidateError> {
        for ty in results.iter().rev() {
            if self.stack.len() == frame.height {
                return Err(self.err("block leaves too few values on the stack"));
            }
            match self.stack.pop().unwrap() {
                Some(got) if got != *ty => {
                    return Err(self.err(format!("block result mismatch: {got} != {ty}")))
                }
                _ => {}
            }
        }
        if self.stack.len() != frame.height {
            return Err(self.err("block leaves extra values on the stack"));
        }
        Ok(())
    }

    fn unop(&mut self, input: ValType, output: ValType) -> Result<(), ValidateError> {
        self.pop_expect(input)?;
        self.push(output);
        Ok(())
    }

    fn binop(&mut self, input: ValType, output: ValType) -> Result<(), ValidateError> {
        self.pop_expect(input)?;
        self.pop_expect(input)?;
        self.push(output);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use crate::types::{FuncType, Limits};

    fn module_with_body(
        params: Vec<ValType>,
        results: Vec<ValType>,
        locals: Vec<ValType>,
        body: Vec<Instr>,
    ) -> Module {
        let mut m = Module::default();
        m.types.push(FuncType::new(params, results));
        m.memories.push(Limits::new(1, None));
        m.functions.push(Function { type_idx: 0, locals, body });
        m
    }

    #[test]
    fn accepts_simple_add() {
        let m = module_with_body(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![],
            vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add, Instr::End],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![Instr::F64Const(1.0), Instr::End],
        );
        let err = validate_module(&m).unwrap_err();
        assert!(err.message.contains("mismatch"), "{err}");
    }

    #[test]
    fn rejects_stack_underflow() {
        let m = module_with_body(vec![], vec![], vec![], vec![Instr::I32Add, Instr::End]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_unbalanced_blocks() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![Instr::Block(BlockType::Empty), Instr::End],
        );
        // Body: block/end then nothing — missing the function-level end.
        let err = validate_module(&m).unwrap_err();
        assert!(err.message.contains("end"), "{err}");
    }

    #[test]
    fn accepts_branching_loop() {
        // loop { local0 += 1; br_if 0 (local0 < 10) }
        let m = module_with_body(
            vec![],
            vec![],
            vec![ValType::I32],
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalTee(0),
                Instr::I32Const(10),
                Instr::I32LtS,
                Instr::BrIf(0),
                Instr::End,
                Instr::End,
            ],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_branch_depth_out_of_range() {
        let m = module_with_body(vec![], vec![], vec![], vec![Instr::Br(4), Instr::End]);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_set_of_immutable_global() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![Instr::I32Const(1), Instr::GlobalSet(0), Instr::End],
        );
        m.globals.push(crate::module::Global {
            ty: crate::types::GlobalType {
                val_type: ValType::I32,
                mutability: Mutability::Const,
            },
            init: Instr::I32Const(0),
        });
        let err = validate_module(&m).unwrap_err();
        assert!(err.message.contains("immutable"), "{err}");
    }

    #[test]
    fn rejects_if_with_result_but_no_else() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![
                Instr::I32Const(1),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(2),
                Instr::End,
                Instr::End,
            ],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn accepts_if_else_with_result() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![
                Instr::I32Const(1),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(2),
                Instr::Else,
                Instr::I32Const(3),
                Instr::End,
                Instr::End,
            ],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_memory_access_without_memory() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![
                Instr::I32Const(0),
                Instr::I32Load(crate::instr::MemArg::default()),
                Instr::Drop,
                Instr::End,
            ],
        );
        m.memories.clear();
        let err = validate_module(&m).unwrap_err();
        assert!(err.message.contains("memory"), "{err}");
    }

    #[test]
    fn dead_code_after_unconditional_branch_is_permissive() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![
                Instr::I32Const(1),
                Instr::Return,
                // Dead code with bogus stack usage is allowed by the spec.
                Instr::I32Add,
                Instr::Drop,
                Instr::End,
            ],
        );
        validate_module(&m).unwrap();
    }

    #[test]
    fn rejects_duplicate_export_names() {
        let mut m = module_with_body(vec![], vec![], vec![], vec![Instr::End]);
        for _ in 0..2 {
            m.exports.push(crate::module::Export {
                name: "x".into(),
                kind: ExportKind::Func,
                index: 0,
            });
        }
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_bad_start_signature() {
        let mut m = module_with_body(vec![ValType::I32], vec![], vec![], vec![Instr::End]);
        m.start = Some(0);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_simd_lane_out_of_range() {
        let m = module_with_body(
            vec![],
            vec![ValType::F64],
            vec![],
            vec![
                Instr::V128Const([0; 16]),
                Instr::F64x2ExtractLane(2),
                Instr::End,
            ],
        );
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_multiple_memories() {
        let mut m = module_with_body(vec![], vec![], vec![], vec![Instr::End]);
        m.memories.push(Limits::new(1, None));
        assert!(validate_module(&m).is_err());
    }
}

//! Static slot-width analysis for function bodies.
//!
//! The execution engine stores operands as untyped 64-bit slots (v128
//! spans two). Validation has already proven every operand's type, so a
//! single forward pass can recover the only facts the untyped engine still
//! needs from the type system:
//!
//! * the operand-stack height **in slots** before every instruction
//!   (consumed by the flattener to resolve branch unwind heights), and
//! * for each `drop`/`select`, whether the selected operand is wide
//!   (v128), i.e. occupies two slots.
//!
//! The pass mirrors the validator's control-flow handling, including
//! statically dead code after `br`/`return`/`unreachable`, whose stack
//! state is irrelevant because it can never execute.

use crate::instr::Instr;
use crate::module::{Function, Module};
use crate::types::{BlockType, ValType};

/// Per-body facts derived from the type system. Indexed by instruction
/// position; entries inside statically dead regions are unspecified.
pub(crate) struct BodyInfo {
    /// Operand-stack height in slots before each instruction, relative to
    /// the frame's operand base (0 = empty operand stack). The flat tiers
    /// compute heights in their own fused walk (`ir::compile`) and the
    /// baseline tier tracks them at run time, so outside tests this is
    /// bookkeeping the pass maintains anyway to derive `wide`.
    #[allow(dead_code)]
    pub height: Vec<u32>,
    /// For `Drop`/`Select` positions: the popped/selected operand is v128.
    pub wide: Vec<bool>,
}

struct Ctrl {
    /// Width-stack length at block entry (with the block's params popped).
    base: usize,
    params: Vec<bool>,
    results: Vec<bool>,
}

pub(crate) fn widths_of(types: &[ValType]) -> Vec<bool> {
    types.iter().map(|t| *t == ValType::V128).collect()
}

pub(crate) fn block_widths(module: &Module, bt: &BlockType) -> (Vec<bool>, Vec<bool>) {
    match bt {
        BlockType::Empty => (Vec::new(), Vec::new()),
        BlockType::Value(t) => (Vec::new(), vec![*t == ValType::V128]),
        BlockType::Func(idx) => {
            let t = &module.types[*idx as usize];
            (widths_of(&t.params), widths_of(&t.results))
        }
    }
}

/// True for instructions whose (single) result is v128. Everything else
/// the generic fallback handles as one-slot results.
pub(crate) fn pushes_wide(i: &Instr) -> bool {
    use Instr::*;
    matches!(
        i,
        V128Load(_)
            | V128Const(_)
            | I32x4Splat
            | I64x2Splat
            | F32x4Splat
            | F64x2Splat
            | F64x2ReplaceLane(_)
            | I32x4Add
            | I32x4Sub
            | I32x4Mul
            | F32x4Add
            | F32x4Sub
            | F32x4Mul
            | F32x4Div
            | F64x2Add
            | F64x2Sub
            | F64x2Mul
            | F64x2Div
            | F64x2Eq
            | F64x2Ne
            | F64x2Lt
            | F64x2Gt
            | F64x2Le
            | F64x2Ge
            | V128And
            | V128Or
            | V128Xor
            | V128Not
    )
}

/// Run the width pass over one validated function body.
pub(crate) fn analyze(module: &Module, func: &Function) -> BodyInfo {
    let fty = &module.types[func.type_idx as usize];
    let local_wide: Vec<bool> = fty
        .params
        .iter()
        .chain(func.locals.iter())
        .map(|t| *t == ValType::V128)
        .collect();

    let body = &func.body;
    let mut height = vec![0u32; body.len()];
    let mut wide = vec![false; body.len()];

    // Width of each operand on the abstract stack, plus the running height
    // in slots (kept alongside to avoid re-summing).
    let mut w: Vec<bool> = Vec::with_capacity(32);
    let mut slots: u32 = 0;
    let mut ctrl: Vec<Ctrl> = vec![Ctrl {
        base: 0,
        params: Vec::new(),
        results: widths_of(&fty.results),
    }];
    // When `Some(n)`, code is statically dead; n counts nested blocks
    // opened inside the dead region (mirrors the flattener).
    let mut dead: Option<u32> = None;

    macro_rules! push {
        ($wide:expr) => {{
            let x: bool = $wide;
            w.push(x);
            slots += if x { 2 } else { 1 };
        }};
    }
    macro_rules! pop {
        () => {{
            let x = w.pop().expect("validated: width stack underflow");
            slots -= if x { 2 } else { 1 };
            x
        }};
    }
    macro_rules! reset_to {
        ($base:expr, $push:expr) => {{
            while w.len() > $base {
                pop!();
            }
            for &x in $push {
                push!(x);
            }
        }};
    }

    for (pc, instr) in body.iter().enumerate() {
        if let Some(n) = dead {
            match instr {
                i if i.opens_block() => {
                    dead = Some(n + 1);
                    continue;
                }
                Instr::End if n > 0 => {
                    dead = Some(n - 1);
                    continue;
                }
                Instr::Else if n == 0 => dead = None,
                Instr::End if n == 0 => dead = None,
                _ => continue,
            }
            // Else/End at depth 0: reset the abstract state absolutely and
            // fall through to normal processing below.
        }
        height[pc] = slots;
        use Instr::*;
        match instr {
            Nop => {}
            Block(bt) | Loop(bt) => {
                let (params, results) = block_widths(module, bt);
                for _ in 0..params.len() {
                    pop!();
                }
                let base = w.len();
                // Heights captured by the flattener must exclude params.
                height[pc] = slots;
                for &x in &params {
                    push!(x);
                }
                ctrl.push(Ctrl { base, params, results });
            }
            If(bt) => {
                pop!(); // condition
                let (params, results) = block_widths(module, bt);
                for _ in 0..params.len() {
                    pop!();
                }
                let base = w.len();
                height[pc] = slots;
                for &x in &params {
                    push!(x);
                }
                ctrl.push(Ctrl { base, params, results });
            }
            Else => {
                let frame = ctrl.last().expect("validated: else without if");
                let (base, params) = (frame.base, frame.params.clone());
                reset_to!(base, &params);
            }
            End => {
                let frame = ctrl.pop().expect("validated: unbalanced end");
                reset_to!(frame.base, &frame.results);
                if ctrl.is_empty() {
                    // Function-level end; nothing may follow.
                    break;
                }
            }
            Br(_) | BrTable { .. } | Return | Unreachable => {
                dead = Some(0);
            }
            BrIf(_) => {
                pop!();
            }
            Drop => {
                wide[pc] = pop!();
            }
            Select => {
                pop!(); // condition
                let a = pop!();
                let _b = pop!();
                wide[pc] = a;
                push!(a);
            }
            LocalGet(i) => push!(local_wide[*i as usize]),
            LocalSet(_) => {
                pop!();
            }
            LocalTee(_) => {} // pops and re-pushes the same width
            GlobalGet(_) => push!(false),
            GlobalSet(_) => {
                pop!();
            }
            Call(f) => {
                let ty = module.func_type(*f).expect("validated");
                for _ in 0..ty.params.len() {
                    pop!();
                }
                for r in &ty.results {
                    push!(*r == ValType::V128);
                }
            }
            CallIndirect { type_idx, .. } => {
                pop!(); // table index
                let ty = &module.types[*type_idx as usize];
                for _ in 0..ty.params.len() {
                    pop!();
                }
                for r in &ty.results {
                    push!(*r == ValType::V128);
                }
            }
            other => {
                let (pops, pushes) = crate::ir::stack_effect(module, other);
                for _ in 0..pops {
                    pop!();
                }
                debug_assert!(pushes <= 1);
                for _ in 0..pushes {
                    push!(pushes_wide(other));
                }
            }
        }
    }

    BodyInfo { height, wide }
}

/// Total slot count of a list of value types.
pub(crate) fn slot_count(types: &[ValType]) -> u32 {
    types.iter().map(|t| t.slot_width()).sum()
}

/// Packed local map: for each local (params first), `offset << 1 | wide`.
/// Returns the map and the total number of local slots.
pub(crate) fn local_map(params: &[ValType], locals: &[ValType]) -> (Vec<u32>, u32) {
    let mut map = Vec::with_capacity(params.len() + locals.len());
    let mut off = 0u32;
    for t in params.iter().chain(locals.iter()) {
        map.push(off << 1 | (*t == ValType::V128) as u32);
        off += t.slot_width();
    }
    (map, off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::MemArg;

    #[test]
    fn heights_count_slots_not_values() {
        // v128.load ; local.set ; local.get ; local.get ; v128.and ; drop
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func("f", vec![], vec![], |f| {
            let l = f.local(ValType::V128);
            f.emit_all([
                Instr::I32Const(0),
                Instr::V128Load(MemArg::default()),
                Instr::LocalSet(l),
                Instr::LocalGet(l),
                Instr::LocalGet(l),
                Instr::V128And,
                Instr::Drop,
            ]);
        });
        let module = b.finish();
        crate::validate::validate_module(&module).unwrap();
        let func = &module.functions[0];
        let info = analyze(&module, func);
        // Before V128And: two v128 operands -> 4 slots.
        let and_pc = func.body.iter().position(|i| *i == Instr::V128And).unwrap();
        assert_eq!(info.height[and_pc], 4);
        let drop_pc = func.body.iter().position(|i| *i == Instr::Drop).unwrap();
        assert!(info.wide[drop_pc], "dropped operand is v128");
        assert_eq!(info.height[drop_pc], 2);
    }

    #[test]
    fn local_map_packs_offsets_and_width() {
        let (map, n) = local_map(
            &[ValType::I32, ValType::V128],
            &[ValType::F64, ValType::V128],
        );
        assert_eq!(map, vec![0 << 1, 1 << 1 | 1, 3 << 1, 4 << 1 | 1]);
        assert_eq!(n, 6);
    }
}

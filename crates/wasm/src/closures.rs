//! Superblock lowering: each trace from [`crate::superblock`] becomes a
//! **compiled chain** — the execution half of the profile-guided top
//! tier ([`crate::tier::Tier::MaxJit`]).
//!
//! # Closure-chain contract
//!
//! A [`Chain`] is a flat program of steps, one per trace op, each
//! carrying everything the interpreter would have had to fetch per op:
//! register indices, immediates, memory-access shape, and the
//! branch-unwind copy — all pre-decoded at build time. Hot opcodes
//! lower to inline micro-steps ([`Mo`]) executed by [`Chain::run`]'s
//! match loop with **no function call at all**: the frame base, value
//! stack, and memory stay in registers across steps, where the threaded
//! dispatch loop pays an op fetch plus a table-indexed indirect call per
//! op. Any other op lowers to a monomorphized boxed closure ([`Link`])
//! that wraps its interpreter handler — the fallback step form, and the
//! seam the `jit-x64` backend plugs into.
//!
//! Control flow inside a chain uses baked **control words**: a step
//! either falls through, or (guards, closure steps) yields the index of
//! the next step — for an in-chain loop backedge, index 0 — or, with
//! the [`EXIT`] bit set, the op-stream ip at which the threaded
//! interpreter resumes. A loop whose backedge guard stays in-chain runs
//! **all** its iterations inside a single [`Chain::run`] call, never
//! touching the dispatch loop between iterations.
//!
//! Both step forms preserve interpreter semantics exactly — the
//! differential suite drives every tier over the same programs,
//! including guard-exit paths that bail mid-chain.
//!
//! v128 steps are mapped to real `std::arch` SIMD intrinsics on x86_64
//! (SSE2 baseline; `i32x4.mul` picks `_mm_mullo_epi32` only when SSE4.1
//! is detected at chain-build time) instead of the interpreter's
//! two-slot scalar emulation.
//!
//! The `jit-x64` cargo feature is the seam for replacing chains with
//! directly emitted machine code later: when enabled, [`compile_fn`]
//! first offers every superblock to [`jit_x64::try_emit`] and only falls
//! back to lowered chains for blocks it declines (the stub declines all).

use crate::dispatch::{handler, ieval32, ieval64, rg, rg2, wr, wr2, Ctx, Handler};
use crate::error::Trap;
use crate::exec;
use crate::regalloc::{feval, unwind_parts, Rc, RegFunc, RegOp, FEQ, FGE, FGT, FLE, FLT, FNE};
use crate::runtime::Slot;
use crate::superblock::{self, Step, Superblock};

/// Control-word bit distinguishing "resume the interpreter at ip
/// `word & !EXIT`" from "run step `word` next". Op streams are far below
/// 2^31 ops, so the bit is always free.
const EXIT: u32 = 1 << 31;

/// A boxed fallback step: executes its op (via the captured interpreter
/// handler, or future native code) and returns a control word.
pub(crate) type Link = Box<dyn for<'a> Fn(&mut Ctx<'a>) -> Result<u32, Trap> + Send + Sync>;

/// Guard conditions, pre-decoded from the conditional-branch forms.
enum Cond {
    NZ { a: u32 },
    Z { a: u32 },
    Cmp { a: u32, b: u32, aux: u8 },
    CmpK { a: u32, k: i32, aux: u8 },
}

/// One pre-decoded chain step ("micro-op"). Straight-line steps fall
/// through to the next index; `Guard` and `Link` return control words.
enum Mo {
    // -- moves / constants --
    Const { c: u32, v: Slot },
    Copy { a: u32, c: u32 },
    Copy2 { a: u32, c: u32 },
    VConst { c: u32, v: u128 },
    Select { a: u32, b: u32, c: u32 },
    GlobalGet { g: u32, c: u32 },
    GlobalSet { g: u32, b: u32 },
    // -- i32 --
    Add32 { a: u32, b: u32, c: u32 },
    Sub32 { a: u32, b: u32, c: u32 },
    Mul32 { a: u32, b: u32, c: u32 },
    DivS32 { a: u32, b: u32, c: u32 },
    DivU32 { a: u32, b: u32, c: u32 },
    RemS32 { a: u32, b: u32, c: u32 },
    RemU32 { a: u32, b: u32, c: u32 },
    And32 { a: u32, b: u32, c: u32 },
    Or32 { a: u32, b: u32, c: u32 },
    Xor32 { a: u32, b: u32, c: u32 },
    Shl32 { a: u32, b: u32, c: u32 },
    ShrS32 { a: u32, b: u32, c: u32 },
    ShrU32 { a: u32, b: u32, c: u32 },
    Eqz32 { a: u32, c: u32 },
    Cmp32 { a: u32, b: u32, c: u32, aux: u8 },
    Cmp32K { a: u32, k: i32, c: u32, aux: u8 },
    AddK32 { a: u32, k: i32, c: u32 },
    ShlK32 { a: u32, sh: u32, c: u32 },
    AddShl32 { a: u32, b: u32, sh: u32, c: u32 },
    // -- i64 --
    Add64 { a: u32, b: u32, c: u32 },
    Sub64 { a: u32, b: u32, c: u32 },
    Mul64 { a: u32, b: u32, c: u32 },
    DivS64 { a: u32, b: u32, c: u32 },
    DivU64 { a: u32, b: u32, c: u32 },
    RemS64 { a: u32, b: u32, c: u32 },
    RemU64 { a: u32, b: u32, c: u32 },
    And64 { a: u32, b: u32, c: u32 },
    Or64 { a: u32, b: u32, c: u32 },
    Xor64 { a: u32, b: u32, c: u32 },
    Shl64 { a: u32, b: u32, c: u32 },
    ShrS64 { a: u32, b: u32, c: u32 },
    ShrU64 { a: u32, b: u32, c: u32 },
    AddK64 { a: u32, k: i64, c: u32 },
    Cmp64 { a: u32, b: u32, c: u32, aux: u8 },
    Cmp64K { a: u32, k: i64, c: u32, aux: u8 },
    // -- floats --
    AddF32 { a: u32, b: u32, c: u32 },
    SubF32 { a: u32, b: u32, c: u32 },
    MulF32 { a: u32, b: u32, c: u32 },
    DivF32 { a: u32, b: u32, c: u32 },
    AddF64 { a: u32, b: u32, c: u32 },
    SubF64 { a: u32, b: u32, c: u32 },
    MulF64 { a: u32, b: u32, c: u32 },
    DivF64 { a: u32, b: u32, c: u32 },
    NegF64 { a: u32, c: u32 },
    SqrtF64 { a: u32, c: u32 },
    AbsF64 { a: u32, c: u32 },
    CmpF32 { a: u32, b: u32, c: u32, aux: u8 },
    CmpF64 { a: u32, b: u32, c: u32, aux: u8 },
    Fma64 { a: u32, b: u32, c: u32 },
    // -- conversions --
    Wrap64 { a: u32, c: u32 },
    ExtS3264 { a: u32, c: u32 },
    ExtU3264 { a: u32, c: u32 },
    ConvS32F64 { a: u32, c: u32 },
    ConvU32F64 { a: u32, c: u32 },
    Promote { a: u32, c: u32 },
    Demote { a: u32, c: u32 },
    // -- memory (disp = static address displacement, off = wasm offset) --
    Ld32 { a: u32, disp: i32, off: u32, c: u32 },
    Ld64 { a: u32, disp: i32, off: u32, c: u32 },
    Ld8S32 { a: u32, disp: i32, off: u32, c: u32 },
    Ld8U32 { a: u32, disp: i32, off: u32, c: u32 },
    Ld16S32 { a: u32, disp: i32, off: u32, c: u32 },
    Ld16U32 { a: u32, disp: i32, off: u32, c: u32 },
    LdShl32 { a: u32, b: u32, sh: u32, off: u32, c: u32 },
    LdShl64 { a: u32, b: u32, sh: u32, off: u32, c: u32 },
    LdShlK32 { a: u32, sh: u32, disp: i32, off: u32, c: u32 },
    LdShlK64 { a: u32, sh: u32, disp: i32, off: u32, c: u32 },
    St8 { a: u32, b: u32, off: u32 },
    St16 { a: u32, b: u32, off: u32 },
    St32 { a: u32, b: u32, off: u32 },
    St64 { a: u32, b: u32, off: u32 },
    StShl32 { a: u32, b: u32, base: u32, sh: u32, off: u32 },
    StShl64 { a: u32, b: u32, base: u32, sh: u32, off: u32 },
    StShlK32 { a: u32, sh: u32, disp: i32, off: u32, b: u32 },
    StShlK64 { a: u32, sh: u32, disp: i32, off: u32, b: u32 },
    /// Fused load → add-k → store over one address (`fuse_rmw`): the
    /// address is formed and bounds-checked once; both original register
    /// writes (`t` = loaded value, `u` = stored value) are preserved so a
    /// later guard exit resumes the interpreter with identical state.
    RmwShlK32 { a: u32, sh: u32, disp: i32, off: u32, k: i32, t: u32, u: u32 },
    RmwShl32 { a: u32, base: u32, sh: u32, off: u32, k: i32, t: u32, u: u32 },
    /// Fused constant rematerialization + binary op (`fuse_kbin`): the
    /// constant register `r` is still written (guard exits may resume an
    /// interpreter that reads it), but the pair costs one dispatch.
    MulK32R { k: i32, r: u32, a: u32, c: u32 },
    ShrUK32R { k: i32, r: u32, a: u32, c: u32 },
    DivUK32R { k: i32, r: u32, a: u32, c: u32 },
    RemUK32R { k: i32, r: u32, a: u32, c: u32 },
    V128Ld { a: u32, off: u32, c: u32 },
    V128St { a: u32, b: u32, off: u32 },
    // -- v128 lane arithmetic: intrinsic fn baked at build time --
    VBin { f: fn(u128, u128) -> u128, a: u32, b: u32, c: u32 },
    VNot { a: u32, c: u32 },
    Splat32 { a: u32, c: u32 },
    Splat64 { a: u32, c: u32 },
    // -- control --
    Jmp { to: u32 },
    Unwind { imm: u64 },
    Guard { cond: Cond, imm: u64, on_true: u32, on_false: u32 },
    // -- fallback: monomorphized boxed closure --
    Link(Link),
}

/// One compiled superblock: a flat pre-decoded step program plus the
/// interpreter ip to resume at when execution runs off the end.
pub(crate) struct Chain {
    prog: Vec<Mo>,
    resume: u32,
}

/// Per-call profiling tally kept by `run_jit` and folded into
/// [`crate::superblock::JitState`] at function exit. Counting is a
/// monomorphization parameter of [`Chain::run_impl`], so the untallied
/// path compiles to exactly the code it had before profiling existed.
#[derive(Default)]
pub(crate) struct ChainTally {
    pub(crate) guard_exits: u64,
    pub(crate) fallback_steps: u64,
}

impl Chain {
    /// Execute the chain. Loop backedges jump to step 0 without leaving
    /// this loop; every other exit yields the interpreter resume ip.
    #[inline]
    pub(crate) fn run(&self, ctx: &mut Ctx<'_>) -> Result<usize, Trap> {
        let mut tally = ChainTally::default();
        if ctx.inst.metered() {
            self.run_impl::<false, true>(ctx, &mut tally)
        } else {
            self.run_impl::<false, false>(ctx, &mut tally)
        }
    }

    /// [`Chain::run`] with profiling tallies enabled.
    #[inline]
    pub(crate) fn run_counted(
        &self,
        ctx: &mut Ctx<'_>,
        tally: &mut ChainTally,
    ) -> Result<usize, Trap> {
        if ctx.inst.metered() {
            self.run_impl::<true, true>(ctx, tally)
        } else {
            self.run_impl::<true, false>(ctx, tally)
        }
    }

    /// The chain execution loop, monomorphized on profiling (`COUNT`)
    /// and on execution limits (`METERED`): unlimited runs compile the
    /// backedge fuel guards out entirely.
    fn run_impl<const COUNT: bool, const METERED: bool>(
        &self,
        ctx: &mut Ctx<'_>,
        tally: &mut ChainTally,
    ) -> Result<usize, Trap> {
        // Declared ahead of the macros so `ctl!`'s guard-point charge can
        // bind it (macro bodies resolve against definition-site scope).
        let mut guard_epoch = 0u32;
        macro_rules! bin {
            ($read:ident, $wrap:path, $f:expr, $a:expr, $b:expr, $c:expr) => {{
                let x = rg(ctx, $a).$read();
                let y = rg(ctx, $b).$read();
                wr(ctx, $c, $wrap($f(x, y)));
            }};
        }
        macro_rules! trapbin {
            ($read:ident, $wrap:path, $f:expr, $a:expr, $b:expr, $c:expr) => {{
                let x = rg(ctx, $a).$read();
                let y = rg(ctx, $b).$read();
                wr(ctx, $c, $wrap($f(x, y)?));
            }};
        }
        macro_rules! un {
            ($read:ident, $wrap:path, $f:expr, $a:expr, $c:expr) => {{
                let v = rg(ctx, $a).$read();
                wr(ctx, $c, $wrap($f(v)));
            }};
        }
        macro_rules! ld {
            ($n:expr, $raw:ty, $conv:ty, $wrap:path, $a:expr, $disp:expr, $off:expr, $c:expr) => {{
                let addr = rg(ctx, $a).i32().wrapping_add($disp) as u32;
                let start = ctx.inst.memory.effective(addr, $off, $n)?;
                let raw = <$raw>::from_le_bytes(ctx.inst.memory.load::<{ $n as usize }>(start));
                wr(ctx, $c, $wrap(raw as $conv));
            }};
        }
        macro_rules! ldshl {
            ($n:expr, $raw:ty, $wrap:path, $a:expr, $b:expr, $sh:expr, $off:expr, $c:expr) => {{
                let addr =
                    rg(ctx, $b).i32().wrapping_add(rg(ctx, $a).i32().wrapping_shl($sh)) as u32;
                let start = ctx.inst.memory.effective(addr, $off, $n)?;
                let raw = <$raw>::from_le_bytes(ctx.inst.memory.load::<{ $n as usize }>(start));
                wr(ctx, $c, $wrap(raw));
            }};
        }
        macro_rules! ldshlk {
            ($n:expr, $raw:ty, $wrap:path, $a:expr, $sh:expr, $disp:expr, $off:expr, $c:expr) => {{
                let addr = rg(ctx, $a).i32().wrapping_shl($sh).wrapping_add($disp) as u32;
                let start = ctx.inst.memory.effective(addr, $off, $n)?;
                let raw = <$raw>::from_le_bytes(ctx.inst.memory.load::<{ $n as usize }>(start));
                wr(ctx, $c, $wrap(raw));
            }};
        }
        macro_rules! st {
            ($n:expr, $cast:ty, $a:expr, $b:expr, $off:expr) => {{
                let addr = rg(ctx, $a).u32();
                let val = rg(ctx, $b).u64();
                let start = ctx.inst.memory.effective(addr, $off, $n)?;
                ctx.inst.memory.store(start, &((val as $cast).to_le_bytes()));
            }};
        }
        macro_rules! stshl {
            ($n:expr, $cast:ty, $a:expr, $b:expr, $base:expr, $sh:expr, $off:expr) => {{
                let addr =
                    rg(ctx, $base).i32().wrapping_add(rg(ctx, $a).i32().wrapping_shl($sh)) as u32;
                let val = rg(ctx, $b).u64();
                let start = ctx.inst.memory.effective(addr, $off, $n)?;
                ctx.inst.memory.store(start, &((val as $cast).to_le_bytes()));
            }};
        }
        macro_rules! stshlk {
            ($n:expr, $cast:ty, $a:expr, $sh:expr, $disp:expr, $off:expr, $b:expr) => {{
                let addr = rg(ctx, $a).i32().wrapping_shl($sh).wrapping_add($disp) as u32;
                let val = rg(ctx, $b).u64();
                let start = ctx.inst.memory.effective(addr, $off, $n)?;
                ctx.inst.memory.store(start, &((val as $cast).to_le_bytes()));
            }};
        }
        /// Branch off the fallthrough path: exit the chain or re-aim `i`.
        /// An in-chain backward transfer (a loop backedge re-entering the
        /// chain at an earlier step) is a fuel guard point: a fully
        /// chained loop never returns to `run_jit`, so the budget must be
        /// enforced here or a runaway guest would be uninterruptible at
        /// the top tier.
        macro_rules! ctl {
            ($i:ident, $word:expr) => {{
                let w = $word;
                if w & EXIT != 0 {
                    return Ok((w & !EXIT) as usize);
                }
                if METERED && (w as usize) < $i {
                    guard_epoch += 1;
                    if guard_epoch & 1023 == 0 {
                        ctx.inst.fuel_step(1024)?;
                    }
                }
                $i = w as usize;
            }};
        }

        let prog = &self.prog[..];
        let mut i = 0usize;
        while let Some(mo) = prog.get(i) {
            i += 1;
            match *mo {
                Mo::Const { c, v } => wr(ctx, c, v),
                Mo::Copy { a, c } => {
                    let v = rg(ctx, a);
                    wr(ctx, c, v);
                }
                Mo::Copy2 { a, c } => {
                    let v = rg2(ctx, a);
                    wr2(ctx, c, v);
                }
                Mo::VConst { c, v } => wr2(ctx, c, v),
                Mo::Select { a, b, c } => {
                    if rg(ctx, c).i32() == 0 {
                        let v = rg(ctx, b);
                        wr(ctx, a, v);
                    }
                }
                Mo::GlobalGet { g, c } => {
                    let v = ctx.inst.globals[g as usize];
                    wr(ctx, c, v);
                }
                Mo::GlobalSet { g, b } => ctx.inst.globals[g as usize] = rg(ctx, b),

                Mo::Add32 { a, b, c } => bin!(i32, Slot::from_i32, i32::wrapping_add, a, b, c),
                Mo::Sub32 { a, b, c } => bin!(i32, Slot::from_i32, i32::wrapping_sub, a, b, c),
                Mo::Mul32 { a, b, c } => bin!(i32, Slot::from_i32, i32::wrapping_mul, a, b, c),
                Mo::DivS32 { a, b, c } => trapbin!(i32, Slot::from_i32, exec::i32_div_s, a, b, c),
                Mo::DivU32 { a, b, c } => trapbin!(i32, Slot::from_i32, exec::i32_div_u, a, b, c),
                Mo::RemS32 { a, b, c } => trapbin!(i32, Slot::from_i32, exec::i32_rem_s, a, b, c),
                Mo::RemU32 { a, b, c } => trapbin!(i32, Slot::from_i32, exec::i32_rem_u, a, b, c),
                Mo::And32 { a, b, c } => bin!(i32, Slot::from_i32, |x, y| x & y, a, b, c),
                Mo::Or32 { a, b, c } => bin!(i32, Slot::from_i32, |x, y| x | y, a, b, c),
                Mo::Xor32 { a, b, c } => bin!(i32, Slot::from_i32, |x, y| x ^ y, a, b, c),
                Mo::Shl32 { a, b, c } => {
                    bin!(i32, Slot::from_i32, |x: i32, y| x.wrapping_shl(y as u32), a, b, c)
                }
                Mo::ShrS32 { a, b, c } => {
                    bin!(i32, Slot::from_i32, |x: i32, y| x.wrapping_shr(y as u32), a, b, c)
                }
                Mo::ShrU32 { a, b, c } => bin!(
                    i32,
                    Slot::from_i32,
                    |x, y| ((x as u32).wrapping_shr(y as u32)) as i32,
                    a,
                    b,
                    c
                ),
                Mo::Eqz32 { a, c } => un!(i32, Slot::from_bool, |v| v == 0, a, c),
                Mo::Cmp32 { a, b, c, aux } => {
                    let r = ieval32(aux, rg(ctx, a).i32(), rg(ctx, b).i32());
                    wr(ctx, c, Slot::from_bool(r));
                }
                Mo::Cmp32K { a, k, c, aux } => {
                    let r = ieval32(aux, rg(ctx, a).i32(), k);
                    wr(ctx, c, Slot::from_bool(r));
                }
                Mo::AddK32 { a, k, c } => {
                    let r = rg(ctx, a).i32().wrapping_add(k);
                    wr(ctx, c, Slot::from_i32(r));
                }
                Mo::ShlK32 { a, sh, c } => {
                    let r = rg(ctx, a).i32().wrapping_shl(sh);
                    wr(ctx, c, Slot::from_i32(r));
                }
                Mo::AddShl32 { a, b, sh, c } => {
                    let r = rg(ctx, b).i32().wrapping_add(rg(ctx, a).i32().wrapping_shl(sh));
                    wr(ctx, c, Slot::from_i32(r));
                }

                Mo::Add64 { a, b, c } => bin!(i64, Slot::from_i64, i64::wrapping_add, a, b, c),
                Mo::Sub64 { a, b, c } => bin!(i64, Slot::from_i64, i64::wrapping_sub, a, b, c),
                Mo::Mul64 { a, b, c } => bin!(i64, Slot::from_i64, i64::wrapping_mul, a, b, c),
                Mo::DivS64 { a, b, c } => trapbin!(i64, Slot::from_i64, exec::i64_div_s, a, b, c),
                Mo::DivU64 { a, b, c } => trapbin!(i64, Slot::from_i64, exec::i64_div_u, a, b, c),
                Mo::RemS64 { a, b, c } => trapbin!(i64, Slot::from_i64, exec::i64_rem_s, a, b, c),
                Mo::RemU64 { a, b, c } => trapbin!(i64, Slot::from_i64, exec::i64_rem_u, a, b, c),
                Mo::And64 { a, b, c } => bin!(i64, Slot::from_i64, |x, y| x & y, a, b, c),
                Mo::Or64 { a, b, c } => bin!(i64, Slot::from_i64, |x, y| x | y, a, b, c),
                Mo::Xor64 { a, b, c } => bin!(i64, Slot::from_i64, |x, y| x ^ y, a, b, c),
                Mo::Shl64 { a, b, c } => {
                    bin!(i64, Slot::from_i64, |x: i64, y| x.wrapping_shl(y as u32), a, b, c)
                }
                Mo::ShrS64 { a, b, c } => {
                    bin!(i64, Slot::from_i64, |x: i64, y| x.wrapping_shr(y as u32), a, b, c)
                }
                Mo::ShrU64 { a, b, c } => bin!(
                    i64,
                    Slot::from_i64,
                    |x, y| ((x as u64).wrapping_shr(y as u32)) as i64,
                    a,
                    b,
                    c
                ),
                Mo::AddK64 { a, k, c } => {
                    let r = rg(ctx, a).i64().wrapping_add(k);
                    wr(ctx, c, Slot::from_i64(r));
                }
                Mo::Cmp64 { a, b, c, aux } => {
                    let r = ieval64(aux, rg(ctx, a).i64(), rg(ctx, b).i64());
                    wr(ctx, c, Slot::from_bool(r));
                }
                Mo::Cmp64K { a, k, c, aux } => {
                    let r = ieval64(aux, rg(ctx, a).i64(), k);
                    wr(ctx, c, Slot::from_bool(r));
                }

                Mo::AddF32 { a, b, c } => bin!(f32, Slot::from_f32, |x, y| x + y, a, b, c),
                Mo::SubF32 { a, b, c } => bin!(f32, Slot::from_f32, |x, y| x - y, a, b, c),
                Mo::MulF32 { a, b, c } => bin!(f32, Slot::from_f32, |x, y| x * y, a, b, c),
                Mo::DivF32 { a, b, c } => bin!(f32, Slot::from_f32, |x, y| x / y, a, b, c),
                Mo::AddF64 { a, b, c } => bin!(f64, Slot::from_f64, |x, y| x + y, a, b, c),
                Mo::SubF64 { a, b, c } => bin!(f64, Slot::from_f64, |x, y| x - y, a, b, c),
                Mo::MulF64 { a, b, c } => bin!(f64, Slot::from_f64, |x, y| x * y, a, b, c),
                Mo::DivF64 { a, b, c } => bin!(f64, Slot::from_f64, |x, y| x / y, a, b, c),
                Mo::NegF64 { a, c } => un!(f64, Slot::from_f64, |v: f64| -v, a, c),
                Mo::SqrtF64 { a, c } => un!(f64, Slot::from_f64, f64::sqrt, a, c),
                Mo::AbsF64 { a, c } => un!(f64, Slot::from_f64, f64::abs, a, c),
                Mo::CmpF32 { a, b, c, aux } => {
                    let r = feval(aux, rg(ctx, a).f32(), rg(ctx, b).f32());
                    wr(ctx, c, Slot::from_bool(r));
                }
                Mo::CmpF64 { a, b, c, aux } => {
                    let r = feval(aux, rg(ctx, a).f64(), rg(ctx, b).f64());
                    wr(ctx, c, Slot::from_bool(r));
                }
                Mo::Fma64 { a, b, c } => {
                    let x = rg(ctx, a).f64();
                    let y = rg(ctx, b).f64();
                    let z = rg(ctx, c).f64();
                    // No FMA contraction: both roundings, as the unfused pair.
                    wr(ctx, c, Slot::from_f64(z + x * y));
                }

                Mo::Wrap64 { a, c } => un!(i64, Slot::from_i32, |v| v as i32, a, c),
                Mo::ExtS3264 { a, c } => un!(i32, Slot::from_i64, |v| v as i64, a, c),
                Mo::ExtU3264 { a, c } => un!(i32, Slot::from_i64, |v| v as u32 as i64, a, c),
                Mo::ConvS32F64 { a, c } => un!(i32, Slot::from_f64, |v| v as f64, a, c),
                Mo::ConvU32F64 { a, c } => un!(i32, Slot::from_f64, |v| v as u32 as f64, a, c),
                Mo::Promote { a, c } => un!(f32, Slot::from_f64, |v| v as f64, a, c),
                Mo::Demote { a, c } => un!(f64, Slot::from_f32, |v| v as f32, a, c),

                Mo::Ld32 { a, disp, off, c } => ld!(4, u32, u32, Slot::from_u32, a, disp, off, c),
                Mo::Ld64 { a, disp, off, c } => ld!(8, u64, u64, Slot::from_u64, a, disp, off, c),
                Mo::Ld8S32 { a, disp, off, c } => ld!(1, i8, i32, Slot::from_i32, a, disp, off, c),
                Mo::Ld8U32 { a, disp, off, c } => ld!(1, u8, i32, Slot::from_i32, a, disp, off, c),
                Mo::Ld16S32 { a, disp, off, c } => {
                    ld!(2, i16, i32, Slot::from_i32, a, disp, off, c)
                }
                Mo::Ld16U32 { a, disp, off, c } => {
                    ld!(2, u16, i32, Slot::from_i32, a, disp, off, c)
                }
                Mo::LdShl32 { a, b, sh, off, c } => {
                    ldshl!(4, u32, Slot::from_u32, a, b, sh, off, c)
                }
                Mo::LdShl64 { a, b, sh, off, c } => {
                    ldshl!(8, u64, Slot::from_u64, a, b, sh, off, c)
                }
                Mo::LdShlK32 { a, sh, disp, off, c } => {
                    ldshlk!(4, u32, Slot::from_u32, a, sh, disp, off, c)
                }
                Mo::LdShlK64 { a, sh, disp, off, c } => {
                    ldshlk!(8, u64, Slot::from_u64, a, sh, disp, off, c)
                }
                Mo::St8 { a, b, off } => st!(1, u8, a, b, off),
                Mo::St16 { a, b, off } => st!(2, u16, a, b, off),
                Mo::St32 { a, b, off } => st!(4, u32, a, b, off),
                Mo::St64 { a, b, off } => st!(8, u64, a, b, off),
                Mo::StShl32 { a, b, base, sh, off } => stshl!(4, u32, a, b, base, sh, off),
                Mo::StShl64 { a, b, base, sh, off } => stshl!(8, u64, a, b, base, sh, off),
                Mo::StShlK32 { a, sh, disp, off, b } => stshlk!(4, u32, a, sh, disp, off, b),
                Mo::RmwShlK32 { a, sh, disp, off, k, t, u } => {
                    let addr = rg(ctx, a).i32().wrapping_shl(sh).wrapping_add(disp) as u32;
                    let start = ctx.inst.memory.effective(addr, off, 4)?;
                    let v = i32::from_le_bytes(ctx.inst.memory.load::<4>(start));
                    wr(ctx, t, Slot::from_i32(v));
                    let nv = v.wrapping_add(k);
                    wr(ctx, u, Slot::from_i32(nv));
                    ctx.inst.memory.store(start, &nv.to_le_bytes());
                }
                Mo::RmwShl32 { a, base, sh, off, k, t, u } => {
                    let addr =
                        rg(ctx, base).i32().wrapping_add(rg(ctx, a).i32().wrapping_shl(sh)) as u32;
                    let start = ctx.inst.memory.effective(addr, off, 4)?;
                    let v = i32::from_le_bytes(ctx.inst.memory.load::<4>(start));
                    wr(ctx, t, Slot::from_i32(v));
                    let nv = v.wrapping_add(k);
                    wr(ctx, u, Slot::from_i32(nv));
                    ctx.inst.memory.store(start, &nv.to_le_bytes());
                }
                Mo::MulK32R { k, r, a, c } => {
                    wr(ctx, r, Slot::from_i32(k));
                    let x = rg(ctx, a).i32();
                    wr(ctx, c, Slot::from_i32(x.wrapping_mul(k)));
                }
                Mo::ShrUK32R { k, r, a, c } => {
                    wr(ctx, r, Slot::from_i32(k));
                    let x = rg(ctx, a).i32();
                    wr(ctx, c, Slot::from_i32(((x as u32).wrapping_shr(k as u32)) as i32));
                }
                Mo::DivUK32R { k, r, a, c } => {
                    wr(ctx, r, Slot::from_i32(k));
                    let x = rg(ctx, a).i32();
                    wr(ctx, c, Slot::from_i32(exec::i32_div_u(x, k)?));
                }
                Mo::RemUK32R { k, r, a, c } => {
                    wr(ctx, r, Slot::from_i32(k));
                    let x = rg(ctx, a).i32();
                    wr(ctx, c, Slot::from_i32(exec::i32_rem_u(x, k)?));
                }
                Mo::StShlK64 { a, sh, disp, off, b } => stshlk!(8, u64, a, sh, disp, off, b),
                Mo::V128Ld { a, off, c } => {
                    let addr = rg(ctx, a).u32();
                    let start = ctx.inst.memory.effective(addr, off, 16)?;
                    let v = u128::from_le_bytes(ctx.inst.memory.load::<16>(start));
                    wr2(ctx, c, v);
                }
                Mo::V128St { a, b, off } => {
                    let addr = rg(ctx, a).u32();
                    let val = rg2(ctx, b);
                    let start = ctx.inst.memory.effective(addr, off, 16)?;
                    ctx.inst.memory.store(start, &val.to_le_bytes());
                }

                Mo::VBin { f, a, b, c } => {
                    let x = rg2(ctx, a);
                    let y = rg2(ctx, b);
                    wr2(ctx, c, f(x, y));
                }
                Mo::VNot { a, c } => {
                    let v = rg2(ctx, a);
                    wr2(ctx, c, !v);
                }
                Mo::Splat32 { a, c } => {
                    let v = rg(ctx, a).u32() as u128;
                    wr2(ctx, c, v | v << 32 | v << 64 | v << 96);
                }
                Mo::Splat64 { a, c } => {
                    let v = rg(ctx, a).u64();
                    wr2(ctx, c, v as u128 | (v as u128) << 64);
                }

                Mo::Jmp { to } => {
                    if METERED && (to as usize) < i {
                        guard_epoch += 1;
                        if guard_epoch & 1023 == 0 {
                            ctx.inst.fuel_step(1024)?;
                        }
                    }
                    i = to as usize;
                }
                Mo::Unwind { imm } => unwind(ctx, imm),
                Mo::Guard { ref cond, imm, on_true, on_false } => {
                    let taken = match *cond {
                        Cond::NZ { a } => rg(ctx, a).i32() != 0,
                        Cond::Z { a } => rg(ctx, a).i32() == 0,
                        Cond::Cmp { a, b, aux } => {
                            ieval32(aux, rg(ctx, a).i32(), rg(ctx, b).i32())
                        }
                        Cond::CmpK { a, k, aux } => ieval32(aux, rg(ctx, a).i32(), k),
                    };
                    if taken {
                        if COUNT && on_true & EXIT != 0 {
                            tally.guard_exits += 1;
                        }
                        unwind(ctx, imm);
                        ctl!(i, on_true);
                    } else {
                        if COUNT && on_false & EXIT != 0 {
                            tally.guard_exits += 1;
                        }
                        ctl!(i, on_false);
                    }
                }
                Mo::Link(ref f) => {
                    if COUNT {
                        tally.fallback_steps += 1;
                    }
                    ctl!(i, f(ctx)?)
                }
            }
        }
        Ok(self.resume as usize)
    }
}

/// All compiled superblocks of one function, indexed by head ip.
pub(crate) struct FnChains {
    /// `ip -> chain index + 1`; 0 = no chain heads here. Same length as
    /// the function's op stream.
    entry: Vec<u32>,
    chains: Vec<Chain>,
}

impl FnChains {
    #[inline(always)]
    pub(crate) fn lookup(&self, ip: usize) -> Option<&Chain> {
        match self.entry.get(ip) {
            Some(&e) if e != 0 => Some(&self.chains[(e - 1) as usize]),
            _ => None,
        }
    }

    /// Number of compiled chains (introspection / tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.chains.len()
    }
}

/// Compile every superblock of `f` into a chain.
pub(crate) fn compile_fn(f: &RegFunc) -> FnChains {
    let blocks = superblock::discover(f);
    let mut entry = vec![0u32; f.code.len()];
    let mut chains = Vec::with_capacity(blocks.len());
    for b in &blocks {
        #[cfg(feature = "jit-x64")]
        let chain = jit_x64::try_emit(f, b).unwrap_or_else(|| build_chain(f, b));
        #[cfg(not(feature = "jit-x64"))]
        let chain = build_chain(f, b);
        chains.push(chain);
        entry[b.head as usize] = chains.len() as u32;
    }
    FnChains { entry, chains }
}

/// Lower the trace front to back. Guards bake their control words: a
/// guard on the trace's own loop backedge points back at step 0, and
/// every bail-out side carries `EXIT | ip` — unless the bail target's op
/// is itself materialized later in this chain (an `if`-skip join point),
/// in which case the word is patched to the in-chain step index and the
/// "unlikely" side never leaves the chain either.


/// Recognize the store completing a `load; add-const; store` triple over
/// the same address with no intervening step, and return the fused RMW
/// micro-op. Requires the loaded (`t`) and stored (`u`) registers to be
/// distinct from the address registers — otherwise the store's address
/// would see the updated values and the one-shot address computation
/// would diverge from the interpreter.
fn fuse_rmw(prog: &[Mo], mo: &Mo) -> Option<Mo> {
    let n = prog.len();
    if n < 2 {
        return None;
    }
    match (mo, &prog[n - 2], &prog[n - 1]) {
        (
            &Mo::StShlK32 { a, sh, disp, off, b },
            &Mo::LdShlK32 { a: la, sh: ls, disp: ld, off: lo, c: t },
            &Mo::AddK32 { a: aa, k, c: u },
        ) if la == a
            && ls == sh
            && ld == disp
            && lo == off
            && aa == t
            && u == b
            && t != a
            && u != a =>
        {
            Some(Mo::RmwShlK32 { a, sh, disp, off, k, t, u })
        }
        (
            &Mo::StShl32 { a, b, base, sh, off },
            &Mo::LdShl32 { a: la, b: lb, sh: ls, off: lo, c: t },
            &Mo::AddK32 { a: aa, k, c: u },
        ) if la == a
            && lb == base
            && ls == sh
            && lo == off
            && aa == t
            && u == b
            && t != a
            && t != base
            && u != a
            && u != base =>
        {
            Some(Mo::RmwShl32 { a, base, sh, off, k, t, u })
        }
        _ => None,
    }
}

/// Recognize a `Const` immediately feeding the divisor/shift/factor
/// operand of the next binary op and fuse the pair into one step. The
/// constant register is still written by the fused step, so interpreter
/// state at any later guard exit is unchanged.
fn fuse_kbin(prog: &[Mo], mo: &Mo) -> Option<Mo> {
    let (r, v) = match prog.last() {
        Some(&Mo::Const { c, v }) => (c, v),
        _ => return None,
    };
    let k = v.i32();
    // The constant must round-trip as an i32 slot for the rewrite of the
    // `r` write to be exact (regalloc emits i32 consts zero-extended).
    if v.0 != Slot::from_i32(k).0 {
        return None;
    }
    match *mo {
        Mo::Mul32 { a, b, c } if b == r && a != r => Some(Mo::MulK32R { k, r, a, c }),
        Mo::Mul32 { a, b, c } if a == r && b != r => Some(Mo::MulK32R { k, r, a: b, c }),
        Mo::ShrU32 { a, b, c } if b == r && a != r => Some(Mo::ShrUK32R { k, r, a, c }),
        Mo::DivU32 { a, b, c } if b == r && a != r => Some(Mo::DivUK32R { k, r, a, c }),
        Mo::RemU32 { a, b, c } if b == r && a != r => Some(Mo::RemUK32R { k, r, a, c }),
        _ => None,
    }
}

fn build_chain(f: &RegFunc, b: &Superblock) -> Chain {
    let mut prog: Vec<Mo> = Vec::with_capacity(b.steps.len());
    // First step index materializing each op ip, for bail-target patching.
    let mut at: Vec<(u32, u32)> = Vec::new();
    for step in &b.steps {
        // Sequential emission: the following step always lands at
        // `len() + 1` relative to the one pushed now. Nops emit nothing —
        // the previous step falls through to whatever is emitted next.
        let next = prog.len() as u32 + 1;
        let mo = match *step {
            Step::Op { op, ip } => match op.code {
                Rc::Nop => continue,
                _ => {
                    let mo = lower_op(f, op, ip, next);
                    if let Some(fused) = fuse_kbin(&prog, &mo) {
                        // Replace the trailing Const and this op with the
                        // fused pair at the Const's slot; this op's ip no
                        // longer resolves in-chain.
                        let n = prog.len();
                        prog.truncate(n - 1);
                        prog.push(fused);
                        continue;
                    }
                    if let Some(fused) = fuse_rmw(&prog, &mo) {
                        // The store completes a load → add-k → store RMW
                        // over one address: collapse all three into the
                        // load's slot. Entering at the load's ip still
                        // runs the whole triple; the two interior ips
                        // stop resolving in-chain (guards exiting there
                        // fall back to the interpreter instead).
                        let n = prog.len();
                        prog.truncate(n - 2);
                        at.retain(|&(_, idx)| idx <= (n - 2) as u32);
                        prog.push(fused);
                        continue;
                    }
                    at.push((ip, prog.len() as u32));
                    mo
                }
            },
            Step::Unwind { imm } => Mo::Unwind { imm },
            // An unconditional while-shaped backedge: unwind, then
            // re-enter the chain at step 0 without leaving `run`.
            Step::Backedge { imm } => {
                if imm != 0 {
                    prog.push(Mo::Unwind { imm });
                }
                Mo::Jmp { to: 0 }
            }
            // The guard on the trace's own backedge re-enters the chain
            // at step 0, keeping every loop iteration in-chain.
            Step::GuardTaken { op, fall_ip } => {
                let on_true = if op.c == b.head { 0 } else { next };
                guard(op, on_true, EXIT | fall_ip)
            }
            Step::GuardFall { op } => guard(op, EXIT | op.c, next),
        };
        prog.push(mo);
    }
    // Redirect guard exits whose target op lives in this chain: running
    // the chain from that step is exactly the interpreter resuming at
    // that ip (each step replicates its op with identical effects).
    let resolve = |word: u32| -> u32 {
        if word & EXIT != 0 {
            let ip = word & !EXIT;
            if let Some(&(_, idx)) = at.iter().find(|&&(at_ip, _)| at_ip == ip) {
                return idx;
            }
        }
        word
    };
    for mo in &mut prog {
        if let Mo::Guard { on_true, on_false, .. } = mo {
            *on_true = resolve(*on_true);
            *on_false = resolve(*on_false);
        }
    }
    Chain { prog, resume: b.resume }
}

/// The branch unwind copy ([`crate::dispatch`]'s `take` without the
/// control transfer — in a chain the successor step is the
/// continuation).
#[inline(always)]
fn unwind(ctx: &mut Ctx<'_>, imm: u64) {
    if imm != 0 {
        let (src, dst, arity) = unwind_parts(imm);
        let b = ctx.base;
        ctx.stack.copy_within(b + src..b + src + arity, b + dst);
    }
}

/// Pre-decode one guard; both continuation control words are baked.
fn guard(op: RegOp, on_true: u32, on_false: u32) -> Mo {
    let cond = match op.code {
        Rc::BrIf => Cond::NZ { a: op.a },
        Rc::BrIfZ => Cond::Z { a: op.a },
        Rc::BrIfCmp32 => Cond::Cmp { a: op.a, b: op.b, aux: op.aux },
        Rc::BrIfCmp32K => Cond::CmpK { a: op.a, k: op.b as i32, aux: op.aux },
        other => unreachable!("non-conditional opcode {other:?} as guard"),
    };
    Mo::Guard { cond, imm: op.imm, on_true, on_false }
}

/// Lower one fallthrough op to a pre-decoded micro-step. Anything not
/// covered runs through its interpreter handler, captured as a direct fn
/// pointer inside a boxed closure step.
fn lower_op(f: &RegFunc, op: RegOp, ip: u32, next: u32) -> Mo {
    let (a, b, c, imm, aux) = (op.a, op.b, op.c, op.imm, op.aux);
    let disp = (imm >> 32) as i32;
    let off = imm as u32;
    let sh = aux as u32;

    match op.code {
        // -- moves / constants (Nop never reaches here; build_chain
        // elides it) --
        Rc::Const => Mo::Const { c, v: Slot(imm) },
        Rc::Copy => Mo::Copy { a, c },
        Rc::Copy2 => Mo::Copy2 { a, c },
        // The pool constant is baked into the chain.
        Rc::V128Const => Mo::VConst { c, v: f.v128_pool[a as usize] },
        Rc::Select => Mo::Select { a, b, c },
        Rc::GlobalGet => Mo::GlobalGet { g: a, c },
        Rc::GlobalSet => Mo::GlobalSet { g: a, b },

        // -- i32 --
        Rc::Add32 => Mo::Add32 { a, b, c },
        Rc::Sub32 => Mo::Sub32 { a, b, c },
        Rc::Mul32 => Mo::Mul32 { a, b, c },
        Rc::DivS32 => Mo::DivS32 { a, b, c },
        Rc::DivU32 => Mo::DivU32 { a, b, c },
        Rc::RemS32 => Mo::RemS32 { a, b, c },
        Rc::RemU32 => Mo::RemU32 { a, b, c },
        Rc::And32 => Mo::And32 { a, b, c },
        Rc::Or32 => Mo::Or32 { a, b, c },
        Rc::Xor32 => Mo::Xor32 { a, b, c },
        Rc::Shl32 => Mo::Shl32 { a, b, c },
        Rc::ShrS32 => Mo::ShrS32 { a, b, c },
        Rc::ShrU32 => Mo::ShrU32 { a, b, c },
        Rc::Eqz32 => Mo::Eqz32 { a, c },
        Rc::Cmp32 => Mo::Cmp32 { a, b, c, aux },
        Rc::Cmp32K => Mo::Cmp32K { a, k: b as i32, c, aux },
        Rc::AddK32 => Mo::AddK32 { a, k: b as i32, c },
        Rc::ShlK32 => Mo::ShlK32 { a, sh, c },
        Rc::AddShl32 => Mo::AddShl32 { a, b, sh, c },

        // -- i64 --
        Rc::Add64 => Mo::Add64 { a, b, c },
        Rc::Sub64 => Mo::Sub64 { a, b, c },
        Rc::Mul64 => Mo::Mul64 { a, b, c },
        Rc::DivS64 => Mo::DivS64 { a, b, c },
        Rc::DivU64 => Mo::DivU64 { a, b, c },
        Rc::RemS64 => Mo::RemS64 { a, b, c },
        Rc::RemU64 => Mo::RemU64 { a, b, c },
        Rc::And64 => Mo::And64 { a, b, c },
        Rc::Or64 => Mo::Or64 { a, b, c },
        Rc::Xor64 => Mo::Xor64 { a, b, c },
        Rc::Shl64 => Mo::Shl64 { a, b, c },
        Rc::ShrS64 => Mo::ShrS64 { a, b, c },
        Rc::ShrU64 => Mo::ShrU64 { a, b, c },
        Rc::AddK64 => Mo::AddK64 { a, k: imm as i64, c },
        Rc::Cmp64 => Mo::Cmp64 { a, b, c, aux },
        Rc::Cmp64K => Mo::Cmp64K { a, k: imm as i64, c, aux },

        // -- floats --
        Rc::AddF32 => Mo::AddF32 { a, b, c },
        Rc::SubF32 => Mo::SubF32 { a, b, c },
        Rc::MulF32 => Mo::MulF32 { a, b, c },
        Rc::DivF32 => Mo::DivF32 { a, b, c },
        Rc::AddF64 => Mo::AddF64 { a, b, c },
        Rc::SubF64 => Mo::SubF64 { a, b, c },
        Rc::MulF64 => Mo::MulF64 { a, b, c },
        Rc::DivF64 => Mo::DivF64 { a, b, c },
        Rc::NegF64 => Mo::NegF64 { a, c },
        Rc::SqrtF64 => Mo::SqrtF64 { a, c },
        Rc::AbsF64 => Mo::AbsF64 { a, c },
        Rc::CmpF32 => Mo::CmpF32 { a, b, c, aux },
        Rc::CmpF64 => Mo::CmpF64 { a, b, c, aux },
        Rc::Fma64 => Mo::Fma64 { a, b, c },

        // -- conversions (the cheap, hot ones) --
        Rc::Wrap64 => Mo::Wrap64 { a, c },
        Rc::ExtS3264 => Mo::ExtS3264 { a, c },
        Rc::ExtU3264 => Mo::ExtU3264 { a, c },
        Rc::ConvS32F64 => Mo::ConvS32F64 { a, c },
        Rc::ConvU32F64 => Mo::ConvU32F64 { a, c },
        Rc::Promote => Mo::Promote { a, c },
        Rc::Demote => Mo::Demote { a, c },

        // -- memory --
        Rc::Load32 => Mo::Ld32 { a, disp, off, c },
        Rc::Load64 => Mo::Ld64 { a, disp, off, c },
        Rc::Load8S32 => Mo::Ld8S32 { a, disp, off, c },
        Rc::Load8U32 => Mo::Ld8U32 { a, disp, off, c },
        Rc::Load16S32 => Mo::Ld16S32 { a, disp, off, c },
        Rc::Load16U32 => Mo::Ld16U32 { a, disp, off, c },
        Rc::Load32Shl => Mo::LdShl32 { a, b, sh, off, c },
        Rc::Load64Shl => Mo::LdShl64 { a, b, sh, off, c },
        Rc::Load32ShlK => Mo::LdShlK32 { a, sh, disp, off, c },
        Rc::Load64ShlK => Mo::LdShlK64 { a, sh, disp, off, c },
        Rc::Store8 => Mo::St8 { a, b, off },
        Rc::Store16 => Mo::St16 { a, b, off },
        Rc::Store32 => Mo::St32 { a, b, off },
        Rc::Store64 => Mo::St64 { a, b, off },
        Rc::Store32Shl => Mo::StShl32 { a, b, base: c, sh, off },
        Rc::Store64Shl => Mo::StShl64 { a, b, base: c, sh, off },
        Rc::Store32ShlK => Mo::StShlK32 { a, sh, disp, off, b },
        Rc::Store64ShlK => Mo::StShlK64 { a, sh, disp, off, b },
        Rc::V128Load => Mo::V128Ld { a, off, c },
        Rc::V128Store => Mo::V128St { a, b, off },

        // -- v128: native SIMD, intrinsic picked at build time --
        Rc::AddI32x4 => Mo::VBin { f: simd::add_i32x4, a, b, c },
        Rc::SubI32x4 => Mo::VBin { f: simd::sub_i32x4, a, b, c },
        Rc::MulI32x4 => {
            let f: fn(u128, u128) -> u128 = if simd::fast_mul_i32x4() {
                simd::mul_i32x4
            } else {
                |x, y| exec::i32x4_bin(x, y, i32::wrapping_mul)
            };
            Mo::VBin { f, a, b, c }
        }
        Rc::AddF32x4 => Mo::VBin { f: simd::add_f32x4, a, b, c },
        Rc::SubF32x4 => Mo::VBin { f: simd::sub_f32x4, a, b, c },
        Rc::MulF32x4 => Mo::VBin { f: simd::mul_f32x4, a, b, c },
        Rc::DivF32x4 => Mo::VBin { f: simd::div_f32x4, a, b, c },
        Rc::AddF64x2 => Mo::VBin { f: simd::add_f64x2, a, b, c },
        Rc::SubF64x2 => Mo::VBin { f: simd::sub_f64x2, a, b, c },
        Rc::MulF64x2 => Mo::VBin { f: simd::mul_f64x2, a, b, c },
        Rc::DivF64x2 => Mo::VBin { f: simd::div_f64x2, a, b, c },
        Rc::CmpF64x2 => {
            // Monomorphized per comparison code at build time.
            let f: fn(u128, u128) -> u128 = match aux {
                FEQ => simd::cmpeq_f64x2,
                FNE => simd::cmpne_f64x2,
                FLT => simd::cmplt_f64x2,
                FGT => simd::cmpgt_f64x2,
                FLE => simd::cmple_f64x2,
                FGE => simd::cmpge_f64x2,
                _ => |x, y| exec::f64x2_cmp(x, y, |_, _| false),
            };
            Mo::VBin { f, a, b, c }
        }
        Rc::VAnd => Mo::VBin { f: |x, y| x & y, a, b, c },
        Rc::VOr => Mo::VBin { f: |x, y| x | y, a, b, c },
        Rc::VXor => Mo::VBin { f: |x, y| x ^ y, a, b, c },
        Rc::VNot => Mo::VNot { a, c },
        Rc::Splat32 => Mo::Splat32 { a, c },
        Rc::Splat64 => Mo::Splat64 { a, c },

        // -- everything else: captured interpreter handler --
        code => {
            let h: Handler = handler(code);
            let at = ip as usize;
            Mo::Link(Box::new(move |ctx| {
                h(ctx, at)?;
                Ok(next)
            }))
        }
    }
}

/// v128 lane arithmetic over the two-slot `u128` representation, mapped
/// to `std::arch` intrinsics on x86_64 (SSE2 is baseline there) with the
/// interpreter's scalar lane helpers as the portable fallback.
mod simd {
    #[cfg(target_arch = "x86_64")]
    mod native {
        use std::arch::x86_64::*;

        macro_rules! v128_intrin {
            ($name:ident, $ty:ty, $intrin:ident) => {
                #[inline(always)]
                pub(crate) fn $name(a: u128, b: u128) -> u128 {
                    // Sound: u128 and the vector types are plain 16-byte
                    // values; lane order matches wasm's little-endian
                    // layout, and SSE2 is unconditionally available on
                    // x86_64.
                    unsafe {
                        let x: $ty = std::mem::transmute(a);
                        let y: $ty = std::mem::transmute(b);
                        std::mem::transmute($intrin(x, y))
                    }
                }
            };
        }

        v128_intrin!(add_i32x4, __m128i, _mm_add_epi32);
        v128_intrin!(sub_i32x4, __m128i, _mm_sub_epi32);
        v128_intrin!(add_f32x4, __m128, _mm_add_ps);
        v128_intrin!(sub_f32x4, __m128, _mm_sub_ps);
        v128_intrin!(mul_f32x4, __m128, _mm_mul_ps);
        v128_intrin!(div_f32x4, __m128, _mm_div_ps);
        v128_intrin!(add_f64x2, __m128d, _mm_add_pd);
        v128_intrin!(sub_f64x2, __m128d, _mm_sub_pd);
        v128_intrin!(mul_f64x2, __m128d, _mm_mul_pd);
        v128_intrin!(div_f64x2, __m128d, _mm_div_pd);
        v128_intrin!(cmpeq_f64x2, __m128d, _mm_cmpeq_pd);
        v128_intrin!(cmpne_f64x2, __m128d, _mm_cmpneq_pd);
        v128_intrin!(cmplt_f64x2, __m128d, _mm_cmplt_pd);
        v128_intrin!(cmpgt_f64x2, __m128d, _mm_cmpgt_pd);
        v128_intrin!(cmple_f64x2, __m128d, _mm_cmple_pd);
        v128_intrin!(cmpge_f64x2, __m128d, _mm_cmpge_pd);

        /// `i32x4.mul` needs SSE4.1 (`_mm_mullo_epi32`); detected once at
        /// chain-build time, scalar fallback otherwise.
        pub(crate) fn fast_mul_i32x4() -> bool {
            std::arch::is_x86_feature_detected!("sse4.1")
        }

        #[target_feature(enable = "sse4.1")]
        unsafe fn mullo(a: __m128i, b: __m128i) -> __m128i {
            _mm_mullo_epi32(a, b)
        }

        /// Only called from chains built after [`fast_mul_i32x4`]
        /// returned true.
        #[inline(always)]
        pub(crate) fn mul_i32x4(a: u128, b: u128) -> u128 {
            unsafe { std::mem::transmute(mullo(std::mem::transmute(a), std::mem::transmute(b))) }
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    mod native {
        use crate::exec;
        use crate::regalloc::{feval, FEQ, FGE, FGT, FLE, FLT, FNE};

        macro_rules! v128_scalar {
            ($name:ident, $bin:ident, $f:expr) => {
                #[inline(always)]
                pub(crate) fn $name(a: u128, b: u128) -> u128 {
                    exec::$bin(a, b, $f)
                }
            };
        }

        v128_scalar!(add_i32x4, i32x4_bin, i32::wrapping_add);
        v128_scalar!(sub_i32x4, i32x4_bin, i32::wrapping_sub);
        v128_scalar!(mul_i32x4, i32x4_bin, i32::wrapping_mul);
        v128_scalar!(add_f32x4, f32x4_bin, |x, y| x + y);
        v128_scalar!(sub_f32x4, f32x4_bin, |x, y| x - y);
        v128_scalar!(mul_f32x4, f32x4_bin, |x, y| x * y);
        v128_scalar!(div_f32x4, f32x4_bin, |x, y| x / y);
        v128_scalar!(add_f64x2, f64x2_bin, |x, y| x + y);
        v128_scalar!(sub_f64x2, f64x2_bin, |x, y| x - y);
        v128_scalar!(mul_f64x2, f64x2_bin, |x, y| x * y);
        v128_scalar!(div_f64x2, f64x2_bin, |x, y| x / y);
        v128_scalar!(cmpeq_f64x2, f64x2_cmp, |x, y| feval(FEQ, x, y));
        v128_scalar!(cmpne_f64x2, f64x2_cmp, |x, y| feval(FNE, x, y));
        v128_scalar!(cmplt_f64x2, f64x2_cmp, |x, y| feval(FLT, x, y));
        v128_scalar!(cmpgt_f64x2, f64x2_cmp, |x, y| feval(FGT, x, y));
        v128_scalar!(cmple_f64x2, f64x2_cmp, |x, y| feval(FLE, x, y));
        v128_scalar!(cmpge_f64x2, f64x2_cmp, |x, y| feval(FGE, x, y));

        pub(crate) fn fast_mul_i32x4() -> bool {
            true // the "fast" path is the same scalar helper here
        }
    }

    pub(crate) use native::*;
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::dsl;
    use crate::runtime::{CompiledModule, Linker, Value};
    use crate::tier::Tier;
    use crate::types::ValType;

    /// A loop-heavy function (sum of i*i plus a memory histogram) run on
    /// Max and on MaxJit with the promotion threshold at 1, so the very
    /// first invocation compiles and executes chains — including the
    /// loop-backedge guard exit on the final iteration.
    fn sum_squares_module() -> crate::module::Module {
        let mut b = ModuleBuilder::new();
        b.memory(1, Some(1));
        b.func("run", vec![ValType::I32], vec![ValType::I32], |f| {
            let n = dsl::local(0, ValType::I32);
            let i = dsl::Var::new(f, ValType::I32);
            let acc = dsl::Var::new(f, ValType::I32);
            let stmts = vec![
                dsl::for_range(i, dsl::int(0), n.get(), &[
                    acc.set(acc.get() + i.get() * i.get()),
                    dsl::store(i.get().shl(dsl::int(2)), 64, acc.get()),
                ]),
                dsl::ret(Some(acc.get() + i.get().shl(dsl::int(2)).load(ValType::I32, 64))),
            ];
            dsl::emit_block(f, &stmts);
        });
        b.finish()
    }

    fn invoke(tier: Tier, threshold: Option<u32>, arg: i32) -> i32 {
        let module = sum_squares_module();
        crate::validate::validate_module(&module).unwrap();
        let compiled = CompiledModule::compile(module, tier).unwrap();
        if let Some(t) = threshold {
            compiled.set_jit_threshold(t);
        }
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        let out = inst.invoke("run", &[Value::I32(arg)]).unwrap();
        match out[0] {
            Value::I32(v) => v,
            ref other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn chains_match_the_interpreter_on_a_hot_loop() {
        for arg in [0, 1, 7, 100] {
            let max = invoke(Tier::Max, None, arg);
            let jit = invoke(Tier::MaxJit, Some(1), arg);
            assert_eq!(max, jit, "arg {arg}");
        }
    }

    #[test]
    fn cold_functions_never_compile_chains() {
        // Default threshold: a single short invocation stays interpreted
        // (same result, no promotion).
        let max = invoke(Tier::Max, None, 5);
        let jit = invoke(Tier::MaxJit, None, 5);
        assert_eq!(max, jit);
    }

    #[test]
    fn compile_fn_produces_chains_for_loops() {
        use crate::tier::CompiledBody;
        let module = sum_squares_module();
        crate::validate::validate_module(&module).unwrap();
        let compiled = CompiledModule::compile(module, Tier::MaxJit).unwrap();
        let CompiledBody::Flat(f) = &compiled.bodies()[0] else {
            panic!("flat tier expected");
        };
        let chains = super::compile_fn(&f.reg);
        assert!(chains.len() >= 1, "loop function should yield at least one superblock");
    }
}

/// Seam for direct x86-64 machine-code emission: a future backend can
/// return a [`Chain`] whose single [`Mo::Link`] step jumps into
/// executable memory and reports its exit through the same `EXIT | ip`
/// control word. The stub declines every block, so the feature only
/// exercises the plumbing (kept compiling by a CI matrix leg).
#[cfg(feature = "jit-x64")]
pub(crate) mod jit_x64 {
    use super::Chain;
    use crate::regalloc::RegFunc;
    use crate::superblock::Superblock;

    /// Offer one superblock to the native emitter. `None` = fall back to
    /// the lowered chain.
    pub(crate) fn try_emit(_f: &RegFunc, _b: &Superblock) -> Option<Chain> {
        None
    }
}

//! Module instantiation and the embedding interface.
//!
//! A [`Linker`] collects host functions by `(namespace, name)`; the paper's
//! embedder registers all `env.MPI_*` functions and the WASI imports here.
//! [`Linker::instantiate`] checks the module's imports against the
//! registered definitions (name *and* signature), allocates memory, applies
//! data/element segments, runs the start function, and returns an
//! [`Instance`] on which exports can be invoked.
//!
//! Host functions receive `&mut Instance`, which lets them read and write
//! guest memory with zero copies and *re-enter* the guest — the embedder's
//! `MPI_Alloc_mem` uses this to invoke the guest's exported `malloc`
//! (paper §3.7).

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Trap, ValidateError};
use crate::module::{ExportKind, Module};
use crate::tier::{self, CompiledBody, Tier};
use crate::types::{FuncType, Limits, ValType};
use crate::validate::validate_module;
use crate::widths;

use super::memory::Memory;
use super::value::{Slot, Value};

/// Alias kept for API familiarity with mainstream embedders: host functions
/// are called with the instance as their "caller" context.
pub type Caller = Instance;

/// A host function: receives the calling instance (for memory access and
/// guest re-entry) and the argument slots; returns the result slots.
/// Arguments arrive as untyped [`Slot`]s — the registered [`FuncType`] is
/// the contract for how to read them (`args[i].i32()` etc.), exactly as
/// validation guarantees for guest-side operands.
pub type HostFn =
    Arc<dyn Fn(&mut Instance, &[Slot]) -> Result<Vec<Slot>, Trap> + Send + Sync>;

/// Errors produced while instantiating a module.
#[derive(Debug)]
pub enum InstantiateError {
    /// The module failed validation.
    Validate(ValidateError),
    /// An import had no registered definition.
    MissingImport { module: String, name: String },
    /// An import's registered definition has the wrong type.
    ImportTypeMismatch { module: String, name: String, expected: FuncType, found: FuncType },
    /// A data or element segment fell outside its target.
    SegmentOutOfBounds(String),
    /// The start function trapped.
    StartTrap(Trap),
    /// The module declares no memory but the embedder requires one.
    NoMemory,
}

impl fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiateError::Validate(e) => write!(f, "{e}"),
            InstantiateError::MissingImport { module, name } => {
                write!(f, "missing import {module}.{name}")
            }
            InstantiateError::ImportTypeMismatch { module, name, expected, found } => write!(
                f,
                "import {module}.{name} type mismatch: module wants {expected}, host provides {found}"
            ),
            InstantiateError::SegmentOutOfBounds(what) => {
                write!(f, "{what} segment out of bounds")
            }
            InstantiateError::StartTrap(t) => write!(f, "start function trapped: {t}"),
            InstantiateError::NoMemory => write!(f, "module declares no linear memory"),
        }
    }
}

impl std::error::Error for InstantiateError {}

impl From<ValidateError> for InstantiateError {
    fn from(e: ValidateError) -> Self {
        InstantiateError::Validate(e)
    }
}

/// Engine execution limits, guarding the embedder against runaway guests.
#[derive(Debug, Clone, Copy)]
pub struct InstanceLimits {
    /// Maximum nested guest call depth (including host→guest re-entries).
    pub max_call_depth: usize,
    /// Maximum operand-stack entries per activation.
    pub max_value_stack: usize,
}

impl Default for InstanceLimits {
    fn default() -> Self {
        // The guest call depth is bounded well below the host stack it
        // consumes (each guest activation uses ~1 KiB of host frame, and
        // test threads only get 2 MiB), so exhaustion is reported as a
        // clean `Trap::StackExhausted` instead of overflowing the host.
        Self { max_call_depth: 1000, max_value_stack: 1 << 20 }
    }
}

/// A validated module compiled for a specific execution tier. Compilation
/// artifacts are shared (`Arc`) so one compiled module can be instantiated
/// once per MPI rank without recompiling — the engine-level mechanism
/// behind the embedder's module cache (§3.3).
#[derive(Clone)]
pub struct CompiledModule {
    pub(crate) module: Arc<Module>,
    pub(crate) tier: Tier,
    pub(crate) bodies: Arc<Vec<CompiledBody>>,
    /// Superblock-tier promotion state ([`Tier::MaxJit`] only): hotness
    /// counters and lazily compiled closure chains, shared by every
    /// instance so repeated invocations accumulate hotness. Never
    /// serialized — the cache stores a MaxJit module like a Max module
    /// and this state is rebuilt (empty) on load.
    pub(crate) jit: Option<Arc<crate::superblock::JitState>>,
}

fn jit_state_for(tier: Tier, n_funcs: usize) -> Option<Arc<crate::superblock::JitState>> {
    (tier == Tier::MaxJit).then(|| Arc::new(crate::superblock::JitState::new(n_funcs)))
}

impl CompiledModule {
    /// Validate and compile a module for the given tier.
    pub fn compile(module: Module, tier: Tier) -> Result<Self, ValidateError> {
        validate_module(&module)?;
        let bodies = module
            .functions
            .iter()
            .map(|f| tier::compile_body(&module, f, tier))
            .collect::<Vec<_>>();
        let jit = jit_state_for(tier, bodies.len());
        Ok(Self { module: Arc::new(module), tier, bodies: Arc::new(bodies), jit })
    }

    /// Lower the superblock tier's promotion threshold to `n` hotness
    /// events (test hook — e.g. 1 makes every function compile chains on
    /// first entry, so single-invocation differential programs exercise
    /// the chain and guard-exit paths). No-op on other tiers.
    pub fn set_jit_threshold(&self, n: u32) {
        if let Some(jit) = &self.jit {
            jit.set_threshold(n);
        }
    }

    /// Enable or disable JIT profiling counters (promotions, chain
    /// entries, guard exits, fallback steps). Off by default; the
    /// dispatch loop reads the flag once per call, so disabled profiling
    /// costs one relaxed load. No-op on other tiers.
    pub fn set_jit_profiling(&self, on: bool) {
        if let Some(jit) = &self.jit {
            jit.set_profiling(on);
        }
    }

    /// Point-in-time copy of the JIT profiling counters. `None` on tiers
    /// without the superblock JIT.
    pub fn jit_snapshot(&self) -> Option<crate::superblock::JitSnapshot> {
        self.jit.as_ref().map(|j| j.snapshot())
    }

    /// Install a callback invoked with the defined-function index each
    /// time a function is promoted to compiled chains (fires regardless
    /// of the profiling flag). No-op on other tiers.
    pub fn set_promotion_hook(&self, hook: Box<dyn Fn(u32) + Send + Sync>) {
        if let Some(jit) = &self.jit {
            jit.set_promotion_hook(hook);
        }
    }

    pub fn module(&self) -> &Module {
        &self.module
    }

    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Approximate in-memory size of the compiled code, in bytes. Used by
    /// the binary-size experiment as the "native code" artifact size.
    pub fn code_size(&self) -> usize {
        self.bodies.iter().map(|b| b.size_bytes()).sum()
    }

    /// Reassemble a compiled module from deserialized parts (the module
    /// cache's load path). The module is re-validated; the compiled bodies
    /// are trusted to correspond to it — the cache guards this with
    /// content addressing.
    pub fn from_parts(
        module: Module,
        tier: Tier,
        bodies: Vec<CompiledBody>,
    ) -> Result<Self, ValidateError> {
        validate_module(&module)?;
        if bodies.len() != module.functions.len() {
            return Err(ValidateError::module(format!(
                "artifact has {} bodies for {} functions",
                bodies.len(),
                module.functions.len()
            )));
        }
        let jit = jit_state_for(tier, bodies.len());
        Ok(Self { module: Arc::new(module), tier, bodies: Arc::new(bodies), jit })
    }

    /// Iterate the compiled bodies (the cache's store path).
    pub fn bodies(&self) -> &[CompiledBody] {
        &self.bodies
    }

    /// Drop every flat body's portable op stream (the cache-format form),
    /// roughly halving resident compiled-module memory. Only possible
    /// while the compiled module is unshared (no clones / instances hold
    /// the bodies yet); returns whether the streams were dropped. The
    /// cache regenerates the streams by recompiling when it needs to
    /// serialize again.
    pub fn discard_portable_ops(&mut self) -> bool {
        match Arc::get_mut(&mut self.bodies) {
            Some(bodies) => {
                for body in bodies.iter_mut() {
                    if let CompiledBody::Flat(f) = body {
                        f.discard_ops();
                    }
                }
                true
            }
            None => false,
        }
    }
}

/// Registry of host-provided import definitions.
#[derive(Default, Clone)]
pub struct Linker {
    funcs: HashMap<(String, String), (FuncType, HostFn)>,
}

impl Linker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a host function under `(module, name)` with an explicit
    /// signature. Instantiation fails if a guest imports the same name with
    /// a different signature.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        ty: FuncType,
        f: impl Fn(&mut Instance, &[Slot]) -> Result<Vec<Slot>, Trap> + Send + Sync + 'static,
    ) -> &mut Self {
        self.funcs.insert((module.into(), name.into()), (ty, Arc::new(f)));
        self
    }

    /// Whether a definition exists for `(module, name)`.
    pub fn contains(&self, module: &str, name: &str) -> bool {
        self.funcs.contains_key(&(module.to_string(), name.to_string()))
    }

    /// Number of registered definitions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Instantiate a compiled module, attaching `data` as embedder state.
    pub fn instantiate(
        &self,
        compiled: &CompiledModule,
        data: Box<dyn Any + Send>,
    ) -> Result<Instance, InstantiateError> {
        let module = Arc::clone(&compiled.module);

        // Resolve function imports in order.
        let mut host_funcs: Vec<HostFn> = Vec::new();
        for (ns, name, type_idx) in module.imported_funcs() {
            let want = module.types[type_idx as usize].clone();
            let (ty, f) = self
                .funcs
                .get(&(ns.to_string(), name.to_string()))
                .ok_or_else(|| InstantiateError::MissingImport {
                    module: ns.into(),
                    name: name.into(),
                })?;
            if *ty != want {
                return Err(InstantiateError::ImportTypeMismatch {
                    module: ns.into(),
                    name: name.into(),
                    expected: want,
                    found: ty.clone(),
                });
            }
            host_funcs.push(Arc::clone(f));
        }

        // Memory: defined or a zero-page default (imported memories are not
        // supported; the MPIWasm model is one private memory per instance).
        let mem_limits = module.memories.first().copied().unwrap_or(Limits::new(0, Some(0)));
        let mut memory = Memory::new(mem_limits);

        // Apply data segments.
        for seg in &module.data {
            let offset = seg.offset as u32;
            let dst = memory
                .slice_mut(offset, seg.bytes.len() as u32)
                .map_err(|_| InstantiateError::SegmentOutOfBounds("data".into()))?;
            dst.copy_from_slice(&seg.bytes);
        }

        // Globals, stored untyped; the declared types are kept for the
        // typed accessor.
        let globals = module
            .globals
            .iter()
            .map(|g| match g.init {
                crate::instr::Instr::I32Const(v) => Slot::from_i32(v),
                crate::instr::Instr::I64Const(v) => Slot::from_i64(v),
                crate::instr::Instr::F32Const(v) => Slot::from_f32(v),
                crate::instr::Instr::F64Const(v) => Slot::from_f64(v),
                _ => unreachable!("validated"),
            })
            .collect();
        let global_types: Vec<ValType> = module.globals.iter().map(|g| g.ty.val_type).collect();

        // Table + element segments.
        let table_limits = module.tables.first().copied().unwrap_or(Limits::new(0, Some(0)));
        let mut table: Vec<Option<u32>> = vec![None; table_limits.min as usize];
        for seg in &module.elements {
            let start = seg.offset as usize;
            let end = start + seg.funcs.len();
            if end > table.len() {
                return Err(InstantiateError::SegmentOutOfBounds("element".into()));
            }
            for (i, &f) in seg.funcs.iter().enumerate() {
                table[start + i] = Some(f);
            }
        }

        // Precompute the function-index-space type list and, for imports,
        // the argument slot counts (the host-call boundary works in slots).
        let mut func_types = Vec::with_capacity(module.num_funcs());
        for (_, _, type_idx) in module.imported_funcs() {
            func_types.push(module.types[type_idx as usize].clone());
        }
        for f in &module.functions {
            func_types.push(module.types[f.type_idx as usize].clone());
        }
        let host_arg_slots: Vec<u32> = func_types[..host_funcs.len()]
            .iter()
            .map(|t| widths::slot_count(&t.params))
            .collect();

        let mut instance = Instance {
            module,
            tier: compiled.tier,
            bodies: Arc::clone(&compiled.bodies),
            memory,
            globals,
            global_types,
            table,
            host_funcs,
            host_arg_slots,
            func_types,
            data,
            limits: InstanceLimits::default(),
            depth: 0,
            spare_stack: None,
            jit: compiled.jit.clone(),
            fuel_left: u64::MAX,
            interrupt: None,
        };

        if let Some(start) = instance.module.start {
            instance.call_func(start, &[]).map_err(InstantiateError::StartTrap)?;
        }
        Ok(instance)
    }
}

/// A live module instance: compiled code plus its mutable state (memory,
/// globals, table) and the embedder's per-instance data.
pub struct Instance {
    pub(crate) module: Arc<Module>,
    pub(crate) tier: Tier,
    pub(crate) bodies: Arc<Vec<CompiledBody>>,
    /// The instance's linear memory. Public so host functions can translate
    /// guest pointers with zero copies.
    pub memory: Memory,
    pub(crate) globals: Vec<Slot>,
    pub(crate) global_types: Vec<ValType>,
    pub(crate) table: Vec<Option<u32>>,
    pub(crate) host_funcs: Vec<HostFn>,
    /// Per imported function: argument count in slots.
    pub(crate) host_arg_slots: Vec<u32>,
    pub(crate) func_types: Vec<FuncType>,
    /// Embedder state (e.g. the MPIWasm `Env`); downcast with [`Instance::data`].
    pub(crate) data: Box<dyn Any + Send>,
    pub(crate) limits: InstanceLimits,
    pub(crate) depth: usize,
    /// The frame arena: one slot buffer shared by the operand stacks and
    /// locals of all activation frames of an invocation. Parked here
    /// between invocations so repeated calls allocate nothing; taken by
    /// the active driver loop (a host re-entry simply allocates a fresh
    /// one for its nested invocation).
    pub(crate) spare_stack: Option<Vec<Slot>>,
    /// Superblock-tier promotion state, shared with the compiled module
    /// (`None` on every tier but [`Tier::MaxJit`]).
    pub(crate) jit: Option<Arc<crate::superblock::JitState>>,
    /// Remaining execution fuel in guard-point ticks; `u64::MAX` means
    /// unlimited. Consumed at backward branches / interpreter epochs (in
    /// batches of up to 1024) and at invocation entries, so enforcement
    /// overruns the budget by at most one batch.
    pub(crate) fuel_left: u64,
    /// Embedder-raised interruption flag, polled at the same guard points
    /// fuel is charged at. `None` until [`Instance::interrupt_handle`] is
    /// first called, so un-instrumented instances pay nothing.
    pub(crate) interrupt: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("module", &self.module.name)
            .field("tier", &self.tier)
            .field("memory_pages", &self.memory.size_pages())
            .field("funcs", &self.func_types.len())
            .finish_non_exhaustive()
    }
}

impl Instance {
    /// The module this instance was created from.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The execution tier the module was compiled with.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Replace the engine limits (call depth, stack size).
    pub fn set_limits(&mut self, limits: InstanceLimits) {
        self.limits = limits;
    }

    /// Budget guest execution: `fuel` guard-point ticks (backward
    /// branches, interpreter instruction epochs, invocation entries).
    /// When the budget runs out the guest traps with [`Trap::OutOfFuel`]
    /// at the next guard point. `u64::MAX` restores unlimited execution.
    /// Granularity is coarse — ticks are charged in batches of up to 1024
    /// events — so treat fuel as a containment bound, not a cycle count.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel_left = fuel;
    }

    /// Remaining fuel ticks (`u64::MAX` = unlimited).
    pub fn fuel_left(&self) -> u64 {
        self.fuel_left
    }

    /// The instance's interruption flag, created on first use. Storing
    /// `true` (from any thread — a deadline timer, a job canceller) makes
    /// the guest trap with [`Trap::Interrupted`] at the next guard point.
    /// The flag is sticky; the embedder may reset it to reuse the
    /// instance.
    pub fn interrupt_handle(&mut self) -> Arc<std::sync::atomic::AtomicBool> {
        Arc::clone(
            self.interrupt
                .get_or_insert_with(|| Arc::new(std::sync::atomic::AtomicBool::new(false))),
        )
    }

    /// Install a shared interruption flag — one deadline timer can drive
    /// every rank of a job through a single flag. Replaces any flag
    /// previously handed out by [`Instance::interrupt_handle`].
    pub fn set_interrupt_flag(&mut self, flag: Arc<std::sync::atomic::AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Cap linear memory at `max_bytes` (rounded down to whole pages,
    /// never below the current size): a `memory.grow` past the cap fails
    /// with -1 exactly like growing past the module's declared maximum.
    pub fn cap_memory(&mut self, max_bytes: u64) {
        let pages = (max_bytes / crate::PAGE_SIZE as u64).min(u32::MAX as u64) as u32;
        self.memory.cap_max_pages(pages);
    }

    /// Whether any execution limit (fuel budget or interrupt flag) is
    /// armed. The tiers resolve this once per entry and select an
    /// unmetered hot loop when nothing could ever fire, so unlimited
    /// runs execute exactly the pre-limits code.
    #[inline]
    pub(crate) fn metered(&self) -> bool {
        self.fuel_left != u64::MAX || self.interrupt.is_some()
    }

    /// Charge `ticks` guard events against the fuel budget and poll the
    /// interrupt flag. Called from the execution tiers' guard points.
    #[inline]
    pub(crate) fn fuel_step(&mut self, ticks: u64) -> Result<(), Trap> {
        if self.fuel_left != u64::MAX {
            self.fuel_left = self.fuel_left.saturating_sub(ticks);
            if self.fuel_left == 0 {
                return Err(Trap::OutOfFuel);
            }
        }
        if let Some(flag) = &self.interrupt {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(Trap::Interrupted);
            }
        }
        Ok(())
    }

    /// Borrow the embedder state, downcast to `T`.
    pub fn data<T: 'static>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// Mutably borrow the embedder state, downcast to `T`.
    pub fn data_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.data.downcast_mut::<T>()
    }

    /// Split-borrow the linear memory and the embedder state. Host
    /// functions use this to move bytes between guest memory and embedder
    /// structures without intermediate copies.
    pub fn parts(&mut self) -> (&mut Memory, &mut (dyn Any + Send)) {
        (&mut self.memory, &mut *self.data)
    }

    /// Look up an exported function's index by name.
    pub fn export_func(&self, name: &str) -> Option<u32> {
        self.module
            .exports
            .iter()
            .find(|e| e.name == name && e.kind == ExportKind::Func)
            .map(|e| e.index)
    }

    /// The type of a function in the function index space.
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        self.func_types.get(func_idx as usize)
    }

    /// Invoke an exported function by name.
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let idx = self
            .export_func(name)
            .ok_or_else(|| Trap::host(format!("no exported function {name:?}")))?;
        self.call_func(idx, args)
    }

    /// Invoke a function by index in the function index space, checking the
    /// argument types against its signature.
    pub fn call_func(&mut self, func_idx: u32, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let ty = self
            .func_types
            .get(func_idx as usize)
            .ok_or_else(|| Trap::host(format!("function index {func_idx} out of range")))?;
        if ty.params.len() != args.len()
            || ty.params.iter().zip(args).any(|(p, a)| *p != a.ty())
        {
            return Err(Trap::host(format!(
                "argument mismatch calling function {func_idx}: expected {ty}",
            )));
        }
        // Typed boundary: convert to slots, run untyped, convert back.
        let result_types = ty.results.clone();
        let mut slots = Vec::with_capacity(args.len());
        for a in args {
            a.push_slots(&mut slots);
        }
        let out = self.call_func_unchecked(func_idx, &slots)?;
        let mut values = Vec::with_capacity(result_types.len());
        let mut at = 0;
        for ty in &result_types {
            let (v, n) = Value::from_slots(*ty, &out[at..]);
            values.push(v);
            at += n;
        }
        Ok(values)
    }

    /// Internal call path on the untyped slot representation, used by the
    /// execution engines and host re-entry once types were validated.
    pub(crate) fn call_func_unchecked(
        &mut self,
        func_idx: u32,
        args: &[Slot],
    ) -> Result<Vec<Slot>, Trap> {
        if self.depth >= self.limits.max_call_depth {
            return Err(Trap::StackExhausted);
        }
        // Call-site guard point: every invocation entry (exports, host
        // re-entries, indirect dispatch) charges fuel, so fuel-bounded
        // recursion through the host boundary is contained too.
        self.fuel_step(1)?;
        let imported = self.host_funcs.len() as u32;
        if func_idx < imported {
            let f = Arc::clone(&self.host_funcs[func_idx as usize]);
            self.depth += 1;
            let result = f(self, args);
            self.depth -= 1;
            return result;
        }
        let defined = (func_idx - imported) as usize;
        self.depth += 1;
        let result = match &self.bodies[defined] {
            CompiledBody::Interp(_) => crate::interp::call(self, defined, args),
            CompiledBody::Flat(_) => crate::ir::call(self, defined, args),
        };
        self.depth -= 1;
        result
    }

    /// Resolve a `call_indirect` through the table, checking the declared
    /// signature against the callee's actual type.
    pub(crate) fn resolve_indirect(&self, slot: u32, type_idx: u32) -> Result<u32, Trap> {
        let func_idx = self
            .table
            .get(slot as usize)
            .copied()
            .flatten()
            .ok_or(Trap::UndefinedTableElement { index: slot })?;
        let expected = &self.module.types[type_idx as usize];
        let actual = self
            .func_type(func_idx)
            .ok_or(Trap::UndefinedTableElement { index: slot })?;
        if expected != actual {
            return Err(Trap::IndirectCallTypeMismatch);
        }
        Ok(func_idx)
    }

    /// Take the frame arena for a driver loop (or a fresh one when a host
    /// re-entry finds it already in use).
    #[inline]
    pub(crate) fn take_stack(&mut self) -> Vec<Slot> {
        self.spare_stack.take().unwrap_or_else(|| Vec::with_capacity(4096))
    }

    /// Park the frame arena again, keeping its capacity for the next call.
    /// When a nested (host re-entry) invocation parked its stack first,
    /// keep whichever buffer is larger so the warmed-up outer arena is
    /// not thrown away.
    #[inline]
    pub(crate) fn put_stack(&mut self, mut stack: Vec<Slot>) {
        stack.clear();
        match &self.spare_stack {
            Some(parked) if parked.capacity() >= stack.capacity() => {}
            _ => self.spare_stack = Some(stack),
        }
    }

    /// Read a global by index (diagnostics / tests).
    pub fn global(&self, idx: u32) -> Option<Value> {
        let slot = *self.globals.get(idx as usize)?;
        let ty = *self.global_types.get(idx as usize)?;
        Some(Value::from_slots(ty, &[slot]).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    fn add_module() -> Module {
        let mut b = ModuleBuilder::new();
        b.memory(1, Some(4));
        let add = b.func(
            "add",
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            |f| {
                f.local_get(0).local_get(1).i32_add();
            },
        );
        let _ = add;
        b.finish()
    }

    #[test]
    fn instantiate_and_invoke() {
        let compiled = CompiledModule::compile(add_module(), Tier::Baseline).unwrap();
        let linker = Linker::new();
        let mut inst = linker.instantiate(&compiled, Box::new(())).unwrap();
        let out = inst.invoke("add", &[Value::I32(2), Value::I32(40)]).unwrap();
        assert_eq!(out, vec![Value::I32(42)]);
    }

    #[test]
    fn invoke_with_wrong_arity_fails() {
        let compiled = CompiledModule::compile(add_module(), Tier::Baseline).unwrap();
        let mut inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        assert!(inst.invoke("add", &[Value::I32(1)]).is_err());
        assert!(inst.invoke("add", &[Value::I32(1), Value::F64(2.0)]).is_err());
        assert!(inst.invoke("missing", &[]).is_err());
    }

    #[test]
    fn missing_import_is_reported() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let imp = b.import_func("env", "mystery", vec![ValType::I32], vec![]);
        b.func("go", vec![], vec![], |f| {
            f.i32_const(1).call(imp);
        });
        let compiled = CompiledModule::compile(b.finish(), Tier::Baseline).unwrap();
        let err = Linker::new().instantiate(&compiled, Box::new(())).unwrap_err();
        assert!(matches!(err, InstantiateError::MissingImport { .. }), "{err}");
    }

    #[test]
    fn import_signature_mismatch_is_reported() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let imp = b.import_func("env", "f", vec![ValType::I32], vec![]);
        b.func("go", vec![], vec![], |f| {
            f.i32_const(1).call(imp);
        });
        let compiled = CompiledModule::compile(b.finish(), Tier::Baseline).unwrap();
        let mut linker = Linker::new();
        linker.func("env", "f", FuncType::new(vec![ValType::F64], vec![]), |_, _| Ok(vec![]));
        let err = linker.instantiate(&compiled, Box::new(())).unwrap_err();
        assert!(matches!(err, InstantiateError::ImportTypeMismatch { .. }), "{err}");
    }

    #[test]
    fn host_function_sees_and_mutates_data() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let tick = b.import_func("env", "tick", vec![], vec![]);
        b.func("go", vec![], vec![], |f| {
            f.call(tick).call(tick).call(tick);
        });
        let compiled = CompiledModule::compile(b.finish(), Tier::Baseline).unwrap();
        let mut linker = Linker::new();
        linker.func("env", "tick", FuncType::new(vec![], vec![]), |inst, _| {
            *inst.data_mut::<u32>().unwrap() += 1;
            Ok(vec![])
        });
        let mut inst = linker.instantiate(&compiled, Box::new(0u32)).unwrap();
        inst.invoke("go", &[]).unwrap();
        assert_eq!(*inst.data::<u32>().unwrap(), 3);
    }

    #[test]
    fn host_function_can_reenter_guest() {
        // Host `alloc_hook` calls the guest's exported `bump` function,
        // mirroring MPI_Alloc_mem -> guest malloc.
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let hook = b.import_func("env", "alloc_hook", vec![], vec![ValType::I32]);
        b.func("bump", vec![], vec![ValType::I32], |f| {
            f.i32_const(4096);
        });
        b.func("go", vec![], vec![ValType::I32], |f| {
            f.call(hook);
        });
        let compiled = CompiledModule::compile(b.finish(), Tier::Baseline).unwrap();
        let mut linker = Linker::new();
        linker.func("env", "alloc_hook", FuncType::new(vec![], vec![ValType::I32]), |inst, _| {
            let out = inst.invoke("bump", &[])?;
            Ok(vec![Slot::from_i32(out[0].as_i32()?)])
        });
        let mut inst = linker.instantiate(&compiled, Box::new(())).unwrap();
        assert_eq!(inst.invoke("go", &[]).unwrap(), vec![Value::I32(4096)]);
    }

    #[test]
    fn data_segments_applied_and_oob_rejected() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.data(16, b"hello".to_vec());
        b.func("noop", vec![], vec![], |_| {});
        let compiled = CompiledModule::compile(b.finish(), Tier::Baseline).unwrap();
        let inst = Linker::new().instantiate(&compiled, Box::new(())).unwrap();
        assert_eq!(inst.memory.slice(16, 5).unwrap(), b"hello");

        let mut b = ModuleBuilder::new();
        b.memory(1, Some(1));
        b.data(crate::PAGE_SIZE as i32 - 2, b"hello".to_vec());
        b.func("noop", vec![], vec![], |_| {});
        let compiled = CompiledModule::compile(b.finish(), Tier::Baseline).unwrap();
        assert!(Linker::new().instantiate(&compiled, Box::new(())).is_err());
    }
}

//! Runtime values: the dynamic counterpart of [`crate::types::ValType`],
//! and the untyped 64-bit [`Slot`] representation the execution engine
//! uses on its hot path.

use crate::error::Trap;
use crate::types::ValType;

/// An untyped 64-bit stack slot.
///
/// Validation statically proves every operand's type, so the execution
/// engine stores values as raw bits and never tags or checks them at run
/// time: i32 is zero-extended into the low 32 bits, i64 is the raw two's
/// complement word, floats are their IEEE bit patterns, and v128 spans two
/// slots (low half first). [`Value`] remains the typed representation used
/// at API boundaries (arguments, results, globals accessors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Slot(pub u64);

impl Slot {
    pub const ZERO: Slot = Slot(0);

    #[inline]
    pub fn from_i32(v: i32) -> Slot {
        Slot(v as u32 as u64)
    }

    #[inline]
    pub fn from_u32(v: u32) -> Slot {
        Slot(v as u64)
    }

    #[inline]
    pub fn from_i64(v: i64) -> Slot {
        Slot(v as u64)
    }

    #[inline]
    pub fn from_u64(v: u64) -> Slot {
        Slot(v)
    }

    #[inline]
    pub fn from_f32(v: f32) -> Slot {
        Slot(v.to_bits() as u64)
    }

    #[inline]
    pub fn from_f64(v: f64) -> Slot {
        Slot(v.to_bits())
    }

    #[inline]
    pub fn from_bool(v: bool) -> Slot {
        Slot(v as u64)
    }

    #[inline]
    pub fn i32(self) -> i32 {
        self.0 as u32 as i32
    }

    #[inline]
    pub fn u32(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    pub fn i64(self) -> i64 {
        self.0 as i64
    }

    #[inline]
    pub fn u64(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn f32(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    #[inline]
    pub fn f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<i32> for Slot {
    fn from(v: i32) -> Slot {
        Slot::from_i32(v)
    }
}

impl From<u32> for Slot {
    fn from(v: u32) -> Slot {
        Slot::from_u32(v)
    }
}

impl From<i64> for Slot {
    fn from(v: i64) -> Slot {
        Slot::from_i64(v)
    }
}

impl From<u64> for Slot {
    fn from(v: u64) -> Slot {
        Slot::from_u64(v)
    }
}

impl From<f32> for Slot {
    fn from(v: f32) -> Slot {
        Slot::from_f32(v)
    }
}

impl From<f64> for Slot {
    fn from(v: f64) -> Slot {
        Slot::from_f64(v)
    }
}

impl From<bool> for Slot {
    fn from(v: bool) -> Slot {
        Slot::from_bool(v)
    }
}

/// A runtime value on the operand stack, in a local, or in a global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    /// 128-bit SIMD vector, stored as raw little-endian lanes.
    V128(u128),
}

impl Value {
    /// Zero/default value of a type (used to initialize locals).
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
            ValType::V128 => Value::V128(0),
        }
    }

    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
            Value::V128(_) => ValType::V128,
        }
    }

    pub fn as_i32(&self) -> Result<i32, Trap> {
        match self {
            Value::I32(v) => Ok(*v),
            other => Err(Trap::host(format!("expected i32, found {}", other.ty()))),
        }
    }

    pub fn as_u32(&self) -> Result<u32, Trap> {
        self.as_i32().map(|v| v as u32)
    }

    pub fn as_i64(&self) -> Result<i64, Trap> {
        match self {
            Value::I64(v) => Ok(*v),
            other => Err(Trap::host(format!("expected i64, found {}", other.ty()))),
        }
    }

    pub fn as_f32(&self) -> Result<f32, Trap> {
        match self {
            Value::F32(v) => Ok(*v),
            other => Err(Trap::host(format!("expected f32, found {}", other.ty()))),
        }
    }

    pub fn as_f64(&self) -> Result<f64, Trap> {
        match self {
            Value::F64(v) => Ok(*v),
            other => Err(Trap::host(format!("expected f64, found {}", other.ty()))),
        }
    }

    pub fn as_v128(&self) -> Result<u128, Trap> {
        match self {
            Value::V128(v) => Ok(*v),
            other => Err(Trap::host(format!("expected v128, found {}", other.ty()))),
        }
    }
}

impl Value {
    /// Append this value's slot representation (v128 = two slots, low
    /// half first).
    pub fn push_slots(self, out: &mut Vec<Slot>) {
        match self {
            Value::I32(v) => out.push(Slot::from_i32(v)),
            Value::I64(v) => out.push(Slot::from_i64(v)),
            Value::F32(v) => out.push(Slot::from_f32(v)),
            Value::F64(v) => out.push(Slot::from_f64(v)),
            Value::V128(v) => {
                out.push(Slot(v as u64));
                out.push(Slot((v >> 64) as u64));
            }
        }
    }

    /// Rebuild a typed value from its slot representation. `slots` must
    /// hold at least `ty.slot_width()` entries; returns the value and the
    /// number of slots consumed.
    pub fn from_slots(ty: ValType, slots: &[Slot]) -> (Value, usize) {
        match ty {
            ValType::I32 => (Value::I32(slots[0].i32()), 1),
            ValType::I64 => (Value::I64(slots[0].i64()), 1),
            ValType::F32 => (Value::F32(slots[0].f32()), 1),
            ValType::F64 => (Value::F64(slots[0].f64()), 1),
            ValType::V128 => {
                (Value::V128(slots[0].0 as u128 | (slots[1].0 as u128) << 64), 2)
            }
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I32(v as i32)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values_match_types() {
        for ty in [ValType::I32, ValType::I64, ValType::F32, ValType::F64, ValType::V128] {
            assert_eq!(Value::zero(ty).ty(), ty);
        }
    }

    #[test]
    fn accessor_type_checks() {
        assert_eq!(Value::I32(7).as_i32().unwrap(), 7);
        assert_eq!(Value::I32(-1).as_u32().unwrap(), u32::MAX);
        assert!(Value::I32(7).as_i64().is_err());
        assert!(Value::F64(1.0).as_f32().is_err());
        assert_eq!(Value::V128(3).as_v128().unwrap(), 3);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(5i32), Value::I32(5));
        assert_eq!(Value::from(5u32), Value::I32(5));
        assert_eq!(Value::from(5i64), Value::I64(5));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
    }
}

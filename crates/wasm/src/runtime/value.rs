//! Runtime values: the dynamic counterpart of [`crate::types::ValType`].

use crate::error::Trap;
use crate::types::ValType;

/// A runtime value on the operand stack, in a local, or in a global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    /// 128-bit SIMD vector, stored as raw little-endian lanes.
    V128(u128),
}

impl Value {
    /// Zero/default value of a type (used to initialize locals).
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
            ValType::V128 => Value::V128(0),
        }
    }

    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
            Value::V128(_) => ValType::V128,
        }
    }

    pub fn as_i32(&self) -> Result<i32, Trap> {
        match self {
            Value::I32(v) => Ok(*v),
            other => Err(Trap::host(format!("expected i32, found {}", other.ty()))),
        }
    }

    pub fn as_u32(&self) -> Result<u32, Trap> {
        self.as_i32().map(|v| v as u32)
    }

    pub fn as_i64(&self) -> Result<i64, Trap> {
        match self {
            Value::I64(v) => Ok(*v),
            other => Err(Trap::host(format!("expected i64, found {}", other.ty()))),
        }
    }

    pub fn as_f32(&self) -> Result<f32, Trap> {
        match self {
            Value::F32(v) => Ok(*v),
            other => Err(Trap::host(format!("expected f32, found {}", other.ty()))),
        }
    }

    pub fn as_f64(&self) -> Result<f64, Trap> {
        match self {
            Value::F64(v) => Ok(*v),
            other => Err(Trap::host(format!("expected f64, found {}", other.ty()))),
        }
    }

    pub fn as_v128(&self) -> Result<u128, Trap> {
        match self {
            Value::V128(v) => Ok(*v),
            other => Err(Trap::host(format!("expected v128, found {}", other.ty()))),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I32(v as i32)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values_match_types() {
        for ty in [ValType::I32, ValType::I64, ValType::F32, ValType::F64, ValType::V128] {
            assert_eq!(Value::zero(ty).ty(), ty);
        }
    }

    #[test]
    fn accessor_type_checks() {
        assert_eq!(Value::I32(7).as_i32().unwrap(), 7);
        assert_eq!(Value::I32(-1).as_u32().unwrap(), u32::MAX);
        assert!(Value::I32(7).as_i64().is_err());
        assert!(Value::F64(1.0).as_f32().is_err());
        assert_eq!(Value::V128(3).as_v128().unwrap(), 3);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(5i32), Value::I32(5));
        assert_eq!(Value::from(5u32), Value::I32(5));
        assert_eq!(Value::from(5i64), Value::I64(5));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
    }
}

//! Linear memory: a contiguous, bounds-checked, page-granular byte array.
//!
//! This is the cornerstone of the paper's zero-copy design (§3.5): the
//! embedder records the base of this buffer and converts 32-bit guest
//! offsets to host pointers by plain addition. [`Memory::slice`] /
//! [`Memory::slice_mut`] are the safe Rust rendering of that conversion —
//! the returned slice *is* host memory of the guest region, no copy made.

use crate::error::Trap;
use crate::types::Limits;
use crate::{MAX_PAGES, PAGE_SIZE};

/// A 32-bit addressed linear memory.
#[derive(Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    max_pages: u32,
}

impl Clone for Memory {
    fn clone(&self) -> Self {
        // Preserve the full-capacity reservation (a derived clone would
        // copy only the contents, losing the pinning guarantee).
        let mut bytes = vec![0u8; self.max_pages as usize * PAGE_SIZE];
        bytes.truncate(self.bytes.len());
        bytes.copy_from_slice(&self.bytes);
        Memory { bytes, max_pages: self.max_pages }
    }
}

impl Memory {
    /// Create a memory honoring the module's declared limits.
    ///
    /// The backing buffer's full capacity (up to the declared or spec
    /// maximum) is reserved up front, so [`Memory::grow`] never
    /// reallocates and the base address is stable for the life of the
    /// instance. This is the *pinning* guarantee the MPI embedder's
    /// zero-copy pending requests rely on (raw pointers into linear
    /// memory stay valid across `memory.grow`). The reservation is
    /// zeroed lazily (calloc-style): it costs virtual address space, not
    /// resident memory or memset time — which assumes an overcommitting
    /// OS (standard Linux); strict-commit platforms would need an
    /// mmap-reserve here instead.
    pub fn new(limits: Limits) -> Self {
        let max_pages = limits.max.unwrap_or(MAX_PAGES).min(MAX_PAGES);
        let mut bytes = vec![0u8; max_pages as usize * PAGE_SIZE];
        bytes.truncate(limits.min as usize * PAGE_SIZE);
        Self { bytes, max_pages }
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE) as u32
    }

    /// Lower the growth ceiling to `cap` pages (embedder resource limit).
    /// Clamped to never fall below the current size, so existing contents
    /// and the pinned base address are untouched; only future
    /// [`Memory::grow`] calls see the tighter limit. Raising the ceiling
    /// is not possible — the backing reservation was sized at creation.
    pub fn cap_max_pages(&mut self, cap: u32) {
        self.max_pages = self.max_pages.min(cap.max(self.size_pages()));
    }

    /// The current growth ceiling in pages.
    pub fn max_pages(&self) -> u32 {
        self.max_pages
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Grow by `delta` pages. Returns the previous size in pages, or -1 if
    /// the grow would exceed the declared maximum (the Wasm failure mode).
    /// Never moves the backing buffer (see [`Memory::new`]).
    pub fn grow(&mut self, delta: u32) -> i32 {
        let old = self.size_pages();
        let Some(new) = old.checked_add(delta) else { return -1 };
        if new > self.max_pages {
            return -1;
        }
        let base = self.bytes.as_ptr();
        self.bytes.resize(new as usize * PAGE_SIZE, 0);
        debug_assert_eq!(base, self.bytes.as_ptr(), "linear memory must stay pinned");
        old as i32
    }

    #[inline]
    fn check(&self, addr: u32, len: u32) -> Result<usize, Trap> {
        let start = addr as u64;
        let end = start + len as u64;
        if end > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds {
                addr: start,
                len: len as u64,
                memory_size: self.bytes.len() as u64,
            });
        }
        Ok(start as usize)
    }

    /// Effective address of a memory instruction: dynamic address plus the
    /// instruction's constant offset, checked without overflow.
    #[inline]
    pub fn effective(&self, dynamic: u32, offset: u32, len: u32) -> Result<usize, Trap> {
        let start = dynamic as u64 + offset as u64;
        let end = start + len as u64;
        if end > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds {
                addr: start,
                len: len as u64,
                memory_size: self.bytes.len() as u64,
            });
        }
        Ok(start as usize)
    }

    /// Zero-copy read view of guest memory `[addr, addr+len)`.
    pub fn slice(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let start = self.check(addr, len)?;
        Ok(&self.bytes[start..start + len as usize])
    }

    /// Zero-copy write view of guest memory `[addr, addr+len)`.
    pub fn slice_mut(&mut self, addr: u32, len: u32) -> Result<&mut [u8], Trap> {
        let start = self.check(addr, len)?;
        Ok(&mut self.bytes[start..start + len as usize])
    }

    /// Raw base pointer of the linear memory in the embedder's address
    /// space. This is the "base address" of the paper's Figure 2; adding a
    /// 32-bit guest offset yields the 64-bit host address of a guest byte.
    /// Exposed for the embedder's address-translation documentation and
    /// diagnostics; Rust-side access goes through [`Memory::slice`].
    pub fn base_ptr(&self) -> *const u8 {
        self.bytes.as_ptr()
    }

    pub fn read_u8(&self, addr: usize) -> u8 {
        self.bytes[addr]
    }

    // Typed accessors used by the interpreter (addr already bounds-checked
    // via `effective`).
    #[inline]
    pub fn load<const N: usize>(&self, start: usize) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[start..start + N]);
        out
    }

    #[inline]
    pub fn store(&mut self, start: usize, bytes: &[u8]) {
        self.bytes[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Typed convenience reads with bounds checking, used by host functions.
    pub fn read_u32_at(&self, addr: u32) -> Result<u32, Trap> {
        let s = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(self.load::<4>(s)))
    }

    pub fn read_i32_at(&self, addr: u32) -> Result<i32, Trap> {
        self.read_u32_at(addr).map(|v| v as i32)
    }

    pub fn read_u64_at(&self, addr: u32) -> Result<u64, Trap> {
        let s = self.check(addr, 8)?;
        Ok(u64::from_le_bytes(self.load::<8>(s)))
    }

    pub fn read_f64_at(&self, addr: u32) -> Result<f64, Trap> {
        self.read_u64_at(addr).map(f64::from_bits)
    }

    pub fn write_u32_at(&mut self, addr: u32, v: u32) -> Result<(), Trap> {
        let s = self.check(addr, 4)?;
        self.store(s, &v.to_le_bytes());
        Ok(())
    }

    pub fn write_i32_at(&mut self, addr: u32, v: i32) -> Result<(), Trap> {
        self.write_u32_at(addr, v as u32)
    }

    pub fn write_u64_at(&mut self, addr: u32, v: u64) -> Result<(), Trap> {
        let s = self.check(addr, 8)?;
        self.store(s, &v.to_le_bytes());
        Ok(())
    }

    pub fn write_f64_at(&mut self, addr: u32, v: f64) -> Result<(), Trap> {
        self.write_u64_at(addr, v.to_bits())
    }

    /// Read a NUL-terminated string (bounded by `max_len`).
    pub fn read_cstr(&self, addr: u32, max_len: u32) -> Result<String, Trap> {
        let avail = (self.size_bytes() as u64).saturating_sub(addr as u64);
        let region = self.slice(addr, (max_len as u64).min(avail) as u32)?;
        let end = region.iter().position(|&b| b == 0).unwrap_or(region.len());
        String::from_utf8(region[..end].to_vec())
            .map_err(|_| Trap::host("guest string is not valid UTF-8"))
    }

    /// Borrow two disjoint guest regions at once: `read` immutably and
    /// `write` mutably. This is what lets the embedder hand an MPI
    /// library a send buffer and a receive buffer that both live in guest
    /// memory, with zero copies. Overlapping regions are rejected (MPI
    /// requires disjoint buffers).
    pub fn disjoint_pair(
        &mut self,
        read: (u32, u32),
        write: (u32, u32),
    ) -> Result<(&[u8], &mut [u8]), Trap> {
        let r_start = self.check(read.0, read.1)?;
        let w_start = self.check(write.0, write.1)?;
        let r_end = r_start + read.1 as usize;
        let w_end = w_start + write.1 as usize;
        if read.1 == 0 {
            return Ok((&[], &mut self.bytes[w_start..w_end]));
        }
        if write.1 == 0 {
            return Ok((&self.bytes[r_start..r_end], &mut []));
        }
        if r_start < w_end && w_start < r_end {
            return Err(Trap::host("overlapping send/receive buffers"));
        }
        if r_end <= w_start {
            let (left, right) = self.bytes.split_at_mut(w_start);
            Ok((&left[r_start..r_end], &mut right[..write.1 as usize]))
        } else {
            let (left, right) = self.bytes.split_at_mut(r_start);
            Ok((&right[..read.1 as usize], &mut left[w_start..w_end]))
        }
    }

    /// `memory.copy` semantics: overlapping ranges behave like `memmove`.
    pub fn copy_within(&mut self, dst: u32, src: u32, len: u32) -> Result<(), Trap> {
        let d = self.check(dst, len)?;
        let s = self.check(src, len)?;
        self.bytes.copy_within(s..s + len as usize, d);
        Ok(())
    }

    /// `memory.fill` semantics.
    pub fn fill(&mut self, dst: u32, value: u8, len: u32) -> Result<(), Trap> {
        let d = self.check(dst, len)?;
        self.bytes[d..d + len as usize].fill(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_zeroed_at_min_pages() {
        let m = Memory::new(Limits::new(2, Some(4)));
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.size_bytes(), 2 * PAGE_SIZE);
        assert!(m.slice(0, 16).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn grow_respects_max() {
        let mut m = Memory::new(Limits::new(1, Some(3)));
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.grow(1), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.size_pages(), 3);
    }

    #[test]
    fn grow_keeps_base_address_pinned() {
        // The MPI embedder stores raw pointers into linear memory across
        // host calls; growing must never move the allocation.
        let mut m = Memory::new(Limits::new(1, Some(64)));
        let base = m.base_ptr();
        for _ in 0..63 {
            assert_ne!(m.grow(1), -1);
            assert_eq!(m.base_ptr(), base);
        }
    }

    #[test]
    fn grow_overflow_is_rejected() {
        let mut m = Memory::new(Limits::new(1, None));
        assert_eq!(m.grow(u32::MAX), -1);
    }

    #[test]
    fn bounds_check_rejects_oob() {
        let m = Memory::new(Limits::new(1, None));
        assert!(m.slice(PAGE_SIZE as u32 - 4, 4).is_ok());
        assert!(m.slice(PAGE_SIZE as u32 - 3, 4).is_err());
        assert!(m.slice(u32::MAX, 1).is_err());
    }

    #[test]
    fn effective_address_overflow_checked() {
        let m = Memory::new(Limits::new(1, None));
        // u32::MAX dynamic + large static offset must not wrap around.
        assert!(m.effective(u32::MAX, u32::MAX, 8).is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let mut m = Memory::new(Limits::new(1, None));
        m.write_u32_at(16, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32_at(16).unwrap(), 0xdead_beef);
        m.write_f64_at(24, -1.25).unwrap();
        assert_eq!(m.read_f64_at(24).unwrap(), -1.25);
        assert!(m.write_u32_at(PAGE_SIZE as u32 - 2, 1).is_err());
    }

    #[test]
    fn copy_within_handles_overlap() {
        let mut m = Memory::new(Limits::new(1, None));
        m.slice_mut(0, 8).unwrap().copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        m.copy_within(2, 0, 6).unwrap();
        assert_eq!(m.slice(0, 8).unwrap(), &[1, 2, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn fill_and_cstr() {
        let mut m = Memory::new(Limits::new(1, None));
        m.fill(0, b'a', 3).unwrap();
        // byte 3 is already zero -> terminator.
        assert_eq!(m.read_cstr(0, 64).unwrap(), "aaa");
    }

    #[test]
    fn disjoint_pair_borrows_both_directions() {
        let mut m = Memory::new(Limits::new(1, None));
        m.slice_mut(0, 4).unwrap().copy_from_slice(&[1, 2, 3, 4]);
        // Read before write region.
        {
            let (r, w) = m.disjoint_pair((0, 4), (100, 4)).unwrap();
            w.copy_from_slice(r);
        }
        assert_eq!(m.slice(100, 4).unwrap(), &[1, 2, 3, 4]);
        // Read after write region.
        {
            let (r, w) = m.disjoint_pair((100, 4), (8, 4)).unwrap();
            w.copy_from_slice(r);
        }
        assert_eq!(m.slice(8, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn disjoint_pair_rejects_overlap_and_oob() {
        let mut m = Memory::new(Limits::new(1, None));
        assert!(m.disjoint_pair((0, 8), (4, 8)).is_err());
        assert!(m.disjoint_pair((4, 8), (0, 8)).is_err());
        assert!(m.disjoint_pair((0, 8), (0, 8)).is_err());
        assert!(m.disjoint_pair((0, 8), (PAGE_SIZE as u32, 8)).is_err());
        // Zero-length regions never overlap.
        assert!(m.disjoint_pair((4, 0), (4, 8)).is_ok());
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let mut m = Memory::new(Limits::new(1, None));
        m.slice_mut(100, 4).unwrap().copy_from_slice(&[9, 9, 9, 9]);
        let base = m.base_ptr();
        let view = m.slice(100, 4).unwrap();
        // The view points into the same allocation at base + 100.
        assert_eq!(view.as_ptr() as usize, base as usize + 100);
    }
}

//! The execution runtime: values, linear memory, host-function linking,
//! and module instances.

mod instance;
mod memory;
mod value;

pub use instance::{
    Caller, CompiledModule, HostFn, Instance, InstanceLimits, InstantiateError, Linker,
};
pub use memory::Memory;
pub use value::{Slot, Value};
